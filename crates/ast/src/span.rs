//! Source spans.
//!
//! Every AST node carries a [`Span`] giving its half-open byte range in the
//! original source. Spans are used to compute layout-sensitive features
//! (characters per line, comment density) and to slice original source text
//! during transformations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct Span {
    /// Byte offset of the first character of the node.
    pub start: u32,
    /// Byte offset one past the last character of the node.
    pub end: u32,
}

impl Span {
    /// Creates a span from `start` and `end` byte offsets.
    ///
    /// # Examples
    ///
    /// ```
    /// use jsdetect_ast::Span;
    /// let s = Span::new(3, 10);
    /// assert_eq!(s.len(), 7);
    /// ```
    pub fn new(start: u32, end: u32) -> Self {
        debug_assert!(start <= end, "span start must not exceed end");
        Span { start, end }
    }

    /// A zero-width placeholder span, used for synthesized nodes.
    pub const DUMMY: Span = Span { start: 0, end: 0 };

    /// Length of the span in bytes.
    pub fn len(self) -> u32 {
        self.end - self.start
    }

    /// Returns `true` if the span covers no bytes.
    pub fn is_empty(self) -> bool {
        self.start == self.end
    }

    /// Smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span::new(self.start.min(other.start), self.end.max(other.end))
    }

    /// Returns the slice of `src` covered by this span.
    ///
    /// Returns an empty string if the span is out of bounds (synthesized
    /// nodes carry [`Span::DUMMY`]).
    pub fn slice(self, src: &str) -> &str {
        src.get(self.start as usize..self.end as usize).unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Computes 1-based line/column from a byte offset.
///
/// Used for diagnostics; feature extraction works on raw offsets.
pub fn line_col(src: &str, offset: u32) -> (u32, u32) {
    let offset = (offset as usize).min(src.len());
    let mut line = 1;
    let mut col = 1;
    for (i, b) in src.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_len_and_empty() {
        assert_eq!(Span::new(2, 5).len(), 3);
        assert!(Span::new(4, 4).is_empty());
        assert!(!Span::new(4, 5).is_empty());
    }

    #[test]
    fn span_union() {
        let a = Span::new(2, 5);
        let b = Span::new(7, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(b.to(a), Span::new(2, 9));
    }

    #[test]
    fn span_slice_in_bounds() {
        let src = "let x = 1;";
        assert_eq!(Span::new(4, 5).slice(src), "x");
    }

    #[test]
    fn span_slice_out_of_bounds_is_empty() {
        assert_eq!(Span::new(5, 100).slice("abc"), "");
    }

    #[test]
    fn line_col_basic() {
        let src = "a\nbc\nd";
        assert_eq!(line_col(src, 0), (1, 1));
        assert_eq!(line_col(src, 2), (2, 1));
        assert_eq!(line_col(src, 3), (2, 2));
        assert_eq!(line_col(src, 5), (3, 1));
    }

    #[test]
    fn line_col_clamps_past_end() {
        let src = "ab";
        assert_eq!(line_col(src, 99), (1, 3));
    }

    #[test]
    fn display_format() {
        assert_eq!(Span::new(1, 4).to_string(), "1..4");
    }
}

//! The scanner: turns source text into [`Token`]s.
//!
//! This is the zero-copy byte-level implementation: a 256-entry byte-class
//! table ([`CLASS`]) drives dispatch, whitespace/identifier/string runs
//! advance with tight inner loops over `&[u8]`, and token payloads are
//! interned [`jsdetect_ast::Atom`]s built directly from source slices — the
//! common case (no escapes, no numeric separators) never allocates.
//! `crates/lexer/src/reference.rs` preserves the original character-level
//! scanner as a differential oracle.

use crate::token::{Comment, Kw, Punct, Token, TokenKind};
use jsdetect_ast::{Atom, Span};
use jsdetect_guard::Budget;
use std::fmt;

/// A lexical error with its byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset where the error occurred.
    pub pos: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for LexError {}

/// Byte classes for the 256-entry dispatch table. One table lookup replaces
/// the chain of range tests the scanner previously ran per token start.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
enum Class {
    /// `0-9`
    Digit,
    /// `"` or `'`
    Quote,
    /// `` ` ``
    Backtick,
    /// `/` — comment, regex, or division depending on context
    Slash,
    /// ASCII letter, `$`, `_`, or `\` (unicode-escape ident start)
    IdentStart,
    /// `.` — punctuator unless followed by a digit
    Dot,
    /// Bytes `>= 0x80`: decode a char, then classify
    Unicode,
    /// Everything else ASCII: punctuator or error
    Other,
}

/// Byte → [`Class`] dispatch table for token starts.
const CLASS: [Class; 256] = {
    let mut t = [Class::Other; 256];
    let mut b = 0usize;
    while b < 256 {
        let c = b as u8;
        t[b] = if c.is_ascii_digit() {
            Class::Digit
        } else if c == b'"' || c == b'\'' {
            Class::Quote
        } else if c == b'`' {
            Class::Backtick
        } else if c == b'/' {
            Class::Slash
        } else if c.is_ascii_alphabetic() || c == b'$' || c == b'_' || c == b'\\' {
            Class::IdentStart
        } else if c == b'.' {
            Class::Dot
        } else if c >= 0x80 {
            Class::Unicode
        } else {
            Class::Other
        };
        b += 1;
    }
    t
};

/// `true` for ASCII bytes that continue an identifier (`[A-Za-z0-9$_]`).
/// Drives the tight identifier run loop; bytes `>= 0x80` and `\` fall out of
/// the loop and are handled by the slow path.
const IDENT_PART: [bool; 256] = {
    let mut t = [false; 256];
    let mut b = 0usize;
    while b < 128 {
        let c = b as u8;
        t[b] = c.is_ascii_alphanumeric() || c == b'$' || c == b'_';
        b += 1;
    }
    t
};

/// `true` for simple ASCII whitespace (space, tab, VT, FF) — the bytes the
/// trivia skipper can consume in a run without any bookkeeping.
const WS_SIMPLE: [bool; 256] = {
    let mut t = [false; 256];
    t[b' ' as usize] = true;
    t[b'\t' as usize] = true;
    t[0x0b] = true;
    t[0x0c] = true;
    t
};

/// On-demand lexer over a source string.
///
/// The parser drives the lexer, supplying context for the two ambiguities a
/// JavaScript tokenizer cannot resolve alone: whether `/` begins a regular
/// expression ([`Lexer::next_token`]'s `regex_allowed`) and whether `}`
/// continues a template literal ([`Lexer::continue_template`]).
#[derive(Debug)]
pub struct Lexer<'s> {
    src: &'s str,
    pos: usize,
    comments: Vec<Comment>,
    budget: Option<&'s Budget>,
    /// Running count of tokens produced by *this* lexer, including re-lexes
    /// during parser backtracking. Reconciled with the shared budget via
    /// [`Budget::note_tokens`] (max across lexing passes).
    produced: u64,
}

impl<'s> Lexer<'s> {
    /// Creates a lexer over `src`.
    pub fn new(src: &'s str) -> Self {
        Lexer { src, pos: 0, comments: Vec::new(), budget: None, produced: 0 }
    }

    /// Creates a lexer that charges every produced token to `budget`.
    pub fn with_budget(src: &'s str, budget: &'s Budget) -> Self {
        Lexer { src, pos: 0, comments: Vec::new(), budget: Some(budget), produced: 0 }
    }

    /// Comments encountered so far.
    pub fn comments(&self) -> &[Comment] {
        &self.comments
    }

    /// Consumes the lexer, returning all comments encountered.
    pub fn into_comments(self) -> Vec<Comment> {
        self.comments
    }

    /// Current byte position.
    pub fn pos(&self) -> u32 {
        self.pos as u32
    }

    /// Resets the byte position (used by the parser for backtracking).
    pub fn set_pos(&mut self, pos: u32) {
        self.pos = pos as usize;
    }

    /// Number of comments recorded so far (used with
    /// [`Lexer::truncate_comments`] for backtracking).
    pub fn comments_len(&self) -> usize {
        self.comments.len()
    }

    /// Drops comments recorded past `len` (parser backtracking).
    pub fn truncate_comments(&mut self, len: usize) {
        self.comments.truncate(len);
    }

    /// Re-lexes a token that began at `start` as a regular-expression
    /// literal. Used by the parser when it knows a `/` or `/=` token sits
    /// at an expression-start position.
    pub fn rescan_regex(&mut self, start: u32, newline_before: bool) -> Result<Token, LexError> {
        self.pos = start as usize;
        debug_assert_eq!(self.peek(), Some(b'/'));
        let kind = self.lex_regex()?;
        self.charge()?;
        Ok(Token { kind, span: Span::new(start, self.pos as u32), newline_before })
    }

    fn bytes(&self) -> &[u8] {
        self.src.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes().get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump_char(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { msg: msg.into(), pos: self.pos as u32 }
    }

    /// Charges one produced token to the budget (if any). A budget violation
    /// is downgraded to a `LexError` here — the typed cause stays recorded in
    /// the budget for callers to recover via `Budget::take_violation`.
    fn charge(&mut self) -> Result<(), LexError> {
        if let Some(budget) = self.budget {
            self.produced += 1;
            budget
                .note_tokens(self.produced)
                .map_err(|e| LexError { msg: e.to_string(), pos: self.pos as u32 })?;
        }
        Ok(())
    }

    /// Skips whitespace and comments; returns whether a line terminator was
    /// crossed. Simple whitespace advances in a run loop; only comment
    /// delimiters and non-ASCII bytes take the per-byte match.
    fn skip_trivia(&mut self) -> Result<bool, LexError> {
        let mut newline = false;
        let bytes = self.src.as_bytes();
        let len = bytes.len();
        loop {
            let b = match bytes.get(self.pos) {
                None => break,
                Some(&b) => b,
            };
            match b {
                _ if WS_SIMPLE[b as usize] => {
                    self.pos += 1;
                    while self.pos < len && WS_SIMPLE[bytes[self.pos] as usize] {
                        self.pos += 1;
                    }
                }
                b'\n' | b'\r' => {
                    newline = true;
                    self.pos += 1;
                }
                b'/' if self.peek_at(1) == Some(b'/') => {
                    let start = self.pos;
                    self.pos += 2;
                    while self.pos < len && bytes[self.pos] != b'\n' && bytes[self.pos] != b'\r' {
                        self.pos += 1;
                    }
                    self.comments.push(Comment {
                        span: Span::new(start as u32, self.pos as u32),
                        block: false,
                    });
                }
                b'/' if self.peek_at(1) == Some(b'*') => {
                    let start = self.pos;
                    self.pos += 2;
                    loop {
                        // Run to the next byte that needs a decision.
                        while self.pos < len
                            && bytes[self.pos] != b'*'
                            && bytes[self.pos] != b'\n'
                            && bytes[self.pos] != b'\r'
                        {
                            self.pos += 1;
                        }
                        match bytes.get(self.pos) {
                            None => return Err(self.err("unterminated block comment")),
                            Some(b'*') if bytes.get(self.pos + 1) == Some(&b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(b'\n') | Some(b'\r') => {
                                newline = true;
                                self.pos += 1;
                            }
                            _ => {
                                self.pos += 1;
                            }
                        }
                    }
                    self.comments.push(Comment {
                        span: Span::new(start as u32, self.pos as u32),
                        block: true,
                    });
                }
                b if b >= 0x80 => {
                    // Unicode whitespace / line separators.
                    let c = self.peek_char().unwrap();
                    if c == '\u{2028}' || c == '\u{2029}' {
                        newline = true;
                        self.pos += c.len_utf8();
                    } else if c.is_whitespace() {
                        self.pos += c.len_utf8();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(newline)
    }

    /// Lexes the next token. `regex_allowed` tells the scanner whether a
    /// leading `/` starts a regular expression (true) or a division
    /// operator (false).
    pub fn next_token(&mut self, regex_allowed: bool) -> Result<Token, LexError> {
        let newline_before = self.skip_trivia()?;
        let start = self.pos as u32;
        let kind = match self.peek() {
            None => TokenKind::Eof,
            Some(b) => match CLASS[b as usize] {
                Class::Digit => self.lex_number()?,
                Class::Quote => self.lex_string()?,
                Class::Backtick => self.lex_template_start()?,
                Class::Slash if regex_allowed => self.lex_regex()?,
                Class::Slash => self.lex_punct()?,
                Class::IdentStart => self.lex_ident()?,
                Class::Unicode => {
                    let c = self.peek_char().unwrap();
                    if is_ident_start_char(c) {
                        self.lex_ident()?
                    } else {
                        return Err(self.err(format!("unexpected character `{}`", c)));
                    }
                }
                Class::Dot if matches!(self.peek_at(1), Some(b'0'..=b'9')) => self.lex_number()?,
                Class::Other if b == b'#' => self.lex_private_name()?,
                Class::Dot | Class::Other => self.lex_punct()?,
            },
        };
        self.charge()?;
        Ok(Token { kind, span: Span::new(start, self.pos as u32), newline_before })
    }

    /// Re-lexes a `}` (whose token started at `rbrace_start`) as a template
    /// continuation, producing a `TemplateMiddle` or `TemplateTail` token.
    pub fn continue_template(&mut self, rbrace_start: u32) -> Result<Token, LexError> {
        self.pos = rbrace_start as usize;
        debug_assert_eq!(self.peek(), Some(b'}'));
        self.pos += 1; // consume `}`
        let start = rbrace_start;
        let (cooked, raw, is_tail) = self.scan_template_chars()?;
        let kind = if is_tail {
            TokenKind::TemplateTail { cooked, raw }
        } else {
            TokenKind::TemplateMiddle { cooked, raw }
        };
        self.charge()?;
        Ok(Token { kind, span: Span::new(start, self.pos as u32), newline_before: false })
    }

    /// Lexes a `#name` private name (class fields/methods, ES2022). A `#`
    /// not followed by an identifier keeps the historical "unexpected
    /// character" error at the `#` position.
    fn lex_private_name(&mut self) -> Result<TokenKind, LexError> {
        let hash = self.pos;
        self.pos += 1;
        let starts_ident = match self.peek() {
            Some(b'\\') => self.peek_at(1) == Some(b'u'),
            Some(b) if b < 0x80 => matches!(CLASS[b as usize], Class::IdentStart),
            Some(_) => self.peek_char().is_some_and(is_ident_start_char),
            None => false,
        };
        if !starts_ident {
            self.pos = hash;
            return Err(self.err("unexpected character `#`"));
        }
        match self.lex_ident()? {
            TokenKind::Ident(a) => Ok(TokenKind::PrivateName(a)),
            // Keywords are valid private names (`#new`, `#if`).
            TokenKind::Keyword(kw) => Ok(TokenKind::PrivateName(kw.atom())),
            _ => unreachable!("lex_ident yields only Ident/Keyword"),
        }
    }

    fn lex_ident(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        let bytes = self.src.as_bytes();
        let len = bytes.len();
        // Fast path: pure-ASCII identifier, interned straight from the
        // source slice — no per-token allocation.
        let mut p = self.pos;
        while p < len && IDENT_PART[bytes[p] as usize] {
            p += 1;
        }
        match bytes.get(p) {
            Some(b'\\') if bytes.get(p + 1) == Some(&b'u') => {
                self.pos = p;
                return self.lex_ident_slow(start);
            }
            Some(&b) if b >= 0x80 => {
                // Might be a unicode ident-part; let the slow path decide.
                self.pos = p;
                return self.lex_ident_slow(start);
            }
            _ => {}
        }
        self.pos = p;
        let text = &self.src[start..p];
        if text.is_empty() {
            // Only reachable via a leading `\` not followed by `u`.
            return Err(self.err("empty identifier"));
        }
        if let Some(kw) = Kw::lookup(text) {
            return Ok(TokenKind::Keyword(kw));
        }
        Ok(TokenKind::Ident(Atom::new(text)))
    }

    /// Slow path for identifiers containing `\u` escapes or non-ASCII
    /// characters. `start` is the identifier's first byte; `self.pos` sits at
    /// the first byte the fast path could not consume.
    fn lex_ident_slow(&mut self, start: usize) -> Result<TokenKind, LexError> {
        let mut has_escape = false;
        let mut name = String::from(&self.src[start..self.pos]);
        loop {
            match self.peek() {
                Some(b'\\') if self.peek_at(1) == Some(b'u') => {
                    has_escape = true;
                    self.pos += 2;
                    let c = self.lex_unicode_escape_body()?;
                    name.push(c);
                }
                Some(b) if IDENT_PART[b as usize] => {
                    name.push(b as char);
                    self.pos += 1;
                }
                Some(b) if b >= 0x80 => {
                    let c = self.peek_char().unwrap();
                    if is_ident_part_char(c) {
                        name.push(c);
                        self.pos += c.len_utf8();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        if name.is_empty() {
            self.pos = start;
            return Err(self.err("empty identifier"));
        }
        if !has_escape {
            if let Some(kw) = Kw::lookup(&name) {
                return Ok(TokenKind::Keyword(kw));
            }
        }
        Ok(TokenKind::Ident(Atom::new(&name)))
    }

    fn lex_unicode_escape_body(&mut self) -> Result<char, LexError> {
        // Positioned after `\u`.
        if self.peek() == Some(b'{') {
            self.pos += 1;
            let mut v: u32 = 0;
            let mut digits = 0;
            while let Some(b) = self.peek() {
                if b == b'}' {
                    break;
                }
                let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad unicode escape"))?;
                v = v.wrapping_mul(16).wrapping_add(d);
                digits += 1;
                self.pos += 1;
            }
            if self.peek() != Some(b'}') || digits == 0 {
                return Err(self.err("unterminated unicode escape"));
            }
            self.pos += 1;
            char::from_u32(v).ok_or_else(|| self.err("invalid code point"))
        } else {
            let mut v: u32 = 0;
            for _ in 0..4 {
                let b = self.peek().ok_or_else(|| self.err("truncated unicode escape"))?;
                let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad unicode escape"))?;
                v = v * 16 + d;
                self.pos += 1;
            }
            char::from_u32(v).ok_or_else(|| self.err("invalid code point"))
        }
    }

    fn lex_number(&mut self) -> Result<TokenKind, LexError> {
        let start = self.pos;
        let b0 = self.peek().unwrap();
        if b0 == b'0' {
            match self.peek_at(1) {
                Some(b'x') | Some(b'X') => return self.lex_radix_number(16, 2),
                Some(b'o') | Some(b'O') => return self.lex_radix_number(8, 2),
                Some(b'b') | Some(b'B') => return self.lex_radix_number(2, 2),
                Some(b'0'..=b'7') => {
                    // Legacy octal: 0123. If it contains 8/9 it is decimal.
                    let mut p = self.pos + 1;
                    let mut octal = true;
                    while let Some(&d) = self.bytes().get(p) {
                        match d {
                            b'0'..=b'7' => p += 1,
                            b'8' | b'9' => {
                                octal = false;
                                p += 1;
                            }
                            _ => break,
                        }
                    }
                    // A trailing `.` or exponent makes it decimal.
                    if octal && !matches!(self.bytes().get(p), Some(b'.') | Some(b'e') | Some(b'E'))
                    {
                        self.pos += 1;
                        return self.lex_radix_number(8, 0);
                    }
                }
                _ => {}
            }
        }
        // Decimal: integer part, optional fraction, optional exponent.
        let mut saw_digit = false;
        let mut saw_sep = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'_' => {
                    saw_sep = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => {
                        saw_digit = true;
                        self.pos += 1;
                    }
                    b'_' => {
                        saw_sep = true;
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
        }
        if !saw_digit {
            return Err(self.err("malformed number"));
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let mut exp_digits = false;
            while let Some(b'0'..=b'9') = self.peek() {
                exp_digits = true;
                self.pos += 1;
            }
            if !exp_digits {
                self.pos = save;
            }
        }
        if self.peek() == Some(b'n') {
            // BigInt suffix: keep the raw digits exact (the value does not
            // fit f64), so printing round-trips bit-for-bit.
            let raw = Atom::new(&self.src[start..self.pos]);
            self.pos += 1;
            return Ok(TokenKind::BigInt(raw));
        }
        // Fast path: no numeric separators, parse straight from the slice.
        let v = if saw_sep {
            let text: String = self.src[start..self.pos].chars().filter(|c| *c != '_').collect();
            text.parse::<f64>()
        } else {
            self.src[start..self.pos].parse::<f64>()
        };
        let v = v.map_err(|_| self.err("malformed number"))?;
        Ok(TokenKind::Num(v))
    }

    /// Lexes a radix-prefixed integer; `skip` bytes of prefix are consumed
    /// first (`0x` → 2; legacy octal passes 0 with `pos` already past `0`).
    fn lex_radix_number(&mut self, radix: u32, skip: usize) -> Result<TokenKind, LexError> {
        // The raw slice starts at the prefix (legacy octal enters with
        // `pos` already past the leading `0`).
        let raw_start = if skip == 0 { self.pos - 1 } else { self.pos };
        self.pos += skip;
        let mut v: f64 = 0.0;
        let mut digits = 0;
        while let Some(b) = self.peek() {
            if b == b'_' {
                self.pos += 1;
                continue;
            }
            match (b as char).to_digit(radix) {
                Some(d) => {
                    v = v * radix as f64 + d as f64;
                    digits += 1;
                    self.pos += 1;
                }
                None => break,
            }
        }
        if digits == 0 {
            return Err(self.err("missing digits in number"));
        }
        if self.peek() == Some(b'n') {
            // BigInt suffix: keep the raw prefixed digits exact.
            let raw = Atom::new(&self.src[raw_start..self.pos]);
            self.pos += 1;
            return Ok(TokenKind::BigInt(raw));
        }
        Ok(TokenKind::Num(v))
    }

    fn lex_string(&mut self) -> Result<TokenKind, LexError> {
        let quote = self.bump().unwrap();
        let bytes = self.src.as_bytes();
        let content_start = self.pos;
        // Fast path: scan bytes until a sentinel. Multi-byte UTF-8 sequences
        // pass through untouched (all their bytes are >= 0x80), so the
        // escape-free cooked value is exactly the source slice.
        let mut p = self.pos;
        loop {
            match bytes.get(p) {
                None | Some(b'\n') | Some(b'\r') => {
                    self.pos = p;
                    return Err(self.err("unterminated string literal"));
                }
                Some(&b) if b == quote => {
                    let value = Atom::new(&self.src[content_start..p]);
                    self.pos = p + 1;
                    return Ok(TokenKind::Str(value));
                }
                Some(b'\\') => break,
                Some(_) => p += 1,
            }
        }
        // Slow path: at least one escape; cook into a buffer seeded with the
        // escape-free prefix.
        let mut value = String::from(&self.src[content_start..p]);
        self.pos = p;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\n') | Some(b'\r') => return Err(self.err("unterminated string literal")),
                Some(b) if b == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.lex_escape_into(&mut value)?;
                }
                Some(b) if b < 0x80 => {
                    value.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.bump_char().unwrap();
                    value.push(c);
                }
            }
        }
        Ok(TokenKind::Str(Atom::new(&value)))
    }

    fn lex_escape_into(&mut self, out: &mut String) -> Result<(), LexError> {
        let c = self.bump_char().ok_or_else(|| self.err("truncated escape"))?;
        match c {
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'v' => out.push('\u{b}'),
            '0' if !matches!(self.peek(), Some(b'0'..=b'9')) => out.push('\0'),
            'x' => {
                let mut v = 0u32;
                for _ in 0..2 {
                    let b = self.peek().ok_or_else(|| self.err("truncated hex escape"))?;
                    let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex escape"))?;
                    v = v * 16 + d;
                    self.pos += 1;
                }
                out.push(char::from_u32(v).unwrap());
            }
            'u' => {
                let c = self.lex_unicode_escape_body()?;
                out.push(c);
            }
            '\n' => {}
            '\r' => {
                if self.peek() == Some(b'\n') {
                    self.pos += 1;
                }
            }
            '0'..='7' => {
                // Legacy octal escape: up to 3 octal digits.
                let mut v = c.to_digit(8).unwrap();
                for _ in 0..2 {
                    match self.peek() {
                        Some(b @ b'0'..=b'7') if v * 8 + ((b - b'0') as u32) <= 255 => {
                            v = v * 8 + (b - b'0') as u32;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                out.push(char::from_u32(v).unwrap());
            }
            other => out.push(other),
        }
        Ok(())
    }

    fn lex_template_start(&mut self) -> Result<TokenKind, LexError> {
        self.pos += 1; // backtick
        let (cooked, raw, is_tail) = self.scan_template_chars()?;
        Ok(if is_tail {
            TokenKind::TemplateNoSub { cooked, raw }
        } else {
            TokenKind::TemplateHead { cooked, raw }
        })
    }

    /// Scans template characters until `` ` `` (tail) or `${` (head/middle).
    /// Returns `(cooked, raw, is_tail)`. Escape-free chunks are zero-copy:
    /// cooked and raw are the same source slice (and thus the same atom).
    fn scan_template_chars(&mut self) -> Result<(Atom, Atom, bool), LexError> {
        let raw_start = self.pos;
        let bytes = self.src.as_bytes();
        // Fast path: only `` ` ``, `${`, `\` and EOF stop the byte run;
        // newlines and multi-byte UTF-8 flow through.
        let mut p = self.pos;
        loop {
            match bytes.get(p) {
                None => {
                    self.pos = p;
                    return Err(self.err("unterminated template literal"));
                }
                Some(b'`') => {
                    let chunk = Atom::new(&self.src[raw_start..p]);
                    self.pos = p + 1;
                    return Ok((chunk, chunk, true));
                }
                Some(b'$') if bytes.get(p + 1) == Some(&b'{') => {
                    let chunk = Atom::new(&self.src[raw_start..p]);
                    self.pos = p + 2;
                    return Ok((chunk, chunk, false));
                }
                Some(b'\\') => break,
                Some(_) => p += 1,
            }
        }
        // Slow path: escapes present; cooked diverges from raw.
        let mut cooked = String::from(&self.src[raw_start..p]);
        self.pos = p;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated template literal")),
                Some(b'`') => {
                    let raw = Atom::new(&self.src[raw_start..self.pos]);
                    self.pos += 1;
                    return Ok((Atom::new(&cooked), raw, true));
                }
                Some(b'$') if self.peek_at(1) == Some(b'{') => {
                    let raw = Atom::new(&self.src[raw_start..self.pos]);
                    self.pos += 2;
                    return Ok((Atom::new(&cooked), raw, false));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.lex_escape_into(&mut cooked)?;
                }
                Some(b) if b < 0x80 => {
                    cooked.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.bump_char().unwrap();
                    cooked.push(c);
                }
            }
        }
    }

    fn lex_regex(&mut self) -> Result<TokenKind, LexError> {
        self.pos += 1; // leading slash
        let pat_start = self.pos;
        let mut in_class = false;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated regex literal")),
                Some(b'\n') | Some(b'\r') => return Err(self.err("unterminated regex literal")),
                Some(b'\\') => {
                    // Consume the backslash plus one full (possibly
                    // multi-byte) escaped character.
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'\n') | Some(b'\r')) {
                        return Err(self.err("unterminated regex literal"));
                    }
                    self.bump_char();
                }
                Some(b'[') => {
                    in_class = true;
                    self.pos += 1;
                }
                Some(b']') => {
                    in_class = false;
                    self.pos += 1;
                }
                Some(b'/') if !in_class => break,
                Some(b) if b < 0x80 => {
                    self.pos += 1;
                }
                Some(_) => {
                    self.bump_char();
                }
            }
        }
        let pattern = Atom::new(&self.src[pat_start..self.pos]);
        self.pos += 1; // closing slash
        let flag_start = self.pos;
        while let Some(b) = self.peek() {
            if IDENT_PART[b as usize] {
                self.pos += 1;
            } else {
                break;
            }
        }
        let flags = Atom::new(&self.src[flag_start..self.pos]);
        Ok(TokenKind::Regex { pattern, flags })
    }

    /// Punctuator dispatch: a nested match on the first byte replaces the
    /// old linear longest-match table scan (59 prefix comparisons worst
    /// case → at most three byte reads).
    fn lex_punct(&mut self) -> Result<TokenKind, LexError> {
        use Punct::*;
        let b0 = self.peek().unwrap();
        let b1 = self.peek_at(1);
        let b2 = self.peek_at(2);
        let (p, len) = match b0 {
            b'(' => (LParen, 1),
            b')' => (RParen, 1),
            b'[' => (LBracket, 1),
            b']' => (RBracket, 1),
            b'{' => (LBrace, 1),
            b'}' => (RBrace, 1),
            b';' => (Semi, 1),
            b',' => (Comma, 1),
            b':' => (Colon, 1),
            b'~' => (Tilde, 1),
            b'.' => {
                if b1 == Some(b'.') && b2 == Some(b'.') {
                    (Ellipsis, 3)
                } else {
                    (Dot, 1)
                }
            }
            b'=' => match b1 {
                Some(b'=') if b2 == Some(b'=') => (EqEqEq, 3),
                Some(b'=') => (EqEq, 2),
                Some(b'>') => (Arrow, 2),
                _ => (Eq, 1),
            },
            b'!' => match b1 {
                Some(b'=') if b2 == Some(b'=') => (NotEqEq, 3),
                Some(b'=') => (NotEq, 2),
                _ => (Bang, 1),
            },
            b'<' => match b1 {
                Some(b'<') if b2 == Some(b'=') => (ShlEq, 3),
                Some(b'<') => (Shl, 2),
                Some(b'=') => (LtEq, 2),
                _ => (Lt, 1),
            },
            b'>' => match b1 {
                Some(b'>') if b2 == Some(b'>') => {
                    if self.peek_at(3) == Some(b'=') {
                        (UShrEq, 4)
                    } else {
                        (UShr, 3)
                    }
                }
                Some(b'>') if b2 == Some(b'=') => (ShrEq, 3),
                Some(b'>') => (Shr, 2),
                Some(b'=') => (GtEq, 2),
                _ => (Gt, 1),
            },
            b'&' => match b1 {
                Some(b'&') if b2 == Some(b'=') => (AmpAmpEq, 3),
                Some(b'&') => (AmpAmp, 2),
                Some(b'=') => (AmpEq, 2),
                _ => (Amp, 1),
            },
            b'|' => match b1 {
                Some(b'|') if b2 == Some(b'=') => (PipePipeEq, 3),
                Some(b'|') => (PipePipe, 2),
                Some(b'=') => (PipeEq, 2),
                _ => (Pipe, 1),
            },
            b'?' => match b1 {
                Some(b'?') if b2 == Some(b'=') => (QuestionQuestionEq, 3),
                Some(b'?') => (QuestionQuestion, 2),
                // `?.3` must lex as `?` then `.3` (optional chain cannot be
                // followed by a digit).
                Some(b'.') if !matches!(b2, Some(b'0'..=b'9')) => (OptionalChain, 2),
                _ => (Question, 1),
            },
            b'+' => match b1 {
                Some(b'+') => (PlusPlus, 2),
                Some(b'=') => (PlusEq, 2),
                _ => (Plus, 1),
            },
            b'-' => match b1 {
                Some(b'-') => (MinusMinus, 2),
                Some(b'=') => (MinusEq, 2),
                _ => (Minus, 1),
            },
            b'*' => match b1 {
                Some(b'*') if b2 == Some(b'=') => (StarStarEq, 3),
                Some(b'*') => (StarStar, 2),
                Some(b'=') => (StarEq, 2),
                _ => (Star, 1),
            },
            b'/' => match b1 {
                Some(b'=') => (SlashEq, 2),
                _ => (Slash, 1),
            },
            b'%' => match b1 {
                Some(b'=') => (PercentEq, 2),
                _ => (Percent, 1),
            },
            b'^' => match b1 {
                Some(b'=') => (CaretEq, 2),
                _ => (Caret, 1),
            },
            _ => {
                // Satellite fix: format the offending char directly instead
                // of materializing a one-char `String` first.
                return Err(match self.peek_char() {
                    Some(c) => self.err(format!("unexpected character `{}`", c)),
                    None => self.err("unexpected character ``"),
                });
            }
        };
        self.pos += len;
        Ok(TokenKind::Punct(p))
    }
}

fn is_ident_start_char(c: char) -> bool {
    c.is_alphabetic() || c == '$' || c == '_'
}

fn is_ident_part_char(c: char) -> bool {
    c.is_alphanumeric() || c == '$' || c == '_' || c == '\u{200c}' || c == '\u{200d}'
}

/// Tokenizes an entire source string, applying the standard prev-token
/// heuristic for regex-vs-division disambiguation.
///
/// Template substitutions are resolved with a brace-depth stack, so nested
/// templates lex correctly. The returned vector always ends with an EOF
/// token.
///
/// # Examples
///
/// ```
/// use jsdetect_lexer::{tokenize, TokenKind};
/// let tokens = tokenize("var x = 1;").unwrap();
/// assert_eq!(tokens.len(), 6); // var x = 1 ; EOF
/// assert!(matches!(tokens[3].kind, TokenKind::Num(n) if n == 1.0));
/// ```
pub fn tokenize(src: &str) -> Result<Vec<Token>, LexError> {
    tokenize_with_comments(src).map(|(tokens, _)| tokens)
}

/// Tokenizes and also returns the comments.
pub fn tokenize_with_comments(src: &str) -> Result<(Vec<Token>, Vec<Comment>), LexError> {
    let mut lexer = Lexer::new(src);
    let mut tokens = Vec::new();
    tokenize_into(&mut lexer, &mut tokens)?;
    Ok((tokens, lexer.into_comments()))
}

/// Tokenizes under a [`Budget`]: every produced token is charged, so a
/// token flood fails with a `LexError` whose typed cause is recorded in the
/// budget ([`Budget::take_violation`]).
pub fn tokenize_with_budget<'s>(
    src: &'s str,
    budget: &'s Budget,
) -> Result<(Vec<Token>, Vec<Comment>), LexError> {
    let mut lexer = Lexer::with_budget(src, budget);
    let mut tokens = Vec::new();
    tokenize_into(&mut lexer, &mut tokens)?;
    Ok((tokens, lexer.into_comments()))
}

/// Best-effort tokenization for the degraded fallback path: returns the
/// prefix of tokens produced before the first lexical error (if any) plus
/// the error itself. With a budget, a budget violation also stops the scan —
/// callers must consult [`Budget::take_violation`] to tell resource
/// exhaustion (reject) from a plain lexical error (degrade).
pub fn tokenize_lossy(
    src: &str,
    budget: Option<&Budget>,
) -> (Vec<Token>, Vec<Comment>, Option<LexError>) {
    let mut lexer = match budget {
        Some(b) => Lexer::with_budget(src, b),
        None => Lexer::new(src),
    };
    let mut tokens = Vec::new();
    let err = tokenize_into(&mut lexer, &mut tokens).err();
    (tokens, lexer.into_comments(), err)
}

/// The shared driver loop behind every `tokenize*` entry point.
fn tokenize_into(lexer: &mut Lexer<'_>, tokens: &mut Vec<Token>) -> Result<(), LexError> {
    let mut regex_allowed = true;
    // Brace-depth bookkeeping: when a `}` closes a template substitution we
    // must re-lex it as a template continuation.
    let mut brace_stack: Vec<bool> = Vec::new(); // true = template substitution
    loop {
        let tok = lexer.next_token(regex_allowed)?;
        let tok = match &tok.kind {
            TokenKind::Punct(Punct::LBrace) => {
                brace_stack.push(false);
                tok
            }
            TokenKind::Punct(Punct::RBrace) => {
                if brace_stack.pop() == Some(true) {
                    let cont = lexer.continue_template(tok.span.start)?;
                    if matches!(cont.kind, TokenKind::TemplateMiddle { .. }) {
                        brace_stack.push(true);
                    }
                    cont
                } else {
                    tok
                }
            }
            TokenKind::TemplateHead { .. } => {
                brace_stack.push(true);
                tok
            }
            _ => tok,
        };
        regex_allowed = tok.kind.allows_regex_after();
        let eof = tok.is_eof();
        tokens.push(tok);
        if eof {
            if brace_stack.contains(&true) {
                return Err(LexError {
                    msg: "unterminated template substitution".into(),
                    pos: lexer.pos(),
                });
            }
            return Ok(());
        }
    }
}

//! Control-flow flattening (paper §II-A, ref. \[23\]).
//!
//! Rewrites straight-line statement sequences into the obfuscator.io
//! dispatch shape: the statements move into the cases of a `switch` inside
//! an infinite `while` loop, executed in an order dictated by a shuffled
//! order-string:
//!
//! ```text
//! var _0xo = '2|0|1'.split('|'), _0xi = 0;
//! while (!![]) {
//!     switch (_0xo[_0xi++]) {
//!     case '0': ...; continue;
//!     ...
//!     }
//!     break;
//! }
//! ```

use jsdetect_ast::builder::*;
use jsdetect_ast::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Options for control-flow flattening.
#[derive(Debug, Clone)]
pub struct FlattenOptions {
    /// Minimum number of flattenable statements in a body.
    pub min_stmts: usize,
    /// Maximum number of statements to flatten in one body.
    pub max_stmts: usize,
    /// Flatten the top-level program body too (not only functions).
    pub include_top_level: bool,
}

impl Default for FlattenOptions {
    fn default() -> Self {
        FlattenOptions { min_stmts: 3, max_stmts: 64, include_top_level: true }
    }
}

/// Flattens eligible statement lists in place. Returns how many bodies
/// were flattened.
pub fn flatten_control_flow(
    program: &mut Program,
    rng: &mut StdRng,
    opts: &FlattenOptions,
) -> usize {
    let mut count = 0;
    // Function bodies first (visit before restructuring the top level).
    let mut body = std::mem::take(&mut program.body);
    for s in body.iter_mut() {
        count += flatten_in_stmt(s, rng, opts);
    }
    if opts.include_top_level {
        count += flatten_list(&mut body, rng, opts);
    }
    program.body = body;
    count
}

fn flatten_in_stmt(s: &mut Stmt, rng: &mut StdRng, opts: &FlattenOptions) -> usize {
    let mut count = 0;
    match s {
        Stmt::FunctionDecl(f) => {
            for st in f.body.iter_mut() {
                count += flatten_in_stmt(st, rng, opts);
            }
            count += flatten_list(&mut f.body, rng, opts);
        }
        Stmt::Expr { expr, .. } => count += flatten_in_expr(expr, rng, opts),
        Stmt::VarDecl { decls, .. } => {
            for d in decls.iter_mut() {
                if let Some(init) = &mut d.init {
                    count += flatten_in_expr(init, rng, opts);
                }
            }
        }
        Stmt::Block { body, .. } => {
            for st in body.iter_mut() {
                count += flatten_in_stmt(st, rng, opts);
            }
        }
        Stmt::If { consequent, alternate, .. } => {
            count += flatten_in_stmt(consequent, rng, opts);
            if let Some(alt) = alternate {
                count += flatten_in_stmt(alt, rng, opts);
            }
        }
        Stmt::For { body, .. }
        | Stmt::ForIn { body, .. }
        | Stmt::ForOf { body, .. }
        | Stmt::While { body, .. }
        | Stmt::DoWhile { body, .. }
        | Stmt::Labeled { body, .. }
        | Stmt::With { body, .. } => count += flatten_in_stmt(body, rng, opts),
        Stmt::Try { block, handler, finalizer, .. } => {
            for st in block.iter_mut() {
                count += flatten_in_stmt(st, rng, opts);
            }
            if let Some(h) = handler {
                for st in h.body.iter_mut() {
                    count += flatten_in_stmt(st, rng, opts);
                }
            }
            if let Some(fin) = finalizer {
                for st in fin.iter_mut() {
                    count += flatten_in_stmt(st, rng, opts);
                }
            }
        }
        _ => {}
    }
    count
}

fn flatten_in_expr(e: &mut Expr, rng: &mut StdRng, opts: &FlattenOptions) -> usize {
    let mut count = 0;
    match e {
        Expr::Function(f) => {
            for st in f.body.iter_mut() {
                count += flatten_in_stmt(st, rng, opts);
            }
            count += flatten_list(&mut f.body, rng, opts);
        }
        Expr::Arrow { body: ArrowBody::Block(stmts), .. } => {
            for st in stmts.iter_mut() {
                count += flatten_in_stmt(st, rng, opts);
            }
            count += flatten_list(stmts, rng, opts);
        }
        Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
            count += flatten_in_expr(callee, rng, opts);
            for a in args.iter_mut() {
                count += flatten_in_expr(a, rng, opts);
            }
        }
        Expr::Assign { value, .. } => count += flatten_in_expr(value, rng, opts),
        Expr::Object { props, .. } => {
            for p in props.iter_mut() {
                count += flatten_in_expr(&mut p.value, rng, opts);
            }
        }
        Expr::Array { elements, .. } => {
            for el in elements.iter_mut().flatten() {
                count += flatten_in_expr(el, rng, opts);
            }
        }
        _ => {}
    }
    count
}

/// Whether a statement can safely move into a dispatch case.
fn is_flattenable(s: &Stmt) -> bool {
    match s {
        // Lexical declarations would become case-scoped; function
        // declarations in cases have messy hoisting semantics.
        Stmt::VarDecl { kind, .. } => !kind.is_lexical(),
        Stmt::FunctionDecl(_) | Stmt::ClassDecl(_) => false,
        // Bare break/continue at body top level cannot occur in valid
        // function bodies, but labeled ones can target enclosing labels.
        Stmt::Break { .. } | Stmt::Continue { .. } => false,
        Stmt::Expr { .. }
        | Stmt::If { .. }
        | Stmt::Return { .. }
        | Stmt::Throw { .. }
        | Stmt::While { .. }
        | Stmt::DoWhile { .. }
        | Stmt::For { .. }
        | Stmt::ForIn { .. }
        | Stmt::ForOf { .. }
        | Stmt::Switch { .. }
        | Stmt::Try { .. }
        | Stmt::Block { .. } => true,
        _ => false,
    }
}

/// Flattens one statement list if eligible. Returns 1 if flattened.
fn flatten_list(body: &mut Vec<Stmt>, rng: &mut StdRng, opts: &FlattenOptions) -> usize {
    let skip = crate::string_obf::directive_count(body);
    // Partition: leading directives + function/class declarations stay out.
    let decls: Vec<usize> = (skip..body.len())
        .filter(|&i| matches!(body[i], Stmt::FunctionDecl(_) | Stmt::ClassDecl(_)))
        .collect();
    let flatten_idx: Vec<usize> = (skip..body.len()).filter(|i| !decls.contains(i)).collect();
    if flatten_idx.len() < opts.min_stmts || flatten_idx.len() > opts.max_stmts {
        return 0;
    }
    if flatten_idx.iter().any(|&i| !is_flattenable(&body[i])) {
        return 0;
    }

    // Extract in order.
    let mut extracted = Vec::new();
    let mut kept = Vec::new();
    for (i, s) in std::mem::take(body).into_iter().enumerate() {
        if flatten_idx.contains(&i) {
            extracted.push(s);
        } else {
            kept.push(s);
        }
    }

    let n = extracted.len();
    // Shuffle the case order; the order string lists execution order.
    let mut case_ids: Vec<usize> = (0..n).collect();
    case_ids.shuffle(rng);
    // case_ids[j] = the dispatch key of the j-th statement to execute.
    let order_string = case_ids.iter().map(|k| k.to_string()).collect::<Vec<_>>().join("|");

    let order_name = format!("_0x{:x}o", rng.gen_range(0x1000u32..0xFFFF));
    let idx_name = format!("_0x{:x}i", rng.gen_range(0x1000u32..0xFFFF));

    // var ORDER = 'a|b|c'.split('|'), IDX = 0;
    let order_decl = Stmt::VarDecl {
        kind: VarKind::Var,
        decls: vec![
            VarDeclarator {
                id: Pat::Ident(Ident::new(order_name.clone())),
                init: Some(method_call(str_lit(order_string), "split", vec![str_lit("|")])),
                span: Span::DUMMY,
            },
            VarDeclarator {
                id: Pat::Ident(Ident::new(idx_name.clone())),
                init: Some(num_lit(0.0)),
                span: Span::DUMMY,
            },
        ],
        span: Span::DUMMY,
    };

    // Cases in key order 0..n, each holding the statement whose execution
    // position maps to that key.
    let mut stmt_of_key: Vec<Option<Stmt>> = (0..n).map(|_| None).collect();
    for (exec_pos, stmt) in extracted.into_iter().enumerate() {
        stmt_of_key[case_ids[exec_pos]] = Some(stmt);
    }
    let cases: Vec<SwitchCase> = stmt_of_key
        .into_iter()
        .enumerate()
        .map(|(key, stmt)| SwitchCase {
            test: Some(str_lit(key.to_string())),
            body: vec![stmt.unwrap(), Stmt::Continue { label: None, span: Span::DUMMY }],
            span: Span::DUMMY,
        })
        .collect();

    // switch (ORDER[IDX++]) { ... }
    let discriminant = index(
        ident(order_name),
        Expr::Update {
            op: UpdateOp::Increment,
            prefix: false,
            arg: Box::new(ident(idx_name)),
            span: Span::DUMMY,
        },
    );
    let switch_stmt = Stmt::Switch { discriminant, cases, span: Span::DUMMY };

    // while (!![]) { switch ...; break; }
    let cond = unary(
        UnaryOp::Not,
        unary(UnaryOp::Not, Expr::Array { elements: vec![], span: Span::DUMMY }),
    );
    let loop_stmt =
        while_stmt(cond, block(vec![switch_stmt, Stmt::Break { label: None, span: Span::DUMMY }]));

    // Reassemble: directives, declarations, dispatcher.
    let mut out = Vec::new();
    let mut kept_iter = kept.into_iter();
    for _ in 0..skip {
        if let Some(s) = kept_iter.next() {
            out.push(s);
        }
    }
    out.push(order_decl);
    out.extend(kept_iter); // remaining function/class declarations
    out.push(loop_stmt);
    *body = out;
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;
    use rand::SeedableRng;

    fn run(src: &str) -> String {
        let mut prog = parse(src).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        flatten_control_flow(&mut prog, &mut rng, &FlattenOptions::default());
        to_minified(&prog)
    }

    #[test]
    fn flattens_top_level() {
        let out = run("a(); b(); c(); d();");
        assert!(out.contains("switch"), "{}", out);
        assert!(out.contains("while(!![])"), "{}", out);
        assert!(out.contains(".split('|')"), "{}", out);
        assert!(out.contains("continue;"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn order_string_has_all_indices() {
        let out = run("a(); b(); c(); d(); e();");
        let order = out.split('\'').nth(1).unwrap();
        let mut keys: Vec<&str> = order.split('|').collect();
        keys.sort_unstable();
        assert_eq!(keys, vec!["0", "1", "2", "3", "4"]);
    }

    #[test]
    fn flattens_function_bodies() {
        let out = run("function f() { one(); two(); three(); }");
        assert!(out.contains("switch"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn too_few_statements_untouched() {
        let out = run("a(); b();");
        assert!(!out.contains("switch"), "{}", out);
    }

    #[test]
    fn lexical_declarations_block_flattening() {
        let out = run("let a = 1; f(a); g(a); h(a);");
        assert!(!out.contains("switch"), "{}", out);
    }

    #[test]
    fn function_declarations_stay_outside_switch() {
        let out = run("helper(); function helper() {} a(); b(); c();");
        assert!(out.contains("switch"), "{}", out);
        // The declaration must not be inside a case body.
        let before_switch = out.split("switch").next().unwrap();
        assert!(before_switch.contains("function helper()"), "{}", out);
    }

    #[test]
    fn var_declarations_can_be_flattened() {
        let out = run("var a = 1; var b = 2; use(a, b); more(b);");
        assert!(out.contains("switch"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn returns_inside_functions_ok() {
        let out = run("function f(x) { var y = x * 2; log(y); return y; }");
        assert!(out.contains("switch"), "{}", out);
        assert!(out.contains("return"), "{}", out);
    }

    #[test]
    fn deterministic() {
        assert_eq!(run("a(); b(); c();"), run("a(); b(); c();"));
    }

    #[test]
    fn directive_stays_first() {
        let out = run("'use strict'; a(); b(); c();");
        assert!(out.starts_with("'use strict';"), "{}", out);
        assert!(out.contains("switch"), "{}", out);
    }
}

//! Streaming-core guarantees: quantile-estimate accuracy (property-tested
//! against exact quantiles over contrasting distributions) and live
//! snapshot consistency while writers are mid-record.

use jsdetect_obs::{bucket_index, Histogram};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Deterministic SplitMix64 — no RNG dependency, stable across runs.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// The exact `q`-quantile by the same rank convention the histogram uses
/// (`ceil(q·n)`-th smallest, 1-based).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil().max(1.0) as usize).min(sorted.len());
    sorted[rank - 1]
}

/// The one-bucket contract: with ~2× bucket resolution, the interpolated
/// estimate must land in the same log2 bucket as the exact quantile.
fn assert_within_one_bucket(samples: &[u64], label: &str) {
    let mut h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    for q in [0.5, 0.9, 0.99] {
        let exact = exact_quantile(&sorted, q);
        let est = h.quantile_interp(q);
        assert!(est.is_finite(), "{label} q={q}: non-finite estimate");
        assert_eq!(
            bucket_index(est as u64),
            bucket_index(exact),
            "{label} q={q}: estimate {est} not in exact quantile {exact}'s bucket"
        );
        assert!(
            est as u64 >= h.min() && est as u64 <= h.max(),
            "{label} q={q}: estimate {est} outside observed [{}, {}]",
            h.min(),
            h.max()
        );
    }
}

#[test]
fn quantiles_within_one_bucket_uniform() {
    let mut rng = SplitMix64(0xC0FFEE);
    for trial in 0..50 {
        let n = 100 + (trial * 37) % 900;
        let samples: Vec<u64> = (0..n).map(|_| 1 + (rng.f64() * 1e6) as u64).collect();
        assert_within_one_bucket(&samples, &format!("uniform[{trial}]"));
    }
}

#[test]
fn quantiles_within_one_bucket_exponential() {
    let mut rng = SplitMix64(0xDECAF);
    for trial in 0..50 {
        let n = 100 + (trial * 53) % 900;
        let samples: Vec<u64> = (0..n)
            .map(|_| {
                // Inverse-CDF exponential with mean 50µs, in ns.
                let u = rng.f64().max(1e-12);
                1 + (-u.ln() * 50_000.0) as u64
            })
            .collect();
        assert_within_one_bucket(&samples, &format!("exponential[{trial}]"));
    }
}

#[test]
fn quantiles_within_one_bucket_adversarial_spike() {
    let mut rng = SplitMix64(0xBAD5EED);
    for trial in 0..50 {
        // A tight body with a far-tail spike sized to straddle the p99
        // boundary — the case a bucket-upper-bound estimator gets a whole
        // bucket wrong.
        let body = 500 + (trial * 13) % 400;
        let spikes = 1 + (trial % 7);
        let mut samples: Vec<u64> = (0..body).map(|_| 900 + (rng.f64() * 200.0) as u64).collect();
        for _ in 0..spikes {
            samples.push(1 << (20 + trial % 8));
        }
        assert_within_one_bucket(&samples, &format!("spike[{trial}]"));
    }
}

/// Snapshots taken while writer threads are mid-record must never show
/// torn state: counters are monotone across snapshots, and every
/// histogram's bucket sum is at least its count (`count` is published
/// last with Release, read first with Acquire).
#[test]
fn concurrent_snapshot_while_writing_is_consistent() {
    // Serialized against other obs integration tests via the registry
    // being process-global: use a dedicated counter namespace instead of
    // reset() so parallel test binaries can't interfere mid-run.
    jsdetect_obs::set_enabled(true);
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let _obs = jsdetect_obs::ScopedCollector::new();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let _s = jsdetect_obs::span("stream_concurrent");
                    jsdetect_obs::counter_add("stream_concurrent_ctr", 1);
                    jsdetect_obs::observe("stream_concurrent_hist", 1 + (w * 1000 + i % 100));
                    i += 1;
                }
                i
            })
        })
        .collect();

    let mut last_ctr = 0u64;
    let mut last_span = 0u64;
    let mut snaps = 0u64;
    let errors = Arc::new(Mutex::new(Vec::<String>::new()));
    while snaps < 200 {
        let snap = jsdetect_obs::snapshot();
        let ctr = snap.counter("stream_concurrent_ctr");
        if ctr < last_ctr {
            errors.lock().unwrap().push(format!("counter went backwards: {last_ctr} -> {ctr}"));
        }
        last_ctr = ctr;
        if let Some(s) = snap.span("stream_concurrent") {
            if s.count < last_span {
                errors
                    .lock()
                    .unwrap()
                    .push(format!("span count went backwards: {last_span} -> {}", s.count));
            }
            last_span = s.count;
            let bucket_sum: u64 = s.latency.bucket_counts().iter().sum();
            if bucket_sum < s.latency.count() {
                errors.lock().unwrap().push(format!(
                    "torn span hist: bucket sum {bucket_sum} < count {}",
                    s.latency.count()
                ));
            }
        }
        if let Some(h) = snap.hist("stream_concurrent_hist") {
            let bucket_sum: u64 = h.bucket_counts().iter().sum();
            if bucket_sum < h.count() {
                errors.lock().unwrap().push(format!(
                    "torn value hist: bucket sum {bucket_sum} < count {}",
                    h.count()
                ));
            }
            if h.count() > 0 && (h.min() > h.max()) {
                errors.lock().unwrap().push(format!("min {} > max {}", h.min(), h.max()));
            }
        }
        snaps += 1;
    }
    stop.store(true, Ordering::Relaxed);
    let written: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let errors = errors.lock().unwrap();
    assert!(errors.is_empty(), "live-snapshot violations: {:?}", &errors[..errors.len().min(5)]);

    // Quiescent: the final snapshot accounts for every record exactly.
    let snap = jsdetect_obs::snapshot();
    assert_eq!(snap.counter("stream_concurrent_ctr"), written);
    assert_eq!(snap.span("stream_concurrent").map(|s| s.count), Some(written));
    assert_eq!(snap.hist("stream_concurrent_hist").map(Histogram::count), Some(written));
    jsdetect_obs::set_enabled(false);
}

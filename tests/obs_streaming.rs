//! Integration tests for the streaming observability layer against the
//! real pipeline: exported-name hygiene (every metric name that reaches
//! JSONL or Prometheus output obeys the registered-name grammar, including
//! the runtime-composed `guard/<kind>` counters), and the structure of the
//! Chrome trace export end to end.

use jsdetect_suite::detector::{analyze_many, analyze_many_guarded, AnalysisConfig};
use jsdetect_suite::obs::{self, names};
use std::sync::Mutex;

/// The telemetry registry is process-global; tests that enable/reset it
/// must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const FIXTURE: &str = "function add(a, b) { return a + b; }\n\
    var total = 0;\n\
    for (var i = 0; i < 10; i++) { total = add(total, i); }\n\
    console.log(total);\n";

/// Runs a batch that exercises the happy path, a parse failure, and a
/// guard rejection, so the snapshot carries spans, static counters, a
/// runtime-composed `guard/<kind>` counter, a gauge, and a histogram.
fn representative_snapshot() -> obs::Snapshot {
    obs::set_enabled(true);
    obs::reset();
    let bomb = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
    let srcs = [FIXTURE, "var ;;; broken ((", bomb.as_str()];
    let out = analyze_many_guarded(&srcs, &AnalysisConfig::default());
    assert_eq!(out.len(), 3);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    snap
}

#[test]
fn every_exported_name_is_grammatical() {
    let _g = locked();
    let snap = representative_snapshot();

    // The run must actually have produced a composed guard counter, or
    // the test would vacuously pass on the static vocabulary alone.
    assert!(
        snap.counters.iter().any(|(name, _)| name.starts_with("guard/")),
        "expected a guard/<kind> counter from the rejected script; got {:?}",
        snap.counters.iter().map(|(n, _)| n.as_str()).collect::<Vec<_>>()
    );

    for s in &snap.spans {
        assert!(names::is_valid_metric_name(&s.path), "span path {:?} violates grammar", s.path);
    }
    for name in snap.counters.iter().map(|(n, _)| n).chain(snap.gauges.iter().map(|(n, _)| n)) {
        assert!(names::is_valid_metric_name(name), "metric name {:?} violates grammar", name);
    }
    for (name, _) in &snap.hists {
        assert!(names::is_valid_metric_name(name), "histogram name {:?} violates grammar", name);
    }

    // Every name that reaches the JSONL export must satisfy the grammar.
    let mut jsonl_names = 0usize;
    for line in obs::to_jsonl(&snap).lines() {
        let v: serde_json::JsonValue = serde_json::from_str(line).expect("JSONL line parses");
        for key in ["path", "name"] {
            if let Some(serde_json::JsonValue::Str(name)) = v.get(key) {
                assert!(
                    names::is_valid_metric_name(name),
                    "JSONL-exported name {:?} violates grammar",
                    name
                );
                jsonl_names += 1;
            }
        }
    }
    assert!(jsonl_names > 10, "JSONL export suspiciously empty ({} names)", jsonl_names);

    // Prometheus metric names: `jsdetect_` prefix, then [a-z0-9_] only.
    let mut prom_names = 0usize;
    for line in obs::render_prometheus(&snap).lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let name = line.split(['{', ' ']).next().unwrap();
        assert!(
            name.strip_prefix("jsdetect_").is_some_and(|rest| {
                !rest.is_empty()
                    && rest
                        .bytes()
                        .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
            }),
            "prometheus metric name {:?} is malformed (line {:?})",
            name,
            line
        );
        prom_names += 1;
    }
    assert!(prom_names > 10, "prometheus export suspiciously empty ({} samples)", prom_names);
}

#[test]
fn chrome_trace_export_parses_with_expected_structure() {
    let _g = locked();
    obs::set_enabled(true);
    obs::reset();
    let out = analyze_many(&[FIXTURE, FIXTURE, FIXTURE]);
    assert!(out.iter().all(Option::is_some));
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let trace = obs::render_chrome_trace(&snap);
    let v: serde_json::JsonValue = serde_json::from_str(&trace).expect("trace JSON parses");
    assert_eq!(
        v.get("displayTimeUnit"),
        Some(&serde_json::JsonValue::Str("ms".to_string())),
        "trace must declare ms display units"
    );
    let events = v.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");
    assert!(!events.is_empty());

    let (mut n_meta, mut n_complete) = (0usize, 0usize);
    let mut span_names = Vec::new();
    for ev in events {
        let ph = match ev.get("ph") {
            Some(serde_json::JsonValue::Str(ph)) => ph.as_str(),
            other => panic!("event without string ph: {:?}", other),
        };
        assert!(matches!(ph, "M" | "X" | "C"), "unexpected event phase {:?}", ph);
        for key in ["name", "pid", "tid"] {
            assert!(ev.get(key).is_some(), "{} event missing {:?}", ph, key);
        }
        match ph {
            "M" => n_meta += 1,
            "X" => {
                n_complete += 1;
                assert!(ev.get("ts").is_some() && ev.get("dur").is_some());
                if let Some(serde_json::JsonValue::Str(name)) = ev.get("name") {
                    span_names.push(name.clone());
                }
            }
            _ => {}
        }
    }
    assert!(n_meta >= 2, "expected process + thread name metadata, saw {}", n_meta);
    assert!(n_complete >= 3, "expected complete span events, saw {}", n_complete);
    assert!(span_names.iter().any(|n| n == "analyze"));
    assert!(span_names.iter().any(|n| n == "analyze/parse"));

    // Self-time attribution is conservative: every nanosecond belongs to
    // exactly one span, so the self-time total equals the root spans' total.
    let selfs = obs::self_times(&snap);
    let self_sum: u64 = selfs.iter().map(|s| s.self_ns).sum();
    let root_sum: u64 =
        snap.spans.iter().filter(|s| !s.path.contains('/')).map(|s| s.total_ns).sum();
    assert_eq!(self_sum, root_sum, "self-time must partition the root spans' wall time");
    // Hottest-first ordering.
    for pair in selfs.windows(2) {
        assert!(pair[0].self_ns >= pair[1].self_ns);
    }
}

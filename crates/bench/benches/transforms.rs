//! Per-technique transformation throughput — the cost of building the
//! paper's ground-truth corpora (21,000 scripts × 10 techniques).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jsdetect_bench::fixture_script;
use jsdetect_transform::{apply, apply_packer, Technique};

fn bench_transforms(c: &mut Criterion) {
    let src = fixture_script();
    let mut group = c.benchmark_group("transforms");
    group.throughput(Throughput::Bytes(src.len() as u64));

    for t in Technique::ALL {
        group.bench_function(t.as_str(), |b| {
            b.iter(|| apply(std::hint::black_box(&src), &[t], 7).unwrap())
        });
    }
    group.bench_function("packer", |b| {
        b.iter(|| apply_packer(std::hint::black_box(&src), 7).unwrap())
    });
    group.bench_function("combo_obfuscator_io_style", |b| {
        b.iter(|| {
            apply(
                std::hint::black_box(&src),
                &[
                    Technique::GlobalArray,
                    Technique::ControlFlowFlattening,
                    Technique::IdentifierObfuscation,
                    Technique::MinificationSimple,
                ],
                7,
            )
            .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_transforms
}
criterion_main!(benches);

//! The pre-atom, `String`-allocating scanner, kept verbatim as a
//! differential oracle.
//!
//! This is the scanner as it stood before the zero-copy/interned front end
//! (PR 7): per-token `String` payloads, char-oriented dispatch, no byte
//! class table. `tests/frontend_differential.rs` runs it side by side with
//! the production [`crate::Lexer`] over the generated and chaos corpora and
//! asserts identical token-kind streams (with atoms resolved back to
//! strings). It is compiled unconditionally — like `jsdetect_ml::reference`
//! — so the oracle cannot silently rot.
//!
//! Budget support is stripped: the oracle is only ever used for equivalence
//! checks, never inside the guarded pipeline.

use crate::token::{Kw, Punct};
use crate::LexError;
use jsdetect_ast::Span;

/// Token payload mirroring the pre-atom `TokenKind` (owned strings).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)]
pub enum RefTokenKind {
    Ident(String),
    Keyword(Kw),
    Num(f64),
    BigInt(String),
    Str(String),
    PrivateName(String),
    Regex { pattern: String, flags: String },
    TemplateNoSub { cooked: String, raw: String },
    TemplateHead { cooked: String, raw: String },
    TemplateMiddle { cooked: String, raw: String },
    TemplateTail { cooked: String, raw: String },
    Punct(Punct),
    Eof,
}

impl RefTokenKind {
    fn allows_regex_after(&self) -> bool {
        match self {
            RefTokenKind::Ident(_)
            | RefTokenKind::Num(_)
            | RefTokenKind::BigInt(_)
            | RefTokenKind::Str(_)
            | RefTokenKind::PrivateName(_)
            | RefTokenKind::Regex { .. }
            | RefTokenKind::TemplateNoSub { .. }
            | RefTokenKind::TemplateTail { .. } => false,
            RefTokenKind::Keyword(kw) => {
                !matches!(kw, Kw::This | Kw::Super | Kw::Null | Kw::True | Kw::False)
            }
            RefTokenKind::Punct(p) => {
                !matches!(p, Punct::RParen | Punct::RBracket | Punct::PlusPlus | Punct::MinusMinus)
            }
            _ => true,
        }
    }
}

/// A token produced by the reference scanner.
#[derive(Debug, Clone, PartialEq)]
pub struct RefToken {
    /// Token payload.
    pub kind: RefTokenKind,
    /// Byte range in the source.
    pub span: Span,
    /// Whether a line terminator preceded the token.
    pub newline_before: bool,
}

struct RefLexer<'s> {
    src: &'s str,
    pos: usize,
}

impl<'s> RefLexer<'s> {
    fn new(src: &'s str) -> Self {
        RefLexer { src, pos: 0 }
    }

    fn bytes(&self) -> &[u8] {
        self.src.as_bytes()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes().get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes().get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn peek_char(&self) -> Option<char> {
        self.src[self.pos..].chars().next()
    }

    fn bump_char(&mut self) -> Option<char> {
        let c = self.peek_char()?;
        self.pos += c.len_utf8();
        Some(c)
    }

    fn err(&self, msg: impl Into<String>) -> LexError {
        LexError { msg: msg.into(), pos: self.pos as u32 }
    }

    fn skip_trivia(&mut self) -> Result<bool, LexError> {
        let mut newline = false;
        loop {
            match self.peek() {
                Some(b' ') | Some(b'\t') | Some(0x0b) | Some(0x0c) => {
                    self.pos += 1;
                }
                Some(b'\n') | Some(b'\r') => {
                    newline = true;
                    self.pos += 1;
                }
                Some(b'/') if self.peek_at(1) == Some(b'/') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' || b == b'\r' {
                            break;
                        }
                        self.pos += 1;
                    }
                }
                Some(b'/') if self.peek_at(1) == Some(b'*') => {
                    self.pos += 2;
                    loop {
                        match self.peek() {
                            None => return Err(self.err("unterminated block comment")),
                            Some(b'*') if self.peek_at(1) == Some(b'/') => {
                                self.pos += 2;
                                break;
                            }
                            Some(b'\n') | Some(b'\r') => {
                                newline = true;
                                self.pos += 1;
                            }
                            _ => {
                                self.pos += 1;
                            }
                        }
                    }
                }
                Some(b) if b >= 0x80 => {
                    let c = self.peek_char().unwrap();
                    if c == '\u{2028}' || c == '\u{2029}' {
                        newline = true;
                        self.pos += c.len_utf8();
                    } else if c.is_whitespace() {
                        self.pos += c.len_utf8();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        Ok(newline)
    }

    fn next_token(&mut self, regex_allowed: bool) -> Result<RefToken, LexError> {
        let newline_before = self.skip_trivia()?;
        let start = self.pos as u32;
        let kind = match self.peek() {
            None => RefTokenKind::Eof,
            Some(b) => match b {
                b'0'..=b'9' => self.lex_number()?,
                b'"' | b'\'' => self.lex_string()?,
                b'`' => self.lex_template_start()?,
                b'/' if regex_allowed => self.lex_regex()?,
                c if is_ident_start_byte(c) => self.lex_ident()?,
                _ if b >= 0x80 => {
                    let c = self.peek_char().unwrap();
                    if is_ident_start_char(c) {
                        self.lex_ident()?
                    } else {
                        return Err(self.err(format!("unexpected character `{}`", c)));
                    }
                }
                b'.' if matches!(self.peek_at(1), Some(b'0'..=b'9')) => self.lex_number()?,
                b'#' => self.lex_private_name()?,
                _ => self.lex_punct()?,
            },
        };
        Ok(RefToken { kind, span: Span::new(start, self.pos as u32), newline_before })
    }

    fn continue_template(&mut self, rbrace_start: u32) -> Result<RefToken, LexError> {
        self.pos = rbrace_start as usize;
        debug_assert_eq!(self.peek(), Some(b'}'));
        self.pos += 1; // consume `}`
        let start = rbrace_start;
        let (cooked, raw, is_tail) = self.scan_template_chars()?;
        let kind = if is_tail {
            RefTokenKind::TemplateTail { cooked, raw }
        } else {
            RefTokenKind::TemplateMiddle { cooked, raw }
        };
        Ok(RefToken { kind, span: Span::new(start, self.pos as u32), newline_before: false })
    }

    fn lex_private_name(&mut self) -> Result<RefTokenKind, LexError> {
        let hash = self.pos;
        self.pos += 1;
        let starts_ident = match self.peek() {
            Some(b'\\') => self.peek_at(1) == Some(b'u'),
            Some(b) if b < 0x80 => b.is_ascii_alphabetic() || b == b'$' || b == b'_',
            Some(_) => self.peek_char().is_some_and(is_ident_start_char),
            None => false,
        };
        if !starts_ident {
            self.pos = hash;
            return Err(self.err("unexpected character `#`"));
        }
        match self.lex_ident()? {
            RefTokenKind::Ident(s) => Ok(RefTokenKind::PrivateName(s)),
            RefTokenKind::Keyword(kw) => Ok(RefTokenKind::PrivateName(kw.as_str().to_string())),
            _ => unreachable!("lex_ident yields only Ident/Keyword"),
        }
    }

    fn lex_ident(&mut self) -> Result<RefTokenKind, LexError> {
        let start = self.pos;
        let mut has_escape = false;
        let mut name = String::new();
        loop {
            match self.peek() {
                Some(b'\\') if self.peek_at(1) == Some(b'u') => {
                    has_escape = true;
                    self.pos += 2;
                    let c = self.lex_unicode_escape_body()?;
                    name.push(c);
                }
                Some(b) if is_ident_part_byte(b) => {
                    name.push(b as char);
                    self.pos += 1;
                }
                Some(b) if b >= 0x80 => {
                    let c = self.peek_char().unwrap();
                    if is_ident_part_char(c) {
                        name.push(c);
                        self.pos += c.len_utf8();
                    } else {
                        break;
                    }
                }
                _ => break,
            }
        }
        if name.is_empty() {
            self.pos = start;
            return Err(self.err("empty identifier"));
        }
        if !has_escape {
            if let Some(kw) = Kw::lookup(&name) {
                return Ok(RefTokenKind::Keyword(kw));
            }
        }
        Ok(RefTokenKind::Ident(name))
    }

    fn lex_unicode_escape_body(&mut self) -> Result<char, LexError> {
        // Positioned after `\u`.
        if self.peek() == Some(b'{') {
            self.pos += 1;
            let mut v: u32 = 0;
            let mut digits = 0;
            while let Some(b) = self.peek() {
                if b == b'}' {
                    break;
                }
                let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad unicode escape"))?;
                v = v.wrapping_mul(16).wrapping_add(d);
                digits += 1;
                self.pos += 1;
            }
            if self.peek() != Some(b'}') || digits == 0 {
                return Err(self.err("unterminated unicode escape"));
            }
            self.pos += 1;
            char::from_u32(v).ok_or_else(|| self.err("invalid code point"))
        } else {
            let mut v: u32 = 0;
            for _ in 0..4 {
                let b = self.peek().ok_or_else(|| self.err("truncated unicode escape"))?;
                let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad unicode escape"))?;
                v = v * 16 + d;
                self.pos += 1;
            }
            char::from_u32(v).ok_or_else(|| self.err("invalid code point"))
        }
    }

    fn lex_number(&mut self) -> Result<RefTokenKind, LexError> {
        let start = self.pos;
        let b0 = self.peek().unwrap();
        if b0 == b'0' {
            match self.peek_at(1) {
                Some(b'x') | Some(b'X') => return self.lex_radix_number(16, 2),
                Some(b'o') | Some(b'O') => return self.lex_radix_number(8, 2),
                Some(b'b') | Some(b'B') => return self.lex_radix_number(2, 2),
                Some(b'0'..=b'7') => {
                    // Legacy octal: 0123. If it contains 8/9 it is decimal.
                    let mut p = self.pos + 1;
                    let mut octal = true;
                    while let Some(&d) = self.bytes().get(p) {
                        match d {
                            b'0'..=b'7' => p += 1,
                            b'8' | b'9' => {
                                octal = false;
                                p += 1;
                            }
                            _ => break,
                        }
                    }
                    if octal && !matches!(self.bytes().get(p), Some(b'.') | Some(b'e') | Some(b'E'))
                    {
                        self.pos += 1;
                        return self.lex_radix_number(8, 0);
                    }
                }
                _ => {}
            }
        }
        let mut saw_digit = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => {
                    saw_digit = true;
                    self.pos += 1;
                }
                b'_' => {
                    self.pos += 1;
                }
                _ => break,
            }
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while let Some(b) = self.peek() {
                match b {
                    b'0'..=b'9' => {
                        saw_digit = true;
                        self.pos += 1;
                    }
                    b'_' => {
                        self.pos += 1;
                    }
                    _ => break,
                }
            }
        }
        if !saw_digit {
            return Err(self.err("malformed number"));
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            let save = self.pos;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            let mut exp_digits = false;
            while let Some(b'0'..=b'9') = self.peek() {
                exp_digits = true;
                self.pos += 1;
            }
            if !exp_digits {
                self.pos = save;
            }
        }
        if self.peek() == Some(b'n') {
            // BigInt suffix: keep the raw digits exact.
            let raw = self.src[start..self.pos].to_string();
            self.pos += 1;
            return Ok(RefTokenKind::BigInt(raw));
        }
        let text: String = self.src[start..self.pos].chars().filter(|c| *c != '_').collect();
        let v = text.parse::<f64>().map_err(|_| self.err("malformed number"))?;
        Ok(RefTokenKind::Num(v))
    }

    fn lex_radix_number(&mut self, radix: u32, skip: usize) -> Result<RefTokenKind, LexError> {
        let raw_start = if skip == 0 { self.pos - 1 } else { self.pos };
        self.pos += skip;
        let mut v: f64 = 0.0;
        let mut digits = 0;
        while let Some(b) = self.peek() {
            if b == b'_' {
                self.pos += 1;
                continue;
            }
            match (b as char).to_digit(radix) {
                Some(d) => {
                    v = v * radix as f64 + d as f64;
                    digits += 1;
                    self.pos += 1;
                }
                None => break,
            }
        }
        if digits == 0 {
            return Err(self.err("missing digits in number"));
        }
        if self.peek() == Some(b'n') {
            let raw = self.src[raw_start..self.pos].to_string();
            self.pos += 1;
            return Ok(RefTokenKind::BigInt(raw));
        }
        Ok(RefTokenKind::Num(v))
    }

    fn lex_string(&mut self) -> Result<RefTokenKind, LexError> {
        let quote = self.bump().unwrap();
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string literal")),
                Some(b'\n') | Some(b'\r') => return Err(self.err("unterminated string literal")),
                Some(b) if b == quote => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.lex_escape_into(&mut value)?;
                }
                Some(b) if b < 0x80 => {
                    value.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.bump_char().unwrap();
                    value.push(c);
                }
            }
        }
        Ok(RefTokenKind::Str(value))
    }

    fn lex_escape_into(&mut self, out: &mut String) -> Result<(), LexError> {
        let c = self.bump_char().ok_or_else(|| self.err("truncated escape"))?;
        match c {
            'n' => out.push('\n'),
            't' => out.push('\t'),
            'r' => out.push('\r'),
            'b' => out.push('\u{8}'),
            'f' => out.push('\u{c}'),
            'v' => out.push('\u{b}'),
            '0' if !matches!(self.peek(), Some(b'0'..=b'9')) => out.push('\0'),
            'x' => {
                let mut v = 0u32;
                for _ in 0..2 {
                    let b = self.peek().ok_or_else(|| self.err("truncated hex escape"))?;
                    let d = (b as char).to_digit(16).ok_or_else(|| self.err("bad hex escape"))?;
                    v = v * 16 + d;
                    self.pos += 1;
                }
                out.push(char::from_u32(v).unwrap());
            }
            'u' => {
                let c = self.lex_unicode_escape_body()?;
                out.push(c);
            }
            '\n' => {}
            '\r' => {
                if self.peek() == Some(b'\n') {
                    self.pos += 1;
                }
            }
            '0'..='7' => {
                // Legacy octal escape: up to 3 octal digits.
                let mut v = c.to_digit(8).unwrap();
                for _ in 0..2 {
                    match self.peek() {
                        Some(b @ b'0'..=b'7') if v * 8 + ((b - b'0') as u32) <= 255 => {
                            v = v * 8 + (b - b'0') as u32;
                            self.pos += 1;
                        }
                        _ => break,
                    }
                }
                out.push(char::from_u32(v).unwrap());
            }
            other => out.push(other),
        }
        Ok(())
    }

    fn lex_template_start(&mut self) -> Result<RefTokenKind, LexError> {
        self.pos += 1; // backtick
        let (cooked, raw, is_tail) = self.scan_template_chars()?;
        Ok(if is_tail {
            RefTokenKind::TemplateNoSub { cooked, raw }
        } else {
            RefTokenKind::TemplateHead { cooked, raw }
        })
    }

    fn scan_template_chars(&mut self) -> Result<(String, String, bool), LexError> {
        let raw_start = self.pos;
        let mut cooked = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated template literal")),
                Some(b'`') => {
                    let raw = self.src[raw_start..self.pos].to_string();
                    self.pos += 1;
                    return Ok((cooked, raw, true));
                }
                Some(b'$') if self.peek_at(1) == Some(b'{') => {
                    let raw = self.src[raw_start..self.pos].to_string();
                    self.pos += 2;
                    return Ok((cooked, raw, false));
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.lex_escape_into(&mut cooked)?;
                }
                Some(b) if b < 0x80 => {
                    cooked.push(b as char);
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.bump_char().unwrap();
                    cooked.push(c);
                }
            }
        }
    }

    fn lex_regex(&mut self) -> Result<RefTokenKind, LexError> {
        self.pos += 1; // leading slash
        let pat_start = self.pos;
        let mut in_class = false;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated regex literal")),
                Some(b'\n') | Some(b'\r') => return Err(self.err("unterminated regex literal")),
                Some(b'\\') => {
                    self.pos += 1;
                    if matches!(self.peek(), Some(b'\n') | Some(b'\r')) {
                        return Err(self.err("unterminated regex literal"));
                    }
                    self.bump_char();
                }
                Some(b'[') => {
                    in_class = true;
                    self.pos += 1;
                }
                Some(b']') => {
                    in_class = false;
                    self.pos += 1;
                }
                Some(b'/') if !in_class => break,
                Some(b) if b < 0x80 => {
                    self.pos += 1;
                }
                Some(_) => {
                    self.bump_char();
                }
            }
        }
        let pattern = self.src[pat_start..self.pos].to_string();
        self.pos += 1; // closing slash
        let flag_start = self.pos;
        while let Some(b) = self.peek() {
            if is_ident_part_byte(b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        let flags = self.src[flag_start..self.pos].to_string();
        Ok(RefTokenKind::Regex { pattern, flags })
    }

    fn lex_punct(&mut self) -> Result<RefTokenKind, LexError> {
        use Punct::*;
        let rest = &self.bytes()[self.pos..];
        // Longest-match over multi-byte punctuators.
        const TABLE: &[(&[u8], Punct)] = &[
            (b">>>=", UShrEq),
            (b"...", Ellipsis),
            (b"===", EqEqEq),
            (b"!==", NotEqEq),
            (b"**=", StarStarEq),
            (b"<<=", ShlEq),
            (b">>=", ShrEq),
            (b">>>", UShr),
            (b"&&=", AmpAmpEq),
            (b"||=", PipePipeEq),
            (b"??=", QuestionQuestionEq),
            (b"=>", Arrow),
            (b"==", EqEq),
            (b"!=", NotEq),
            (b"<=", LtEq),
            (b">=", GtEq),
            (b"&&", AmpAmp),
            (b"||", PipePipe),
            (b"??", QuestionQuestion),
            (b"++", PlusPlus),
            (b"--", MinusMinus),
            (b"+=", PlusEq),
            (b"-=", MinusEq),
            (b"*=", StarEq),
            (b"/=", SlashEq),
            (b"%=", PercentEq),
            (b"&=", AmpEq),
            (b"|=", PipeEq),
            (b"^=", CaretEq),
            (b"**", StarStar),
            (b"<<", Shl),
            (b">>", Shr),
            (b"?.", OptionalChain),
            (b"(", LParen),
            (b")", RParen),
            (b"[", LBracket),
            (b"]", RBracket),
            (b"{", LBrace),
            (b"}", RBrace),
            (b";", Semi),
            (b",", Comma),
            (b".", Dot),
            (b":", Colon),
            (b"?", Question),
            (b"+", Plus),
            (b"-", Minus),
            (b"*", Star),
            (b"/", Slash),
            (b"%", Percent),
            (b"<", Lt),
            (b">", Gt),
            (b"=", Eq),
            (b"&", Amp),
            (b"|", Pipe),
            (b"^", Caret),
            (b"!", Bang),
            (b"~", Tilde),
        ];
        for (text, p) in TABLE {
            if rest.starts_with(text) {
                // `?.3` must lex as `?` then `.3`.
                if *p == OptionalChain && matches!(rest.get(2), Some(b'0'..=b'9')) {
                    continue;
                }
                self.pos += text.len();
                return Ok(RefTokenKind::Punct(*p));
            }
        }
        Err(self.err(format!(
            "unexpected character `{}`",
            self.peek_char().map(String::from).unwrap_or_default()
        )))
    }
}

fn is_ident_start_byte(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'$' || b == b'_' || b == b'\\'
}

fn is_ident_part_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'$' || b == b'_'
}

fn is_ident_start_char(c: char) -> bool {
    c.is_alphabetic() || c == '$' || c == '_'
}

fn is_ident_part_char(c: char) -> bool {
    c.is_alphanumeric() || c == '$' || c == '_' || c == '\u{200c}' || c == '\u{200d}'
}

/// Tokenizes an entire source with the reference scanner, mirroring
/// [`crate::tokenize`] (same prev-token regex heuristic, same template
/// brace-depth driver).
pub fn tokenize_reference(src: &str) -> Result<Vec<RefToken>, LexError> {
    let mut lexer = RefLexer::new(src);
    let mut tokens = Vec::new();
    let mut regex_allowed = true;
    let mut brace_stack: Vec<bool> = Vec::new(); // true = template substitution
    loop {
        let tok = lexer.next_token(regex_allowed)?;
        let tok = match &tok.kind {
            RefTokenKind::Punct(Punct::LBrace) => {
                brace_stack.push(false);
                tok
            }
            RefTokenKind::Punct(Punct::RBrace) => {
                if brace_stack.pop() == Some(true) {
                    let cont = lexer.continue_template(tok.span.start)?;
                    if matches!(cont.kind, RefTokenKind::TemplateMiddle { .. }) {
                        brace_stack.push(true);
                    }
                    cont
                } else {
                    tok
                }
            }
            RefTokenKind::TemplateHead { .. } => {
                brace_stack.push(true);
                tok
            }
            _ => tok,
        };
        regex_allowed = tok.kind.allows_regex_after();
        let eof = matches!(tok.kind, RefTokenKind::Eof);
        tokens.push(tok);
        if eof {
            if brace_stack.contains(&true) {
                return Err(LexError {
                    msg: "unterminated template substitution".into(),
                    pos: lexer.pos as u32,
                });
            }
            return Ok(tokens);
        }
    }
}

//! `jsdetect-cli` — train, persist, and apply the detectors from the
//! command line.
//!
//! ```sh
//! # Train on a synthetic ground-truth corpus and save the model:
//! jsdetect-cli train --n 240 --seed 42 --model model.json
//!
//! # Classify JavaScript files (level 1 + level 2):
//! jsdetect-cli classify --model model.json a.js b.js
//!
//! # Transform a file (ground-truth tooling):
//! jsdetect-cli transform --technique identifier_obfuscation a.js
//!
//! # Explain which obfuscation signatures a file exhibits:
//! jsdetect-cli lint a.js
//! jsdetect-cli lint --emit-diagnostics json a.js
//!
//! # Run the analysis front-end with telemetry (spans, counters, histograms):
//! jsdetect-cli analyze --telemetry summary examples/
//! jsdetect-cli analyze --telemetry jsonl --telemetry-out telemetry.jsonl a.js
//!
//! # Export a Perfetto-loadable Chrome trace and summarize hot spans:
//! jsdetect-cli analyze --trace-out trace.json examples/
//! jsdetect-cli trace trace.json --top 10
//!
//! # Incremental rescans: verdicts for unchanged bytes replay from a
//! # content-addressed cache instead of re-running the front-end:
//! jsdetect-cli analyze --cache-dir .jsdetect-cache examples/
//! jsdetect-cli cache stats --cache-dir .jsdetect-cache
//! ```

use jsdetect_suite::detector::{
    classify_many_cached, train_pipeline, AnalysisConfig, DetectorConfig, Technique,
    TrainedDetectors, DEFAULT_THRESHOLD,
};
use jsdetect_suite::lint::LintRunner;

fn usage() -> ! {
    eprintln!(
        "usage:\n  jsdetect-cli train --model <out.json> [--n 240] [--seed 42]\n  \
         jsdetect-cli classify --model <model.json> <file.js>...\n  \
         jsdetect-cli transform --technique <name> [--seed 42] <file.js>\n  \
         jsdetect-cli lint [--emit-diagnostics json] <file.js>...\n  \
         jsdetect-cli analyze [--telemetry summary|jsonl|prometheus] [--telemetry-out <file>] \
         [--trace-out <trace.json>] \
         [--limits wild|trusted|interactive] [--keep-going|--fail-fast] \
         [--quarantine-out <file>] [--strict] \
         [--cache-dir <dir>] [--cache-readonly] <file.js|dir>...\n  \
         jsdetect-cli trace [--top 20] <trace.json>\n  \
         jsdetect-cli cache stats|verify|gc --cache-dir <dir>\n  \
         jsdetect-cli normalize [--passes <p1,p2,...>] [--emit] \
         [--limits wild|trusted|interactive] [--max-rounds 8] <file.js|dir>...\n  \
         jsdetect-cli chaos-corpus --out <dir>\n  \
         jsdetect-cli module-corpus --out <dir> [--n 60] [--seed 42]\n\n\
         techniques: {}\n\
         normalize passes: {}",
        Technique::ALL.iter().map(|t| t.as_str()).collect::<Vec<_>>().join(", "),
        jsdetect_suite::normalize::PassKind::ALL
            .iter()
            .map(|p| p.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2);
}

fn arg_value(argv: &[String], flag: &str) -> Option<String> {
    argv.iter().position(|a| a == flag).and_then(|i| argv.get(i + 1).cloned())
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    match argv.get(1).map(String::as_str) {
        Some("train") => cmd_train(&argv),
        Some("classify") => cmd_classify(&argv),
        Some("transform") => cmd_transform(&argv),
        Some("lint") => cmd_lint(&argv),
        Some("analyze") => cmd_analyze(&argv),
        Some("trace") => cmd_trace(&argv),
        Some("cache") => cmd_cache(&argv),
        Some("normalize") => cmd_normalize(&argv),
        Some("chaos-corpus") => cmd_chaos_corpus(&argv),
        Some("module-corpus") => cmd_module_corpus(&argv),
        _ => usage(),
    }
}

/// Inspects or repairs a content-addressed analysis cache directory
/// (`cache stats|verify|gc --cache-dir <dir>`). `verify` exits non-zero
/// when any record is corrupt; `gc` removes corrupt records, records from
/// other schema / feature-space versions, and interrupted-writer tmp
/// files.
fn cmd_cache(argv: &[String]) {
    use jsdetect_suite::cache;

    let action = argv.get(2).map(String::as_str).unwrap_or_else(|| usage());
    let dir = arg_value(argv, "--cache-dir").unwrap_or_else(|| usage());
    let path = std::path::Path::new(&dir);

    fn emit<T: serde::Serialize>(report: &T) {
        match serde_json::to_string_pretty(report) {
            Ok(s) => println!("{}", s),
            Err(e) => {
                eprintln!("cannot serialize report: {}", e);
                std::process::exit(1);
            }
        }
    }

    match action {
        "stats" => match cache::stats(path) {
            Ok(s) => emit(&s),
            Err(e) => {
                eprintln!("cache stats failed on {}: {}", dir, e);
                std::process::exit(1);
            }
        },
        "verify" => match cache::verify(path) {
            Ok(r) => {
                emit(&r);
                if !r.is_clean() {
                    eprintln!("cache verify: {} corrupt record(s) under {}", r.corrupt.len(), dir);
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("cache verify failed on {}: {}", dir, e);
                std::process::exit(1);
            }
        },
        "gc" => match cache::gc(path, jsdetect_suite::features::FEATURE_SPACE_VERSION) {
            Ok(r) => emit(&r),
            Err(e) => {
                eprintln!("cache gc failed on {}: {}", dir, e);
                std::process::exit(1);
            }
        },
        other => {
            eprintln!("unknown cache action: {} (expected stats, verify, or gc)", other);
            usage()
        }
    }
}

/// Materializes the deterministic chaos corpus (pathological inputs the
/// hardened sandbox must survive) into a directory, for CI and manual
/// stress runs.
fn cmd_chaos_corpus(argv: &[String]) {
    let dir = arg_value(argv, "--out").unwrap_or_else(|| usage());
    match jsdetect_suite::corpus::write_chaos_corpus(std::path::Path::new(&dir)) {
        Ok(paths) => eprintln!("wrote {} chaos cases to {}", paths.len(), dir),
        Err(e) => {
            eprintln!("{}", e);
            std::process::exit(1);
        }
    }
}

/// Materializes the deterministic module-flavoured wild population
/// (ES-module bundles: import/export declarations, dynamic `import()`,
/// `import.meta`, BigInt literals, private class members; some minified)
/// into a directory. CI scans it and gates the `guard/degraded` telemetry
/// counter at zero — a degraded module script means lost syntax coverage.
fn cmd_module_corpus(argv: &[String]) {
    let dir = arg_value(argv, "--out").unwrap_or_else(|| usage());
    let n: usize = arg_value(argv, "--n").and_then(|v| v.parse().ok()).unwrap_or(60);
    let seed: u64 = arg_value(argv, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let path = std::path::Path::new(&dir);
    if let Err(e) = std::fs::create_dir_all(path) {
        eprintln!("cannot create {}: {}", dir, e);
        std::process::exit(1);
    }
    let pop = jsdetect_suite::corpus::module_population(n, seed);
    for (i, script) in pop.iter().enumerate() {
        let file = path.join(format!("module_{:03}.js", i));
        if let Err(e) = std::fs::write(&file, &script.src) {
            eprintln!("cannot write {}: {}", file.display(), e);
            std::process::exit(1);
        }
    }
    eprintln!("wrote {} module scripts to {}", pop.len(), dir);
}

fn cmd_train(argv: &[String]) {
    let model_path = arg_value(argv, "--model").unwrap_or_else(|| usage());
    let n: usize = arg_value(argv, "--n").and_then(|v| v.parse().ok()).unwrap_or(240);
    let seed: u64 = arg_value(argv, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    eprintln!("training on {} synthetic source scripts (seed {})...", n, seed);
    let t0 = std::time::Instant::now();
    let out = train_pipeline(n, seed, &DetectorConfig::default().with_seed(seed));
    eprintln!("trained in {:.1?}", t0.elapsed());
    let json = match out.detectors.to_json() {
        Ok(j) => j,
        Err(e) => {
            eprintln!("cannot serialize model: {}", e);
            std::process::exit(1);
        }
    };
    if let Err(e) = std::fs::write(&model_path, json) {
        eprintln!("cannot write {}: {}", model_path, e);
        std::process::exit(1);
    }
    eprintln!("model saved to {}", model_path);
}

fn load_model(argv: &[String]) -> TrainedDetectors {
    let model_path = arg_value(argv, "--model").unwrap_or_else(|| usage());
    let json = std::fs::read_to_string(&model_path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {}", model_path, e);
        std::process::exit(1);
    });
    TrainedDetectors::from_json(&json).unwrap_or_else(|e| {
        eprintln!("invalid model {}: {}", model_path, e);
        std::process::exit(1);
    })
}

fn cmd_classify(argv: &[String]) {
    let detectors = load_model(argv);
    let files: Vec<&String> = argv
        .iter()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .filter(|a| {
            // Skip the value of --model.
            arg_value(argv, "--model").as_deref() != Some(a.as_str())
        })
        .collect();
    if files.is_empty() {
        usage();
    }
    // Classification goes through the same guarded batch entry the
    // jsdetect-serve daemon uses per request, so a CLI verdict and a
    // daemon verdict for the same bytes cannot drift.
    let mut batch: Vec<(&String, String)> = Vec::new();
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                println!("{}: unreadable ({})", path, e);
                continue;
            }
        };
        if src.len() < 512 {
            // The paper only analyzes files ≥ 512 bytes: smaller scripts
            // carry too few features to classify reliably.
            println!("{}: too small to classify reliably ({} bytes < 512)", path, src.len());
            continue;
        }
        batch.push((path, src));
    }
    let srcs: Vec<&str> = batch.iter().map(|(_, s)| s.as_str()).collect();
    let verdicts = classify_many_cached(
        &srcs,
        &AnalysisConfig::default(),
        None,
        &detectors,
        4,
        DEFAULT_THRESHOLD,
    );
    for ((path, _), verdict) in batch.iter().zip(&verdicts) {
        match &verdict.level1 {
            None => {
                let msg = if verdict.error_msg.is_empty() {
                    "analysis rejected"
                } else {
                    verdict.error_msg.as_str()
                };
                println!("{}: not valid JavaScript ({})", path, msg);
            }
            Some(v) if !verdict.is_transformed() => {
                println!("{}: regular (confidence {:.2})", path, v.regular)
            }
            Some(v) => {
                println!(
                    "{}: TRANSFORMED (minified {:.2}, obfuscated {:.2}) — {}",
                    path,
                    v.minified,
                    v.obfuscated,
                    verdict.techniques.iter().map(|t| t.as_str()).collect::<Vec<_>>().join(", ")
                );
            }
        }
    }
}

/// One diagnostic flattened into owned, serializable fields.
#[derive(serde::Serialize)]
struct DiagnosticRow {
    file: String,
    rule: String,
    severity: String,
    line: u32,
    col: u32,
    start: u32,
    end: u32,
    message: String,
    data: Vec<String>,
}

fn cmd_lint(argv: &[String]) {
    let emit = arg_value(argv, "--emit-diagnostics");
    let json = match emit.as_deref() {
        Some("json") => true,
        None => false,
        Some(other) => {
            eprintln!("unsupported --emit-diagnostics format: {}", other);
            usage()
        }
    };
    let files: Vec<&String> = argv
        .iter()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .filter(|a| emit.as_deref() != Some(a.as_str()))
        .collect();
    if files.is_empty() {
        usage();
    }
    let runner = LintRunner::default();
    let mut rows: Vec<DiagnosticRow> = Vec::new();
    let mut had_error = false;
    for path in files {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: unreadable ({})", path, e);
                had_error = true;
                continue;
            }
        };
        let program = match jsdetect_suite::parser::parse(&src) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("{}: not valid JavaScript ({})", path, e);
                had_error = true;
                continue;
            }
        };
        let graph = jsdetect_suite::flow::analyze(&program);
        for d in runner.run(&src, &program, &graph) {
            let (line, col) = jsdetect_suite::ast::line_col(&src, d.span.start);
            if json {
                rows.push(DiagnosticRow {
                    file: path.to_string(),
                    rule: d.rule.to_string(),
                    severity: d.severity.as_str().to_string(),
                    line,
                    col,
                    start: d.span.start,
                    end: d.span.end,
                    message: d.message,
                    data: d.data.iter().map(|(k, v)| format!("{}={}", k, v)).collect(),
                });
            } else {
                let extra = if d.data.is_empty() {
                    String::new()
                } else {
                    format!(
                        " ({})",
                        d.data
                            .iter()
                            .map(|(k, v)| format!("{}={}", k, v))
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                };
                println!(
                    "{}:{}:{}: {} [{}] {}{}",
                    path,
                    line,
                    col,
                    d.severity.as_str(),
                    d.rule,
                    d.message,
                    extra
                );
            }
        }
    }
    if json {
        match serde_json::to_string_pretty(&rows) {
            Ok(s) => println!("{}", s),
            Err(e) => {
                eprintln!("cannot serialize diagnostics: {}", e);
                std::process::exit(1);
            }
        }
    }
    if had_error {
        std::process::exit(1);
    }
}

/// Collects `.js` files from file and directory arguments (directories are
/// walked recursively, entries visited in sorted order for determinism).
fn collect_js_files(paths: &[&String]) -> Vec<std::path::PathBuf> {
    fn walk(path: &std::path::Path, out: &mut Vec<std::path::PathBuf>) {
        if path.is_dir() {
            let mut entries: Vec<_> = match std::fs::read_dir(path) {
                Ok(rd) => rd.filter_map(Result::ok).map(|e| e.path()).collect(),
                Err(e) => {
                    eprintln!("cannot read directory {}: {}", path.display(), e);
                    return;
                }
            };
            entries.sort();
            for entry in entries {
                walk(&entry, out);
            }
        } else if path.extension().is_some_and(|e| e == "js") {
            out.push(path.to_path_buf());
        }
    }
    let mut out = Vec::new();
    for p in paths {
        let path = std::path::Path::new(p.as_str());
        if !path.exists() {
            eprintln!("no such file or directory: {}", p);
            std::process::exit(2);
        }
        if path.is_file() {
            // Explicitly named files are analyzed regardless of extension.
            out.push(path.to_path_buf());
        } else {
            walk(path, &mut out);
        }
    }
    out
}

/// Runs the hardened per-script analysis front-end over the given files,
/// prints a per-file outcome summary (ok/degraded/rejected), and reports
/// the collected telemetry.
///
/// `--keep-going` (default) quarantines failures and continues;
/// `--fail-fast` exits non-zero at the first non-ok outcome. `--strict`
/// exits non-zero only when *rejects* occur (resource exhaustion, panics,
/// unreadable files) — degraded parse failures are tolerated.
///
/// With `--cache-dir`, verdicts are replayed from (and published to) a
/// content-addressed cache keyed by source bytes × feature-space version ×
/// limits preset; `--cache-readonly` consults the store without writing.
fn cmd_analyze(argv: &[String]) {
    use jsdetect_suite::cache::{AnalysisCache, CacheConfig};
    use jsdetect_suite::detector::{analyze_many_cached, analyze_many_guarded, AnalysisConfig};
    use jsdetect_suite::guard::{AnalysisError, Limits, OutcomeKind, QuarantineReport};

    let format = arg_value(argv, "--telemetry").unwrap_or_else(|| "summary".to_string());
    if format != "summary" && format != "jsonl" && format != "prometheus" {
        eprintln!(
            "unsupported --telemetry format: {} (expected summary, jsonl, or prometheus)",
            format
        );
        usage();
    }
    let out_path = arg_value(argv, "--telemetry-out");
    let trace_out = arg_value(argv, "--trace-out");
    let quarantine_out = arg_value(argv, "--quarantine-out");
    let strict = argv.iter().any(|a| a == "--strict");
    let fail_fast = argv.iter().any(|a| a == "--fail-fast");
    if fail_fast && argv.iter().any(|a| a == "--keep-going") {
        eprintln!("--fail-fast and --keep-going are mutually exclusive");
        usage();
    }
    let limits_name = arg_value(argv, "--limits").unwrap_or_else(|| "wild".to_string());
    let limits = Limits::from_name(&limits_name).unwrap_or_else(|| {
        eprintln!(
            "unknown --limits preset: {} (expected wild, trusted, or interactive)",
            limits_name
        );
        usage()
    });
    let cache_dir = arg_value(argv, "--cache-dir");
    let cache_readonly = argv.iter().any(|a| a == "--cache-readonly");
    let flag_values = [
        arg_value(argv, "--telemetry"),
        out_path.clone(),
        trace_out.clone(),
        quarantine_out.clone(),
        arg_value(argv, "--limits"),
        cache_dir.clone(),
    ];
    let inputs: Vec<&String> = argv
        .iter()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.iter().any(|v| v.as_deref() == Some(a.as_str())))
        .collect();
    if inputs.is_empty() {
        usage();
    }
    let files = collect_js_files(&inputs);
    if files.is_empty() {
        eprintln!("no .js files found under the given paths");
        std::process::exit(2);
    }

    jsdetect_suite::obs::set_enabled(true);

    // Read as bytes so unreadable or non-UTF8 files become quarantined
    // `Io` records instead of aborting the whole batch.
    let mut sources: Vec<Result<String, AnalysisError>> = Vec::with_capacity(files.len());
    for f in &files {
        let read = match std::fs::read(f) {
            Ok(bytes) => String::from_utf8(bytes).map_err(|e| AnalysisError::Io {
                path: f.display().to_string(),
                msg: format!("not valid UTF-8: {}", e.utf8_error()),
            }),
            Err(e) => Err(AnalysisError::Io { path: f.display().to_string(), msg: e.to_string() }),
        };
        sources.push(read);
    }

    let refs: Vec<&str> =
        sources.iter().filter_map(|s| s.as_ref().ok()).map(String::as_str).collect();
    let config = AnalysisConfig { limits, fail_fast };

    // Reassemble per-file outcomes in input order (read failures never
    // reached the batch).
    let mut quarantine = QuarantineReport::new();
    match &cache_dir {
        Some(dir) => {
            let mut ccfg = CacheConfig::new(dir, &config.limits);
            ccfg.readonly = cache_readonly;
            let store = AnalysisCache::open(ccfg).unwrap_or_else(|e| {
                eprintln!("cannot open cache directory {}: {}", dir, e);
                std::process::exit(1);
            });
            let results = analyze_many_cached(&refs, &config, &store);
            let n_replayed = results.iter().filter(|r| r.from_cache).count();
            eprintln!("cache: {} of {} verdicts replayed from {}", n_replayed, results.len(), dir);
            let mut results_iter = results.into_iter();
            for (f, src) in files.iter().zip(&sources) {
                match src {
                    Err(e) => {
                        jsdetect_suite::obs::counter_add(e.counter_name(), 1);
                        quarantine.push(f.display().to_string(), OutcomeKind::Rejected, Some(e));
                    }
                    Ok(_) => {
                        let r = results_iter.next().expect("one result per readable file");
                        quarantine.push_replayed(
                            f.display().to_string(),
                            r.outcome,
                            &r.error_kind,
                            &r.error_msg,
                        );
                    }
                }
            }
        }
        None => {
            let results = analyze_many_guarded(&refs, &config);
            let mut results_iter = results.into_iter();
            for (f, src) in files.iter().zip(&sources) {
                match src {
                    Err(e) => {
                        jsdetect_suite::obs::counter_add(e.counter_name(), 1);
                        quarantine.push(f.display().to_string(), OutcomeKind::Rejected, Some(e));
                    }
                    Ok(_) => {
                        let r = results_iter.next().expect("one result per readable file");
                        quarantine.push(f.display().to_string(), r.outcome, r.error.as_ref());
                    }
                }
            }
        }
    }
    for r in quarantine.records() {
        if r.outcome != OutcomeKind::Ok {
            let detail = r.error.as_deref().unwrap_or("unknown error");
            eprintln!("{}: {} ({})", r.file, r.outcome.as_str(), detail);
        }
    }
    let (n_ok, n_degraded, n_rejected) = quarantine.counts();
    eprintln!(
        "analyzed {} scripts: {} ok, {} degraded, {} rejected",
        files.len(),
        n_ok,
        n_degraded,
        n_rejected
    );

    if let Some(p) = quarantine_out {
        if let Err(e) = std::fs::write(&p, quarantine.to_jsonl()) {
            eprintln!("cannot write {}: {}", p, e);
            std::process::exit(1);
        }
        eprintln!("quarantine report written to {}", p);
    }

    let snap = jsdetect_suite::obs::snapshot();
    if let Some(p) = &trace_out {
        if let Err(e) = std::fs::write(p, jsdetect_suite::obs::render_chrome_trace(&snap)) {
            eprintln!("cannot write {}: {}", p, e);
            std::process::exit(1);
        }
        eprintln!(
            "trace written to {} ({} events; load in Perfetto or chrome://tracing)",
            p,
            snap.events.len()
        );
    }
    let report = match format.as_str() {
        "jsonl" => jsdetect_suite::obs::to_jsonl(&snap),
        "prometheus" => jsdetect_suite::obs::render_prometheus(&snap),
        _ => jsdetect_suite::obs::render_summary(&snap),
    };
    match out_path {
        Some(p) => {
            if let Err(e) = std::fs::write(&p, report) {
                eprintln!("cannot write {}: {}", p, e);
                std::process::exit(1);
            }
            eprintln!("telemetry written to {}", p);
        }
        None => print!("{}", report),
    }

    if fail_fast && (n_degraded > 0 || n_rejected > 0) {
        if let Some(r) = quarantine.records().iter().find(|r| r.outcome != OutcomeKind::Ok) {
            eprintln!("--fail-fast: first failure was {} ({})", r.file, r.outcome.as_str());
        }
        std::process::exit(1);
    }
    if strict && n_rejected > 0 {
        eprintln!("--strict: {} rejected script(s)", n_rejected);
        std::process::exit(1);
    }
}

/// Reads a Chrome trace-event JSON file (as written by `analyze
/// --trace-out`) and prints a per-span-path table of call count, total
/// time, and self time — total minus the time spent in direct child
/// spans — hottest self-time first. `--top N` bounds the table (default
/// 20, 0 = unlimited).
fn cmd_trace(argv: &[String]) {
    let top: usize = arg_value(argv, "--top").and_then(|v| v.parse().ok()).unwrap_or(20);
    let flag_values = [arg_value(argv, "--top")];
    let files: Vec<&String> = argv
        .iter()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.iter().any(|v| v.as_deref() == Some(a.as_str())))
        .collect();
    let [path] = files.as_slice() else { usage() };
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {}", path, e);
        std::process::exit(1);
    });
    let value: serde_json::JsonValue = serde_json::from_str(&text).unwrap_or_else(|e| {
        eprintln!("{}: not valid trace JSON ({})", path, e);
        std::process::exit(1);
    });
    let events = value.get("traceEvents").and_then(|v| v.as_arr()).unwrap_or_else(|| {
        eprintln!("{}: no traceEvents array (is this a Chrome trace-event file?)", path);
        std::process::exit(1);
    });

    fn as_f64(v: &serde_json::JsonValue) -> Option<f64> {
        use serde::Value;
        match v {
            Value::Int(i) => Some(*i as f64),
            Value::UInt(u) => Some(*u as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    // Aggregate complete ("X") events per span path across all threads.
    use std::collections::BTreeMap;
    let mut totals: BTreeMap<&str, (u64, f64)> = BTreeMap::new();
    for ev in events {
        if !matches!(ev.get("ph"), Some(serde_json::JsonValue::Str(ph)) if ph == "X") {
            continue;
        }
        let (Some(serde_json::JsonValue::Str(name)), Some(dur)) =
            (ev.get("name"), ev.get("dur").and_then(as_f64))
        else {
            continue;
        };
        let slot = totals.entry(name.as_str()).or_insert((0, 0.0));
        slot.0 += 1;
        slot.1 += dur;
    }
    if totals.is_empty() {
        eprintln!("{}: no complete (ph=X) span events", path);
        return;
    }

    // Self time = own total minus direct children's totals (one extra path
    // segment); every microsecond is attributed to exactly one span.
    let mut rows: Vec<(&str, u64, f64, f64)> =
        totals.iter().map(|(&name, &(count, total))| (name, count, total, total)).collect();
    for (child, &(_, child_total)) in &totals {
        if let Some(idx) = child.rfind('/') {
            if let Some(row) = rows.iter_mut().find(|r| r.0 == &child[..idx]) {
                row.3 = (row.3 - child_total).max(0.0);
            }
        }
    }
    rows.sort_by(|a, b| b.3.partial_cmp(&a.3).unwrap_or(std::cmp::Ordering::Equal));
    if top > 0 {
        rows.truncate(top);
    }

    let name_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(4).max("span".len());
    println!("{:<name_w$}  {:>8}  {:>12}  {:>12}", "span", "count", "total ms", "self ms");
    for (name, count, total_us, self_us) in &rows {
        println!(
            "{:<name_w$}  {:>8}  {:>12.3}  {:>12.3}",
            name,
            count,
            total_us / 1000.0,
            self_us / 1000.0
        );
    }
}

/// Runs the deobfuscation pass suite over files and reports, per file,
/// the outcome (`ok` / `degraded`), fixpoint rounds, and rewrite count.
/// With `--emit` the cleaned source is printed to stdout via codegen
/// (unparseable inputs pass through unchanged, flagged `degraded`).
/// Exits non-zero only for failures outside {ok, degraded} — unreadable
/// files, in practice, since the normalizer itself never rejects.
fn cmd_normalize(argv: &[String]) {
    use jsdetect_suite::guard::{Limits, OutcomeKind};
    use jsdetect_suite::normalize::{normalize_program, NormalizeOptions, PassKind};

    let emit = argv.iter().any(|a| a == "--emit");
    let limits_name = arg_value(argv, "--limits").unwrap_or_else(|| "wild".to_string());
    let limits = Limits::from_name(&limits_name).unwrap_or_else(|| {
        eprintln!(
            "unknown --limits preset: {} (expected wild, trusted, or interactive)",
            limits_name
        );
        usage()
    });
    let max_rounds: u32 = arg_value(argv, "--max-rounds").and_then(|v| v.parse().ok()).unwrap_or(8);
    let passes: Vec<PassKind> = match arg_value(argv, "--passes") {
        None => PassKind::ALL.to_vec(),
        Some(list) => list
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(|name| {
                PassKind::from_name(name).unwrap_or_else(|| {
                    eprintln!("unknown normalize pass: {}", name);
                    usage()
                })
            })
            .collect(),
    };
    let flag_values =
        [arg_value(argv, "--passes"), arg_value(argv, "--limits"), arg_value(argv, "--max-rounds")];
    let inputs: Vec<&String> = argv
        .iter()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .filter(|a| !flag_values.iter().any(|v| v.as_deref() == Some(a.as_str())))
        .collect();
    if inputs.is_empty() {
        usage();
    }
    let files = collect_js_files(&inputs);
    if files.is_empty() {
        eprintln!("no .js files found under the given paths");
        std::process::exit(2);
    }

    jsdetect_suite::obs::set_enabled(true);
    let opts = NormalizeOptions { passes, max_rounds, limits, ..NormalizeOptions::default() };
    let (mut n_ok, mut n_degraded, mut n_failed) = (0usize, 0usize, 0usize);
    for f in &files {
        let path = f.display();
        let src = match std::fs::read_to_string(f) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{}: failed (unreadable: {})", path, e);
                n_failed += 1;
                continue;
            }
        };
        let mut program = match jsdetect_suite::parser::parse(&src) {
            Ok(p) => p,
            Err(e) => {
                // Not valid JavaScript: nothing to normalize, but the
                // pipeline stays total — pass the bytes through.
                eprintln!("{}: degraded (parse error: {})", path, e);
                n_degraded += 1;
                if emit {
                    print!("{}", src);
                }
                continue;
            }
        };
        let report = normalize_program(&mut program, &opts);
        match report.outcome {
            OutcomeKind::Ok => n_ok += 1,
            _ => n_degraded += 1,
        }
        let detail = report.error.as_ref().map(|e| format!(", {}", e)).unwrap_or_default();
        eprintln!(
            "{}: {} ({} rounds, {} rewrites{})",
            path,
            report.outcome.as_str(),
            report.rounds,
            report.total_rewrites(),
            detail
        );
        if emit {
            println!("{}", jsdetect_suite::codegen::to_source(&program));
        }
    }
    eprintln!(
        "normalized {} scripts: {} ok, {} degraded, {} failed",
        files.len(),
        n_ok,
        n_degraded,
        n_failed
    );
    if n_failed > 0 {
        std::process::exit(1);
    }
}

fn cmd_transform(argv: &[String]) {
    let name = arg_value(argv, "--technique").unwrap_or_else(|| usage());
    let seed: u64 = arg_value(argv, "--seed").and_then(|v| v.parse().ok()).unwrap_or(42);
    let technique =
        Technique::ALL.iter().find(|t| t.as_str() == name).copied().unwrap_or_else(|| {
            eprintln!("unknown technique: {}", name);
            usage()
        });
    let file = argv
        .iter()
        .skip(2)
        .filter(|a| !a.starts_with("--"))
        .find(|a| {
            arg_value(argv, "--technique").as_deref() != Some(a.as_str())
                && arg_value(argv, "--seed").as_deref() != Some(a.as_str())
        })
        .unwrap_or_else(|| usage());
    let src = std::fs::read_to_string(file).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {}", file, e);
        std::process::exit(1);
    });
    match jsdetect_suite::transform::apply(&src, &[technique], seed) {
        Ok(out) => println!("{}", out),
        Err(e) => {
            eprintln!("transformation failed: {}", e);
            std::process::exit(1);
        }
    }
}

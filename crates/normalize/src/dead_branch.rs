//! Dead-branch elimination on constant conditions.
//!
//! `if` statements whose test is a side-effect-free constant (including the
//! minifier spellings `!0` / `!![]` and whatever the constants pass folded
//! to a literal) are replaced by the taken branch; `while` loops with a
//! constant-false test are removed. Combined with propagation and folding
//! this strips the opaque-predicate arms that `dead_code_injection` wraps
//! around its junk blocks.
//!
//! Conditional *expressions* are the constants pass's job; this pass only
//! rewrites statements.

use crate::eval::truthiness;
use crate::{Pass, PassCx};
use jsdetect_ast::visit_mut::{walk_stmt_mut, MutVisitor};
use jsdetect_ast::*;

/// See the module docs.
pub(crate) struct DeadBranchPass;

impl Pass for DeadBranchPass {
    fn name(&self) -> &'static str {
        "dead-branch"
    }

    fn counter(&self) -> &'static str {
        "normalize/dead-branch/rewrites"
    }

    fn run(&self, program: &mut Program, cx: &PassCx) -> u64 {
        let mut v = Eliminate { cx, count: 0 };
        v.visit_program_mut(program);
        v.count
    }
}

struct Eliminate<'a, 'b> {
    cx: &'a PassCx<'b>,
    count: u64,
}

impl MutVisitor for Eliminate<'_, '_> {
    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        // Post-order, so nested constant branches resolve innermost-first
        // and a replacement is never re-visited.
        walk_stmt_mut(self, s);
        self.cx.tick(1);
        let replacement = match s {
            Stmt::If { test, consequent, alternate, span } => match truthiness(test) {
                Some(true) => std::mem::replace(&mut **consequent, Stmt::Empty { span: *span }),
                Some(false) => match alternate.take() {
                    Some(alt) => *alt,
                    None => Stmt::Empty { span: *span },
                },
                None => return,
            },
            Stmt::While { test, span, .. } => match truthiness(test) {
                Some(false) => Stmt::Empty { span: *span },
                _ => return,
            },
            _ => return,
        };
        if self.cx.spend() {
            *s = replacement;
            self.count += 1;
        }
    }

    fn visit_stmts_mut(&mut self, stmts: &mut Vec<Stmt>) {
        for s in stmts.iter_mut() {
            self.visit_stmt_mut(s);
        }
        // Drop the empty statements elimination leaves behind (harmless in
        // single-statement positions, noise in lists). One-shot: once
        // dropped they cannot re-fire, so the fixpoint still terminates.
        if stmts.iter().any(|s| matches!(s, Stmt::Empty { .. })) {
            stmts.retain(|s| !matches!(s, Stmt::Empty { .. }));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize_program, NormalizeOptions, PassKind};
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn run(src: &str) -> String {
        let mut p = parse(src).unwrap();
        let opts =
            NormalizeOptions { passes: vec![PassKind::DeadBranch], ..NormalizeOptions::default() };
        normalize_program(&mut p, &opts);
        to_minified(&p)
    }

    #[test]
    fn constant_true_keeps_consequent() {
        assert_eq!(run("if (true) { f(); } else { g(); }"), "{f();}");
        assert_eq!(run("if (!0) f();"), "f();");
    }

    #[test]
    fn constant_false_keeps_alternate_or_nothing() {
        assert_eq!(run("if (false) { f(); } else { g(); }"), "{g();}");
        assert_eq!(run("if (!1) f();"), "");
        assert_eq!(run("if ('') f(); else g();"), "g();");
    }

    #[test]
    fn while_false_is_removed() {
        assert_eq!(run("while (false) { f(); } g();"), "g();");
    }

    #[test]
    fn dynamic_tests_survive() {
        assert_eq!(run("if (x) f();"), "if(x)f();");
        assert_eq!(run("if (h()) f();"), "if(h())f();");
        assert_eq!(run("while (x) f();"), "while(x)f();");
        // `do..while` runs its body once regardless of the test.
        let out = run("do f(); while (false);");
        assert!(out.contains("f()") && out.contains("while"), "{}", out);
    }

    #[test]
    fn nested_constant_branches_resolve_in_one_run() {
        let src = "if (!0) { if (!1) { a(); } else { b(); } } else { c(); }";
        let out = run(src);
        assert!(out.contains("b()"), "{}", out);
        assert!(!out.contains("a()"), "{}", out);
        assert!(!out.contains("c()"), "{}", out);
    }

    #[test]
    fn non_list_positions_get_an_empty_statement() {
        let out = run("if (x) if (false) f();");
        assert_eq!(out, "if(x);");
    }
}

//! Pre-order AST traversal.
//!
//! [`walk`] visits every node of a [`Program`] in source order, invoking a
//! callback with a [`NodeRef`] and the node's depth. This single traversal
//! primitive powers the n-gram streams, the structural metrics, and the
//! hand-picked feature extraction of the paper's pipeline.

use crate::kind::NodeKind;
use crate::nodes::*;

/// A borrowed reference to any AST node.
#[derive(Debug, Clone, Copy)]
#[allow(missing_docs)]
pub enum NodeRef<'a> {
    Program(&'a Program),
    Ident(&'a Ident),
    Stmt(&'a Stmt),
    Expr(&'a Expr),
    Pat(&'a Pat),
    Property(&'a Property),
    ObjectPatProp(&'a ObjectPatProp),
    VarDeclarator(&'a VarDeclarator),
    SwitchCase(&'a SwitchCase),
    CatchClause(&'a CatchClause),
    TemplateElement(&'a TemplateElement),
    ClassBody(&'a [ClassMember]),
    ClassMember(&'a ClassMember),
    /// A `#name` private identifier (class-member key or member access).
    PrivateName(&'a Ident),
}

impl NodeRef<'_> {
    /// The ESTree kind of the referenced node.
    pub fn kind(&self) -> NodeKind {
        match self {
            NodeRef::Program(_) => NodeKind::Program,
            NodeRef::Ident(_) => NodeKind::Identifier,
            NodeRef::Stmt(s) => stmt_kind(s),
            NodeRef::Expr(e) => expr_kind(e),
            NodeRef::Pat(p) => pat_kind(p),
            NodeRef::Property(_) => NodeKind::Property,
            NodeRef::ObjectPatProp(_) => NodeKind::Property,
            NodeRef::VarDeclarator(_) => NodeKind::VariableDeclarator,
            NodeRef::SwitchCase(_) => NodeKind::SwitchCase,
            NodeRef::CatchClause(_) => NodeKind::CatchClause,
            NodeRef::TemplateElement(_) => NodeKind::TemplateElement,
            NodeRef::ClassBody(_) => NodeKind::ClassBody,
            NodeRef::ClassMember(m) => match m.kind {
                MethodKind::Field => NodeKind::PropertyDefinition,
                _ => NodeKind::MethodDefinition,
            },
            NodeRef::PrivateName(_) => NodeKind::PrivateIdentifier,
        }
    }
}

/// The ESTree kind of a statement.
pub fn stmt_kind(s: &Stmt) -> NodeKind {
    use Stmt::*;
    match s {
        Expr { .. } => NodeKind::ExpressionStatement,
        Block { .. } => NodeKind::BlockStatement,
        VarDecl { .. } => NodeKind::VariableDeclaration,
        FunctionDecl(_) => NodeKind::FunctionDeclaration,
        ClassDecl(_) => NodeKind::ClassDeclaration,
        If { .. } => NodeKind::IfStatement,
        For { .. } => NodeKind::ForStatement,
        ForIn { .. } => NodeKind::ForInStatement,
        ForOf { .. } => NodeKind::ForOfStatement,
        While { .. } => NodeKind::WhileStatement,
        DoWhile { .. } => NodeKind::DoWhileStatement,
        Switch { .. } => NodeKind::SwitchStatement,
        Try { .. } => NodeKind::TryStatement,
        Throw { .. } => NodeKind::ThrowStatement,
        Return { .. } => NodeKind::ReturnStatement,
        Break { .. } => NodeKind::BreakStatement,
        Continue { .. } => NodeKind::ContinueStatement,
        Labeled { .. } => NodeKind::LabeledStatement,
        Empty { .. } => NodeKind::EmptyStatement,
        Debugger { .. } => NodeKind::DebuggerStatement,
        With { .. } => NodeKind::WithStatement,
        Import { .. } => NodeKind::ImportDeclaration,
        ExportNamed { .. } => NodeKind::ExportNamedDeclaration,
        ExportDefault { .. } => NodeKind::ExportDefaultDeclaration,
        ExportAll { .. } => NodeKind::ExportAllDeclaration,
    }
}

/// The ESTree kind of an expression.
pub fn expr_kind(e: &Expr) -> NodeKind {
    use Expr::*;
    match e {
        Ident(_) => NodeKind::Identifier,
        Lit(_) => NodeKind::Literal,
        This { .. } => NodeKind::ThisExpression,
        Super { .. } => NodeKind::Super,
        Array { .. } => NodeKind::ArrayExpression,
        Object { .. } => NodeKind::ObjectExpression,
        Function(_) => NodeKind::FunctionExpression,
        Arrow { .. } => NodeKind::ArrowFunctionExpression,
        Class(_) => NodeKind::ClassExpression,
        Template { .. } => NodeKind::TemplateLiteral,
        TaggedTemplate { .. } => NodeKind::TaggedTemplateExpression,
        Unary { .. } => NodeKind::UnaryExpression,
        Update { .. } => NodeKind::UpdateExpression,
        Binary { .. } => NodeKind::BinaryExpression,
        Logical { .. } => NodeKind::LogicalExpression,
        Assign { .. } => NodeKind::AssignmentExpression,
        Conditional { .. } => NodeKind::ConditionalExpression,
        Call { .. } => NodeKind::CallExpression,
        New { .. } => NodeKind::NewExpression,
        Member { .. } => NodeKind::MemberExpression,
        Sequence { .. } => NodeKind::SequenceExpression,
        Spread { .. } => NodeKind::SpreadElement,
        Yield { .. } => NodeKind::YieldExpression,
        Await { .. } => NodeKind::AwaitExpression,
        MetaProperty { .. } => NodeKind::MetaProperty,
        ImportCall { .. } => NodeKind::ImportExpression,
    }
}

/// The ESTree kind of a pattern.
pub fn pat_kind(p: &Pat) -> NodeKind {
    match p {
        Pat::Ident(_) => NodeKind::Identifier,
        Pat::Array { .. } => NodeKind::ArrayPattern,
        Pat::Object { .. } => NodeKind::ObjectPattern,
        Pat::Assign { .. } => NodeKind::AssignmentPattern,
        Pat::Rest { .. } => NodeKind::RestElement,
        Pat::Member(_) => NodeKind::MemberExpression,
    }
}

/// Walks `program` in pre-order, invoking `f(node, depth)` for every node.
///
/// # Examples
///
/// ```
/// use jsdetect_ast::{walk, NodeKind, Program, Stmt, Expr, Lit, Span};
/// let prog = Program {
///     body: vec![Stmt::Expr { expr: Expr::Lit(Lit::num(1.0)), span: Span::DUMMY }],
///     span: Span::DUMMY,
/// };
/// let mut kinds = Vec::new();
/// walk(&prog, &mut |node, _depth| kinds.push(node.kind()));
/// assert_eq!(kinds, vec![NodeKind::Program, NodeKind::ExpressionStatement, NodeKind::Literal]);
/// ```
pub fn walk<'a, F>(program: &'a Program, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    f(NodeRef::Program(program), 0);
    for s in &program.body {
        walk_stmt(s, 1, f);
    }
}

/// Walks a statement subtree in pre-order.
pub fn walk_stmt<'a, F>(s: &'a Stmt, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    f(NodeRef::Stmt(s), depth);
    let d = depth + 1;
    match s {
        Stmt::Expr { expr, .. } => walk_expr(expr, d, f),
        Stmt::Block { body, .. } => {
            for st in body {
                walk_stmt(st, d, f);
            }
        }
        Stmt::VarDecl { decls, .. } => {
            for decl in decls {
                f(NodeRef::VarDeclarator(decl), d);
                walk_pat(&decl.id, d + 1, f);
                if let Some(init) = &decl.init {
                    walk_expr(init, d + 1, f);
                }
            }
        }
        Stmt::FunctionDecl(func) => walk_function(func, d, f),
        Stmt::ClassDecl(class) => walk_class(class, d, f),
        Stmt::If { test, consequent, alternate, .. } => {
            walk_expr(test, d, f);
            walk_stmt(consequent, d, f);
            if let Some(alt) = alternate {
                walk_stmt(alt, d, f);
            }
        }
        Stmt::For { init, test, update, body, .. } => {
            match init {
                Some(ForInit::Var { decls, .. }) => {
                    for decl in decls {
                        f(NodeRef::VarDeclarator(decl), d);
                        walk_pat(&decl.id, d + 1, f);
                        if let Some(e) = &decl.init {
                            walk_expr(e, d + 1, f);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => walk_expr(e, d, f),
                None => {}
            }
            if let Some(t) = test {
                walk_expr(t, d, f);
            }
            if let Some(u) = update {
                walk_expr(u, d, f);
            }
            walk_stmt(body, d, f);
        }
        Stmt::ForIn { target, object, body, .. } => {
            walk_for_target(target, d, f);
            walk_expr(object, d, f);
            walk_stmt(body, d, f);
        }
        Stmt::ForOf { target, iterable, body, .. } => {
            walk_for_target(target, d, f);
            walk_expr(iterable, d, f);
            walk_stmt(body, d, f);
        }
        Stmt::While { test, body, .. } => {
            walk_expr(test, d, f);
            walk_stmt(body, d, f);
        }
        Stmt::DoWhile { body, test, .. } => {
            walk_stmt(body, d, f);
            walk_expr(test, d, f);
        }
        Stmt::Switch { discriminant, cases, .. } => {
            walk_expr(discriminant, d, f);
            for case in cases {
                f(NodeRef::SwitchCase(case), d);
                if let Some(t) = &case.test {
                    walk_expr(t, d + 1, f);
                }
                for st in &case.body {
                    walk_stmt(st, d + 1, f);
                }
            }
        }
        Stmt::Try { block, handler, finalizer, .. } => {
            for st in block {
                walk_stmt(st, d, f);
            }
            if let Some(h) = handler {
                f(NodeRef::CatchClause(h), d);
                if let Some(p) = &h.param {
                    walk_pat(p, d + 1, f);
                }
                for st in &h.body {
                    walk_stmt(st, d + 1, f);
                }
            }
            if let Some(fin) = finalizer {
                for st in fin {
                    walk_stmt(st, d, f);
                }
            }
        }
        Stmt::Throw { arg, .. } => walk_expr(arg, d, f),
        Stmt::Return { arg, .. } => {
            if let Some(a) = arg {
                walk_expr(a, d, f);
            }
        }
        Stmt::Break { label, .. } | Stmt::Continue { label, .. } => {
            if let Some(l) = label {
                walk_ident(l, d, f);
            }
        }
        Stmt::Labeled { label, body, .. } => {
            walk_ident(label, d, f);
            walk_stmt(body, d, f);
        }
        Stmt::Empty { .. } | Stmt::Debugger { .. } => {}
        Stmt::With { object, body, .. } => {
            walk_expr(object, d, f);
            walk_stmt(body, d, f);
        }
        Stmt::Import { specifiers, .. } => {
            for sp in specifiers {
                walk_ident(sp.local(), d, f);
            }
        }
        Stmt::ExportNamed { decl, specifiers, .. } => {
            if let Some(decl) = decl {
                walk_stmt(decl, d, f);
            }
            for sp in specifiers {
                walk_ident(&sp.local, d, f);
            }
        }
        Stmt::ExportDefault { expr, .. } => walk_expr(expr, d, f),
        Stmt::ExportAll { exported, .. } => {
            if let Some(ns) = exported {
                walk_ident(ns, d, f);
            }
        }
    }
}

fn walk_ident<'a, F>(i: &'a Ident, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    f(NodeRef::Ident(i), depth);
}

fn walk_for_target<'a, F>(t: &'a ForTarget, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    match t {
        ForTarget::Var { pat, .. } => walk_pat(pat, depth, f),
        ForTarget::Pat(p) => walk_pat(p, depth, f),
    }
}

/// Walks an expression subtree in pre-order.
pub fn walk_expr<'a, F>(e: &'a Expr, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    f(NodeRef::Expr(e), depth);
    let d = depth + 1;
    match e {
        Expr::Ident(_) | Expr::Lit(_) | Expr::This { .. } | Expr::Super { .. } => {}
        Expr::Array { elements, .. } => {
            for el in elements.iter().flatten() {
                walk_expr(el, d, f);
            }
        }
        Expr::Object { props, .. } => {
            for p in props {
                f(NodeRef::Property(p), d);
                walk_prop_key(&p.key, d + 1, f);
                walk_expr(&p.value, d + 1, f);
            }
        }
        Expr::Function(func) => walk_function(func, d, f),
        Expr::Arrow { params, body, .. } => {
            for p in params {
                walk_pat(p, d, f);
            }
            match body {
                ArrowBody::Expr(e) => walk_expr(e, d, f),
                ArrowBody::Block(stmts) => {
                    for st in stmts {
                        walk_stmt(st, d, f);
                    }
                }
            }
        }
        Expr::Class(class) => walk_class(class, d, f),
        Expr::Template { quasis, exprs, .. } => {
            for q in quasis {
                f(NodeRef::TemplateElement(q), d);
            }
            for ex in exprs {
                walk_expr(ex, d, f);
            }
        }
        Expr::TaggedTemplate { tag, quasis, exprs, .. } => {
            walk_expr(tag, d, f);
            for q in quasis {
                f(NodeRef::TemplateElement(q), d);
            }
            for ex in exprs {
                walk_expr(ex, d, f);
            }
        }
        Expr::Unary { arg, .. } | Expr::Spread { arg, .. } | Expr::Await { arg, .. } => {
            walk_expr(arg, d, f)
        }
        Expr::Update { arg, .. } => walk_expr(arg, d, f),
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            walk_expr(left, d, f);
            walk_expr(right, d, f);
        }
        Expr::Assign { target, value, .. } => {
            walk_pat(target, d, f);
            walk_expr(value, d, f);
        }
        Expr::Conditional { test, consequent, alternate, .. } => {
            walk_expr(test, d, f);
            walk_expr(consequent, d, f);
            walk_expr(alternate, d, f);
        }
        Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
            walk_expr(callee, d, f);
            for a in args {
                walk_expr(a, d, f);
            }
        }
        Expr::Member { object, property, .. } => {
            walk_expr(object, d, f);
            match property {
                MemberProp::Ident(_) => {
                    // Dot-notation property names are identifiers in ESTree.
                    // We report them via the member node itself rather than
                    // a standalone Identifier occurrence, matching how the
                    // feature extractor distinguishes *variable* identifiers
                    // from property names.
                }
                MemberProp::Computed(e) => walk_expr(e, d, f),
                MemberProp::Private(p) => f(NodeRef::PrivateName(p), d),
            }
        }
        Expr::Sequence { exprs, .. } => {
            for ex in exprs {
                walk_expr(ex, d, f);
            }
        }
        Expr::Yield { arg, .. } => {
            if let Some(a) = arg {
                walk_expr(a, d, f);
            }
        }
        Expr::MetaProperty { .. } => {}
        Expr::ImportCall { arg, .. } => walk_expr(arg, d, f),
    }
}

fn walk_prop_key<'a, F>(k: &'a PropKey, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    match k {
        PropKey::Computed(e) => walk_expr(e, depth, f),
        PropKey::Private(p) => f(NodeRef::PrivateName(p), depth),
        PropKey::Ident(_) | PropKey::Lit(_) => {}
    }
}

/// Walks a pattern subtree in pre-order.
pub fn walk_pat<'a, F>(p: &'a Pat, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    f(NodeRef::Pat(p), depth);
    let d = depth + 1;
    match p {
        Pat::Ident(_) => {}
        Pat::Array { elements, .. } => {
            for el in elements.iter().flatten() {
                walk_pat(el, d, f);
            }
        }
        Pat::Object { props, .. } => {
            for prop in props {
                f(NodeRef::ObjectPatProp(prop), d);
                walk_prop_key(&prop.key, d + 1, f);
                walk_pat(&prop.value, d + 1, f);
            }
        }
        Pat::Assign { target, value, .. } => {
            walk_pat(target, d, f);
            walk_expr(value, d, f);
        }
        Pat::Rest { arg, .. } => walk_pat(arg, d, f),
        Pat::Member(e) => walk_expr(e, d, f),
    }
}

fn walk_function<'a, F>(func: &'a Function, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    for p in &func.params {
        walk_pat(p, depth, f);
    }
    for st in &func.body {
        walk_stmt(st, depth, f);
    }
}

fn walk_class<'a, F>(class: &'a Class, depth: usize, f: &mut F)
where
    F: FnMut(NodeRef<'a>, usize),
{
    if let Some(sup) = &class.super_class {
        walk_expr(sup, depth, f);
    }
    f(NodeRef::ClassBody(&class.body), depth);
    for m in &class.body {
        f(NodeRef::ClassMember(m), depth + 1);
        walk_prop_key(&m.key, depth + 2, f);
        match &m.value {
            ClassMemberValue::Method(func) => walk_function(func, depth + 2, f),
            ClassMemberValue::Field(Some(e)) => walk_expr(e, depth + 2, f),
            ClassMemberValue::Field(None) => {}
        }
    }
}

/// Collects the pre-order stream of node kinds for a program.
///
/// This is the "list of syntactic units" over which the paper's 4-gram
/// features are computed.
pub fn kind_stream(program: &Program) -> Vec<NodeKind> {
    let mut kinds = Vec::new();
    walk(program, &mut |node, _| kinds.push(node.kind()));
    kinds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    fn expr_stmt(e: Expr) -> Stmt {
        Stmt::Expr { expr: e, span: Span::DUMMY }
    }

    #[test]
    fn kind_stream_simple_program() {
        let prog = Program {
            body: vec![expr_stmt(Expr::Binary {
                op: crate::ops::BinaryOp::Add,
                left: Box::new(Expr::Lit(Lit::num(1.0))),
                right: Box::new(Expr::Ident(Ident::new("x"))),
                span: Span::DUMMY,
            })],
            span: Span::DUMMY,
        };
        assert_eq!(
            kind_stream(&prog),
            vec![
                NodeKind::Program,
                NodeKind::ExpressionStatement,
                NodeKind::BinaryExpression,
                NodeKind::Literal,
                NodeKind::Identifier,
            ]
        );
    }

    #[test]
    fn depth_is_tracked() {
        let prog = Program {
            body: vec![Stmt::If {
                test: Expr::Lit(Lit::bool(true)),
                consequent: Box::new(Stmt::Block {
                    body: vec![expr_stmt(Expr::Lit(Lit::num(1.0)))],
                    span: Span::DUMMY,
                }),
                alternate: None,
                span: Span::DUMMY,
            }],
            span: Span::DUMMY,
        };
        let mut max_depth = 0;
        walk(&prog, &mut |_, d| max_depth = max_depth.max(d));
        // Program(0) > If(1) > Block(2) > ExprStmt(3) > Literal(4)
        assert_eq!(max_depth, 4);
    }

    #[test]
    fn switch_and_catch_emit_aux_nodes() {
        let prog = Program {
            body: vec![
                Stmt::Switch {
                    discriminant: Expr::Ident(Ident::new("x")),
                    cases: vec![SwitchCase {
                        test: Some(Expr::Lit(Lit::num(1.0))),
                        body: vec![Stmt::Break { label: None, span: Span::DUMMY }],
                        span: Span::DUMMY,
                    }],
                    span: Span::DUMMY,
                },
                Stmt::Try {
                    block: vec![],
                    handler: Some(CatchClause {
                        param: Some(Pat::Ident(Ident::new("e"))),
                        body: vec![],
                        span: Span::DUMMY,
                    }),
                    finalizer: None,
                    span: Span::DUMMY,
                },
            ],
            span: Span::DUMMY,
        };
        let kinds = kind_stream(&prog);
        assert!(kinds.contains(&NodeKind::SwitchCase));
        assert!(kinds.contains(&NodeKind::CatchClause));
        assert!(kinds.contains(&NodeKind::BreakStatement));
    }

    #[test]
    fn member_dot_property_not_counted_as_identifier() {
        // `a.b` — only `a` should appear as an Identifier occurrence.
        let prog = Program {
            body: vec![expr_stmt(Expr::Member {
                object: Box::new(Expr::Ident(Ident::new("a"))),
                property: MemberProp::Ident(Ident::new("b")),
                optional: false,
                span: Span::DUMMY,
            })],
            span: Span::DUMMY,
        };
        let idents = kind_stream(&prog).iter().filter(|k| **k == NodeKind::Identifier).count();
        assert_eq!(idents, 1);
    }

    #[test]
    fn computed_member_property_is_walked() {
        let prog = Program {
            body: vec![expr_stmt(Expr::Member {
                object: Box::new(Expr::Ident(Ident::new("a"))),
                property: MemberProp::Computed(Box::new(Expr::Lit(Lit::str("b")))),
                optional: false,
                span: Span::DUMMY,
            })],
            span: Span::DUMMY,
        };
        let kinds = kind_stream(&prog);
        assert!(kinds.contains(&NodeKind::Literal));
    }

    #[test]
    fn class_walk_emits_body_and_members() {
        let prog = Program {
            body: vec![Stmt::ClassDecl(Class {
                id: Some(Ident::new("C")),
                super_class: None,
                body: vec![ClassMember {
                    key: PropKey::Ident(Ident::new("m")),
                    value: ClassMemberValue::Method(Function {
                        id: None,
                        params: vec![],
                        body: vec![],
                        is_generator: false,
                        is_async: false,
                        span: Span::DUMMY,
                    }),
                    kind: MethodKind::Method,
                    is_static: false,
                    computed: false,
                    span: Span::DUMMY,
                }],
                span: Span::DUMMY,
            })],
            span: Span::DUMMY,
        };
        let kinds = kind_stream(&prog);
        assert!(kinds.contains(&NodeKind::ClassBody));
        assert!(kinds.contains(&NodeKind::MethodDefinition));
    }
}

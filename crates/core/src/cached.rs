//! Cache-aware batch analysis: consult the content-addressed store before
//! lexing, publish verdicts on miss.
//!
//! A cache hit replays the *distilled* verdict — the three-way outcome,
//! the typed failure for quarantined scripts, and the space-independent
//! [`FeaturePayload`] — not the full AST. That is deliberate: everything
//! downstream of a batch scan (vectorization, quarantine reporting,
//! outcome accounting) runs off exactly those fields, and storing ASTs
//! would tie cache records to parser internals. Misses run the same
//! hardened path as [`analyze_many_guarded`](crate::analyze_many_guarded)
//! and publish the result, so a second scan over unchanged bytes touches
//! neither the lexer nor the parser.

use crate::config::AnalysisConfig;
use crate::vectorize::run_stealing;
use jsdetect_cache::{AnalysisCache, CacheRecord, ContentHash};
use jsdetect_features::{analyze_script_guarded, FeaturePayload, GuardedScript, VectorSpace};
use jsdetect_guard::{isolate, OutcomeKind};
use jsdetect_obs::names;

/// One script's verdict as produced by [`analyze_many_cached`]: either
/// replayed from the store or freshly computed (and published).
#[derive(Debug, Clone, PartialEq)]
pub struct CachedScript {
    /// BLAKE2s-256 of the source bytes — the cache key this verdict lives
    /// under.
    pub hash: ContentHash,
    /// Three-way guard verdict.
    pub outcome: OutcomeKind,
    /// Stable failure kind tag (`AnalysisError::kind()`), empty when ok.
    pub error_kind: String,
    /// Human-readable failure rendering, empty when ok.
    pub error_msg: String,
    /// Feature payload; present for ok and degraded outcomes.
    pub payload: Option<FeaturePayload>,
    /// Whether this verdict came out of the store (`true`) or was computed
    /// this scan (`false`).
    pub from_cache: bool,
}

impl CachedScript {
    /// Projects the payload into a fitted space. `None` for rejected
    /// scripts (no payload survives rejection).
    pub fn vectorize(&self, space: &VectorSpace) -> Option<Vec<f32>> {
        self.payload.as_ref().map(|p| space.vectorize_payload(p))
    }
}

fn distill(hash: ContentHash, g: &GuardedScript, from_cache: bool) -> CachedScript {
    CachedScript {
        hash,
        outcome: g.outcome,
        error_kind: g.error.as_ref().map(|e| e.kind().to_string()).unwrap_or_default(),
        error_msg: g.error.as_ref().map(|e| e.to_string()).unwrap_or_default(),
        payload: g.analysis.as_ref().map(FeaturePayload::extract),
        from_cache,
    }
}

fn replay(hash: ContentHash, rec: &CacheRecord) -> CachedScript {
    CachedScript {
        hash,
        outcome: rec.outcome,
        error_kind: rec.error_kind.clone(),
        error_msg: rec.error_msg.clone(),
        payload: rec.payload.clone(),
        from_cache: true,
    }
}

/// Analyzes many scripts in parallel, consulting `cache` before any
/// lexing or parsing and publishing fresh verdicts on miss.
///
/// Equivalent to [`analyze_many_guarded`](crate::analyze_many_guarded)
/// followed by payload extraction: outcomes are identical, and payloads
/// vectorize bit-identically whether replayed or freshly computed. The
/// cache's own preset must match `config.limits` (callers normally build
/// it with `CacheConfig::new(dir, &config.limits)`); a mismatched store
/// simply never hits, it cannot replay a wrong verdict.
pub fn analyze_many_cached(
    srcs: &[&str],
    config: &AnalysisConfig,
    cache: &AnalysisCache,
) -> Vec<CachedScript> {
    analyze_many_opt_cached(srcs, config, Some(cache))
}

/// [`analyze_many_cached`] with the store optional: `None` runs the same
/// hardened path and distillation without consulting or publishing
/// anywhere. This is the single batch entry the daemon, the CLI, and the
/// examples share, so server and offline sweeps cannot drift.
pub fn analyze_many_opt_cached(
    srcs: &[&str],
    config: &AnalysisConfig,
    cache: Option<&AnalysisCache>,
) -> Vec<CachedScript> {
    let _t = jsdetect_obs::span(names::SPAN_ANALYZE_MANY);
    jsdetect_obs::counter_add(names::CTR_SCRIPTS_ANALYZED, srcs.len() as u64);
    let mut out: Vec<Option<CachedScript>> = (0..srcs.len()).map(|_| None).collect();
    run_stealing(
        srcs.len(),
        |i| analyze_one_cached(srcs[i], config, cache),
        |i, r| out[i] = Some(r),
    );
    out.into_iter().map(|c| c.expect("work-stealing covered every index")).collect()
}

/// One script through the cache-aware hardened path (shared by the batch
/// driver above and the serve daemon's per-request workers).
pub fn analyze_one_cached(
    src: &str,
    config: &AnalysisConfig,
    cache: Option<&AnalysisCache>,
) -> CachedScript {
    let hash = ContentHash::of(src.as_bytes());
    if let Some(rec) = cache.and_then(|c| c.get(&hash)) {
        return replay(hash, &rec);
    }
    let guarded = match isolate("analyze", || analyze_script_guarded(src, &config.limits)) {
        Ok(g) => g,
        Err(e) => {
            jsdetect_obs::counter_add(e.counter_name(), 1);
            GuardedScript { analysis: None, outcome: OutcomeKind::Rejected, error: Some(e) }
        }
    };
    let result = distill(hash, &guarded, false);
    if let Some(cache) = cache {
        cache.put(
            &hash,
            &CacheRecord {
                outcome: result.outcome,
                error_kind: result.error_kind.clone(),
                error_msg: result.error_msg.clone(),
                payload: result.payload.clone(),
            },
        );
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze_many_guarded;
    use jsdetect_cache::CacheConfig;
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn scratch() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!(
            "jsdetect-core-cached-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn warm_scan_replays_identical_verdicts_without_reanalysis() {
        let dir = scratch();
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::open(CacheConfig::new(&dir, &config.limits)).unwrap();
        let bomb = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
        let srcs = ["var x = 1; f(x);", "var ;;; broken", bomb.as_str()];

        let cold = analyze_many_cached(&srcs, &config, &cache);
        assert!(cold.iter().all(|c| !c.from_cache));
        assert_eq!(cold[0].outcome, OutcomeKind::Ok);
        assert_eq!(cold[1].outcome, OutcomeKind::Degraded);
        assert_eq!(cold[2].outcome, OutcomeKind::Rejected);
        assert_eq!(cold[2].error_kind, "ast_depth_exceeded");
        assert!(cold[2].payload.is_none());

        // Fresh handle: memory cold, disk warm.
        let cache2 = AnalysisCache::open(CacheConfig::new(&dir, &config.limits)).unwrap();
        let warm = analyze_many_cached(&srcs, &config, &cache2);
        assert!(warm.iter().all(|c| c.from_cache));
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(c.outcome, w.outcome);
            assert_eq!(c.error_kind, w.error_kind);
            assert_eq!(c.error_msg, w.error_msg);
            assert_eq!(c.payload, w.payload);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cached_outcomes_match_the_uncached_guarded_path() {
        let dir = scratch();
        let config = AnalysisConfig::default();
        let cache = AnalysisCache::open(CacheConfig::new(&dir, &config.limits)).unwrap();
        let srcs = ["var x = 1;", "function f(a) { return a + 1; }", "var ;;; broken"];
        let cached = analyze_many_cached(&srcs, &config, &cache);
        let guarded = analyze_many_guarded(&srcs, &config);
        for (c, g) in cached.iter().zip(&guarded) {
            assert_eq!(c.outcome, g.outcome);
            assert_eq!(c.payload, g.analysis.as_ref().map(FeaturePayload::extract));
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

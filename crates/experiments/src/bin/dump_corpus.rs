//! Utility — dump a simulated corpus to disk as `.js` files for manual
//! inspection (the counterpart of the paper's manual-review steps).
//!
//! ```sh
//! dump_corpus --kind alexa --n 20 --out /tmp/corpus     # wild population
//! dump_corpus --kind regular --n 20 --out /tmp/corpus   # plain generator
//! dump_corpus --kind groundtruth --n 5 --out /tmp/corpus # per-technique
//! ```

use jsdetect_corpus::{
    alexa_population, malware_population, npm_population, GroundTruth, MalwareSource,
};
use jsdetect_transform::Technique;
use std::path::Path;

fn write(dir: &Path, name: &str, contents: &str) {
    let path = dir.join(name);
    if let Err(e) = std::fs::write(&path, contents) {
        eprintln!("cannot write {}: {}", path.display(), e);
        std::process::exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let get = |flag: &str, default: &str| -> String {
        argv.iter()
            .position(|a| a == flag)
            .and_then(|i| argv.get(i + 1).cloned())
            .unwrap_or_else(|| default.to_string())
    };
    let kind = get("--kind", "regular");
    let n: usize = get("--n", "10").parse().unwrap_or(10);
    let seed: u64 = get("--seed", "42").parse().unwrap_or(42);
    let out = std::path::PathBuf::from(get("--out", "corpus_dump"));
    if let Err(e) = std::fs::create_dir_all(&out) {
        eprintln!("cannot create directory {}: {}", out.display(), e);
        std::process::exit(1);
    }

    match kind.as_str() {
        "regular" => {
            for (i, src) in jsdetect_corpus::regular_corpus(n, seed).iter().enumerate() {
                write(&out, &format!("regular_{:04}.js", i), src);
            }
        }
        "alexa" => {
            for (i, s) in alexa_population(64, n, 0, seed).iter().enumerate() {
                let label = if s.truth.is_empty() {
                    "regular".to_string()
                } else {
                    s.truth.iter().map(|t| t.as_str()).collect::<Vec<_>>().join("+")
                };
                write(&out, &format!("alexa_{:04}_{}.js", i, label), &s.src);
            }
        }
        "npm" => {
            for (i, s) in npm_population(64, n, 1000, seed).iter().enumerate() {
                let label = if s.truth.is_empty() {
                    "regular".to_string()
                } else {
                    s.truth.iter().map(|t| t.as_str()).collect::<Vec<_>>().join("+")
                };
                write(&out, &format!("npm_{:04}_{}.js", i, label), &s.src);
            }
        }
        "malware" => {
            for source in [MalwareSource::Dnc, MalwareSource::Hynek, MalwareSource::Bsi] {
                for (i, s) in malware_population(source, 5, n, seed).iter().enumerate() {
                    let label = if s.truth.is_empty() {
                        "regular".to_string()
                    } else {
                        s.truth.iter().map(|t| t.as_str()).collect::<Vec<_>>().join("+")
                    };
                    write(
                        &out,
                        &format!("{}_{:04}_{}.js", source.as_str().to_lowercase(), i, label),
                        &s.src,
                    );
                }
            }
        }
        "groundtruth" => {
            let gt = GroundTruth::generate(n, seed);
            for (i, s) in gt.regular.iter().enumerate() {
                write(&out, &format!("gt_{:04}_regular.js", i), &s.src);
            }
            for t in Technique::ALL {
                for (i, s) in gt.pool(t).iter().enumerate() {
                    write(&out, &format!("gt_{:04}_{}.js", i, t.as_str()), &s.src);
                }
            }
        }
        other => {
            eprintln!("unknown --kind {} (expected regular|alexa|npm|malware|groundtruth)", other);
            std::process::exit(2);
        }
    }
    eprintln!("corpus written to {}", out.display());
}

//! Detector configuration.

use jsdetect_features::FeatureConfig;
use jsdetect_guard::Limits;
use jsdetect_ml::{BaseParams, ForestParams, Strategy};
use serde::{Deserialize, Serialize};

/// Configuration shared by the level-1 and level-2 detectors.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Multi-label strategy; the paper's validation picked classifier
    /// chains (§III-D3).
    pub strategy: Strategy,
    /// Base classifier; the paper's validation picked random forests.
    pub base: BaseParams,
    /// Number of 4-gram vocabulary dimensions.
    pub max_ngrams: usize,
    /// Which feature families to use.
    pub features: FeatureConfig,
    /// RNG seed for training.
    pub seed: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            strategy: Strategy::ClassifierChain,
            base: BaseParams::Forest(ForestParams { n_trees: 32, ..Default::default() }),
            max_ngrams: 250,
            features: FeatureConfig::default(),
            seed: 0,
        }
    }
}

/// Configuration for hardened batch analysis
/// ([`crate::analyze_many_guarded`]).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisConfig {
    /// Per-script resource budgets.
    pub limits: Limits,
    /// Stop reporting after the first rejected script instead of
    /// quarantining it and continuing (the CLI's `--fail-fast`).
    pub fail_fast: bool,
}

impl Default for AnalysisConfig {
    /// Defaults to keep-going scanning under [`Limits::wild`].
    fn default() -> Self {
        AnalysisConfig { limits: Limits::wild(), fail_fast: false }
    }
}

impl AnalysisConfig {
    /// Preset for wild-corpus scanning (the default).
    pub fn wild() -> Self {
        AnalysisConfig::default()
    }

    /// Preset for trusted inputs: only the stack-overflow depth guard,
    /// results identical to the pre-sandbox pipeline.
    pub fn trusted() -> Self {
        AnalysisConfig { limits: Limits::trusted(), fail_fast: false }
    }

    /// Preset for interactive / latency-sensitive use.
    pub fn interactive() -> Self {
        AnalysisConfig { limits: Limits::interactive(), fail_fast: false }
    }
}

impl DetectorConfig {
    /// A configuration with fewer trees, for tests and quick runs.
    pub fn fast() -> Self {
        DetectorConfig {
            base: BaseParams::Forest(ForestParams { n_trees: 12, ..Default::default() }),
            max_ngrams: 120,
            ..Default::default()
        }
    }

    /// Sets the seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        if let BaseParams::Forest(f) = &mut self.base {
            f.seed = seed;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_uses_chain_and_forest() {
        let c = DetectorConfig::default();
        assert_eq!(c.strategy, Strategy::ClassifierChain);
        assert!(matches!(c.base, BaseParams::Forest(_)));
    }

    #[test]
    fn with_seed_propagates_to_forest() {
        let c = DetectorConfig::default().with_seed(9);
        assert_eq!(c.seed, 9);
        match c.base {
            BaseParams::Forest(f) => assert_eq!(f.seed, 9),
            _ => panic!("expected forest"),
        }
    }
}

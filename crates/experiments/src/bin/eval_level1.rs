//! §III-E1 (Test Set 1, level 1) — detection accuracy over the held-out
//! regular / minified / obfuscated pools.
//!
//! Paper targets: regular 98.65%, obfuscated 99.81%, minified 99.71%,
//! overall 99.41%; transformed-vs-regular 99.69%.

use jsdetect_corpus::LabeledSample;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct Level1Result {
    regular_acc: f64,
    minified_acc: f64,
    obfuscated_acc: f64,
    overall_acc: f64,
    transformed_acc: f64,
    n_regular: usize,
    n_minified: usize,
    n_obfuscated: usize,
    paper: PaperRef,
}

#[derive(Serialize)]
struct PaperRef {
    regular_acc: f64,
    minified_acc: f64,
    obfuscated_acc: f64,
    overall_acc: f64,
    transformed_acc: f64,
}

fn main() {
    let args = Args::parse();
    let (detectors, pools) = or_exit(train_cached(&args));

    let count = |samples: &[LabeledSample], check: &dyn Fn(&jsdetect::Level1Prediction) -> bool| {
        let srcs: Vec<&str> = samples.iter().map(|s| s.src.as_str()).collect();
        let preds = detectors.level1.predict_many(&srcs);
        let mut ok = 0usize;
        let mut n = 0usize;
        for p in preds.iter().flatten() {
            n += 1;
            if check(p) {
                ok += 1;
            }
        }
        (ok, n)
    };

    let (reg_ok, reg_n) = count(&pools.test_regular, &|p| !p.is_transformed());
    let (min_ok, min_n) = count(&pools.test_minified, &|p| p.minified >= 0.5);
    let (obf_ok, obf_n) = count(&pools.test_obfuscated, &|p| p.obfuscated >= 0.5);
    // Transformed = minified and/or obfuscated flag fires.
    let (tr_min_ok, _) = count(&pools.test_minified, &|p| p.is_transformed());
    let (tr_obf_ok, _) = count(&pools.test_obfuscated, &|p| p.is_transformed());

    let pct = |ok: usize, n: usize| 100.0 * ok as f64 / n.max(1) as f64;
    let result = Level1Result {
        regular_acc: pct(reg_ok, reg_n),
        minified_acc: pct(min_ok, min_n),
        obfuscated_acc: pct(obf_ok, obf_n),
        overall_acc: pct(reg_ok + min_ok + obf_ok, reg_n + min_n + obf_n),
        transformed_acc: pct(reg_ok + tr_min_ok + tr_obf_ok, reg_n + min_n + obf_n),
        n_regular: reg_n,
        n_minified: min_n,
        n_obfuscated: obf_n,
        paper: PaperRef {
            regular_acc: 98.65,
            minified_acc: 99.71,
            obfuscated_acc: 99.81,
            overall_acc: 99.41,
            transformed_acc: 99.69,
        },
    };

    println!("Level-1 detector accuracy (Test Set 1, §III-E1)");
    println!("{:-<64}", "");
    println!("{:24} {:>12} {:>12}", "class", "measured", "paper");
    println!(
        "{:24} {:>11.2}% {:>11.2}%",
        format!("regular (n={})", result.n_regular),
        result.regular_acc,
        result.paper.regular_acc
    );
    println!(
        "{:24} {:>11.2}% {:>11.2}%",
        format!("minified (n={})", result.n_minified),
        result.minified_acc,
        result.paper.minified_acc
    );
    println!(
        "{:24} {:>11.2}% {:>11.2}%",
        format!("obfuscated (n={})", result.n_obfuscated),
        result.obfuscated_acc,
        result.paper.obfuscated_acc
    );
    println!("{:24} {:>11.2}% {:>11.2}%", "overall", result.overall_acc, result.paper.overall_acc);
    println!(
        "{:24} {:>11.2}% {:>11.2}%",
        "transformed", result.transformed_acc, result.paper.transformed_acc
    );
    or_exit(write_json(&args, "eval_level1", &result));
}

//! Per-file outcome accounting and the quarantine JSONL export.

use crate::AnalysisError;

/// The three-way verdict every scanned file receives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutcomeKind {
    /// Full analysis succeeded; the feature vector is the real thing.
    Ok,
    /// Parse (or a later stage) failed but the lexer-only fallback vector
    /// was emitted, flagged by `ScriptAnalysis::degraded`.
    Degraded,
    /// A resource budget was blown or a stage panicked; nothing usable was
    /// produced beyond the error record itself.
    Rejected,
}

impl OutcomeKind {
    /// Stable lowercase tag used in JSONL records and CLI summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            OutcomeKind::Ok => "ok",
            OutcomeKind::Degraded => "degraded",
            OutcomeKind::Rejected => "rejected",
        }
    }
}

/// One file's verdict for the quarantine report.
#[derive(Debug, Clone)]
pub struct QuarantineRecord {
    /// File path (or synthetic label) the outcome belongs to.
    pub file: String,
    /// Three-way verdict.
    pub outcome: OutcomeKind,
    /// Machine-readable error kind (absent for `Ok`). Owned rather than
    /// `&'static` so replayed verdicts (e.g. from the analysis cache) can
    /// carry kinds that were deserialized, not freshly matched.
    pub error_kind: Option<String>,
    /// Human-readable error rendering (absent for `Ok`).
    pub error: Option<String>,
}

/// Accumulates per-file outcomes across a batch and exports them as JSONL.
#[derive(Debug, Default, Clone)]
pub struct QuarantineReport {
    records: Vec<QuarantineRecord>,
}

impl QuarantineReport {
    /// An empty report.
    pub fn new() -> QuarantineReport {
        QuarantineReport::default()
    }

    /// Records one file's outcome.
    pub fn push(
        &mut self,
        file: impl Into<String>,
        outcome: OutcomeKind,
        error: Option<&AnalysisError>,
    ) {
        self.records.push(QuarantineRecord {
            file: file.into(),
            outcome,
            error_kind: error.map(|e| e.kind().to_string()),
            error: error.map(|e| e.to_string()),
        });
    }

    /// Records one file's outcome from already-rendered error fields (the
    /// replay path: cache records store the kind tag and message, not the
    /// structured [`AnalysisError`]). Empty strings mean "no error".
    pub fn push_replayed(
        &mut self,
        file: impl Into<String>,
        outcome: OutcomeKind,
        error_kind: &str,
        error: &str,
    ) {
        self.records.push(QuarantineRecord {
            file: file.into(),
            outcome,
            error_kind: (!error_kind.is_empty()).then(|| error_kind.to_string()),
            error: (!error.is_empty()).then(|| error.to_string()),
        });
    }

    /// All records, in push order.
    pub fn records(&self) -> &[QuarantineRecord] {
        &self.records
    }

    /// `(ok, degraded, rejected)` counts.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for r in &self.records {
            match r.outcome {
                OutcomeKind::Ok => c.0 += 1,
                OutcomeKind::Degraded => c.1 += 1,
                OutcomeKind::Rejected => c.2 += 1,
            }
        }
        c
    }

    /// Per-error-kind counts (sorted by kind), for summary tables.
    pub fn error_kind_counts(&self) -> Vec<(String, u64)> {
        let mut out: Vec<(String, u64)> = Vec::new();
        for r in &self.records {
            let Some(kind) = &r.error_kind else { continue };
            match out.iter_mut().find(|(k, _)| k == kind) {
                Some((_, n)) => *n += 1,
                None => out.push((kind.clone(), 1)),
            }
        }
        out.sort();
        out
    }

    /// Renders the report as JSONL, one object per file:
    /// `{"file":…,"outcome":"ok"|"degraded"|"rejected","error_kind":…,"error":…}`.
    /// `error_kind`/`error` are `null` for `Ok` outcomes. Escaping is
    /// hand-rolled so the guard crate stays dependency-free beyond serde.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str("{\"file\":\"");
            escape_json_into(&r.file, &mut out);
            out.push_str("\",\"outcome\":\"");
            out.push_str(r.outcome.as_str());
            out.push_str("\",\"error_kind\":");
            match &r.error_kind {
                Some(k) => {
                    out.push('"');
                    escape_json_into(k, &mut out);
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str(",\"error\":");
            match &r.error {
                Some(e) => {
                    out.push('"');
                    escape_json_into(e, &mut out);
                    out.push('"');
                }
                None => out.push_str("null"),
            }
            out.push_str("}\n");
        }
        out
    }
}

fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_kinds_aggregate() {
        let mut q = QuarantineReport::new();
        q.push("a.js", OutcomeKind::Ok, None);
        q.push(
            "b.js",
            OutcomeKind::Degraded,
            Some(&AnalysisError::Parse { msg: "bad".into(), pos: 3 }),
        );
        q.push(
            "c.js",
            OutcomeKind::Rejected,
            Some(&AnalysisError::AstDepthExceeded { limit: 150 }),
        );
        q.push(
            "d.js",
            OutcomeKind::Rejected,
            Some(&AnalysisError::AstDepthExceeded { limit: 150 }),
        );
        assert_eq!(q.counts(), (1, 1, 2));
        assert_eq!(
            q.error_kind_counts(),
            vec![("ast_depth_exceeded".to_string(), 2), ("parse_error".to_string(), 1)]
        );
    }

    #[test]
    fn jsonl_escapes_and_nulls() {
        let mut q = QuarantineReport::new();
        q.push("we\"ird\npath.js", OutcomeKind::Ok, None);
        q.push(
            "b.js",
            OutcomeKind::Rejected,
            Some(&AnalysisError::StagePanicked { stage: "flow", detail: "tab\there".into() }),
        );
        let jsonl = q.to_jsonl();
        let lines: Vec<&str> = jsonl.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"file\":\"we\\\"ird\\npath.js\",\"outcome\":\"ok\",\"error_kind\":null,\"error\":null}"
        );
        assert!(lines[1].contains("\"error_kind\":\"stage_panicked\""));
        assert!(lines[1].contains("tab\\there"));
    }
}

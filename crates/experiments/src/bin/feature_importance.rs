//! Feature-importance analysis (paper §III-B) — which features the
//! trained forests actually rely on per class and per technique.
//!
//! The paper motivates its hand-picked features by the syntactic traces
//! each transformation leaves; this experiment verifies the trained model
//! agrees (e.g. identifier obfuscation should hinge on `hex_binding_ratio`,
//! minification on layout statistics, no-alphanumeric on charset ratios).

use jsdetect::Technique;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct ImportanceReport {
    level1: Vec<(String, Vec<(String, f64)>)>,
    level2: Vec<(String, Vec<(String, f64)>)>,
}

fn top(named: Vec<(String, f64)>, k: usize) -> Vec<(String, f64)> {
    named.into_iter().take(k).collect()
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let mut report = ImportanceReport { level1: Vec::new(), level2: Vec::new() };

    println!("Level-1 feature importances (top 8 per class)");
    println!("{:-<64}", "");
    for (class, name) in [(0usize, "regular"), (1, "minified"), (2, "obfuscated")] {
        let imp = top(detectors.level1.feature_importances(class), 8);
        println!("\n[{}]", name);
        for (f, v) in &imp {
            println!("  {:44} {:6.3}", f, v);
        }
        report.level1.push((name.to_string(), imp));
    }

    println!("\nLevel-2 feature importances (top 6 per technique)");
    println!("{:-<64}", "");
    for t in Technique::ALL {
        let imp = top(detectors.level2.feature_importances(t), 6);
        println!("\n[{}]", t.as_str());
        for (f, v) in &imp {
            println!("  {:44} {:6.3}", f, v);
        }
        report.level2.push((t.as_str().to_string(), imp));
    }

    or_exit(write_json(&args, "feature_importance", &report));
}

//! JavaScript code generator (AST → source text) for the `jsdetect` suite.
//!
//! Two output styles are supported: readable pretty-printing
//! ([`to_source`]) and compact whitespace-free output ([`to_minified`]).
//! The compact mode is the layout engine underneath the *minification
//! simple* transformation technique; the transformation passes combine it
//! with identifier shortening and dead-code removal.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod gen;
mod writer;

pub use gen::{escape_string, format_number, generate, to_minified, to_source, CodegenOptions};

//! The level-2 detector: which of the ten transformation techniques were
//! used (paper §III-C).

use crate::config::DetectorConfig;
use crate::vectorize::{analyze_many, vectorize_dataset};
use jsdetect_features::VectorSpace;
use jsdetect_ml::metrics::thresholded_top_k;
use jsdetect_ml::{Dataset, MultiLabel};
use jsdetect_obs::names;
use jsdetect_parser::ParseError;
use jsdetect_transform::Technique;
use serde::{Deserialize, Serialize};

/// The empirically selected probability threshold of §III-E2.
pub const DEFAULT_THRESHOLD: f32 = 0.10;

/// A trained level-2 detector over the ten techniques.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Level2Detector {
    space: VectorSpace,
    model: MultiLabel,
}

impl Level2Detector {
    /// Trains on `(source, technique-label-vector)` pairs; label vectors
    /// are indexed by [`Technique::index`].
    pub fn train(samples: &[(&str, Vec<bool>)], cfg: &DetectorConfig) -> Self {
        let srcs: Vec<&str> = samples.iter().map(|(s, _)| *s).collect();
        let analyses = analyze_many(&srcs);
        let kept: Vec<(&jsdetect_features::ScriptAnalysis, Vec<bool>)> = analyses
            .iter()
            .zip(samples)
            .filter_map(|(a, (_, labels))| a.as_ref().map(|a| (a, labels.clone())))
            .collect();
        Self::train_from_analyses(&kept, cfg)
    }

    /// Trains from pre-computed analyses (lets callers share one analysis
    /// pass between the level-1 and level-2 detectors).
    pub fn train_from_analyses(
        samples: &[(&jsdetect_features::ScriptAnalysis, Vec<bool>)],
        cfg: &DetectorConfig,
    ) -> Self {
        assert!(!samples.is_empty(), "no training sample parsed");
        let _t = jsdetect_obs::span(names::SPAN_LEVEL2_TRAIN);
        let space = VectorSpace::fit(samples.iter().map(|(a, _)| *a), cfg.max_ngrams, cfg.features);
        // Vectorize straight into the columnar store, reusing one scratch
        // row instead of materializing Vec<Vec<f32>>.
        let mut data = Dataset::zeros(samples.len(), space.dim());
        let mut row = Vec::with_capacity(space.dim());
        for (i, (a, _)) in samples.iter().enumerate() {
            space.vectorize_into(a, &mut row);
            data.fill_row(i, &row);
        }
        let y: Vec<Vec<bool>> = samples.iter().map(|(_, l)| l.clone()).collect();
        let model = MultiLabel::fit_dataset(&data, &y, cfg.strategy, &cfg.base);
        Level2Detector { space, model }
    }

    /// Per-technique probabilities, indexed by [`Technique::index`].
    ///
    /// # Errors
    ///
    /// Returns the parse error for invalid JavaScript.
    pub fn predict_proba(&self, src: &str) -> Result<Vec<f32>, ParseError> {
        let _t = jsdetect_obs::span(names::SPAN_LEVEL2_PREDICT);
        let a = jsdetect_features::analyze_script(src)?;
        Ok(self.model.predict_proba(&self.space.vectorize(&a)))
    }

    /// Batch probabilities (parallel vectorization into one columnar
    /// batch, flattened-forest batch inference); unparseable scripts
    /// yield `None`.
    pub fn predict_proba_many(&self, srcs: &[&str]) -> Vec<Option<Vec<f32>>> {
        if srcs.is_empty() {
            return Vec::new();
        }
        let _t = jsdetect_obs::span(names::SPAN_LEVEL2_PREDICT_BATCH);
        let (data, parsed) = vectorize_dataset(&self.space, srcs);
        let probs = self.model.predict_proba_batch(&data);
        parsed.into_iter().zip(probs).map(|(ok, p)| ok.then_some(p)).collect()
    }

    /// Per-technique probabilities for one pre-extracted feature payload
    /// (the cache/serve path: no lexing or parsing).
    pub fn predict_proba_payload(&self, payload: &jsdetect_features::FeaturePayload) -> Vec<f32> {
        let _t = jsdetect_obs::span(names::SPAN_LEVEL2_PREDICT);
        self.model.predict_proba(&self.space.vectorize_payload(payload))
    }

    /// Batch probabilities over pre-extracted payloads; `None` inputs
    /// (rejected scripts) yield `None` outputs.
    pub fn predict_proba_payloads(
        &self,
        payloads: &[Option<&jsdetect_features::FeaturePayload>],
    ) -> Vec<Option<Vec<f32>>> {
        crate::level1::batch_payload_proba(&self.space, &self.model, payloads, || {
            jsdetect_obs::span(names::SPAN_LEVEL2_PREDICT_BATCH)
        })
    }

    /// The thresholded Top-k rule of §III-E2: the `k` most probable
    /// techniques whose probability exceeds `threshold`.
    pub fn predict_techniques(
        &self,
        src: &str,
        k: usize,
        threshold: f32,
    ) -> Result<Vec<Technique>, ParseError> {
        let probs = self.predict_proba(src)?;
        Ok(thresholded_top_k(&probs, k, threshold).into_iter().map(|i| Technique::ALL[i]).collect())
    }

    /// The fitted vector space (for inspection).
    pub fn space(&self) -> &VectorSpace {
        &self.space
    }

    /// Named feature importances for one technique, most important first.
    pub fn feature_importances(&self, technique: Technique) -> Vec<(String, f64)> {
        crate::level1::named_importances(
            &self.space,
            self.model.feature_importances(technique.index()),
        )
    }

    /// Restores internal indexes after deserialization and validates the
    /// flattened forest arrays.
    pub fn rebuild_index(&mut self) {
        self.space.rebuild_index();
        self.model.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_constant_matches_paper() {
        assert!((DEFAULT_THRESHOLD - 0.10).abs() < f32::EPSILON);
    }
}

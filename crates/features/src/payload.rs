//! The space-independent feature payload — the unit the analysis cache
//! stores.
//!
//! A fitted [`VectorSpace`](crate::VectorSpace) is corpus-dependent (its
//! 4-gram vocabulary comes from training), so caching final vectors would
//! tie every cache record to one trained model. Instead the cache stores a
//! [`FeaturePayload`]: the hand-picked and lint feature values exactly as
//! computed (f32), plus the *raw* 4-gram counts. Projecting a payload into
//! any fitted space with
//! [`VectorSpace::vectorize_payload`](crate::VectorSpace::vectorize_payload)
//! reproduces [`VectorSpace::vectorize`](crate::VectorSpace::vectorize)
//! bit for bit: the stored blocks are copied verbatim and the n-gram block
//! is recomputed from exact integer counts with the same f32 operations.

use crate::analysis::ScriptAnalysis;
use crate::handpicked::handpicked_features;
use crate::ngrams::{ngram_counts, Gram};

/// Everything needed to re-vectorize one analyzed script without its AST.
#[derive(Debug, Clone, PartialEq)]
pub struct FeaturePayload {
    /// Hand-picked feature values ([`crate::N_HANDPICKED`] of them).
    pub handpicked: Vec<f32>,
    /// Lint-summary feature values ([`jsdetect_lint::LintSummary::N_FEATURES`]).
    pub lint: Vec<f32>,
    /// Normalization-delta feature values ([`crate::deltas::N_NORMALIZE`]).
    pub normalize: Vec<f32>,
    /// Raw 4-gram counts of the pre-order kind stream, sorted by gram for
    /// a deterministic serialized form.
    pub ngrams: Vec<(Gram, u32)>,
    /// Whether the analysis this was extracted from was the lexer-only
    /// degraded fallback.
    pub degraded: bool,
}

impl FeaturePayload {
    /// Distills one analysis into its cacheable payload.
    pub fn extract(a: &ScriptAnalysis) -> FeaturePayload {
        let mut ngrams: Vec<(Gram, u32)> = ngram_counts(&a.program).into_iter().collect();
        ngrams.sort_unstable_by_key(|(g, _)| *g);
        FeaturePayload {
            handpicked: handpicked_features(a),
            lint: a.lint.features(),
            normalize: a.normalize.clone(),
            ngrams,
            degraded: a.degraded,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_script;
    use crate::space::{FeatureConfig, VectorSpace};
    use crate::{LintSummary, N_HANDPICKED};

    #[test]
    fn extract_carries_all_three_blocks() {
        let a = analyze_script("var x = 1; if (x) { f(x); }").unwrap();
        let p = FeaturePayload::extract(&a);
        assert_eq!(p.handpicked.len(), N_HANDPICKED);
        assert_eq!(p.lint.len(), LintSummary::N_FEATURES);
        assert_eq!(p.normalize.len(), crate::deltas::N_NORMALIZE);
        assert!(!p.ngrams.is_empty());
        assert!(!p.degraded);
    }

    #[test]
    fn ngram_pairs_are_sorted_and_deduplicated() {
        let a = analyze_script("var x = 1; var y = 2; var z = 3;").unwrap();
        let p = FeaturePayload::extract(&a);
        for w in p.ngrams.windows(2) {
            assert!(w[0].0 < w[1].0, "grams must be strictly increasing");
        }
    }

    #[test]
    fn payload_vectorizes_bit_identically_for_every_config() {
        let srcs = ["var x = 1; f(x);", "function g(a) { return a ? a + 1 : 0; }"];
        let analyses: Vec<_> = srcs.iter().map(|s| analyze_script(s).unwrap()).collect();
        for config in [
            FeatureConfig::default(),
            FeatureConfig { handpicked: true, ngrams: false, lint: false, normalize: false },
            FeatureConfig { handpicked: false, ngrams: true, lint: false, normalize: false },
            FeatureConfig { handpicked: false, ngrams: false, lint: true, normalize: false },
            FeatureConfig { handpicked: false, ngrams: false, lint: false, normalize: true },
        ] {
            let vs = VectorSpace::fit(analyses.iter(), 64, config);
            for a in &analyses {
                let payload = FeaturePayload::extract(a);
                assert_eq!(vs.vectorize_payload(&payload), vs.vectorize(a));
            }
        }
    }
}

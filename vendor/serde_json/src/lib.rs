//! JSON text front-end for the vendored serde subset: `to_string`,
//! `to_string_pretty`, and `from_str` over [`serde::Value`].
//!
//! The emitter writes deterministic output (struct fields in declaration
//! order, map keys sorted by the serde impls); the parser is a small
//! recursive-descent JSON reader with full string-escape support.

#![allow(clippy::all)]

use serde::{DeError, Deserialize, Serialize, Value};

pub use serde::Value as JsonValue;

/// Error produced by JSON parsing or value decoding.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses JSON text and decodes it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::from_value(&value)?)
}

// ---------------------------------------------------------------------------
// Emitter
// ---------------------------------------------------------------------------

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Int(i) => {
            out.push_str(&i.to_string());
        }
        Value::UInt(u) => {
            out.push_str(&u.to_string());
        }
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Arr(items) => write_seq(
            items.iter(),
            items.len(),
            out,
            indent,
            depth,
            '[',
            ']',
            |item, out, indent, depth| {
                write_value(item, out, indent, depth);
            },
        ),
        Value::Obj(entries) => write_seq(
            entries.iter(),
            entries.len(),
            out,
            indent,
            depth,
            '{',
            '}',
            |(k, val), out, indent, depth| {
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth);
            },
        ),
    }
}

fn write_seq<I: Iterator>(
    items: I,
    len: usize,
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(I::Item, &mut String, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.extend(std::iter::repeat(' ').take(step * (depth + 1)));
        }
        write_item(item, out, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(step * depth));
    }
    out.push(close);
}

fn write_float(f: f64, out: &mut String) {
    if !f.is_finite() {
        out.push_str("null");
    } else if f == f.trunc() && f.abs() < 1e15 {
        // Keep a fractional marker so the value re-parses as a float.
        out.push_str(&format!("{:.1}", f));
    } else {
        out.push_str(&format!("{}", f));
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error::new("unexpected end of JSON input"))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            b't' => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            b'f' => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            b'"' => self.string().map(Value::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            _ => self.number(),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            entries.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error::new("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.eat_keyword("\\u")?;
                                let lo = self.hex4()?;
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(Error::new("invalid escape character")),
                    }
                }
                _ => {
                    // Copy one UTF-8 char.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let slice = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("truncated \\u escape"))?;
        let s = std::str::from_utf8(slice).map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' | b'-' | b'+' => self.pos += 1,
                b'.' | b'e' | b'E' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if text.is_empty() {
            return Err(Error::new(format!("unexpected character at byte {}", start)));
        }
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::new(format!("invalid number `{}`", text)))
    }
}

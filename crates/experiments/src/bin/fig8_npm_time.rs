//! Figure 8 — technique-usage evolution in transformed npm scripts.
//!
//! Paper targets: minification simple ≈58.62% average, advanced ≈34.28%,
//! identifier obfuscation ≈9.71%, the rest below ~3%.

use jsdetect::Technique;
use jsdetect_corpus::npm_population;
use jsdetect_experiments::{or_exit, technique_usage_probability, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct TimePoint {
    month: usize,
    usage: Vec<(String, f64)>,
    n_transformed: usize,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let packages = args.scaled(30);
    let stride = 8usize;
    let mut points = Vec::new();
    for month in (0..jsdetect_corpus::N_MONTHS).step_by(stride) {
        let pop = npm_population(month, packages, 1_000, args.seed ^ (month as u64) ^ 0x8b);
        let srcs: Vec<&str> = pop.iter().map(|s| s.src.as_str()).collect();
        let (usage, n) = technique_usage_probability(&detectors, &srcs);
        eprintln!(
            "[fig8] month {:>2}: simple {:.1}% adv {:.1}% ident {:.1}% ({} transformed)",
            month,
            100.0 * usage[Technique::MinificationSimple.index()],
            100.0 * usage[Technique::MinificationAdvanced.index()],
            100.0 * usage[Technique::IdentifierObfuscation.index()],
            n
        );
        points.push(TimePoint {
            month,
            usage: Technique::ALL
                .iter()
                .map(|t| (t.as_str().to_string(), 100.0 * usage[t.index()]))
                .collect(),
            n_transformed: n,
        });
    }

    println!("Figure 8 — npm technique usage over time");
    println!("{:-<76}", "");
    println!(
        "{:>6} {:>11} {:>11} {:>11} {:>8}",
        "month", "min simple", "min adv", "ident obf", "n"
    );
    let mut avg = [0.0f64; 3];
    for p in &points {
        let get =
            |name: &str| p.usage.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0.0);
        avg[0] += get("minification_simple");
        avg[1] += get("minification_advanced");
        avg[2] += get("identifier_obfuscation");
        println!(
            "{:>6} {:>10.2}% {:>10.2}% {:>10.2}% {:>8}",
            p.month,
            get("minification_simple"),
            get("minification_advanced"),
            get("identifier_obfuscation"),
            p.n_transformed
        );
    }
    let n = points.len().max(1) as f64;
    println!(
        "\naverages: simple {:.2}% / advanced {:.2}% / ident {:.2}%",
        avg[0] / n,
        avg[1] / n,
        avg[2] / n
    );
    println!("paper averages: simple 58.62%, advanced 34.28%, ident 9.71%");
    or_exit(write_json(&args, "fig8_npm_time", &points));
}

//! The legacy row-major learning path, preserved verbatim.
//!
//! This module is the equivalence oracle for the columnar rewrite in
//! [`crate::tree`] / [`crate::forest`] and the "before" side of the
//! persisted bench trajectory (`BENCH_ml.json`): it grows trees over
//! `&[Vec<f32>]` with per-node value sorts, clones every feature row when
//! bootstrapping, and stores enum-tagged nodes. Tests in
//! `tests/equivalence.rs` pin the new path's predictions to this one
//! bit-for-bit for a fixed seed.

use crate::forest::ForestParams;
use crate::tree::{MaxFeatures, TreeParams};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

#[derive(Debug, Clone)]
enum Node {
    Leaf { prob: f32 },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// The pre-rewrite row-major CART tree (enum-tagged node soup, per-node
/// candidate sorts). Kept only for equivalence testing and benchmarking.
#[derive(Debug, Clone)]
pub struct RowMajorTree {
    nodes: Vec<Node>,
}

impl RowMajorTree {
    /// Fits a tree exactly as the legacy implementation did.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f32>], y: &[bool], params: &TreeParams, rng: &mut StdRng) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n_features = x[0].len();
        let mut builder = Builder { x, y, params, rng, n_features };
        let mut nodes = Vec::new();
        let idx: Vec<u32> = (0..x.len() as u32).collect();
        builder.grow(&mut nodes, idx, 0);
        RowMajorTree { nodes }
    }

    /// Probability that `row` belongs to the positive class.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { prob } => return *prob,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

struct Builder<'a> {
    x: &'a [Vec<f32>],
    y: &'a [bool],
    params: &'a TreeParams,
    rng: &'a mut StdRng,
    n_features: usize,
}

impl Builder<'_> {
    fn grow(&mut self, nodes: &mut Vec<Node>, idx: Vec<u32>, depth: usize) -> usize {
        let n = idx.len();
        let positives = idx.iter().filter(|&&i| self.y[i as usize]).count();
        let prob = positives as f32 / n as f32;

        let perfect = positives == 0 || positives == n;
        if perfect || depth >= self.params.max_depth || n < self.params.min_samples_split {
            nodes.push(Node::Leaf { prob });
            return nodes.len() - 1;
        }

        match self.best_split(&idx) {
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
                    idx.iter().partition(|&&i| self.x[i as usize][feature] <= threshold);
                if left_idx.len() < self.params.min_samples_leaf
                    || right_idx.len() < self.params.min_samples_leaf
                {
                    nodes.push(Node::Leaf { prob });
                    return nodes.len() - 1;
                }
                let me = nodes.len();
                nodes.push(Node::Leaf { prob }); // placeholder
                let left = self.grow(nodes, left_idx, depth + 1);
                let right = self.grow(nodes, right_idx, depth + 1);
                nodes[me] = Node::Split { feature, threshold, left, right };
                me
            }
            None => {
                nodes.push(Node::Leaf { prob });
                nodes.len() - 1
            }
        }
    }

    fn best_split(&mut self, idx: &[u32]) -> Option<(usize, f32)> {
        let k = resolve_max_features(self.params.max_features, self.n_features);
        let mut features: Vec<usize> = (0..self.n_features).collect();
        features.shuffle(self.rng);
        features.truncate(k);

        let n = idx.len() as f64;
        let total_pos = idx.iter().filter(|&&i| self.y[i as usize]).count() as f64;

        let mut best: Option<(usize, f32, f64)> = None;
        for &feature in &features {
            let mut vals: Vec<(f32, bool)> =
                idx.iter().map(|&i| (self.x[i as usize][feature], self.y[i as usize])).collect();
            vals.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());

            let mut left_n = 0f64;
            let mut left_pos = 0f64;
            for w in 0..vals.len() - 1 {
                left_n += 1.0;
                if vals[w].1 {
                    left_pos += 1.0;
                }
                if vals[w].0 == vals[w + 1].0 {
                    continue;
                }
                let right_n = n - left_n;
                let right_pos = total_pos - left_pos;
                let gini_left = gini(left_pos, left_n);
                let gini_right = gini(right_pos, right_n);
                let weighted = (left_n * gini_left + right_n * gini_right) / n;
                if best.is_none_or(|(_, _, b)| weighted < b) {
                    best = Some((feature, midpoint(vals[w].0, vals[w + 1].0), weighted));
                }
            }
        }
        let parent_gini = gini(total_pos, n);
        match best {
            Some((f, t, g)) if g <= parent_gini + 1e-12 => Some((f, t)),
            _ => None,
        }
    }
}

fn gini(pos: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

fn midpoint(a: f32, b: f32) -> f32 {
    let m = a + (b - a) / 2.0;
    if m >= b {
        a
    } else {
        m
    }
}

/// The legacy `MaxFeatures::resolve` (identical formula; duplicated here
/// so the reference path stays self-contained).
fn resolve_max_features(mf: MaxFeatures, n_features: usize) -> usize {
    match mf {
        MaxFeatures::All => n_features,
        MaxFeatures::Sqrt => (n_features as f64).sqrt().ceil() as usize,
        MaxFeatures::Fixed(k) => k.min(n_features),
    }
    .max(1)
}

/// The pre-rewrite row-major forest: clones every sampled feature row per
/// tree. Per-tree seeds come from the caller so both the legacy
/// `(seed + i) * γ` stream and the fixed hash-mixed stream can be driven.
#[derive(Debug, Clone)]
pub struct RowMajorForest {
    trees: Vec<RowMajorTree>,
}

impl RowMajorForest {
    /// Fits with the *current* (hash-mixed) per-tree seeding so equivalence
    /// tests isolate the data-path change.
    pub fn fit(x: &[Vec<f32>], y: &[bool], params: &ForestParams) -> Self {
        Self::fit_with_seeds(x, y, params, &|i| params.tree_seed(i))
    }

    /// Fits with caller-supplied per-tree seeds (parallel, chunked across
    /// threads exactly like the legacy implementation).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit_with_seeds(
        x: &[Vec<f32>],
        y: &[bool],
        params: &ForestParams,
        seed_of: &(dyn Fn(usize) -> u64 + Sync),
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let mut trees: Vec<Option<RowMajorTree>> = vec![None; params.n_trees];
        let chunk = params.n_trees.div_ceil(n_threads.max(1)).max(1);
        crossbeam::thread::scope(|scope| {
            for (t, slot_chunk) in trees.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                scope.spawn(move |_| {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let i = base + off;
                        let mut rng = StdRng::seed_from_u64(seed_of(i));
                        let tree = if params.bootstrap {
                            let (bx, by) = bootstrap_sample(x, y, &mut rng);
                            RowMajorTree::fit(&bx, &by, &params.tree, &mut rng)
                        } else {
                            RowMajorTree::fit(x, y, &params.tree, &mut rng)
                        };
                        *slot = Some(tree);
                    }
                });
            }
        })
        .expect("forest training threads panicked");
        RowMajorForest { trees: trees.into_iter().map(Option::unwrap).collect() }
    }

    /// Mean positive-class probability across trees.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let sum: f32 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        sum / self.trees.len() as f32
    }
}

fn bootstrap_sample(x: &[Vec<f32>], y: &[bool], rng: &mut StdRng) -> (Vec<Vec<f32>>, Vec<bool>) {
    let n = x.len();
    let mut bx = Vec::with_capacity(n);
    let mut by = Vec::with_capacity(n);
    for _ in 0..n {
        let i = rng.gen_range(0..n);
        bx.push(x[i].clone());
        by.push(y[i]);
    }
    (bx, by)
}

//! Quickstart: train the two detectors at a small scale and classify a
//! few scripts.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jsdetect_suite::detector::{train_pipeline, DetectorConfig, Technique, DEFAULT_THRESHOLD};
use jsdetect_suite::transform::apply;

fn main() {
    // 1. Train. The paper trains on 21,000 scripts; 80 keeps this example
    //    fast while still reaching usable accuracy.
    println!("training detectors on a synthetic corpus (n=80)...");
    let t0 = std::time::Instant::now();
    let out = train_pipeline(80, 7, &DetectorConfig::fast().with_seed(7));
    let detectors = out.detectors;
    println!("trained in {:.1?}\n", t0.elapsed());

    // 2. Classify a hand-written (regular) script.
    let regular = r#"
        function formatPrice(value, currency) {
            var amount = Math.round(value * 100) / 100;
            return currency + ' ' + amount.toFixed(2);
        }
        console.log(formatPrice(12.5, 'EUR'));
    "#;
    let verdict = detectors.level1.predict(regular).unwrap();
    println!(
        "regular script    → transformed={} (regular={:.2} minified={:.2} obfuscated={:.2})",
        verdict.is_transformed(),
        verdict.regular,
        verdict.minified,
        verdict.obfuscated
    );

    // 3. Obfuscate the same script and classify again.
    let obfuscated =
        apply(regular, &[Technique::IdentifierObfuscation, Technique::StringObfuscation], 99)
            .unwrap();
    let verdict = detectors.level1.predict(&obfuscated).unwrap();
    println!(
        "obfuscated script → transformed={} (regular={:.2} minified={:.2} obfuscated={:.2})",
        verdict.is_transformed(),
        verdict.regular,
        verdict.minified,
        verdict.obfuscated
    );

    // 4. Ask level 2 which techniques were used (thresholded Top-k rule).
    let techniques =
        detectors.level2.predict_techniques(&obfuscated, 4, DEFAULT_THRESHOLD).unwrap();
    println!("\nlevel-2 report for the obfuscated script:");
    for t in techniques {
        println!("  - {}", t);
    }

    // 5. Minify instead — the verdict changes class.
    let minified = apply(regular, &[Technique::MinificationAdvanced], 99).unwrap();
    let verdict = detectors.level1.predict(&minified).unwrap();
    println!(
        "\nminified script   → minified={:.2} obfuscated={:.2}",
        verdict.minified, verdict.obfuscated
    );
    println!("minified source: {}", minified);
}

//! The global telemetry registry and its per-thread buffers.
//!
//! Recording always goes through a thread-local buffer: spans, counter
//! deltas, and histogram deltas accumulate lock-free on the recording
//! thread and are merged into the global registry under one short-lived
//! mutex hold — when the buffer fills, when the thread exits (thread-local
//! destructor), or on an explicit [`flush`]. Readers call [`snapshot`],
//! which flushes the calling thread first.
//!
//! Worker threads inside `std::thread::scope` (and the crossbeam shim over
//! it) MUST call [`flush`] at the end of their closure: the scope signals
//! completion when the closure returns, *before* TLS destructors run, so
//! a destructor-only flush races with — and routinely loses to — the
//! coordinator's snapshot. The destructor flush remains as a safety net
//! for plain `spawn`/`join` threads, where join does wait for TLS
//! destructors.

use crate::histogram::Histogram;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{LazyLock, Mutex, MutexGuard};

/// Flush the thread buffer to the global registry every this many span
/// events.
const FLUSH_EVERY: usize = 256;

/// Cap on retained raw span events (aggregated stats are unaffected;
/// events beyond the cap are counted in `dropped_events`).
const EVENT_CAP: usize = 262_144;

/// One completed span occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanEvent {
    /// Slash-joined nesting path, e.g. `analyze/parse`.
    pub path: String,
    /// Start offset from the process telemetry epoch, in nanoseconds.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Telemetry-assigned recording-thread id (dense, starts at 0).
    pub thread: u64,
}

/// Aggregate statistics for one span path.
#[derive(Debug, Clone)]
pub struct SpanStat {
    /// Slash-joined nesting path.
    pub path: String,
    /// Number of completed spans.
    pub count: u64,
    /// Total duration in nanoseconds.
    pub total_ns: u64,
    /// Shortest occurrence in nanoseconds.
    pub min_ns: u64,
    /// Longest occurrence in nanoseconds.
    pub max_ns: u64,
    /// Log-scaled latency distribution (nanoseconds).
    pub latency: Histogram,
}

/// A point-in-time copy of everything the registry has collected.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Per-path span aggregates, sorted by path.
    pub spans: Vec<SpanStat>,
    /// Raw span events in flush order (capped; see `dropped_events`).
    pub events: Vec<SpanEvent>,
    /// Counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauges (last write wins), sorted by name.
    pub gauges: Vec<(String, f64)>,
    /// Value histograms, sorted by name.
    pub hists: Vec<(String, Histogram)>,
    /// Raw span events dropped after the retention cap was hit.
    pub dropped_events: u64,
}

impl Snapshot {
    /// The aggregate for one span path, if recorded.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    /// A counter's value (0 when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| n == name).map_or(0, |(_, v)| *v)
    }

    /// A value histogram by name.
    pub fn hist(&self, name: &str) -> Option<&Histogram> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }
}

#[derive(Default)]
struct Global {
    spans: BTreeMap<String, SpanAgg>,
    events: Vec<SpanEvent>,
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    hists: BTreeMap<String, Histogram>,
    dropped_events: u64,
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    total_ns: u64,
    min_ns: u64,
    max_ns: u64,
    latency: Histogram,
}

impl SpanAgg {
    fn record(&mut self, dur_ns: u64) {
        if self.count == 0 {
            self.min_ns = dur_ns;
        } else {
            self.min_ns = self.min_ns.min(dur_ns);
        }
        self.max_ns = self.max_ns.max(dur_ns);
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(dur_ns);
        self.latency.record(dur_ns);
    }
}

static GLOBAL: LazyLock<Mutex<Global>> = LazyLock::new(|| Mutex::new(Global::default()));
static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

/// Poison-tolerant lock: a panic on another recording thread must not take
/// telemetry down with it.
fn global() -> MutexGuard<'static, Global> {
    GLOBAL.lock().unwrap_or_else(|e| e.into_inner())
}

impl Global {
    fn record_event(&mut self, ev: SpanEvent) {
        self.spans.entry(ev.path.clone()).or_default().record(ev.dur_ns);
        if self.events.len() < EVENT_CAP {
            self.events.push(ev);
        } else {
            self.dropped_events += 1;
        }
    }
}

pub(crate) struct ThreadState {
    pub(crate) thread: u64,
    /// Names of the currently open spans, innermost last.
    pub(crate) stack: Vec<&'static str>,
    events: Vec<SpanEvent>,
    counters: BTreeMap<&'static str, u64>,
    hists: BTreeMap<&'static str, Histogram>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
            stack: Vec::new(),
            events: Vec::new(),
            counters: BTreeMap::new(),
            hists: BTreeMap::new(),
        }
    }

    pub(crate) fn push_event(&mut self, ev: SpanEvent) {
        self.events.push(ev);
        if self.events.len() >= FLUSH_EVERY {
            self.flush();
        }
    }

    pub(crate) fn add_counter(&mut self, name: &'static str, n: u64) {
        *self.counters.entry(name).or_insert(0) += n;
    }

    pub(crate) fn observe(&mut self, name: &'static str, v: u64) {
        self.hists.entry(name).or_default().record(v);
    }

    fn flush(&mut self) {
        if self.events.is_empty() && self.counters.is_empty() && self.hists.is_empty() {
            return;
        }
        let mut g = global();
        for ev in self.events.drain(..) {
            g.record_event(ev);
        }
        for (name, n) in std::mem::take(&mut self.counters) {
            *g.counters.entry(name.to_string()).or_insert(0) += n;
        }
        for (name, h) in std::mem::take(&mut self.hists) {
            g.hists.entry(name.to_string()).or_default().merge(&h);
        }
    }

    fn clear(&mut self) {
        self.events.clear();
        self.counters.clear();
        self.hists.clear();
    }
}

impl Drop for ThreadState {
    fn drop(&mut self) {
        self.flush();
    }
}

thread_local! {
    static STATE: RefCell<ThreadState> = RefCell::new(ThreadState::new());
}

/// Runs `f` with the calling thread's buffer. Returns `None` if the
/// thread-local has already been torn down (thread exit).
pub(crate) fn with_state<R>(f: impl FnOnce(&mut ThreadState) -> R) -> Option<R> {
    STATE.try_with(|s| f(&mut s.borrow_mut())).ok()
}

/// Sets a gauge (last write wins). Gauges are rare, so they go straight to
/// the global registry instead of the per-thread buffer.
pub(crate) fn gauge_store(name: &'static str, v: f64) {
    global().gauges.insert(name.to_string(), v);
}

/// Records one span occurrence directly into the global registry,
/// bypassing the calling thread's clock and span stack. This is the
/// deterministic back door for exporter tests and for external tools that
/// import timings measured elsewhere.
pub fn record_span_ns(path: &str, start_ns: u64, dur_ns: u64, thread: u64) {
    global().record_event(SpanEvent { path: path.to_string(), start_ns, dur_ns, thread });
}

/// Flushes the calling thread's buffer into the global registry.
pub fn flush() {
    with_state(|s| s.flush());
}

/// Clears all collected telemetry (global registry and the calling
/// thread's buffer). The enabled flag is untouched.
pub fn reset() {
    with_state(|s| s.clear());
    let mut g = global();
    *g = Global::default();
}

/// Flushes the calling thread and copies out everything collected so far.
pub fn snapshot() -> Snapshot {
    flush();
    let g = global();
    Snapshot {
        spans: g
            .spans
            .iter()
            .map(|(path, a)| SpanStat {
                path: path.clone(),
                count: a.count,
                total_ns: a.total_ns,
                min_ns: a.min_ns,
                max_ns: a.max_ns,
                latency: a.latency.clone(),
            })
            .collect(),
        events: g.events.clone(),
        counters: g.counters.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        gauges: g.gauges.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        hists: g.hists.iter().map(|(k, h)| (k.clone(), h.clone())).collect(),
        dropped_events: g.dropped_events,
    }
}

//! ESTree node-kind vocabulary.
//!
//! [`NodeKind`] enumerates every syntactic unit the pipeline observes when
//! traversing an AST. The n-gram features of the paper are built over
//! streams of these kinds, and the control-flow construction classifies
//! kinds into statement-level and conditional categories (paper §III-A and
//! footnotes 2–4).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The kind (ESTree `type`) of an AST node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum NodeKind {
    Program,
    // Statements
    ExpressionStatement,
    BlockStatement,
    VariableDeclaration,
    VariableDeclarator,
    FunctionDeclaration,
    ClassDeclaration,
    IfStatement,
    ForStatement,
    ForInStatement,
    ForOfStatement,
    WhileStatement,
    DoWhileStatement,
    SwitchStatement,
    SwitchCase,
    TryStatement,
    CatchClause,
    ThrowStatement,
    ReturnStatement,
    BreakStatement,
    ContinueStatement,
    LabeledStatement,
    EmptyStatement,
    DebuggerStatement,
    WithStatement,
    // Expressions
    Identifier,
    Literal,
    ThisExpression,
    Super,
    ArrayExpression,
    ObjectExpression,
    Property,
    FunctionExpression,
    ArrowFunctionExpression,
    ClassExpression,
    ClassBody,
    MethodDefinition,
    PropertyDefinition,
    TemplateLiteral,
    TemplateElement,
    TaggedTemplateExpression,
    UnaryExpression,
    UpdateExpression,
    BinaryExpression,
    LogicalExpression,
    AssignmentExpression,
    ConditionalExpression,
    CallExpression,
    NewExpression,
    MemberExpression,
    SequenceExpression,
    SpreadElement,
    YieldExpression,
    AwaitExpression,
    MetaProperty,
    // Patterns
    ArrayPattern,
    ObjectPattern,
    AssignmentPattern,
    RestElement,
    // Modules and ES2020+ (appended to keep earlier ids stable)
    ImportDeclaration,
    ExportNamedDeclaration,
    ExportDefaultDeclaration,
    ExportAllDeclaration,
    ImportExpression,
    PrivateIdentifier,
}

impl NodeKind {
    /// Total number of distinct node kinds.
    pub const COUNT: usize = 65;

    /// All node kinds, in a fixed canonical order.
    pub const ALL: [NodeKind; Self::COUNT] = {
        use NodeKind::*;
        [
            Program,
            ExpressionStatement,
            BlockStatement,
            VariableDeclaration,
            VariableDeclarator,
            FunctionDeclaration,
            ClassDeclaration,
            IfStatement,
            ForStatement,
            ForInStatement,
            ForOfStatement,
            WhileStatement,
            DoWhileStatement,
            SwitchStatement,
            SwitchCase,
            TryStatement,
            CatchClause,
            ThrowStatement,
            ReturnStatement,
            BreakStatement,
            ContinueStatement,
            LabeledStatement,
            EmptyStatement,
            DebuggerStatement,
            WithStatement,
            Identifier,
            Literal,
            ThisExpression,
            Super,
            ArrayExpression,
            ObjectExpression,
            Property,
            FunctionExpression,
            ArrowFunctionExpression,
            ClassExpression,
            ClassBody,
            MethodDefinition,
            PropertyDefinition,
            TemplateLiteral,
            TemplateElement,
            TaggedTemplateExpression,
            UnaryExpression,
            UpdateExpression,
            BinaryExpression,
            LogicalExpression,
            AssignmentExpression,
            ConditionalExpression,
            CallExpression,
            NewExpression,
            MemberExpression,
            SequenceExpression,
            SpreadElement,
            YieldExpression,
            AwaitExpression,
            MetaProperty,
            ArrayPattern,
            ObjectPattern,
            AssignmentPattern,
            RestElement,
            ImportDeclaration,
            ExportNamedDeclaration,
            ExportDefaultDeclaration,
            ExportAllDeclaration,
            ImportExpression,
            PrivateIdentifier,
        ]
    };

    /// ESTree `type` string for this kind.
    pub fn as_str(self) -> &'static str {
        use NodeKind::*;
        match self {
            Program => "Program",
            ExpressionStatement => "ExpressionStatement",
            BlockStatement => "BlockStatement",
            VariableDeclaration => "VariableDeclaration",
            VariableDeclarator => "VariableDeclarator",
            FunctionDeclaration => "FunctionDeclaration",
            ClassDeclaration => "ClassDeclaration",
            IfStatement => "IfStatement",
            ForStatement => "ForStatement",
            ForInStatement => "ForInStatement",
            ForOfStatement => "ForOfStatement",
            WhileStatement => "WhileStatement",
            DoWhileStatement => "DoWhileStatement",
            SwitchStatement => "SwitchStatement",
            SwitchCase => "SwitchCase",
            TryStatement => "TryStatement",
            CatchClause => "CatchClause",
            ThrowStatement => "ThrowStatement",
            ReturnStatement => "ReturnStatement",
            BreakStatement => "BreakStatement",
            ContinueStatement => "ContinueStatement",
            LabeledStatement => "LabeledStatement",
            EmptyStatement => "EmptyStatement",
            DebuggerStatement => "DebuggerStatement",
            WithStatement => "WithStatement",
            Identifier => "Identifier",
            Literal => "Literal",
            ThisExpression => "ThisExpression",
            Super => "Super",
            ArrayExpression => "ArrayExpression",
            ObjectExpression => "ObjectExpression",
            Property => "Property",
            FunctionExpression => "FunctionExpression",
            ArrowFunctionExpression => "ArrowFunctionExpression",
            ClassExpression => "ClassExpression",
            ClassBody => "ClassBody",
            MethodDefinition => "MethodDefinition",
            PropertyDefinition => "PropertyDefinition",
            TemplateLiteral => "TemplateLiteral",
            TemplateElement => "TemplateElement",
            TaggedTemplateExpression => "TaggedTemplateExpression",
            UnaryExpression => "UnaryExpression",
            UpdateExpression => "UpdateExpression",
            BinaryExpression => "BinaryExpression",
            LogicalExpression => "LogicalExpression",
            AssignmentExpression => "AssignmentExpression",
            ConditionalExpression => "ConditionalExpression",
            CallExpression => "CallExpression",
            NewExpression => "NewExpression",
            MemberExpression => "MemberExpression",
            SequenceExpression => "SequenceExpression",
            SpreadElement => "SpreadElement",
            YieldExpression => "YieldExpression",
            AwaitExpression => "AwaitExpression",
            MetaProperty => "MetaProperty",
            ArrayPattern => "ArrayPattern",
            ObjectPattern => "ObjectPattern",
            AssignmentPattern => "AssignmentPattern",
            RestElement => "RestElement",
            ImportDeclaration => "ImportDeclaration",
            ExportNamedDeclaration => "ExportNamedDeclaration",
            ExportDefaultDeclaration => "ExportDefaultDeclaration",
            ExportAllDeclaration => "ExportAllDeclaration",
            ImportExpression => "ImportExpression",
            PrivateIdentifier => "PrivateIdentifier",
        }
    }

    /// Stable small integer id for this kind, usable as a feature index.
    pub fn id(self) -> u8 {
        self as u8
    }

    /// Whether this kind is a statement-level node (participates in
    /// control flow, paper §III-A).
    pub fn is_statement(self) -> bool {
        use NodeKind::*;
        matches!(
            self,
            ExpressionStatement
                | BlockStatement
                | VariableDeclaration
                | FunctionDeclaration
                | ClassDeclaration
                | IfStatement
                | ForStatement
                | ForInStatement
                | ForOfStatement
                | WhileStatement
                | DoWhileStatement
                | SwitchStatement
                | TryStatement
                | ThrowStatement
                | ReturnStatement
                | BreakStatement
                | ContinueStatement
                | LabeledStatement
                | EmptyStatement
                | DebuggerStatement
                | WithStatement
                | ImportDeclaration
                | ExportNamedDeclaration
                | ExportDefaultDeclaration
                | ExportAllDeclaration
        )
    }

    /// Whether this kind participates in control-flow edges: statements,
    /// `CatchClause`, and `ConditionalExpression` (paper §III-A).
    pub fn is_control_flow(self) -> bool {
        self.is_statement()
            || matches!(self, NodeKind::CatchClause | NodeKind::ConditionalExpression)
            || matches!(self, NodeKind::SwitchCase)
    }

    /// Conditional control-flow kinds used by the corpus pre-filter
    /// (paper footnote 2).
    pub fn is_conditional(self) -> bool {
        use NodeKind::*;
        matches!(
            self,
            DoWhileStatement
                | WhileStatement
                | ForStatement
                | ForOfStatement
                | ForInStatement
                | IfStatement
                | ConditionalExpression
                | TryStatement
                | SwitchStatement
        )
    }

    /// Function kinds used by the corpus pre-filter (paper footnote 3).
    pub fn is_function(self) -> bool {
        use NodeKind::*;
        matches!(self, ArrowFunctionExpression | FunctionExpression | FunctionDeclaration)
    }

    /// Call kinds used by the corpus pre-filter (paper footnote 4:
    /// `CallExpression` including `TaggedTemplateExpression`).
    pub fn is_call(self) -> bool {
        matches!(self, NodeKind::CallExpression | NodeKind::TaggedTemplateExpression)
    }
}

impl fmt::Display for NodeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_strings_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in all_kinds() {
            assert!(seen.insert(k.as_str()), "duplicate kind string {}", k);
        }
    }

    fn all_kinds() -> Vec<NodeKind> {
        // Exercise every variant via the discriminant range.
        use NodeKind::*;
        vec![
            Program,
            ExpressionStatement,
            BlockStatement,
            VariableDeclaration,
            VariableDeclarator,
            FunctionDeclaration,
            ClassDeclaration,
            IfStatement,
            ForStatement,
            ForInStatement,
            ForOfStatement,
            WhileStatement,
            DoWhileStatement,
            SwitchStatement,
            SwitchCase,
            TryStatement,
            CatchClause,
            ThrowStatement,
            ReturnStatement,
            BreakStatement,
            ContinueStatement,
            LabeledStatement,
            EmptyStatement,
            DebuggerStatement,
            WithStatement,
            Identifier,
            Literal,
            ThisExpression,
            Super,
            ArrayExpression,
            ObjectExpression,
            Property,
            FunctionExpression,
            ArrowFunctionExpression,
            ClassExpression,
            ClassBody,
            MethodDefinition,
            PropertyDefinition,
            TemplateLiteral,
            TemplateElement,
            TaggedTemplateExpression,
            UnaryExpression,
            UpdateExpression,
            BinaryExpression,
            LogicalExpression,
            AssignmentExpression,
            ConditionalExpression,
            CallExpression,
            NewExpression,
            MemberExpression,
            SequenceExpression,
            SpreadElement,
            YieldExpression,
            AwaitExpression,
            MetaProperty,
            ArrayPattern,
            ObjectPattern,
            AssignmentPattern,
            RestElement,
            ImportDeclaration,
            ExportNamedDeclaration,
            ExportDefaultDeclaration,
            ExportAllDeclaration,
            ImportExpression,
            PrivateIdentifier,
        ]
    }

    #[test]
    fn statement_classification() {
        assert!(NodeKind::IfStatement.is_statement());
        assert!(NodeKind::ExpressionStatement.is_statement());
        assert!(!NodeKind::Identifier.is_statement());
        assert!(!NodeKind::ConditionalExpression.is_statement());
    }

    #[test]
    fn control_flow_includes_catch_and_ternary() {
        assert!(NodeKind::CatchClause.is_control_flow());
        assert!(NodeKind::ConditionalExpression.is_control_flow());
        assert!(NodeKind::IfStatement.is_control_flow());
        assert!(!NodeKind::Literal.is_control_flow());
    }

    #[test]
    fn prefilter_categories_match_paper_footnotes() {
        // Footnote 2: conditional control-flow nodes.
        for k in [
            NodeKind::DoWhileStatement,
            NodeKind::WhileStatement,
            NodeKind::ForStatement,
            NodeKind::ForOfStatement,
            NodeKind::ForInStatement,
            NodeKind::IfStatement,
            NodeKind::ConditionalExpression,
            NodeKind::TryStatement,
            NodeKind::SwitchStatement,
        ] {
            assert!(k.is_conditional(), "{} must count as conditional", k);
        }
        // Footnote 3: function nodes.
        for k in [
            NodeKind::ArrowFunctionExpression,
            NodeKind::FunctionExpression,
            NodeKind::FunctionDeclaration,
        ] {
            assert!(k.is_function(), "{} must count as function", k);
        }
        // Footnote 4: CallExpression incl. tagged templates.
        assert!(NodeKind::CallExpression.is_call());
        assert!(NodeKind::TaggedTemplateExpression.is_call());
        assert!(!NodeKind::NewExpression.is_call());
    }

    #[test]
    fn all_const_is_complete_and_unique() {
        assert_eq!(NodeKind::ALL.len(), NodeKind::COUNT);
        let unique: std::collections::HashSet<_> = NodeKind::ALL.iter().collect();
        assert_eq!(unique.len(), NodeKind::COUNT);
        assert_eq!(NodeKind::ALL.len(), all_kinds().len());
    }

    #[test]
    fn ids_are_distinct_and_small() {
        let mut seen = std::collections::HashSet::new();
        for k in all_kinds() {
            assert!(seen.insert(k.id()));
            assert!((k.id() as usize) < 128);
        }
    }
}

//! Daemon load study: the wild-population simulator replayed against an
//! in-process [`jsdetect_serve::Daemon`] under fault injection.
//!
//! Closed-loop client threads (2× the queue capacity, so overload is
//! guaranteed, not incidental) drive a mixed Alexa / npm / malware-feed
//! workload through the same admission path the network transport uses.
//! Chaos is armed throughout: every Nth request panics its worker, every
//! Mth stalls, every Kth cache publish fails. The study then asserts the
//! robustness contract the integration tests check in miniature, at load:
//! every accepted request answered, the rest explicitly rejected — and
//! records p50/p99 latency, throughput, reject rate, and degraded rate.
//!
//! Results land in `results/load_study.json`; a compact `serve` provenance
//! block is merged into `BENCH_ml.json` next to the perf trajectory.

use jsdetect_corpus::wild::{alexa_population, malware_population, npm_population, MalwareSource};
use jsdetect_experiments::{or_exit, train_cached, write_json, Args, IoError};
use jsdetect_serve::{AnalyzeRequest, ChaosConfig, Daemon, ServeConfig};
use serde::Serialize;
use serde_json::JsonValue;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Serialize)]
struct StudyResult {
    n_requests: usize,
    clients: usize,
    workers: usize,
    queue_capacity: usize,
    accepted: u64,
    rejected: u64,
    responses: u64,
    quarantined: u64,
    degraded_responses: u64,
    worker_replaced: u64,
    injected_panics: u64,
    injected_delays: u64,
    p50_latency_us: u64,
    p99_latency_us: u64,
    throughput_rps: f64,
    reject_rate: f64,
    degraded_rate: f64,
    wall_seconds: f64,
    breaker_state: String,
    seed: u64,
    scale: f64,
}

fn percentile_us(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));
    let detectors = Arc::new(detectors);

    // Mixed wild workload: browsing-shaped (Alexa), registry-shaped
    // (npm), and hostile (malware feed) scripts, interleaved.
    let n_each = ((60.0 * args.scale) as usize).max(10);
    let mut scripts: Vec<String> = Vec::new();
    for s in alexa_population(30, n_each, 1, args.seed) {
        scripts.push(s.src);
    }
    for s in npm_population(30, n_each, 1, args.seed) {
        scripts.push(s.src);
    }
    for s in malware_population(MalwareSource::Hynek, 30, n_each / 2, args.seed) {
        scripts.push(s.src);
    }

    let workers = 4usize;
    let queue_capacity = 16usize;
    let clients = queue_capacity * 2; // the ISSUE's 2×-capacity soak
    let cfg = ServeConfig {
        workers,
        queue_capacity,
        // Aggressive enough that faults actually land mid-run.
        chaos: ChaosConfig { panic_every: 97, delay_every: 41, delay_ms: 25, cache_fail_every: 0 },
        stuck_after_ms: 2_000,
        watchdog_interval_ms: 25,
        ..ServeConfig::default()
    };
    let daemon = Arc::new(Daemon::start(cfg, detectors, None));

    eprintln!(
        "[experiments] load study: {} scripts, {} closed-loop clients, {} workers, queue {}",
        scripts.len(),
        clients,
        workers,
        queue_capacity
    );
    let scripts = Arc::new(scripts);
    let next = Arc::new(AtomicU64::new(0));
    let t0 = std::time::Instant::now();

    // Closed loop: each client repeatedly claims the next script index
    // until the workload is exhausted. An `overloaded` reject is real
    // backpressure — the client backs off briefly and retries (bounded),
    // like any sane caller of a 429; every attempt is recorded.
    let mut joins = Vec::new();
    for _ in 0..clients {
        let daemon = Arc::clone(&daemon);
        let scripts = Arc::clone(&scripts);
        let next = Arc::clone(&next);
        joins.push(std::thread::spawn(move || {
            let mut latencies: Vec<u64> = Vec::new();
            let mut statuses: Vec<String> = Vec::new();
            loop {
                let i = next.fetch_add(1, Ordering::Relaxed) as usize;
                if i >= scripts.len() {
                    return (latencies, statuses);
                }
                let mut attempts = 0u32;
                loop {
                    let resp = daemon.call(AnalyzeRequest::new(scripts[i].clone()));
                    if resp.latency_us > 0 {
                        latencies.push(resp.latency_us);
                    }
                    let overloaded = resp.status == "overloaded";
                    statuses.push(resp.status);
                    if overloaded && attempts < 100 {
                        attempts += 1;
                        std::thread::sleep(std::time::Duration::from_millis(2));
                        continue;
                    }
                    break;
                }
            }
        }));
    }
    let mut latencies: Vec<u64> = Vec::new();
    let mut statuses: Vec<String> = Vec::new();
    for j in joins {
        let (l, s) = j.join().expect("client thread panicked");
        latencies.extend(l);
        statuses.extend(s);
    }
    let wall = t0.elapsed().as_secs_f64();
    // Let the watchdog take a couple of ticks so poisoned-worker
    // replacement (which happens between requests, not during them) is
    // visible in the final accounting.
    std::thread::sleep(std::time::Duration::from_millis(150));
    let report = daemon.shutdown();

    assert_eq!(
        report.stats.accepted, report.stats.responses,
        "robustness contract: every accepted request must be answered"
    );

    latencies.sort_unstable();
    let submitted = statuses.len() as u64;
    let rejected = statuses
        .iter()
        .filter(|s| matches!(s.as_str(), "overloaded" | "resource" | "draining"))
        .count() as u64;
    let result = StudyResult {
        n_requests: scripts.len(),
        clients,
        workers,
        queue_capacity,
        accepted: report.stats.accepted,
        rejected: report.stats.rejected,
        responses: report.stats.responses,
        quarantined: report.stats.quarantined,
        degraded_responses: report.stats.degraded,
        worker_replaced: report.stats.worker_replaced,
        injected_panics: daemon.chaos().injected_panics(),
        injected_delays: daemon.chaos().injected_delays(),
        p50_latency_us: percentile_us(&latencies, 0.50),
        p99_latency_us: percentile_us(&latencies, 0.99),
        throughput_rps: report.stats.responses as f64 / wall.max(1e-9),
        reject_rate: rejected as f64 / submitted.max(1) as f64,
        degraded_rate: report.stats.degraded as f64 / report.stats.responses.max(1) as f64,
        wall_seconds: wall,
        breaker_state: report.breaker_state.as_str().to_string(),
        seed: args.seed,
        scale: args.scale,
    };

    println!("Daemon load study (chaos armed, {} clients over queue {})", clients, queue_capacity);
    println!("{:-<72}", "");
    println!("  requests submitted     {:>10}", submitted);
    println!("  accepted / rejected    {:>10} / {}", result.accepted, result.rejected);
    println!("  responses (==accepted) {:>10}", result.responses);
    println!("  quarantined            {:>10}", result.quarantined);
    println!("  workers replaced       {:>10}", result.worker_replaced);
    println!(
        "  injected panics/delays {:>10} / {}",
        result.injected_panics, result.injected_delays
    );
    println!(
        "  p50 / p99 latency      {:>8}us / {}us",
        result.p50_latency_us, result.p99_latency_us
    );
    println!("  throughput             {:>10.1} resp/s", result.throughput_rps);
    println!("  reject rate            {:>10.3}", result.reject_rate);
    println!("  degraded rate          {:>10.3}", result.degraded_rate);
    println!("  breaker at exit        {:>10}", result.breaker_state);

    or_exit(write_json(&args, "load_study", &result));
    or_exit(merge_bench_provenance(&result));
}

#[derive(Serialize)]
struct BenchProvenance {
    n_requests: usize,
    clients: usize,
    workers: usize,
    queue_capacity: usize,
    p50_latency_us: u64,
    p99_latency_us: u64,
    throughput_rps: f64,
    reject_rate: f64,
    degraded_rate: f64,
    quarantined: u64,
    worker_replaced: u64,
    seed: u64,
    scale: f64,
    source: String,
}

/// Merges a compact `serve` block into the top level of `BENCH_ml.json`,
/// preserving everything else (bench_report's deserializer carries the
/// block as an opaque value across rewrites).
fn merge_bench_provenance(result: &StudyResult) -> Result<(), IoError> {
    let path = std::path::Path::new("BENCH_ml.json");
    let mut root: JsonValue = match std::fs::read_to_string(path) {
        Ok(s) => serde_json::from_str(&s).map_err(|e| IoError {
            op: "parse",
            path: path.into(),
            msg: e.to_string(),
        })?,
        Err(_) => JsonValue::Obj(Vec::new()),
    };
    let block = BenchProvenance {
        n_requests: result.n_requests,
        clients: result.clients,
        workers: result.workers,
        queue_capacity: result.queue_capacity,
        p50_latency_us: result.p50_latency_us,
        p99_latency_us: result.p99_latency_us,
        throughput_rps: result.throughput_rps,
        reject_rate: result.reject_rate,
        degraded_rate: result.degraded_rate,
        quarantined: result.quarantined,
        worker_replaced: result.worker_replaced,
        seed: result.seed,
        scale: result.scale,
        source: "crates/experiments/src/bin/load_study.rs".to_string(),
    }
    .to_value();
    match &mut root {
        JsonValue::Obj(entries) => {
            entries.retain(|(k, _)| k != "serve");
            entries.push(("serve".to_string(), block));
        }
        _ => {
            return Err(IoError {
                op: "update",
                path: path.into(),
                msg: "BENCH_ml.json is not a JSON object".to_string(),
            })
        }
    }
    let json = serde_json::to_string_pretty(&root).map_err(|e| IoError {
        op: "serialize",
        path: path.into(),
        msg: e.to_string(),
    })?;
    std::fs::write(path, json).map_err(|e| IoError {
        op: "write",
        path: path.into(),
        msg: e.to_string(),
    })?;
    eprintln!("[experiments] merged serve provenance into {}", path.display());
    Ok(())
}

//! Parse errors.

use jsdetect_lexer::LexError;
use std::fmt;

/// A syntax error produced while parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub msg: String,
    /// Byte offset of the offending token.
    pub pos: u32,
}

impl ParseError {
    /// Creates a parse error.
    pub fn new(msg: impl Into<String>, pos: u32) -> Self {
        ParseError { msg: msg.into(), pos }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> Self {
        ParseError { msg: e.msg, pos: e.pos }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = ParseError::new("unexpected `;`", 17);
        assert_eq!(e.to_string(), "parse error at byte 17: unexpected `;`");
    }

    #[test]
    fn from_lex_error() {
        let le = LexError { msg: "bad".into(), pos: 3 };
        let pe: ParseError = le.into();
        assert_eq!(pe.pos, 3);
        assert_eq!(pe.msg, "bad");
    }
}

//! `jsdetect-guard`: the hardened-analysis sandbox for wild-scale scanning.
//!
//! The paper's study runs over millions of wild scripts — exactly the
//! population (JSFuck payloads, packer output, megabyte one-liners,
//! pathologically nested expressions) most likely to blow up a static
//! pipeline. This crate supplies the four primitives every analysis layer
//! shares so that one hostile input costs one quarantined record, not the
//! process:
//!
//! - [`AnalysisError`]: the typed failure taxonomy (stage × cause).
//! - [`Limits`] / [`Budget`]: cooperative resource budgets — input bytes,
//!   token count, AST depth/nodes, CFG edges, and a fuel-metered wall-clock
//!   deadline — charged at loop heads and threaded by `&Budget` through
//!   lexer, parser, and the feature front-end.
//! - [`isolate`]: `catch_unwind`-based stage fencing that converts a
//!   residual panic into [`AnalysisError::StagePanicked`].
//! - [`QuarantineReport`] / [`OutcomeKind`]: per-file ok/degraded/rejected
//!   accounting with a JSONL export next to the telemetry stream.
//!
//! # Examples
//!
//! ```
//! use jsdetect_guard::{Budget, Limits, isolate, AnalysisError};
//!
//! let budget = Budget::new(&Limits::wild());
//! budget.check_input(42).unwrap();
//! budget.charge_tokens(10).unwrap();
//!
//! let err = isolate("demo", || panic!("boom")).unwrap_err();
//! assert_eq!(err.kind(), "stage_panicked");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod budget;
mod error;
mod limits;
mod quarantine;

pub use budget::Budget;
pub use error::AnalysisError;
pub use limits::{Limits, LEGACY_MAX_DEPTH};
pub use quarantine::{OutcomeKind, QuarantineRecord, QuarantineReport};

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f` with a panic fence: a panic inside `f` is caught and converted
/// to [`AnalysisError::StagePanicked`] carrying `stage` and the payload
/// text, instead of unwinding into the batch driver (where it would tear
/// down the whole scoped-thread pool).
///
/// `AssertUnwindSafe` is sound here because callers only pass closures
/// whose captured state is either owned by the closure or discarded when
/// the fence reports an error — no shared structure is observed in a
/// half-mutated state afterwards.
///
/// Note: this cannot catch aborts or stack overflow; recursion depth must
/// be bounded *before* the stack runs out, which is what
/// [`Budget::check_depth`] is for.
pub fn isolate<T>(stage: &'static str, f: impl FnOnce() -> T) -> Result<T, AnalysisError> {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => {
            let detail = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            Err(AnalysisError::StagePanicked { stage, detail })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn isolate_passes_values_through() {
        assert_eq!(isolate("ok", || 7).unwrap(), 7);
    }

    #[test]
    fn isolate_catches_str_and_string_panics() {
        let e = isolate("s1", || panic!("static message")).unwrap_err();
        assert_eq!(
            e,
            AnalysisError::StagePanicked { stage: "s1", detail: "static message".into() }
        );
        let e = isolate("s2", || panic!("formatted {}", 3)).unwrap_err();
        assert_eq!(e, AnalysisError::StagePanicked { stage: "s2", detail: "formatted 3".into() });
    }

    #[test]
    fn error_kinds_and_counters_are_stable() {
        let e = AnalysisError::DeadlineExceeded { ms: 10 };
        assert_eq!(e.kind(), "deadline_exceeded");
        assert_eq!(e.counter_name(), "guard/deadline_exceeded");
        assert!(e.is_resource());
        let p = AnalysisError::Parse { msg: "x".into(), pos: 0 };
        assert!(!p.is_resource());
    }
}

//! The typed failure taxonomy for hardened analysis.

use std::fmt;

/// Every way a single script can fail analysis, stage × cause.
///
/// The taxonomy is deliberately flat and closed: batch drivers match on it
/// to decide between *degraded* (recoverable front-end failures where a
/// lexer-only fallback is still meaningful) and *rejected* (resource
/// exhaustion or a caught panic, where nothing trustworthy survives).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalysisError {
    /// Input byte length exceeded the configured cap before any work ran.
    InputTooLarge {
        /// Observed input size in bytes.
        bytes: usize,
        /// Configured `max_input_bytes`.
        limit: usize,
    },
    /// The lexer produced more tokens than the budget allows.
    TokenBudgetExceeded {
        /// Configured `max_tokens`.
        limit: u64,
    },
    /// Parser recursion exceeded the AST depth cap (the pre-stack-overflow
    /// guard for `((((…))))`-style nesting bombs).
    AstDepthExceeded {
        /// Configured `max_ast_depth`.
        limit: u32,
    },
    /// The parsed tree holds more nodes than the budget allows.
    AstNodeBudgetExceeded {
        /// Configured `max_ast_nodes`.
        limit: u64,
    },
    /// Control-flow construction produced more edges than the budget allows.
    CfgEdgeBudgetExceeded {
        /// Configured `max_cfg_edges`.
        limit: u64,
    },
    /// The fuel-metered wall-clock deadline elapsed mid-analysis.
    DeadlineExceeded {
        /// Configured `deadline_ms`.
        ms: u64,
    },
    /// The process-global atom interner is (or would be) out of capacity;
    /// a resident service rejects the request instead of panicking.
    InternerExhausted {
        /// Atoms currently interned.
        count: u32,
        /// Interner capacity cap.
        capacity: u32,
    },
    /// The service ran this request in breaker-degraded lexer-only mode;
    /// the full pipeline was deliberately skipped, not broken.
    ServiceDegraded,
    /// A pipeline stage panicked and was contained by [`crate::isolate`].
    StagePanicked {
        /// Stage label passed to [`crate::isolate`].
        stage: &'static str,
        /// Panic payload when it was a string, else a placeholder.
        detail: String,
    },
    /// The parser rejected the script (a plain syntax error).
    Parse {
        /// Parser message.
        msg: String,
        /// Byte offset of the offending token.
        pos: u32,
    },
    /// The lexer rejected the script outright (lossy recovery not possible).
    Lex {
        /// Lexer message.
        msg: String,
        /// Byte offset of the offending character.
        pos: u32,
    },
    /// Reading the script from disk failed (missing, unreadable).
    Io {
        /// Path the read was attempted on.
        path: String,
        /// Underlying `io::Error` rendering.
        msg: String,
    },
}

impl AnalysisError {
    /// Stable machine-readable kind tag, used in quarantine JSONL records.
    pub fn kind(&self) -> &'static str {
        match self {
            AnalysisError::InputTooLarge { .. } => "input_too_large",
            AnalysisError::TokenBudgetExceeded { .. } => "token_budget_exceeded",
            AnalysisError::AstDepthExceeded { .. } => "ast_depth_exceeded",
            AnalysisError::AstNodeBudgetExceeded { .. } => "ast_node_budget_exceeded",
            AnalysisError::CfgEdgeBudgetExceeded { .. } => "cfg_edge_budget_exceeded",
            AnalysisError::DeadlineExceeded { .. } => "deadline_exceeded",
            AnalysisError::InternerExhausted { .. } => "interner_exhausted",
            AnalysisError::ServiceDegraded => "service_degraded",
            AnalysisError::StagePanicked { .. } => "stage_panicked",
            AnalysisError::Parse { .. } => "parse_error",
            AnalysisError::Lex { .. } => "lex_error",
            AnalysisError::Io { .. } => "io_error",
        }
    }

    /// Per-kind `jsdetect-obs` counter name (`guard/<kind>`); `&'static str`
    /// because the obs counter API interns names by static reference.
    pub fn counter_name(&self) -> &'static str {
        match self {
            AnalysisError::InputTooLarge { .. } => "guard/input_too_large",
            AnalysisError::TokenBudgetExceeded { .. } => "guard/token_budget_exceeded",
            AnalysisError::AstDepthExceeded { .. } => "guard/ast_depth_exceeded",
            AnalysisError::AstNodeBudgetExceeded { .. } => "guard/ast_node_budget_exceeded",
            AnalysisError::CfgEdgeBudgetExceeded { .. } => "guard/cfg_edge_budget_exceeded",
            AnalysisError::DeadlineExceeded { .. } => "guard/deadline_exceeded",
            AnalysisError::InternerExhausted { .. } => "guard/interner_exhausted",
            AnalysisError::ServiceDegraded => "guard/service_degraded",
            AnalysisError::StagePanicked { .. } => "guard/stage_panicked",
            AnalysisError::Parse { .. } => "guard/parse_error",
            AnalysisError::Lex { .. } => "guard/lex_error",
            AnalysisError::Io { .. } => "guard/io_error",
        }
    }

    /// Whether this error means a resource budget was blown (or a stage
    /// panicked): the script is *rejected*, no fallback vector is safe to
    /// emit. Syntax-level failures (`Parse`/`Lex`) return `false` — the
    /// lexer-only degraded path still applies to those, as does
    /// `ServiceDegraded` (a deliberate lexer-only run, not a failure).
    pub fn is_resource(&self) -> bool {
        !matches!(
            self,
            AnalysisError::Parse { .. }
                | AnalysisError::Lex { .. }
                | AnalysisError::ServiceDegraded
        )
    }
}

impl fmt::Display for AnalysisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalysisError::InputTooLarge { bytes, limit } => {
                write!(f, "input too large: {} bytes exceeds cap of {}", bytes, limit)
            }
            AnalysisError::TokenBudgetExceeded { limit } => {
                write!(f, "token budget exceeded: more than {} tokens", limit)
            }
            AnalysisError::AstDepthExceeded { limit } => {
                write!(f, "AST depth exceeded: nesting deeper than {}", limit)
            }
            AnalysisError::AstNodeBudgetExceeded { limit } => {
                write!(f, "AST node budget exceeded: more than {} nodes", limit)
            }
            AnalysisError::CfgEdgeBudgetExceeded { limit } => {
                write!(f, "CFG edge budget exceeded: more than {} edges", limit)
            }
            AnalysisError::DeadlineExceeded { ms } => {
                write!(f, "deadline exceeded: analysis ran past {} ms", ms)
            }
            AnalysisError::InternerExhausted { count, capacity } => {
                write!(f, "atom interner exhausted: {} of {} slots used", count, capacity)
            }
            AnalysisError::ServiceDegraded => {
                write!(f, "service degraded: lexer-only analysis (circuit breaker open)")
            }
            AnalysisError::StagePanicked { stage, detail } => {
                write!(f, "stage `{}` panicked: {}", stage, detail)
            }
            AnalysisError::Parse { msg, pos } => write!(f, "parse error at {}: {}", pos, msg),
            AnalysisError::Lex { msg, pos } => write!(f, "lex error at {}: {}", pos, msg),
            AnalysisError::Io { path, msg } => write!(f, "io error on {}: {}", path, msg),
        }
    }
}

impl std::error::Error for AnalysisError {}

//! `debugger-in-loop`: anti-debugging probes.

use crate::{Diagnostic, LintContext, Rule, Severity};

/// Flags `debugger` statements inside loop bodies and `debugger` source
/// injected through the `Function` constructor — the devtools-hammering
/// probe debug protection installs on a timer (paper §II-A).
pub struct DebuggerInLoop;

impl Rule for DebuggerInLoop {
    fn name(&self) -> &'static str {
        "debugger-in-loop"
    }

    fn severity(&self) -> Severity {
        Severity::Signature
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for &span in &ctx.facts.debugger_in_loop {
            out.push(Diagnostic {
                rule: self.name(),
                span,
                severity: self.severity(),
                message: "debugger statement inside a loop body (anti-debugging)".to_string(),
                data: vec![("form", "statement".to_string())],
            });
        }
        for &span in &ctx.facts.constructor_code_calls {
            out.push(Diagnostic {
                rule: self.name(),
                span,
                severity: self.severity(),
                message:
                    "'debugger' injected through the Function constructor (anti-debugging probe)"
                        .to_string(),
                data: vec![("form", "constructor".to_string())],
            });
        }
    }
}

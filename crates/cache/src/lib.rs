//! Content-addressed analysis cache for incremental rescans.
//!
//! Scanning a corpus twice re-pays the full lex/parse/flow cost for every
//! script, even though most files between two crawls are byte-identical.
//! This crate makes the second scan cheap: each script's analysis verdict
//! is stored under the BLAKE2s-256 hash of its source bytes, qualified by
//! the feature-space version and the limits preset it was computed under —
//! `(content hash, FEATURE_SPACE_VERSION, preset) → CacheRecord`.
//!
//! A [`CacheRecord`] replays the *whole* guarded verdict, not just happy
//! paths: the three-way [`OutcomeKind`](jsdetect_guard::OutcomeKind)
//! (ok / degraded / rejected), the typed failure kind for quarantined
//! scripts, and a space-independent
//! [`FeaturePayload`](jsdetect_features::FeaturePayload) that
//! [`VectorSpace::vectorize_payload`](jsdetect_features::VectorSpace::vectorize_payload)
//! turns into a vector bit-identical to one computed from source.
//!
//! Storage is a 256-way sharded directory tree with atomic tmp+rename
//! publishes and an in-memory LRU front ([`AnalysisCache`]); records are a
//! schema-versioned binary format with a trailing checksum ([`record`]
//! layout docs). Damage never aborts a batch: corrupt records are evicted
//! and recomputed, records from other versions are recomputed and
//! overwritten, and the distinction is observable through the
//! `cache/hit`, `cache/miss`, `cache/stale_version`, and
//! `cache/corrupt_evicted` counters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod blake;
mod lru;
mod maintenance;
mod record;
mod store;

pub use blake::{blake2s256, checksum64, ContentHash};
pub use maintenance::{gc, stats, verify, CacheStats, GcReport, VerifyReport};
pub use record::{
    decode, decode_embedded, encode, peek_header, CacheRecord, DecodeError, MAGIC,
    RECORD_SCHEMA_VERSION,
};
pub use store::{
    preset_tag, AnalysisCache, CacheConfig, PublishInjector, DEFAULT_LRU_CAPACITY, N_SHARDS,
    PUBLISH_RETRIES, RECORD_EXT,
};

//! Dead-code injection (paper §II-A, *logic structure obfuscation*).
//!
//! Inserts statements that can never execute or whose results are never
//! used: opaque-predicate branches, unused helper functions, and junk
//! variable declarations. Predicates compare an injected sentinel variable
//! against a value it can never hold, so constant folding cannot remove
//! them.

use jsdetect_ast::builder::*;
use jsdetect_ast::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Options for dead-code injection.
#[derive(Debug, Clone)]
pub struct DeadCodeOptions {
    /// Injected statements per existing statement (approximate).
    pub density: f64,
    /// Maximum junk statements to inject in total.
    pub max_injected: usize,
}

impl Default for DeadCodeOptions {
    fn default() -> Self {
        DeadCodeOptions { density: 0.6, max_injected: 64 }
    }
}

/// Injects dead code in place. Returns the number of injected statements.
pub fn inject_dead_code(program: &mut Program, rng: &mut StdRng, opts: &DeadCodeOptions) -> usize {
    let sentinel = format!("_0x{:x}s", rng.gen_range(0x1000u32..0xFFFF));
    let sentinel_value = format!("W{:x}", rng.gen::<u32>());
    let mut injector = Injector {
        rng,
        sentinel: sentinel.clone(),
        sentinel_value: sentinel_value.clone(),
        injected: 0,
        max: opts.max_injected,
        density: opts.density,
    };
    let skip = crate::string_obf::directive_count(&program.body);
    let mut body = std::mem::take(&mut program.body);
    injector.stmt_list(&mut body, skip);
    // Also inject into function bodies.
    for s in body.iter_mut() {
        injector.walk_stmt(s);
    }
    let injected = injector.injected;
    // Sentinel declaration: holds a value the predicates never match.
    body.insert(
        skip.min(body.len()),
        var_decl(VarKind::Var, sentinel, Some(str_lit(sentinel_value))),
    );
    program.body = body;
    injected + 1
}

struct Injector<'a> {
    rng: &'a mut StdRng,
    sentinel: String,
    sentinel_value: String,
    injected: usize,
    max: usize,
    density: f64,
}

impl Injector<'_> {
    /// Inserts junk at random positions of a statement list.
    fn stmt_list(&mut self, body: &mut Vec<Stmt>, skip: usize) {
        if self.injected >= self.max {
            return;
        }
        let n = body.len().saturating_sub(skip);
        let count = ((n as f64 * self.density).ceil() as usize).clamp(1, 8);
        for _ in 0..count {
            if self.injected >= self.max {
                break;
            }
            let pos =
                if body.len() > skip { self.rng.gen_range(skip..=body.len()) } else { body.len() };
            let junk = self.junk_stmt();
            body.insert(pos, junk);
            self.injected += 1;
        }
    }

    /// Recursively injects into function bodies and blocks.
    fn walk_stmt(&mut self, s: &mut Stmt) {
        match s {
            Stmt::FunctionDecl(f) => {
                let skip = crate::string_obf::directive_count(&f.body);
                self.stmt_list(&mut f.body, skip);
                for st in f.body.iter_mut() {
                    self.walk_stmt(st);
                }
            }
            Stmt::Block { body, .. } => {
                for st in body.iter_mut() {
                    self.walk_stmt(st);
                }
            }
            Stmt::Expr { expr, .. } | Stmt::Throw { arg: expr, .. } => self.walk_expr(expr),
            Stmt::VarDecl { decls, .. } => {
                for d in decls.iter_mut() {
                    if let Some(init) = &mut d.init {
                        self.walk_expr(init);
                    }
                }
            }
            Stmt::If { consequent, alternate, .. } => {
                self.walk_stmt(consequent);
                if let Some(alt) = alternate {
                    self.walk_stmt(alt);
                }
            }
            Stmt::For { body, .. }
            | Stmt::ForIn { body, .. }
            | Stmt::ForOf { body, .. }
            | Stmt::While { body, .. }
            | Stmt::DoWhile { body, .. }
            | Stmt::Labeled { body, .. }
            | Stmt::With { body, .. } => self.walk_stmt(body),
            Stmt::Try { block, handler, finalizer, .. } => {
                for st in block.iter_mut() {
                    self.walk_stmt(st);
                }
                if let Some(h) = handler {
                    for st in h.body.iter_mut() {
                        self.walk_stmt(st);
                    }
                }
                if let Some(fin) = finalizer {
                    for st in fin.iter_mut() {
                        self.walk_stmt(st);
                    }
                }
            }
            _ => {}
        }
    }

    fn walk_expr(&mut self, e: &mut Expr) {
        if let Expr::Function(f) = e {
            let skip = crate::string_obf::directive_count(&f.body);
            self.stmt_list(&mut f.body, skip);
            for st in f.body.iter_mut() {
                self.walk_stmt(st);
            }
        }
        // Only function expressions get injections; other expressions are
        // left alone to keep the pass cheap.
    }

    fn junk_stmt(&mut self) -> Stmt {
        match self.rng.gen_range(0..4u8) {
            0 => self.opaque_branch(),
            1 => self.junk_function(),
            2 => self.junk_var(),
            _ => self.opaque_while(),
        }
    }

    fn junk_name(&mut self) -> String {
        format!("_0x{:x}", self.rng.gen_range(0x10000u32..0xFFFFFF))
    }

    /// `if (SENTINEL === 'xyz') { junk; }` — never true.
    fn opaque_branch(&mut self) -> Stmt {
        let other = format!("Q{:x}", self.rng.gen::<u32>());
        debug_assert_ne!(other, self.sentinel_value);
        if_stmt(
            binary(BinaryOp::EqEqEq, ident(self.sentinel.clone()), str_lit(other)),
            block(vec![self.junk_inner(), self.junk_inner()]),
            None,
        )
    }

    /// `while (SENTINEL === 'xyz') { junk; }` — never entered.
    fn opaque_while(&mut self) -> Stmt {
        let other = format!("R{:x}", self.rng.gen::<u32>());
        while_stmt(
            binary(BinaryOp::EqEqEq, ident(self.sentinel.clone()), str_lit(other)),
            block(vec![self.junk_inner()]),
        )
    }

    fn junk_function(&mut self) -> Stmt {
        let name = self.junk_name();
        let guard = self.opaque_branch();
        fn_decl(name, vec!["a", "b"], vec![guard, self.junk_inner(), ret(Some(self.junk_value()))])
    }

    fn junk_var(&mut self) -> Stmt {
        let name = self.junk_name();
        var_decl(VarKind::Var, name, Some(self.junk_value()))
    }

    fn junk_inner(&mut self) -> Stmt {
        match self.rng.gen_range(0..3u8) {
            0 => {
                let name = self.junk_name();
                var_decl(VarKind::Var, name, Some(self.junk_value()))
            }
            1 => expr_stmt(method_call(ident("console"), "log", vec![self.junk_value()])),
            _ => expr_stmt(self.junk_value()),
        }
    }

    fn junk_value(&mut self) -> Expr {
        match self.rng.gen_range(0..4u8) {
            0 => binary(
                BinaryOp::Mul,
                num_lit(self.rng.gen_range(2..100) as f64),
                num_lit(self.rng.gen_range(2..100) as f64),
            ),
            1 => method_call(
                ident("Math"),
                "floor",
                vec![binary(
                    BinaryOp::Div,
                    num_lit(self.rng.gen_range(100..10000) as f64),
                    num_lit(self.rng.gen_range(2..50) as f64),
                )],
            ),
            2 => str_lit(format!("k{:x}", self.rng.gen::<u32>())),
            _ => binary(
                BinaryOp::Add,
                str_lit(format!("p{:x}", self.rng.gen::<u16>())),
                num_lit(self.rng.gen_range(0..256) as f64),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;
    use rand::SeedableRng;

    fn run(src: &str) -> String {
        let mut prog = parse(src).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        inject_dead_code(&mut prog, &mut rng, &DeadCodeOptions::default());
        to_minified(&prog)
    }

    #[test]
    fn output_parses_and_grows() {
        let src = "function work(x) { return x + 1; } work(1);";
        let out = run(src);
        assert!(parse(&out).is_ok(), "{}", out);
        assert!(out.len() > src.len());
    }

    #[test]
    fn injects_sentinel_declaration() {
        let out = run("f();");
        assert!(out.contains("var _0x"), "{}", out);
    }

    #[test]
    fn original_code_preserved() {
        let out = run("realWork(42);");
        assert!(out.contains("realWork(42)"), "{}", out);
    }

    #[test]
    fn injects_into_function_bodies() {
        let mut prog = parse("function deep() { inner(); }").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = inject_dead_code(
            &mut prog,
            &mut rng,
            &DeadCodeOptions { density: 1.0, max_injected: 10 },
        );
        assert!(n >= 3, "expected several injections, got {}", n);
    }

    #[test]
    fn respects_max_injected() {
        let src = "a();b();c();d();e();f();g();h();i();j();";
        let mut prog = parse(src).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = inject_dead_code(
            &mut prog,
            &mut rng,
            &DeadCodeOptions { density: 5.0, max_injected: 4 },
        );
        assert!(n <= 5, "{}", n); // 4 + sentinel
    }

    #[test]
    fn deterministic() {
        assert_eq!(run("f(); g();"), run("f(); g();"));
    }

    #[test]
    fn directive_stays_first() {
        let out = run("'use strict'; main();");
        assert!(out.starts_with("'use strict';"), "{}", out);
    }
}

//! Extension (paper §V-B, future work) — from technique detection to
//! maliciousness detection.
//!
//! The paper's headline finding is that *code transformation is no
//! indicator of maliciousness*, and its suggested extension is to use the
//! patterns of §IV (which techniques, at which frequencies) to separate
//! benign from malicious scripts. This experiment quantifies both halves:
//!
//! 1. the naive baseline "transformed ⇒ malicious" performs poorly on a
//!    mixed benign/malicious stream (most transformed files are benign
//!    minified code);
//! 2. a small random forest over the two detectors' outputs (3 level-1 +
//!    10 level-2 confidences) separates the classes far better — the
//!    technique *mixture* carries the signal the paper points at.

use jsdetect_corpus::{alexa_population, malware_population, npm_population, MalwareSource};
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use jsdetect_ml::{metrics, Dataset, ForestParams, RandomForest};
use serde::Serialize;

#[derive(Serialize)]
struct MaliciousnessResult {
    naive_precision: f64,
    naive_recall: f64,
    naive_f1: f64,
    learned_precision: f64,
    learned_recall: f64,
    learned_f1: f64,
    learned_accuracy: f64,
    n_train: usize,
    n_test: usize,
}

/// 13-dimensional meta-feature vector: level-1 + level-2 confidences.
fn meta_features(detectors: &jsdetect::TrainedDetectors, srcs: &[&str]) -> Vec<Option<Vec<f32>>> {
    let l1 = detectors.level1.predict_many(srcs);
    let l2 = detectors.level2.predict_proba_many(srcs);
    l1.into_iter()
        .zip(l2)
        .map(|(a, b)| match (a, b) {
            (Some(a), Some(b)) => {
                let mut v = vec![a.regular, a.minified, a.obfuscated];
                v.extend(b);
                Some(v)
            }
            _ => None,
        })
        .collect()
}

fn collect(
    detectors: &jsdetect::TrainedDetectors,
    seed: u64,
    scale: f64,
) -> (Vec<Vec<f32>>, Vec<bool>) {
    let n = |base: usize| ((base as f64 * scale).round() as usize).max(4);
    let mut srcs_owned: Vec<String> = Vec::new();
    let mut labels = Vec::new();

    for s in alexa_population(64, n(25), 0, seed) {
        srcs_owned.push(s.src);
        labels.push(false);
    }
    for s in npm_population(64, n(30), 1000, seed ^ 1) {
        srcs_owned.push(s.src);
        labels.push(false);
    }
    for source in [MalwareSource::Dnc, MalwareSource::Hynek, MalwareSource::Bsi] {
        for m in [2usize, 9, 17] {
            for s in malware_population(source, m, n(30), seed ^ 2) {
                srcs_owned.push(s.src);
                labels.push(true);
            }
        }
    }
    let srcs: Vec<&str> = srcs_owned.iter().map(|s| s.as_str()).collect();
    let feats = meta_features(detectors, &srcs);
    let mut x = Vec::new();
    let mut y = Vec::new();
    for (f, l) in feats.into_iter().zip(labels) {
        if let Some(f) = f {
            x.push(f);
            y.push(l);
        }
    }
    (x, y)
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    eprintln!("[ext] building benign/malicious meta-feature sets...");
    let (x_train, y_train) = collect(&detectors, args.seed ^ 0xbad, args.scale);
    let (x_test, y_test) = collect(&detectors, args.seed ^ TEST_SALT, args.scale);

    // Naive baseline: "transformed ⇒ malicious" (level-1 transformed flag:
    // minified or obfuscated confidence ≥ 0.5 → indices 1 and 2).
    let naive_pred: Vec<bool> = x_test.iter().map(|f| f[1] >= 0.5 || f[2] >= 0.5).collect();
    let naive = metrics::prf(&naive_pred, &y_test);

    // Learned: forest over the 13 detector confidences, fitted and
    // evaluated through the columnar batch path.
    let train_data = Dataset::from_rows(&x_train).expect("meta-feature matrix");
    let forest = RandomForest::fit_dataset(
        &train_data,
        &y_train,
        &ForestParams { n_trees: 32, seed: args.seed, ..Default::default() },
    );
    let test_data = Dataset::from_rows(&x_test).expect("meta-feature matrix");
    let learned_pred: Vec<bool> =
        forest.predict_proba_batch(&test_data).into_iter().map(|p| p >= 0.5).collect();
    let learned = metrics::prf(&learned_pred, &y_test);
    let learned_acc = metrics::accuracy(&learned_pred, &y_test);

    println!("Extension: maliciousness from transformation patterns (§V-B)");
    println!("{:-<68}", "");
    println!("train n={}, test n={}", x_train.len(), x_test.len());
    println!("\nnaive rule (transformed ⇒ malicious):");
    println!(
        "  precision {:.2}%  recall {:.2}%  F1 {:.2}%",
        100.0 * naive.precision,
        100.0 * naive.recall,
        100.0 * naive.f1
    );
    println!("\nlearned (forest over 13 detector confidences):");
    println!(
        "  precision {:.2}%  recall {:.2}%  F1 {:.2}%  accuracy {:.2}%",
        100.0 * learned.precision,
        100.0 * learned.recall,
        100.0 * learned.f1,
        100.0 * learned_acc
    );
    println!(
        "\nreading: transformation alone is a poor maliciousness signal\n\
         (the paper's central claim), while the *pattern* of techniques —\n\
         identifier/string obfuscation vs plain minification — separates\n\
         the classes well."
    );

    or_exit(write_json(
        &args,
        "ext_maliciousness",
        &MaliciousnessResult {
            naive_precision: 100.0 * naive.precision,
            naive_recall: 100.0 * naive.recall,
            naive_f1: 100.0 * naive.f1,
            learned_precision: 100.0 * learned.precision,
            learned_recall: 100.0 * learned.recall,
            learned_f1: 100.0 * learned.f1,
            learned_accuracy: 100.0 * learned_acc,
            n_train: x_train.len(),
            n_test: x_test.len(),
        },
    ));
}

/// Seed salt decorrelating the held-out test stream from training.
const TEST_SALT: u64 = 0x600d;

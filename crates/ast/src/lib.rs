//! ESTree-style JavaScript AST for the `jsdetect` reproduction suite.
//!
//! This crate defines the abstract syntax tree shared by the lexer, parser,
//! code generator, flow analysis, transformation passes, and feature
//! extractor. The node vocabulary mirrors Esprima's ESTree output, which is
//! what the reproduced paper's pipeline consumes.
//!
//! # Overview
//!
//! - [`Program`], [`Stmt`], [`Expr`], [`Pat`]: the tree itself.
//! - [`NodeKind`]: the flat vocabulary of ESTree `type` strings, used for
//!   n-gram features and control-flow classification.
//! - [`walk`] / [`NodeRef`]: pre-order traversal.
//! - [`MutVisitor`]: in-place rewriting, the substrate for the ten
//!   transformation techniques.
//! - [`builder`]: concise constructors for synthesized nodes.
//! - [`metrics`]: tree-shape statistics (depth, breadth, kind counts).
//!
//! # Examples
//!
//! ```
//! use jsdetect_ast::{builder, kind_stream, NodeKind};
//!
//! let prog = builder::program(vec![builder::expr_stmt(builder::call(
//!     builder::ident("alert"),
//!     vec![builder::str_lit("hello")],
//! ))]);
//! let kinds = kind_stream(&prog);
//! assert_eq!(kinds[0], NodeKind::Program);
//! assert!(kinds.contains(&NodeKind::CallExpression));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod atom;
pub mod builder;
mod kind;
pub mod metrics;
mod nodes;
mod ops;
mod span;
pub mod visit;
pub mod visit_mut;

pub use atom::{global as global_interner, Atom, Interner, InternerStats, INTERNER_EXHAUSTED_MSG};
pub use kind::NodeKind;
pub use nodes::{
    ArrowBody, CatchClause, Class, ClassMember, ClassMemberValue, ExportSpecifier, Expr, ForInit,
    ForTarget, Function, Ident, ImportSpecifier, Lit, LitValue, MemberProp, MethodKind,
    ObjectPatProp, Pat, Program, PropKey, PropKind, Property, Stmt, SwitchCase, TemplateElement,
    VarDeclarator,
};
pub use ops::{AssignOp, BinaryOp, LogicalOp, UnaryOp, UpdateOp, VarKind};
pub use span::{line_col, Span};
pub use visit::{expr_kind, kind_stream, pat_kind, stmt_kind, walk, NodeRef};
pub use visit_mut::MutVisitor;

//! Low-level output writer with token-boundary safety.

/// Accumulates output text, inserting separating spaces where two adjacent
/// tokens would otherwise fuse into a different token (`a in b`, `x + +y`,
/// `a / /re/.source`).
#[derive(Debug)]
pub(crate) struct Writer {
    out: String,
    pub(crate) minify: bool,
    indent_level: usize,
    indent: String,
    at_line_start: bool,
}

impl Writer {
    pub(crate) fn new(minify: bool, indent: &str) -> Self {
        Writer {
            out: String::new(),
            minify,
            indent_level: 0,
            indent: indent.to_string(),
            at_line_start: true,
        }
    }

    pub(crate) fn finish(self) -> String {
        self.out
    }

    fn needs_space(last: char, next: char) -> bool {
        let ident_ish = |c: char| c.is_alphanumeric() || c == '_' || c == '$';
        (ident_ish(last) && ident_ish(next))
            // `static #x` — a `#` after an identifier is a private name
            // following a modifier keyword.
            || (ident_ish(last) && next == '#')
            || (last == '+' && next == '+')
            || (last == '-' && next == '-')
            || (last == '/' && next == '/')
            || (last == '/' && next == '*')
            || (last == '<' && next == '!')
    }

    /// Appends a token, inserting a space if the boundary is unsafe.
    pub(crate) fn token(&mut self, s: &str) {
        if s.is_empty() {
            return;
        }
        if self.at_line_start && !self.minify {
            for _ in 0..self.indent_level {
                self.out.push_str(&self.indent);
            }
            self.at_line_start = false;
        }
        if let (Some(last), Some(next)) = (self.out.chars().last(), s.chars().next()) {
            if Self::needs_space(last, next) {
                self.out.push(' ');
            }
        }
        self.out.push_str(s);
    }

    /// Appends a space in pretty mode only.
    pub(crate) fn space(&mut self) {
        if !self.minify && !self.at_line_start {
            self.out.push(' ');
        }
    }

    /// Starts a new line in pretty mode (no-op when minifying).
    pub(crate) fn newline(&mut self) {
        if !self.minify {
            if !self.at_line_start {
                self.out.push('\n');
            }
            self.at_line_start = true;
        }
    }

    pub(crate) fn indent_inc(&mut self) {
        self.indent_level += 1;
    }

    pub(crate) fn indent_dec(&mut self) {
        self.indent_level = self.indent_level.saturating_sub(1);
    }

    /// Last character currently in the buffer.
    pub(crate) fn last_char(&self) -> Option<char> {
        self.out.chars().last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inserts_space_between_identifier_tokens() {
        let mut w = Writer::new(true, "");
        w.token("var");
        w.token("x");
        assert_eq!(w.finish(), "var x");
    }

    #[test]
    fn no_space_between_punct_and_ident() {
        let mut w = Writer::new(true, "");
        w.token("(");
        w.token("x");
        w.token(")");
        assert_eq!(w.finish(), "(x)");
    }

    #[test]
    fn plus_plus_separated() {
        let mut w = Writer::new(true, "");
        w.token("a");
        w.token("+");
        w.token("+");
        w.token("b");
        assert_eq!(w.finish(), "a+ +b");
    }

    #[test]
    fn slash_slash_separated() {
        let mut w = Writer::new(true, "");
        w.token("a");
        w.token("/");
        w.token("/re/");
        assert_eq!(w.finish(), "a/ /re/");
    }

    #[test]
    fn pretty_mode_indents() {
        let mut w = Writer::new(false, "  ");
        w.token("{");
        w.newline();
        w.indent_inc();
        w.token("x");
        w.newline();
        w.indent_dec();
        w.token("}");
        assert_eq!(w.finish(), "{\n  x\n}");
    }
}

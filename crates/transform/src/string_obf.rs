//! String obfuscation (paper §II-A, *data obfuscation*).
//!
//! Replaces plain string literals with expressions that rebuild them at
//! runtime. Four sub-techniques model the tools the paper uses:
//!
//! - **Split**: `'secret'` → `'sec' + 'ret'` (gnirts-style splitting).
//! - **Reverse**: `'secret'` → `'terces'.split('').reverse().join('')`.
//! - **FromCharCode**: `'hi'` → `String.fromCharCode(104, 105)`.
//! - **EncodedCall**: `'hi'` → `_0xdec('00680069')` with an injected hex
//!   decoder (the paper's *custom-encoding* tool).

use jsdetect_ast::builder::*;
use jsdetect_ast::visit_mut::{walk_expr_mut, MutVisitor};
use jsdetect_ast::*;
use rand::rngs::StdRng;
use rand::Rng;

/// Which string-rewriting shapes are allowed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StringObfMode {
    /// Split into concatenated chunks.
    Split,
    /// Reverse + runtime re-reverse.
    Reverse,
    /// `String.fromCharCode(...)`.
    FromCharCode,
    /// Hex-encode + injected decoder call.
    EncodedCall,
}

/// Options for the string obfuscation pass.
#[derive(Debug, Clone)]
pub struct StringObfOptions {
    /// Enabled modes (chosen per string at random).
    pub modes: Vec<StringObfMode>,
    /// Minimum string length to rewrite.
    pub min_len: usize,
    /// Maximum string length for `FromCharCode` (longer strings pick
    /// another mode).
    pub max_char_code_len: usize,
}

impl Default for StringObfOptions {
    fn default() -> Self {
        StringObfOptions {
            modes: vec![
                StringObfMode::Split,
                StringObfMode::Reverse,
                StringObfMode::FromCharCode,
                StringObfMode::EncodedCall,
            ],
            min_len: 3,
            max_char_code_len: 32,
        }
    }
}

/// Applies string obfuscation in place. Returns the number of rewritten
/// literals.
pub fn obfuscate_strings(
    program: &mut Program,
    rng: &mut StdRng,
    opts: &StringObfOptions,
) -> usize {
    let decoder_name = format!("_0x{:x}d", rng.gen_range(0x1000u32..0xFFFF));
    let mut pass = StringObf {
        rng,
        opts,
        rewritten: 0,
        needs_decoder: false,
        decoder_name: decoder_name.clone(),
    };
    // Skip a directive prologue ('use strict') at the top of the program.
    let skip = directive_count(&program.body);
    let mut body = std::mem::take(&mut program.body);
    for s in body.iter_mut().skip(skip) {
        pass.visit_stmt_mut(s);
    }
    let needs_decoder = pass.needs_decoder;
    let rewritten = pass.rewritten;
    if needs_decoder {
        body.insert(skip, decoder_decl(&decoder_name));
    }
    program.body = body;
    rewritten
}

/// Number of leading directive-prologue statements (`'use strict';`).
pub(crate) fn directive_count(body: &[Stmt]) -> usize {
    body.iter()
        .take_while(|s| {
            matches!(s, Stmt::Expr { expr: Expr::Lit(Lit { value: LitValue::Str(_), .. }), .. })
        })
        .count()
}

struct StringObf<'a> {
    rng: &'a mut StdRng,
    opts: &'a StringObfOptions,
    rewritten: usize,
    needs_decoder: bool,
    decoder_name: String,
}

impl MutVisitor for StringObf<'_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        if let Expr::Lit(Lit { value: LitValue::Str(s), .. }) = e {
            if s.len() >= self.opts.min_len && !self.opts.modes.is_empty() {
                let s = *s;
                *e = self.rewrite(&s);
                self.rewritten += 1;
                return; // do not recurse into the replacement
            }
        }
        walk_expr_mut(self, e);
    }

    fn visit_function_mut(&mut self, f: &mut Function) {
        // Skip directive prologues in function bodies too.
        let skip = directive_count(&f.body);
        for p in &mut f.params {
            self.visit_pat_mut(p);
        }
        for s in f.body.iter_mut().skip(skip) {
            self.visit_stmt_mut(s);
        }
    }
}

impl StringObf<'_> {
    fn rewrite(&mut self, s: &str) -> Expr {
        let mut mode = self.opts.modes[self.rng.gen_range(0..self.opts.modes.len())];
        if mode == StringObfMode::FromCharCode && s.chars().count() > self.opts.max_char_code_len {
            mode = StringObfMode::Split;
        }
        match mode {
            StringObfMode::Split => self.split(s),
            StringObfMode::Reverse => reverse_expr(s),
            StringObfMode::FromCharCode => from_char_code_expr(s),
            StringObfMode::EncodedCall => {
                self.needs_decoder = true;
                call(ident(self.decoder_name.clone()), vec![str_lit(hex_encode(s))])
            }
        }
    }

    fn split(&mut self, s: &str) -> Expr {
        let chars: Vec<char> = s.chars().collect();
        let parts = self.rng.gen_range(2..=4usize).min(chars.len().max(2));
        let mut cut_points: Vec<usize> = (1..chars.len()).collect();
        // Choose parts-1 cut points.
        let mut cuts = Vec::new();
        for _ in 0..parts.saturating_sub(1) {
            if cut_points.is_empty() {
                break;
            }
            let i = self.rng.gen_range(0..cut_points.len());
            cuts.push(cut_points.swap_remove(i));
        }
        cuts.sort_unstable();
        let mut chunks = Vec::new();
        let mut prev = 0;
        for c in cuts {
            chunks.push(chars[prev..c].iter().collect::<String>());
            prev = c;
        }
        chunks.push(chars[prev..].iter().collect::<String>());
        let mut it = chunks.into_iter();
        let mut e = str_lit(it.next().unwrap_or_default());
        for chunk in it {
            e = binary(BinaryOp::Add, e, str_lit(chunk));
        }
        e
    }
}

/// `'terces'.split('').reverse().join('')`
fn reverse_expr(s: &str) -> Expr {
    let reversed: String = s.chars().rev().collect();
    method_call(
        method_call(method_call(str_lit(reversed), "split", vec![str_lit("")]), "reverse", vec![]),
        "join",
        vec![str_lit("")],
    )
}

/// `String.fromCharCode(104, 105, ...)`
fn from_char_code_expr(s: &str) -> Expr {
    let codes: Vec<Expr> = s.encode_utf16().map(|u| num_lit(u as f64)).collect();
    from_char_code(codes)
}

/// Hex-encodes UTF-16 code units, four digits each.
fn hex_encode(s: &str) -> String {
    s.encode_utf16().map(|u| format!("{:04x}", u)).collect()
}

/// Builds the decoder function:
/// `function NAME(h) { var s = ''; for (var i = 0; i < h.length; i += 4)
///   { s += String.fromCharCode(parseInt(h.substr(i, 4), 16)); } return s; }`
fn decoder_decl(name: &str) -> Stmt {
    let parse_call = call(
        ident("parseInt"),
        vec![method_call(ident("h"), "substr", vec![ident("i"), num_lit(4.0)]), num_lit(16.0)],
    );
    let body = vec![
        var_decl(VarKind::Var, "s", Some(str_lit(""))),
        Stmt::For {
            init: Some(ForInit::Var {
                kind: VarKind::Var,
                decls: vec![VarDeclarator {
                    id: Pat::Ident(Ident::new("i")),
                    init: Some(num_lit(0.0)),
                    span: Span::DUMMY,
                }],
            }),
            test: Some(binary(BinaryOp::Lt, ident("i"), member(ident("h"), "length"))),
            update: Some(Expr::Assign {
                op: AssignOp::AddAssign,
                target: Box::new(Pat::Ident(Ident::new("i"))),
                value: Box::new(num_lit(4.0)),
                span: Span::DUMMY,
            }),
            body: Box::new(block(vec![expr_stmt(Expr::Assign {
                op: AssignOp::AddAssign,
                target: Box::new(Pat::Ident(Ident::new("s"))),
                value: Box::new(from_char_code(vec![parse_call])),
                span: Span::DUMMY,
            })])),
            span: Span::DUMMY,
        },
        ret(Some(ident("s"))),
    ];
    fn_decl(name, vec!["h"], body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;
    use rand::SeedableRng;

    fn run(src: &str, modes: Vec<StringObfMode>) -> String {
        let mut prog = parse(src).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let opts = StringObfOptions { modes, ..Default::default() };
        obfuscate_strings(&mut prog, &mut rng, &opts);
        to_minified(&prog)
    }

    #[test]
    fn split_produces_concatenation() {
        let out = run("var msg = 'hello world';", vec![StringObfMode::Split]);
        assert!(out.matches('+').count() >= 1, "{}", out);
        assert!(!out.contains("'hello world'"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn reverse_produces_split_reverse_join() {
        let out = run("var msg = 'secret';", vec![StringObfMode::Reverse]);
        assert!(out.contains("'terces'"), "{}", out);
        assert!(out.contains(".split('').reverse().join('')"), "{}", out);
    }

    #[test]
    fn from_char_code() {
        let out = run("var msg = 'abc';", vec![StringObfMode::FromCharCode]);
        assert!(out.contains("String.fromCharCode(97,98,99)"), "{}", out);
    }

    #[test]
    fn encoded_call_injects_decoder() {
        let out = run("var msg = 'hello';", vec![StringObfMode::EncodedCall]);
        assert!(out.contains("parseInt"), "{}", out);
        assert!(out.contains("fromCharCode"), "{}", out);
        assert!(out.contains("00680065006c006c006f"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn short_strings_kept() {
        let out = run("var a = 'ab'; f('x');", vec![StringObfMode::Split]);
        // min_len 3 → 'hi' and 'x' untouched... 'ab' length 2 < 3.
        assert!(out.contains("'ab'"), "{}", out);
        assert!(out.contains("'x'"), "{}", out);
    }

    #[test]
    fn directives_untouched() {
        let out = run("'use strict'; var m = 'message';", vec![StringObfMode::Split]);
        assert!(out.starts_with("'use strict';"), "{}", out);
        assert!(!out.contains("'message'"), "{}", out);
    }

    #[test]
    fn function_directives_untouched() {
        let out =
            run("function f() { 'use strict'; return 'payload'; }", vec![StringObfMode::Reverse]);
        assert!(out.contains("'use strict';"), "{}", out);
        assert!(out.contains("'daolyap'"), "{}", out);
    }

    #[test]
    fn property_key_strings_untouched() {
        let out = run("var o = {'longkey': 'longvalue'};", vec![StringObfMode::Reverse]);
        assert!(out.contains("'longkey'"), "{}", out);
        assert!(out.contains("'eulavgnol'"), "{}", out);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run("var m = 'hello world, this is a test';", vec![StringObfMode::Split]);
        let b = run("var m = 'hello world, this is a test';", vec![StringObfMode::Split]);
        assert_eq!(a, b);
    }

    #[test]
    fn unicode_strings_survive() {
        let out = run("var m = 'héllo wörld';", vec![StringObfMode::FromCharCode]);
        assert!(parse(&out).is_ok(), "{}", out);
        assert!(out.contains("fromCharCode"), "{}", out);
    }
}

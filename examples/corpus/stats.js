// Summary statistics over a numeric array.
function mean(values) {
    var sum = 0;
    for (var i = 0; i < values.length; i++) {
        sum = sum + values[i];
    }
    return values.length ? sum / values.length : 0;
}

function variance(values) {
    var m = mean(values);
    var acc = 0;
    for (var i = 0; i < values.length; i++) {
        var d = values[i] - m;
        acc = acc + d * d;
    }
    return values.length ? acc / values.length : 0;
}

function histogram(values, buckets) {
    var counts = [];
    for (var b = 0; b < buckets; b++) {
        counts.push(0);
    }
    var lo = values[0];
    var hi = values[0];
    for (var i = 1; i < values.length; i++) {
        if (values[i] < lo) {
            lo = values[i];
        }
        if (values[i] > hi) {
            hi = values[i];
        }
    }
    var width = (hi - lo) / buckets || 1;
    for (var j = 0; j < values.length; j++) {
        var slot = Math.floor((values[j] - lo) / width);
        if (slot >= buckets) {
            slot = buckets - 1;
        }
        counts[slot] = counts[slot] + 1;
    }
    return counts;
}

var samples = [4, 8, 15, 16, 23, 42, 8, 4, 15, 16];
console.log("mean", mean(samples));
console.log("variance", variance(samples));
console.log("histogram", histogram(samples, 4));

//! Multi-task (multi-label) classification: binary relevance and
//! classifier chains (paper §II-C / §III-D3).
//!
//! A multi-task system with `C` classes runs `C` binary classifiers.
//! Under the *independence assumption* (binary relevance) they are fitted
//! and evaluated separately; in a *classifier chain* the classifier at
//! position `p` additionally receives the labels of positions `0..p` as
//! features (ground truth while training, thresholded predictions at
//! inference) [38], [41], [43].

use crate::bayes::GaussianNb;
use crate::forest::{ForestParams, RandomForest};
use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Which base classifier the multi-task system uses.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BaseParams {
    /// Random forest (the paper's selected model).
    Forest(ForestParams),
    /// Single CART tree.
    Tree(TreeParams, u64),
    /// Gaussian naive Bayes (NoFus-style baseline).
    Bayes,
}

/// A fitted base model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BaseModel {
    /// Random forest.
    Forest(RandomForest),
    /// Single tree.
    Tree(DecisionTree),
    /// Gaussian naive Bayes.
    Bayes(GaussianNb),
}

impl BaseModel {
    fn fit(params: &BaseParams, x: &[Vec<f32>], y: &[bool], label_idx: usize) -> BaseModel {
        match params {
            BaseParams::Forest(p) => {
                let mut p = p.clone();
                // Decorrelate per-label forests.
                p.seed = p.seed.wrapping_add(label_idx as u64 * 7919);
                BaseModel::Forest(RandomForest::fit(x, y, &p))
            }
            BaseParams::Tree(p, seed) => {
                let mut rng = StdRng::seed_from_u64(seed.wrapping_add(label_idx as u64 * 7919));
                BaseModel::Tree(DecisionTree::fit(x, y, p, &mut rng))
            }
            BaseParams::Bayes => BaseModel::Bayes(GaussianNb::fit(x, y)),
        }
    }

    fn predict_proba(&self, row: &[f32]) -> f32 {
        match self {
            BaseModel::Forest(m) => m.predict_proba(row),
            BaseModel::Tree(m) => m.predict_proba(row),
            BaseModel::Bayes(m) => m.predict_proba(row),
        }
    }
}

/// Multi-label strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Strategy {
    /// Independent per-label classifiers.
    BinaryRelevance,
    /// Chained classifiers (label `p` sees labels `0..p`).
    ClassifierChain,
}

/// A fitted multi-task classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MultiLabel {
    strategy: Strategy,
    models: Vec<BaseModel>,
    n_features: usize,
}

impl MultiLabel {
    /// Fits one binary classifier per label column.
    ///
    /// `labels[i]` is the label vector for row `i`; all rows must have the
    /// same number of labels.
    ///
    /// # Panics
    ///
    /// Panics on empty input or ragged label rows.
    pub fn fit(
        x: &[Vec<f32>],
        labels: &[Vec<bool>],
        strategy: Strategy,
        base: &BaseParams,
    ) -> Self {
        assert!(!x.is_empty(), "cannot fit on an empty dataset");
        assert_eq!(x.len(), labels.len(), "feature/label length mismatch");
        let n_labels = labels[0].len();
        assert!(labels.iter().all(|l| l.len() == n_labels), "ragged label rows");
        let n_features = x[0].len();

        let mut models = Vec::with_capacity(n_labels);
        match strategy {
            Strategy::BinaryRelevance => {
                for j in 0..n_labels {
                    let y: Vec<bool> = labels.iter().map(|l| l[j]).collect();
                    models.push(BaseModel::fit(base, x, &y, j));
                }
            }
            Strategy::ClassifierChain => {
                // Augment features with the ground-truth labels of all
                // previous positions.
                let mut augmented: Vec<Vec<f32>> = x.to_vec();
                for j in 0..n_labels {
                    let y: Vec<bool> = labels.iter().map(|l| l[j]).collect();
                    models.push(BaseModel::fit(base, &augmented, &y, j));
                    if j + 1 < n_labels {
                        for (row, l) in augmented.iter_mut().zip(labels) {
                            row.push(if l[j] { 1.0 } else { 0.0 });
                        }
                    }
                }
            }
        }
        MultiLabel { strategy, models, n_features }
    }

    /// Per-label positive probabilities for one row.
    pub fn predict_proba(&self, row: &[f32]) -> Vec<f32> {
        assert_eq!(row.len(), self.n_features, "feature width mismatch");
        match self.strategy {
            Strategy::BinaryRelevance => self.models.iter().map(|m| m.predict_proba(row)).collect(),
            Strategy::ClassifierChain => {
                let mut augmented = row.to_vec();
                let mut probs = Vec::with_capacity(self.models.len());
                for (j, m) in self.models.iter().enumerate() {
                    let p = m.predict_proba(&augmented);
                    probs.push(p);
                    if j + 1 < self.models.len() {
                        augmented.push(if p >= 0.5 { 1.0 } else { 0.0 });
                    }
                }
                probs
            }
        }
    }

    /// Hard label set at the 0.5 threshold.
    pub fn predict(&self, row: &[f32]) -> Vec<bool> {
        self.predict_proba(row).into_iter().map(|p| p >= 0.5).collect()
    }

    /// Number of labels.
    pub fn n_labels(&self) -> usize {
        self.models.len()
    }

    /// The strategy used.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Feature importances of the classifier for `label` (forest base
    /// only; other bases return `None`). With classifier chains, features
    /// beyond the base width are the chained label predictions.
    pub fn feature_importances(&self, label: usize) -> Option<Vec<f64>> {
        let width = self.n_features
            + match self.strategy {
                Strategy::BinaryRelevance => 0,
                Strategy::ClassifierChain => label,
            };
        match self.models.get(label)? {
            BaseModel::Forest(f) => Some(f.feature_importances(width)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three correlated labels over 2-D points:
    /// l0: x>0.5, l1: y>0.5, l2: l0 AND l1 (correlated with both).
    fn dataset(n: usize) -> (Vec<Vec<f32>>, Vec<Vec<bool>>) {
        let mut x = Vec::new();
        let mut labels = Vec::new();
        for i in 0..n {
            let a = (i % 17) as f32 / 16.0;
            let b = (i % 13) as f32 / 12.0;
            x.push(vec![a, b]);
            labels.push(vec![a > 0.5, b > 0.5, a > 0.5 && b > 0.5]);
        }
        (x, labels)
    }

    fn forest_base() -> BaseParams {
        BaseParams::Forest(ForestParams { n_trees: 8, ..Default::default() })
    }

    #[test]
    fn binary_relevance_learns_labels() {
        let (x, labels) = dataset(300);
        let ml = MultiLabel::fit(&x, &labels, Strategy::BinaryRelevance, &forest_base());
        let mut correct = 0;
        for (xi, li) in x.iter().zip(&labels) {
            if ml.predict(xi) == *li {
                correct += 1;
            }
        }
        assert!(correct as f64 / x.len() as f64 > 0.9, "{}/{}", correct, x.len());
    }

    #[test]
    fn chain_learns_labels() {
        let (x, labels) = dataset(300);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let mut correct = 0;
        for (xi, li) in x.iter().zip(&labels) {
            if ml.predict(xi) == *li {
                correct += 1;
            }
        }
        assert!(correct as f64 / x.len() as f64 > 0.9, "{}/{}", correct, x.len());
    }

    #[test]
    fn proba_len_matches_labels() {
        let (x, labels) = dataset(60);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        assert_eq!(ml.n_labels(), 3);
        assert_eq!(ml.predict_proba(&x[0]).len(), 3);
    }

    #[test]
    fn bayes_base_works() {
        let (x, labels) = dataset(200);
        let ml = MultiLabel::fit(&x, &labels, Strategy::BinaryRelevance, &BaseParams::Bayes);
        let p = ml.predict_proba(&[0.9, 0.9]);
        assert!(p[0] > 0.5 && p[1] > 0.5);
    }

    #[test]
    fn tree_base_works() {
        let (x, labels) = dataset(200);
        let ml = MultiLabel::fit(
            &x,
            &labels,
            Strategy::ClassifierChain,
            &BaseParams::Tree(TreeParams::default(), 3),
        );
        let p = ml.predict(&[0.9, 0.1]);
        assert_eq!(p, vec![true, false, false]);
    }

    #[test]
    #[should_panic(expected = "feature width mismatch")]
    fn wrong_width_panics() {
        let (x, labels) = dataset(40);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let _ = ml.predict_proba(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn serde_roundtrip() {
        let (x, labels) = dataset(60);
        let ml = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let back: MultiLabel = serde_json::from_str(&serde_json::to_string(&ml).unwrap()).unwrap();
        assert_eq!(back.predict_proba(&x[3]), ml.predict_proba(&x[3]));
    }

    #[test]
    fn deterministic() {
        let (x, labels) = dataset(100);
        let a = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        let b = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &forest_base());
        assert_eq!(a.predict_proba(&x[7]), b.predict_proba(&x[7]));
    }
}

//! Interned string atoms.
//!
//! An [`Atom`] is a `Copy` `u32` handle to a deduplicated, immortal string.
//! The front end interns every identifier, string literal, and raw literal
//! text once; tokens and AST nodes then carry 4-byte handles instead of
//! per-node `String`s, so cloning a subtree (normalize snapshots, transform
//! output) and comparing names (scope resolution, lint facts) are
//! allocation-free.
//!
//! # Lifetime model
//!
//! Atoms resolve against a single process-global [`Interner`]. The table is
//! append-only: a string, once interned, lives for the remainder of the
//! process (`Box::leak`), which is what makes `Atom::as_str` return
//! `&'static str` with no per-parse lifetime threading through the parser,
//! codegen, lint, flow, features, and normalize layers (the AST is shared
//! across worker threads and replayed out of the verdict cache, so a
//! per-parse interner would have to ride along every one of those paths).
//! Growth is bounded by the number of *unique* strings seen; per-script
//! token budgets (`jsdetect-guard`) bound how much a single hostile input
//! can add. [`Interner::stats`] exposes occupancy for telemetry.
//!
//! # Concurrency
//!
//! Interning takes one sharded mutex (32 shards, hashed by content);
//! resolution is lock-free (two `OnceLock` loads). Atom ids are assigned
//! with an atomic counter, so ids are *not* stable across processes or
//! runs — anything persisted must serialize the resolved string, which is
//! exactly what the serde impls do.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Entries per id-table chunk (chunks are allocated on demand).
const CHUNK: usize = 1 << 12;
/// Default capacity: ~4.2M unique strings.
const DEFAULT_CAP: u32 = 1 << 22;
/// Shard count for the str→id maps (power of two).
const N_SHARDS: usize = 32;

/// A `Copy` handle to an interned string in the process-global
/// [`Interner`].
///
/// Equality and hashing use the `u32` id (valid because interning
/// deduplicates); ordering compares the resolved strings so sorts by name
/// behave exactly as they did with `String` fields.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Atom(u32);

impl Atom {
    /// Interns `s` in the global interner (no-op if already present).
    ///
    /// # Panics
    ///
    /// Panics if the global interner is full (≈4.2M unique strings); the
    /// guarded pipeline's panic fence converts this into a quarantined
    /// outcome rather than a crash.
    pub fn new(s: &str) -> Atom {
        global().intern(s)
    }

    /// Interns `s` in the global interner, returning `None` instead of
    /// panicking when the capacity cap is reached. Resident services use
    /// this on their admission path so cap exhaustion degrades a request
    /// rather than the process.
    pub fn try_new(s: &str) -> Option<Atom> {
        global().try_intern(s)
    }

    /// The interned empty string (id 0; pre-interned at startup).
    pub fn empty() -> Atom {
        let a = Atom::new("");
        debug_assert_eq!(a.0, 0);
        a
    }

    /// Resolves the atom's text.
    pub fn as_str(self) -> &'static str {
        global().resolve(self)
    }

    /// The raw id. Ids are process-local: never persist them.
    pub fn id(self) -> u32 {
        self.0
    }
}

impl Deref for Atom {
    type Target = str;

    fn deref(&self) -> &str {
        self.as_str()
    }
}

impl AsRef<str> for Atom {
    fn as_ref(&self) -> &str {
        self.as_str()
    }
}

impl Default for Atom {
    fn default() -> Self {
        Atom::empty()
    }
}

impl PartialOrd for Atom {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Atom {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.0 == other.0 {
            std::cmp::Ordering::Equal
        } else {
            self.as_str().cmp(other.as_str())
        }
    }
}

impl std::fmt::Debug for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(self.as_str(), f)
    }
}

impl std::fmt::Display for Atom {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Atom {
    fn from(s: &str) -> Atom {
        Atom::new(s)
    }
}

impl From<&String> for Atom {
    fn from(s: &String) -> Atom {
        Atom::new(s)
    }
}

impl From<String> for Atom {
    fn from(s: String) -> Atom {
        Atom::new(&s)
    }
}

impl From<Atom> for String {
    fn from(a: Atom) -> String {
        a.as_str().to_string()
    }
}

impl PartialEq<str> for Atom {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == other
    }
}

impl PartialEq<&str> for Atom {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == *other
    }
}

impl PartialEq<String> for Atom {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == other.as_str()
    }
}

impl PartialEq<Atom> for str {
    fn eq(&self, other: &Atom) -> bool {
        self == other.as_str()
    }
}

impl PartialEq<Atom> for &str {
    fn eq(&self, other: &Atom) -> bool {
        *self == other.as_str()
    }
}

impl PartialEq<Atom> for String {
    fn eq(&self, other: &Atom) -> bool {
        self.as_str() == other.as_str()
    }
}

impl serde::Serialize for Atom {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(self.as_str().to_string())
    }
}

impl serde::Deserialize for Atom {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        match v {
            serde::Value::Str(s) => Ok(Atom::new(s)),
            _ => Err(serde::DeError::expected("string", v)),
        }
    }
}

/// Panic message [`Interner::intern`] (and thus [`Atom::new`]) dies with
/// when the capacity cap is hit. Panic fences match on this substring to
/// reclassify a residual interner panic as a typed resource rejection.
pub const INTERNER_EXHAUSTED_MSG: &str = "interner capacity exhausted";

/// Occupancy statistics for an [`Interner`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InternerStats {
    /// Number of distinct interned strings.
    pub count: u32,
    /// Total bytes of interned string data.
    pub bytes: usize,
    /// Maximum number of atoms this interner can hold.
    pub capacity: u32,
}

impl InternerStats {
    /// Whether at least `reserve` more atoms fit before the cap.
    pub fn has_headroom(&self, reserve: u32) -> bool {
        self.count.saturating_add(reserve) <= self.capacity
    }

    /// Occupancy as a fraction of capacity (0.0 when the cap is zero).
    pub fn occupancy(&self) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            f64::from(self.count) / f64::from(self.capacity)
        }
    }
}

/// An append-only, deduplicating string table.
///
/// All methods take `&self`; the structure is internally synchronized so
/// one interner can serve every worker thread. Resolution never takes a
/// lock. Standalone instances exist for unit-testing the machinery (and
/// for capacity-limit tests); production code goes through the global
/// instance via [`Atom`].
pub struct Interner {
    shards: Box<[Mutex<Shard>]>,
    /// id → str, in `CHUNK`-sized lazily allocated chunks. `OnceLock` gives
    /// release/acquire publication, so resolution is two atomic loads.
    chunks: Box<[OnceLock<Chunk>]>,
    next: AtomicU32,
    cap: u32,
    bytes: AtomicUsize,
}

/// One dedup shard: interned str → id under this shard's lock.
type Shard = HashMap<&'static str, u32, BuildHasherDefault<FastHasher>>;
/// One lazily allocated block of the id → str table.
type Chunk = Box<[OnceLock<&'static str>]>;

impl std::fmt::Debug for Interner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("Interner")
            .field("count", &s.count)
            .field("bytes", &s.bytes)
            .field("capacity", &s.capacity)
            .finish()
    }
}

impl Default for Interner {
    fn default() -> Self {
        Interner::with_capacity_limit(DEFAULT_CAP)
    }
}

impl Interner {
    /// Creates an interner holding at most `cap` distinct strings. The
    /// empty string is pre-interned as id 0.
    pub fn with_capacity_limit(cap: u32) -> Self {
        let n_chunks = (cap as usize).div_ceil(CHUNK);
        let interner = Interner {
            shards: (0..N_SHARDS).map(|_| Mutex::new(HashMap::default())).collect(),
            chunks: (0..n_chunks).map(|_| OnceLock::new()).collect(),
            next: AtomicU32::new(0),
            cap,
            bytes: AtomicUsize::new(0),
        };
        if cap > 0 {
            let empty = interner.intern("");
            debug_assert_eq!(empty.0, 0);
        }
        interner
    }

    /// Interns `s`, panicking when the capacity limit is reached.
    pub fn intern(&self, s: &str) -> Atom {
        self.try_intern(s).expect(INTERNER_EXHAUSTED_MSG)
    }

    /// Interns `s`, returning `None` when the capacity limit is reached.
    /// Strings already interned always succeed.
    pub fn try_intern(&self, s: &str) -> Option<Atom> {
        let shard = &self.shards[(fast_hash(s.as_bytes()) as usize) & (N_SHARDS - 1)];
        let mut map = shard.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(&id) = map.get(s) {
            return Some(Atom(id));
        }
        // Ids are handed out globally; the id-overflow guard re-checks under
        // the shard lock so a full interner keeps failing cleanly instead of
        // wrapping after u32::MAX failed attempts.
        let id = self.next.fetch_add(1, Ordering::Relaxed);
        if id >= self.cap {
            self.next.store(self.cap, Ordering::Relaxed);
            return None;
        }
        let stored: &'static str = Box::leak(s.to_owned().into_boxed_str());
        self.slot(id).set(stored).unwrap_or_else(|_| unreachable!("atom id {} assigned twice", id));
        self.bytes.fetch_add(stored.len(), Ordering::Relaxed);
        map.insert(stored, id);
        Some(Atom(id))
    }

    /// Resolves an atom previously produced by *this* interner.
    pub fn resolve(&self, atom: Atom) -> &'static str {
        self.chunks[atom.0 as usize / CHUNK]
            .get()
            .and_then(|chunk| chunk[atom.0 as usize % CHUNK].get())
            .unwrap_or_else(|| panic!("atom {} not interned here", atom.0))
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> InternerStats {
        InternerStats {
            count: self.next.load(Ordering::Relaxed).min(self.cap),
            bytes: self.bytes.load(Ordering::Relaxed),
            capacity: self.cap,
        }
    }

    fn slot(&self, id: u32) -> &OnceLock<&'static str> {
        let chunk = self.chunks[id as usize / CHUNK].get_or_init(|| {
            (0..CHUNK).map(|_| OnceLock::new()).collect::<Vec<_>>().into_boxed_slice()
        });
        &chunk[id as usize % CHUNK]
    }
}

/// The process-global interner every [`Atom`] resolves against.
pub fn global() -> &'static Interner {
    static GLOBAL: OnceLock<Interner> = OnceLock::new();
    GLOBAL.get_or_init(Interner::default)
}

/// FxHash-style multiply-rotate hasher: strings are short and hashed on
/// every intern, so SipHash's per-byte cost shows up in lex throughput.
#[derive(Default)]
struct FastHasher {
    h: u64,
}

impl Hasher for FastHasher {
    fn write(&mut self, bytes: &[u8]) {
        self.h = fast_hash_fold(self.h, bytes);
    }

    fn finish(&self) -> u64 {
        self.h
    }
}

fn fast_hash(bytes: &[u8]) -> u64 {
    fast_hash_fold(0, bytes)
}

fn fast_hash_fold(seed: u64, bytes: &[u8]) -> u64 {
    const K: u64 = 0x517c_c1b7_2722_0a95;
    let mut h = seed;
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
        h = (h.rotate_left(5) ^ v).wrapping_mul(K);
    }
    let mut tail = 0u64;
    for (i, &b) in chunks.remainder().iter().enumerate() {
        tail |= (b as u64) << (8 * i);
    }
    // Fold in the length so `"a"` and `"a\0"` diverge even when the tail
    // bytes coincide.
    h = (h.rotate_left(5) ^ tail).wrapping_mul(K);
    (h.rotate_left(5) ^ (bytes.len() as u64)).wrapping_mul(K)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_same_id() {
        let i = Interner::default();
        let a = i.intern("hello");
        let b = i.intern("hello");
        let c = i.intern("world");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(i.resolve(a), "hello");
        assert_eq!(i.resolve(c), "world");
    }

    #[test]
    fn empty_string_is_id_zero() {
        let i = Interner::default();
        assert_eq!(i.intern("").id(), 0);
        assert_eq!(Atom::empty().id(), 0);
        assert!(Atom::empty().is_empty());
    }

    #[test]
    fn capacity_guard_fails_cleanly() {
        // cap 3 = "" + two more; the fourth unique string must not wrap.
        let i = Interner::with_capacity_limit(3);
        let a = i.try_intern("a").unwrap();
        let b = i.try_intern("b").unwrap();
        assert_eq!(i.try_intern("c"), None);
        assert_eq!(i.try_intern("d"), None);
        // Existing strings still intern (dedup path precedes allocation).
        assert_eq!(i.try_intern("a"), Some(a));
        assert_eq!(i.try_intern("b"), Some(b));
        assert_eq!(i.stats().count, 3);
    }

    #[test]
    #[should_panic(expected = "capacity exhausted")]
    fn intern_panics_at_capacity() {
        let i = Interner::with_capacity_limit(1);
        i.intern("overflow");
    }

    #[test]
    fn headroom_and_occupancy_drive_admission_control() {
        // The serve daemon refuses work (`resource` reject) when the
        // global interner cannot guarantee `reserve` more atoms — these
        // are the exact helpers its admission path calls.
        let i = Interner::with_capacity_limit(10);
        i.intern("a"); // count: "" + "a" = 2
        let s = i.stats();
        assert!(s.has_headroom(8), "2 + 8 fits a cap of 10");
        assert!(!s.has_headroom(9), "2 + 9 overflows a cap of 10");
        assert!((s.occupancy() - 0.2).abs() < 1e-9);
        assert!(
            InternerStats { count: u32::MAX - 1, bytes: 0, capacity: u32::MAX }.has_headroom(1),
            "reserve arithmetic must not overflow"
        );
    }

    #[test]
    fn stats_track_bytes() {
        let i = Interner::with_capacity_limit(100);
        i.intern("abcd");
        i.intern("ef");
        i.intern("abcd");
        let s = i.stats();
        assert_eq!(s.count, 3); // "" + 2
        assert_eq!(s.bytes, 6);
        assert_eq!(s.capacity, 100);
    }

    #[test]
    fn atom_str_interop() {
        let a = Atom::new("foo");
        assert_eq!(a, "foo");
        assert_eq!("foo", a);
        assert_eq!(a, String::from("foo"));
        assert_eq!(a.len(), 3);
        assert!(a.starts_with("fo"));
        assert_eq!(format!("{}", a), "foo");
        assert_eq!(format!("{:?}", a), "\"foo\"");
    }

    #[test]
    fn atom_orders_by_string_not_id() {
        // Intern in reverse-lexicographic order so ids disagree with names.
        let z = Atom::new("zed-order-test");
        let a = Atom::new("abc-order-test");
        assert!(a < z);
        let mut v = vec![z, a];
        v.sort();
        assert_eq!(v, vec![a, z]);
    }

    #[test]
    fn serde_roundtrip_by_string() {
        let a = Atom::new("serde-atom");
        let v = serde::Serialize::to_value(&a);
        assert_eq!(v, serde::Value::Str("serde-atom".into()));
        let back: Atom = serde::Deserialize::from_value(&v).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn concurrent_interning_deduplicates() {
        let i = Interner::default();
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..8)
                .map(|t| {
                    let i = &i;
                    s.spawn(move || {
                        (0..200)
                            .map(|k| i.intern(&format!("name{}", (k + t) % 50)).id() as u64)
                            .sum::<u64>()
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        // 50 distinct names + "".
        assert_eq!(i.stats().count, 51);
    }

    #[test]
    fn chunk_boundary_resolution() {
        let i = Interner::default();
        let mut atoms = Vec::new();
        for k in 0..(CHUNK + 10) {
            atoms.push((k, i.intern(&format!("k{}", k))));
        }
        for (k, a) in atoms {
            assert_eq!(i.resolve(a), format!("k{}", k));
        }
    }
}

//! Bagged random forests over CART trees.
//!
//! Trees are grown over a columnar [`Dataset`] with bootstrap resampling
//! done purely on `u32` row indices (no feature row is ever cloned), then
//! compiled into one merged flattened struct-of-arrays node block so batch
//! inference walks contiguous memory instead of per-tree enum node soups.

use crate::dataset::{Dataset, DatasetError};
use crate::tree::{DecisionTree, FlatNodes, TreeParams};
use jsdetect_obs::names;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap-sample the training set per tree.
    pub bootstrap: bool,
    /// Per-tree growing parameters.
    pub tree: TreeParams,
    /// Base RNG seed; tree `i` derives its stream via [`ForestParams::tree_seed`].
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { n_trees: 32, bootstrap: true, tree: TreeParams::default(), seed: 0 }
    }
}

impl ForestParams {
    /// Deterministic per-tree RNG seed: a SplitMix64-style finalizer over
    /// `(seed, i)`.
    ///
    /// The previous scheme, `(seed + i) * γ` with γ = `0x9E3779B97F4A7C15`,
    /// produced correlated streams: γ is exactly the SplitMix64 gamma, so
    /// consecutive tree indices seeded generator states one step apart.
    /// Hash-mixing the index first decorrelates the streams.
    pub fn tree_seed(&self, i: usize) -> u64 {
        let mut z = self.seed ^ (i as u64).wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// A fitted random forest (binary classifier with probability output).
///
/// All trees share one flattened node block; `roots[t]` is tree `t`'s root
/// node id. The flattened arrays are what gets serialized; loaders should
/// call [`RandomForest::rebuild_index`] to bounds-check untrusted input.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    roots: Vec<u32>,
    nodes: FlatNodes,
}

impl RandomForest {
    /// Fits the forest on row-major samples (convenience wrapper that
    /// builds a columnar [`Dataset`] once).
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty, ragged, or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f32>], y: &[bool], params: &ForestParams) -> Self {
        let data = match Dataset::from_rows(x) {
            Ok(d) => d,
            Err(DatasetError::Empty) => panic!("cannot fit a forest on an empty dataset"),
            Err(e) => panic!("invalid training matrix: {}", e),
        };
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        Self::fit_dataset(&data, y, params)
    }

    /// Fits the forest on a columnar dataset using all available cores.
    pub fn fit_dataset(data: &Dataset, y: &[bool], params: &ForestParams) -> Self {
        let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        Self::fit_dataset_threads(data, y, params, n_threads)
    }

    /// Fits the forest with an explicit worker count. Trees are trained in
    /// parallel with deterministic per-tree seeds, so the fitted model is
    /// bit-identical for a fixed seed regardless of `n_threads`.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != data.n_rows()`.
    pub fn fit_dataset_threads(
        data: &Dataset,
        y: &[bool],
        params: &ForestParams,
        n_threads: usize,
    ) -> Self {
        assert_eq!(y.len(), data.n_rows(), "feature/label length mismatch");
        let _t = jsdetect_obs::span(names::SPAN_FOREST_FIT);
        // In the per-node-sort regime, build per-column distinct-value
        // rank tables once up front and share them read-only across all
        // trees: they do not depend on the bootstrap index sets, and
        // nodes counting-sort low-cardinality columns through them.
        let ranks = (params.n_trees > 1
            && crate::tree::wants_value_ranks(&params.tree, data.n_rows(), data.n_cols()))
        .then(|| crate::tree::ValueRanks::build(data))
        .flatten();
        let vr = ranks.as_ref();
        let mut trees: Vec<Option<DecisionTree>> = vec![None; params.n_trees];
        let chunk = params.n_trees.div_ceil(n_threads.max(1)).max(1);
        crossbeam::thread::scope(|scope| {
            for (t, slot_chunk) in trees.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                scope.spawn(move |_| {
                    let _obs = jsdetect_obs::ScopedCollector::new();
                    let _s = jsdetect_obs::span(names::SPAN_FIT_TREE_BATCH);
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let i = base + off;
                        let mut rng = StdRng::seed_from_u64(params.tree_seed(i));
                        let idx = sample_indices(data.n_rows(), params.bootstrap, &mut rng);
                        *slot = Some(DecisionTree::fit_dataset_with_ranks(
                            data,
                            &idx,
                            y,
                            &params.tree,
                            &mut rng,
                            vr,
                        ));
                    }
                    jsdetect_obs::counter_add(names::CTR_TREES_FITTED, slot_chunk.len() as u64);
                });
            }
        })
        .expect("forest training threads panicked");

        // Compile per-tree node blocks into one merged arena, in tree
        // order (deterministic regardless of which thread grew what).
        let mut roots = Vec::with_capacity(params.n_trees);
        let mut nodes = FlatNodes::new();
        for tree in trees.into_iter().map(Option::unwrap) {
            roots.push(nodes.append(tree.nodes()));
        }
        RandomForest { roots, nodes }
    }

    /// Mean positive-class probability across trees.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let sum: f32 = self.roots.iter().map(|&r| self.nodes.predict_row(r, row)).sum();
        sum / self.roots.len() as f32
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Mean positive-class probability for every dataset row, parallelized
    /// over row chunks. Exactly equals mapping [`RandomForest::predict_proba`]
    /// over the rows (same per-row tree-sum order).
    ///
    /// Each worker gathers its rows into one contiguous scratch buffer
    /// before traversal: the gather is a constant-stride pass over the
    /// columnar store (prefetch-friendly), and the per-tree walks then
    /// stay inside one cache-resident row instead of striding across the
    /// whole column block once per node.
    pub fn predict_proba_batch(&self, data: &Dataset) -> Vec<f32> {
        let n = data.n_rows();
        let _t = jsdetect_obs::span(names::SPAN_FOREST_PREDICT);
        jsdetect_obs::counter_add(names::CTR_TREES_TRAVERSED, (n * self.roots.len()) as u64);
        let mut out = vec![0f32; n];
        let predict_chunk = |base: usize, out_chunk: &mut [f32]| {
            let mut row_buf = Vec::with_capacity(data.n_cols());
            for (off, slot) in out_chunk.iter_mut().enumerate() {
                data.copy_row_into(base + off, &mut row_buf);
                let sum: f32 =
                    self.roots.iter().map(|&r| self.nodes.predict_row(r, &row_buf)).sum();
                *slot = sum / self.roots.len() as f32;
            }
        };
        // Below ~a thread-quantum of traversal work, spawning costs more
        // than it buys; run on the caller's thread.
        if n * self.roots.len() < 16_384 {
            predict_chunk(0, &mut out);
            return out;
        }
        let n_threads = std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4);
        let chunk = n.div_ceil(n_threads.max(1)).max(1);
        crossbeam::thread::scope(|scope| {
            for (c, out_chunk) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move |_| {
                    let _obs = jsdetect_obs::ScopedCollector::new();
                    let _s = jsdetect_obs::span(names::SPAN_PREDICT_CHUNK);
                    predict_chunk(c * chunk, out_chunk);
                });
            }
        })
        .expect("forest prediction threads panicked");
        out
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.roots.len()
    }

    /// Total node count across all trees.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Validates the flattened arrays after deserialization (array lengths
    /// agree, child/root ids in bounds). Call after loading a serialized
    /// model; corrupt input panics here instead of misindexing later.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    pub fn rebuild_index(&mut self) {
        if let Err(msg) = self.nodes.check_invariants(u16::MAX as usize) {
            panic!("corrupt serialized forest: {}", msg);
        }
        for &r in &self.roots {
            assert!(
                (r as usize) < self.nodes.len(),
                "corrupt serialized forest: root {} out of range",
                r
            );
        }
    }

    /// Split-frequency feature importances, normalized to sum to 1 (or all
    /// zeros if no split exists). A simple, deterministic proxy for Gini
    /// importance.
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut counts = vec![0u32; n_features];
        self.nodes.accumulate_split_counts(&mut counts);
        let total: u32 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; n_features];
        }
        counts.into_iter().map(|c| c as f64 / total as f64).collect()
    }
}

/// Bootstrap resampling as index resampling: a multiset of `n` row ids
/// (or the identity permutation when bagging is off). Draws exactly `n`
/// `gen_range` values, matching the legacy row-cloning sampler's RNG
/// consumption.
fn sample_indices(n: usize, bootstrap: bool, rng: &mut StdRng) -> Vec<u32> {
    if bootstrap {
        (0..n).map(|_| rng.gen_range(0..n) as u32).collect()
    } else {
        (0..n as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moons(n: usize) -> (Vec<Vec<f32>>, Vec<bool>) {
        // Two offset half-rings, deterministic.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = (i as f32 / n as f32) * std::f32::consts::PI;
            if i % 2 == 0 {
                x.push(vec![t.cos(), t.sin()]);
                y.push(false);
            } else {
                x.push(vec![1.0 - t.cos(), 0.5 - t.sin()]);
                y.push(true);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = moons(200);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 16, ..Default::default() });
        let correct = x.iter().zip(&y).filter(|(xi, yi)| forest.predict(xi) == **yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "{}/{}", correct, x.len());
    }

    #[test]
    fn proba_in_unit_interval() {
        let (x, y) = moons(60);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 8, ..Default::default() });
        for xi in &x {
            let p = forest.predict_proba(xi);
            assert!((0.0..=1.0).contains(&p), "p={}", p);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = moons(80);
        let params = ForestParams { n_trees: 12, seed: 42, ..Default::default() };
        let a = RandomForest::fit(&x, &y, &params);
        let b = RandomForest::fit(&x, &y, &params);
        for xi in x.iter().take(10) {
            assert_eq!(a.predict_proba(xi), b.predict_proba(xi));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = moons(80);
        let a =
            RandomForest::fit(&x, &y, &ForestParams { n_trees: 4, seed: 1, ..Default::default() });
        let b =
            RandomForest::fit(&x, &y, &ForestParams { n_trees: 4, seed: 2, ..Default::default() });
        let differs = x.iter().any(|xi| a.predict_proba(xi) != b.predict_proba(xi));
        assert!(differs);
    }

    #[test]
    fn n_trees_respected() {
        let (x, y) = moons(40);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 7, ..Default::default() });
        assert_eq!(forest.n_trees(), 7);
    }

    #[test]
    fn feature_importances_identify_informative_features() {
        // Feature 0 is informative, feature 1 is pure noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let v = (i % 12) as f32;
            x.push(vec![v, ((i * 7) % 5) as f32]);
            y.push(v > 6.0);
        }
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 12, ..Default::default() });
        let imp = forest.feature_importances(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1], "informative {} vs noise {}", imp[0], imp[1]);
    }

    #[test]
    fn serde_roundtrip() {
        let (x, y) = moons(40);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 4, ..Default::default() });
        let json = serde_json::to_string(&forest).unwrap();
        let mut back: RandomForest = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.predict_proba(&x[0]), forest.predict_proba(&x[0]));
    }

    #[test]
    fn tree_seeds_are_decorrelated() {
        let p = ForestParams::default();
        let mut seen = std::collections::HashSet::new();
        for i in 0..64 {
            assert!(seen.insert(p.tree_seed(i)), "duplicate seed for tree {}", i);
        }
        // Consecutive seeds should differ in roughly half their bits, not
        // by a single generator step.
        let xor = p.tree_seed(0) ^ p.tree_seed(1);
        assert!(xor.count_ones() > 10, "seeds too similar: {:064b}", xor);
    }

    #[test]
    fn batch_matches_serial() {
        let (x, y) = moons(90);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 8, ..Default::default() });
        let data = Dataset::from_rows(&x).unwrap();
        let batch = forest.predict_proba_batch(&data);
        assert_eq!(batch.len(), x.len());
        for (row, b) in x.iter().zip(&batch) {
            assert_eq!(*b, forest.predict_proba(row));
        }
    }

    #[test]
    fn thread_count_does_not_change_fit() {
        let (x, y) = moons(80);
        let data = Dataset::from_rows(&x).unwrap();
        let params = ForestParams { n_trees: 9, seed: 5, ..Default::default() };
        let a = RandomForest::fit_dataset_threads(&data, &y, &params, 1);
        let b = RandomForest::fit_dataset_threads(&data, &y, &params, 2);
        let c = RandomForest::fit_dataset_threads(&data, &y, &params, 8);
        for xi in &x {
            let p = a.predict_proba(xi);
            assert_eq!(p, b.predict_proba(xi));
            assert_eq!(p, c.predict_proba(xi));
        }
    }
}

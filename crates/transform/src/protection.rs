//! Code-protection techniques: *self-defending* and *debug protection*
//! (paper §II-A).
//!
//! Both passes splice obfuscator.io-shaped guard code into the program.
//! Self-defending makes the script resist reformatting (a guard inspects
//! its own `toString` against a packed-code regex); debug protection
//! hammers the devtools with `debugger` statements built through the
//! `Function` constructor. The guards are generated as source templates
//! with randomized identifiers and parsed into the AST.

use jsdetect_ast::{Program, Stmt};
use jsdetect_parser::parse;
use rand::rngs::StdRng;
use rand::Rng;

fn hex_name(rng: &mut StdRng) -> String {
    format!("_0x{:x}", rng.gen_range(0x10000u32..0xFFFFFF))
}

/// Splices the self-defending guard into the program. The program must be
/// emitted in compact form afterwards (the guard's premise is that
/// reformatting breaks it), which the pipeline enforces.
pub fn inject_self_defending(program: &mut Program, rng: &mut StdRng) {
    let outer = hex_name(rng);
    let check = hex_name(rng);
    let src = format!(
        r#"var {outer} = (function () {{
    var firstCall = true;
    return function (context, fn) {{
        var wrapped = firstCall ? function () {{
            if (fn) {{
                var result = fn.apply(context, arguments);
                fn = null;
                return result;
            }}
        }} : function () {{}};
        firstCall = false;
        return wrapped;
    }};
}})();
var {check} = {outer}(this, function () {{
    return {check}.toString().search('(((.+)+)+)+$').toString().constructor({check}).search('(((.+)+)+)+$');
}});
{check}();"#,
        outer = outer,
        check = check,
    );
    let guard = parse(&src).expect("self-defending template must parse");
    splice_front(program, guard.body);
}

/// Splices the debug-protection loop into the program.
pub fn inject_debug_protection(program: &mut Program, rng: &mut StdRng) {
    let fname = hex_name(rng);
    let interval = [500u32, 1000, 2000, 4000][rng.gen_range(0..4usize)];
    let src = format!(
        r#"var {fname} = function () {{
    function probe(counter) {{
        if (('' + counter / counter).length !== 1 || counter % 20 === 0) {{
            (function () {{ return true; }}.constructor('debugger').call('action'));
        }} else {{
            (function () {{ return false; }}.constructor('debugger').apply('stateObject'));
        }}
        probe(++counter);
    }}
    try {{
        probe(0);
    }} catch (err) {{}}
}};
setInterval(function () {{ {fname}(); }}, {interval});"#,
        fname = fname,
        interval = interval,
    );
    let guard = parse(&src).expect("debug-protection template must parse");
    splice_front(program, guard.body);
}

/// Inserts statements after any directive prologue.
fn splice_front(program: &mut Program, stmts: Vec<Stmt>) {
    let skip = crate::string_obf::directive_count(&program.body);
    for (i, s) in stmts.into_iter().enumerate() {
        program.body.insert(skip + i, s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use rand::SeedableRng;

    #[test]
    fn self_defending_injects_guard() {
        let mut prog = parse("main();").unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        inject_self_defending(&mut prog, &mut rng);
        let out = to_minified(&prog);
        assert!(out.contains("(((.+)+)+)+$"), "{}", out);
        assert!(out.contains("toString"), "{}", out);
        assert!(out.contains("constructor"), "{}", out);
        assert!(out.contains("main()"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn debug_protection_injects_probe() {
        let mut prog = parse("main();").unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        inject_debug_protection(&mut prog, &mut rng);
        let out = to_minified(&prog);
        assert!(out.contains("'debugger'"), "{}", out);
        assert!(out.contains("setInterval"), "{}", out);
        assert!(out.contains("constructor"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn guards_go_after_directives() {
        let mut prog = parse("'use strict'; main();").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        inject_debug_protection(&mut prog, &mut rng);
        let out = to_minified(&prog);
        assert!(out.starts_with("'use strict';"), "{}", out);
    }

    #[test]
    fn randomized_names_differ_across_seeds() {
        let render = |seed| {
            let mut prog = parse("x();").unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            inject_self_defending(&mut prog, &mut rng);
            to_minified(&prog)
        };
        assert_ne!(render(1), render(2));
    }
}

//! Learning substrate for the `jsdetect` suite.
//!
//! Stands in for scikit-learn in the reproduced pipeline (§III-C/D):
//! CART decision trees, bagged random forests (trained in parallel with
//! deterministic seeding), a Gaussian naive-Bayes baseline, multi-task
//! wrappers (binary relevance and classifier chains), and the paper's
//! evaluation metrics including the Top-k criterion.
//!
//! # Examples
//!
//! ```
//! use jsdetect_ml::{ForestParams, MultiLabel, Strategy, BaseParams};
//!
//! let x = vec![vec![0.0], vec![0.2], vec![0.8], vec![1.0]];
//! let labels = vec![vec![false], vec![false], vec![true], vec![true]];
//! let base = BaseParams::Forest(ForestParams { n_trees: 4, ..Default::default() });
//! let model = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &base);
//! assert!(model.predict_proba(&[0.9])[0] > 0.5);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bayes;
pub mod cv;
mod dataset;
mod forest;
pub mod metrics;
mod multilabel;
pub mod reference;
mod tree;

pub use bayes::GaussianNb;
pub use dataset::{Dataset, DatasetError};
pub use forest::{ForestParams, RandomForest};
pub use multilabel::{BaseModel, BaseParams, MultiLabel, Strategy};
pub use tree::{DecisionTree, MaxFeatures, SplitMode, TreeParams};

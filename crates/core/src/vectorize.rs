//! Parallel script vectorization.
//!
//! Work is distributed with a shared atomic claim counter instead of
//! static chunking: obfuscated samples are 10–100× slower to analyze than
//! regular ones, so pre-partitioned chunks would let one pathological
//! script idle every other thread. Workers claim the next unprocessed
//! index and stream `(index, result)` pairs back over a channel; the
//! calling thread scatters them into the output (or straight into a
//! columnar [`Dataset`]).

use crate::config::AnalysisConfig;
use jsdetect_features::{
    analyze_script, analyze_script_guarded, GuardedScript, ScriptAnalysis, VectorSpace,
};
use jsdetect_guard::{isolate, OutcomeKind};
use jsdetect_ml::Dataset;
use jsdetect_obs::names;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Runs one script's work behind a panic fence: a residual panic in any
/// stage degrades to a `None` result (with the `guard/stage_panicked`
/// counter bumped) instead of unwinding into the scoped-thread pool and
/// tearing the whole batch down.
fn fenced<T>(f: impl FnOnce() -> Option<T>) -> Option<T> {
    match isolate("analyze", f) {
        Ok(r) => r,
        Err(e) => {
            jsdetect_obs::counter_add(e.counter_name(), 1);
            None
        }
    }
}

/// Runs `work(i)` for every `i in 0..n` across all cores with
/// work-stealing, delivering results to `sink(i, result)` on the calling
/// thread (in completion order, not index order).
pub(crate) fn run_stealing<T, W, S>(n: usize, work: W, mut sink: S)
where
    T: Send,
    W: Fn(usize) -> T + Sync,
    S: FnMut(usize, T),
{
    if n == 0 {
        return;
    }
    let n_threads =
        std::thread::available_parallelism().map(|t| t.get()).unwrap_or(4).min(n).max(1);
    jsdetect_obs::gauge_set(names::GAUGE_ANALYZE_THREADS, n_threads as f64);
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, T)>();
    crossbeam::thread::scope(|scope| {
        for _ in 0..n_threads {
            let tx = tx.clone();
            let next = &next;
            let work = &work;
            scope.spawn(move |_| {
                // Streaming telemetry is visible the moment it is
                // recorded; the guard pre-registers this worker's cells
                // and marks the collection scope structurally.
                let _obs = jsdetect_obs::ScopedCollector::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n || tx.send((i, work(i))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(tx);
        for (i, r) in rx.iter() {
            sink(i, r);
        }
    })
    .expect("vectorization threads panicked");
}

/// Analyzes many scripts in parallel. Scripts that fail to parse (or that
/// panic a stage) yield `None` (the paper's pipeline skips unparseable
/// files).
pub fn analyze_many(srcs: &[&str]) -> Vec<Option<ScriptAnalysis>> {
    let _t = jsdetect_obs::span(names::SPAN_ANALYZE_MANY);
    jsdetect_obs::counter_add(names::CTR_SCRIPTS_ANALYZED, srcs.len() as u64);
    let mut out: Vec<Option<ScriptAnalysis>> = (0..srcs.len()).map(|_| None).collect();
    run_stealing(srcs.len(), |i| fenced(|| analyze_script(srcs[i]).ok()), |i, r| out[i] = r);
    out
}

/// Analyzes many scripts in parallel under the hardened sandbox: per-script
/// resource budgets from `config.limits`, per-script panic isolation, and a
/// three-way ok/degraded/rejected verdict for every input — one hostile
/// file costs one rejected record, never the batch.
pub fn analyze_many_guarded(srcs: &[&str], config: &AnalysisConfig) -> Vec<GuardedScript> {
    let _t = jsdetect_obs::span(names::SPAN_ANALYZE_MANY);
    jsdetect_obs::counter_add(names::CTR_SCRIPTS_ANALYZED, srcs.len() as u64);
    let mut out: Vec<Option<GuardedScript>> = (0..srcs.len()).map(|_| None).collect();
    run_stealing(
        srcs.len(),
        |i| match isolate("analyze", || analyze_script_guarded(srcs[i], &config.limits)) {
            Ok(g) => g,
            Err(e) => {
                jsdetect_obs::counter_add(e.counter_name(), 1);
                jsdetect_obs::counter_add(names::CTR_GUARD_REJECTED, 1);
                GuardedScript { analysis: None, outcome: OutcomeKind::Rejected, error: Some(e) }
            }
        },
        |i, r| out[i] = Some(r),
    );
    out.into_iter().map(|g| g.expect("work-stealing covered every index")).collect()
}

/// Vectorizes many scripts in parallel against a fitted space.
pub fn vectorize_many(space: &VectorSpace, srcs: &[&str]) -> Vec<Option<Vec<f32>>> {
    let _t = jsdetect_obs::span(names::SPAN_VECTORIZE_BATCH);
    jsdetect_obs::counter_add(names::CTR_SCRIPTS_ANALYZED, srcs.len() as u64);
    let mut out: Vec<Option<Vec<f32>>> = vec![None; srcs.len()];
    run_stealing(
        srcs.len(),
        |i| fenced(|| analyze_script(srcs[i]).ok().map(|a| space.vectorize(&a))),
        |i, r| out[i] = r,
    );
    out
}

/// Vectorizes many scripts straight into a columnar [`Dataset`] (one row
/// per script; unparseable scripts leave an all-zero row and a `false` in
/// the returned mask). This is the batch-inference entry point: the
/// dataset feeds `predict_proba_batch` without ever materializing
/// `Vec<Vec<f32>>`.
///
/// # Panics
///
/// Panics if `srcs` is empty.
pub fn vectorize_dataset(space: &VectorSpace, srcs: &[&str]) -> (Dataset, Vec<bool>) {
    assert!(!srcs.is_empty(), "cannot vectorize zero scripts into a dataset");
    let _t = jsdetect_obs::span(names::SPAN_VECTORIZE_BATCH);
    jsdetect_obs::counter_add(names::CTR_SCRIPTS_ANALYZED, srcs.len() as u64);
    let mut data = Dataset::zeros(srcs.len(), space.dim());
    let mut parsed = vec![false; srcs.len()];
    run_stealing(
        srcs.len(),
        |i| fenced(|| analyze_script(srcs[i]).ok().map(|a| space.vectorize(&a))),
        |i, r| {
            if let Some(row) = r {
                data.fill_row(i, &row);
                parsed[i] = true;
            }
        },
    );
    (data, parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_features::FeatureConfig;

    #[test]
    fn analyze_many_handles_errors() {
        let srcs = ["var x = 1;", "var ;;; broken", "f();"];
        let out = analyze_many(&srcs);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert!(out[2].is_some());
    }

    #[test]
    fn vectorize_many_matches_serial() {
        let srcs = vec!["var x = 1;", "function f() { return 2; }", "if (a) b();"];
        let analyses: Vec<_> = srcs.iter().map(|s| analyze_script(s).unwrap()).collect();
        let space = VectorSpace::fit(analyses.iter(), 32, FeatureConfig::default());
        let par = vectorize_many(&space, &srcs);
        for (a, p) in analyses.iter().zip(&par) {
            assert_eq!(p.as_ref().unwrap(), &space.vectorize(a));
        }
    }

    #[test]
    fn injected_panicking_stage_is_contained_by_the_fence() {
        // A worker panic must degrade to `None` for that item, not tear
        // down the scoped-thread pool.
        let mut out: Vec<Option<usize>> = vec![None; 5];
        run_stealing(
            5,
            |i| {
                fenced(|| {
                    if i == 2 {
                        panic!("injected stage panic");
                    }
                    Some(i)
                })
            },
            |i, r| out[i] = r,
        );
        assert_eq!(out[2], None);
        for i in [0, 1, 3, 4] {
            assert_eq!(out[i], Some(i));
        }
    }

    #[test]
    fn analyze_many_guarded_quarantines_hostile_files() {
        let bomb = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
        let srcs = ["var x = 1;", "var ;;; broken", bomb.as_str()];
        let out = analyze_many_guarded(&srcs, &AnalysisConfig::default());
        assert_eq!(out[0].outcome, OutcomeKind::Ok);
        assert_eq!(out[1].outcome, OutcomeKind::Degraded);
        assert!(out[1].analysis.as_ref().unwrap().degraded);
        assert_eq!(out[2].outcome, OutcomeKind::Rejected);
        assert_eq!(out[2].error.as_ref().unwrap().kind(), "ast_depth_exceeded");
    }

    #[test]
    fn work_stealing_covers_many_more_items_than_threads() {
        let srcs: Vec<String> = (0..97).map(|i| format!("var v{} = {};", i, i)).collect();
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        let out = analyze_many(&refs);
        assert_eq!(out.len(), 97);
        assert!(out.iter().all(Option::is_some));
    }

    #[test]
    fn vectorize_dataset_matches_row_path_and_masks_failures() {
        let srcs = vec!["var x = 1;", "var ;;; broken", "function f() { return 2; }"];
        let analyses: Vec<_> =
            [srcs[0], srcs[2]].iter().map(|s| analyze_script(s).unwrap()).collect();
        let space = VectorSpace::fit(analyses.iter(), 32, FeatureConfig::default());
        let (data, parsed) = vectorize_dataset(&space, &srcs);
        assert_eq!(parsed, vec![true, false, true]);
        assert_eq!(data.n_rows(), 3);
        assert_eq!(data.n_cols(), space.dim());
        let mut row = Vec::new();
        data.copy_row_into(0, &mut row);
        assert_eq!(row, space.vectorize(&analyses[0]));
        data.copy_row_into(1, &mut row);
        assert!(row.iter().all(|&v| v == 0.0));
        data.copy_row_into(2, &mut row);
        assert_eq!(row, space.vectorize(&analyses[1]));
    }
}

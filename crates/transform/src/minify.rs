//! Minification (paper §II-A).
//!
//! *Minification simple* models basic minifiers (javascript-minifier.com):
//! whitespace/comment deletion (the compact printer), variable shortening
//! (`a`, `b`, …), empty-statement removal, and unreachable-code deletion.
//!
//! *Minification advanced* models Google Closure-style optimizations on
//! top: constant folding, branch pruning, `if`→ternary/`&&` conversion,
//! boolean compression (`!0`/`!1`), `undefined`→`void 0`, consecutive
//! variable-declaration merging, and expression-statement sequencing.

use jsdetect_ast::builder::*;
use jsdetect_ast::visit_mut::{walk_expr_mut, walk_stmt_mut, MutVisitor};
use jsdetect_ast::*;
use jsdetect_codegen::format_number;

/// Simple minification AST passes (identifier shortening is run separately
/// by the pipeline so it can compose with identifier obfuscation).
pub fn minify_simple(program: &mut Program) {
    let mut body = std::mem::take(&mut program.body);
    strip_unreachable(&mut body);
    remove_empty(&mut body);
    program.body = body;
    let mut cleaner = BodyCleaner;
    cleaner.visit_program_mut(program);
}

/// Advanced minification passes (runs the simple passes too).
pub fn minify_advanced(program: &mut Program) {
    minify_simple(program);
    let mut folder = Folder;
    folder.visit_program_mut(program);
    let mut shaper = StmtShaper;
    shaper.visit_program_mut(program);
    let mut compressor = BoolCompressor;
    compressor.visit_program_mut(program);
}

// ---- simple passes -----------------------------------------------------------

/// Removes statements that can never execute: anything after an
/// unconditional `return`/`throw`/`break`/`continue` except function
/// declarations (which hoist).
fn strip_unreachable(body: &mut Vec<Stmt>) {
    if let Some(cut) = body.iter().position(is_terminator) {
        let tail = body.split_off(cut + 1);
        body.extend(tail.into_iter().filter(|s| matches!(s, Stmt::FunctionDecl(_))));
    }
}

fn is_terminator(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Return { .. } | Stmt::Throw { .. } | Stmt::Break { .. } | Stmt::Continue { .. }
    )
}

fn remove_empty(body: &mut Vec<Stmt>) {
    body.retain(|s| !matches!(s, Stmt::Empty { .. }));
}

/// Applies the list-level simple passes to every nested statement list.
struct BodyCleaner;

impl MutVisitor for BodyCleaner {
    fn visit_stmts_mut(&mut self, stmts: &mut Vec<Stmt>) {
        for s in stmts.iter_mut() {
            self.visit_stmt_mut(s);
        }
        strip_unreachable(stmts);
        remove_empty(stmts);
    }
}

// ---- advanced passes ----------------------------------------------------------

/// Constant folding over literal operands.
struct Folder;

impl MutVisitor for Folder {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e); // fold bottom-up
        if let Some(folded) = fold(e) {
            *e = folded;
        }
    }
}

fn lit_of(e: &Expr) -> Option<&LitValue> {
    match e {
        Expr::Lit(l) => Some(&l.value),
        _ => None,
    }
}

fn num_of(v: &LitValue) -> Option<f64> {
    match v {
        LitValue::Num(n) => Some(*n),
        _ => None,
    }
}

/// JavaScript `ToString` for the literal values we fold.
fn to_js_string(v: &LitValue) -> Option<String> {
    Some(match v {
        LitValue::Str(s) => s.to_string(),
        LitValue::Num(n) => format_number(*n),
        LitValue::Bool(b) => b.to_string(),
        LitValue::Null => "null".to_string(),
        // BigInt ToString is the decimal value, not the source spelling
        // (which may be hex/octal/binary); don't fold.
        LitValue::BigInt(_) => return None,
        LitValue::Regex { .. } => return None,
    })
}

fn truthy(v: &LitValue) -> Option<bool> {
    Some(match v {
        LitValue::Bool(b) => *b,
        LitValue::Num(n) => *n != 0.0 && !n.is_nan(),
        LitValue::Str(s) => !s.is_empty(),
        LitValue::Null => false,
        // Radix-prefixed zero spellings (`0x0n`) make truthiness non-obvious
        // here; leave BigInt conditions unfolded.
        LitValue::BigInt(_) => return None,
        LitValue::Regex { .. } => true,
    })
}

fn fold(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Binary { op, left, right, .. } => {
            let l = lit_of(left)?;
            let r = lit_of(right)?;
            use BinaryOp::*;
            match op {
                Add => {
                    if let (Some(a), Some(b)) = (num_of(l), num_of(r)) {
                        return Some(num_lit(a + b));
                    }
                    // String concatenation when either side is a string.
                    if matches!(l, LitValue::Str(_)) || matches!(r, LitValue::Str(_)) {
                        let a = to_js_string(l)?;
                        let b = to_js_string(r)?;
                        return Some(str_lit(a + &b));
                    }
                    None
                }
                Sub => Some(num_lit(num_of(l)? - num_of(r)?)),
                Mul => Some(num_lit(num_of(l)? * num_of(r)?)),
                Div => Some(num_lit(num_of(l)? / num_of(r)?)),
                Mod => Some(num_lit(num_of(l)? % num_of(r)?)),
                Exp => Some(num_lit(num_of(l)?.powf(num_of(r)?))),
                Lt => Some(bool_lit(num_of(l)? < num_of(r)?)),
                LtEq => Some(bool_lit(num_of(l)? <= num_of(r)?)),
                Gt => Some(bool_lit(num_of(l)? > num_of(r)?)),
                GtEq => Some(bool_lit(num_of(l)? >= num_of(r)?)),
                EqEqEq => match (l, r) {
                    (LitValue::Num(a), LitValue::Num(b)) => Some(bool_lit(a == b)),
                    (LitValue::Str(a), LitValue::Str(b)) => Some(bool_lit(a == b)),
                    (LitValue::Bool(a), LitValue::Bool(b)) => Some(bool_lit(a == b)),
                    _ => None,
                },
                NotEqEq => match (l, r) {
                    (LitValue::Num(a), LitValue::Num(b)) => Some(bool_lit(a != b)),
                    (LitValue::Str(a), LitValue::Str(b)) => Some(bool_lit(a != b)),
                    _ => None,
                },
                BitAnd => Some(num_lit((to_i32(num_of(l)?) & to_i32(num_of(r)?)) as f64)),
                BitOr => Some(num_lit((to_i32(num_of(l)?) | to_i32(num_of(r)?)) as f64)),
                BitXor => Some(num_lit((to_i32(num_of(l)?) ^ to_i32(num_of(r)?)) as f64)),
                Shl => Some(num_lit((to_i32(num_of(l)?) << (to_u32(num_of(r)?) & 31)) as f64)),
                Shr => Some(num_lit((to_i32(num_of(l)?) >> (to_u32(num_of(r)?) & 31)) as f64)),
                UShr => Some(num_lit((to_u32(num_of(l)?) >> (to_u32(num_of(r)?) & 31)) as f64)),
                _ => None,
            }
        }
        Expr::Unary { op, arg, .. } => {
            let v = lit_of(arg)?;
            match op {
                UnaryOp::Not => Some(bool_lit(!truthy(v)?)),
                UnaryOp::Minus => Some(num_lit(-num_of(v)?)),
                UnaryOp::Plus => Some(num_lit(num_of(v)?)),
                UnaryOp::BitNot => Some(num_lit(!to_i32(num_of(v)?) as f64)),
                UnaryOp::TypeOf => Some(str_lit(match v {
                    LitValue::Num(_) => "number",
                    LitValue::BigInt(_) => "bigint",
                    LitValue::Str(_) => "string",
                    LitValue::Bool(_) => "boolean",
                    LitValue::Null => "object",
                    LitValue::Regex { .. } => "object",
                })),
                _ => None,
            }
        }
        Expr::Logical { op, left, right, .. } => {
            let l = lit_of(left)?;
            let t = truthy(l)?;
            let chosen = match op {
                LogicalOp::And => {
                    if t {
                        (**right).clone()
                    } else {
                        (**left).clone()
                    }
                }
                LogicalOp::Or => {
                    if t {
                        (**left).clone()
                    } else {
                        (**right).clone()
                    }
                }
                LogicalOp::NullishCoalescing => {
                    if matches!(l, LitValue::Null) {
                        (**right).clone()
                    } else {
                        (**left).clone()
                    }
                }
            };
            Some(chosen)
        }
        Expr::Conditional { test, consequent, alternate, .. } => {
            let t = truthy(lit_of(test)?)?;
            Some(if t { (**consequent).clone() } else { (**alternate).clone() })
        }
        _ => None,
    }
}

fn to_i32(n: f64) -> i32 {
    if !n.is_finite() {
        return 0;
    }
    n as i64 as i32
}

fn to_u32(n: f64) -> u32 {
    to_i32(n) as u32
}

/// Statement shaping: branch pruning, `if`→ternary/`&&`, `var` merging,
/// expression sequencing.
struct StmtShaper;

impl MutVisitor for StmtShaper {
    fn visit_stmts_mut(&mut self, stmts: &mut Vec<Stmt>) {
        for s in stmts.iter_mut() {
            self.visit_stmt_mut(s);
        }
        prune_literal_branches(stmts);
        remove_empty(stmts);
        merge_var_decls(stmts);
        sequence_exprs(stmts);
    }

    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        walk_stmt_mut(self, s);
        // Literal-test branches are pruned (not reshaped into ternaries).
        if matches!(s, Stmt::If { test: Expr::Lit(_), .. }) {
            let mut singleton = vec![std::mem::replace(s, Stmt::Empty { span: Span::DUMMY })];
            prune_literal_branches(&mut singleton);
            *s = singleton.pop().unwrap_or(Stmt::Empty { span: Span::DUMMY });
            return;
        }
        if let Some(new) = reshape_if(s) {
            *s = new;
        }
    }
}

/// `if (lit) a; else b;` → the taken branch.
fn prune_literal_branches(stmts: &mut Vec<Stmt>) {
    let old = std::mem::take(stmts);
    for s in old {
        match s {
            Stmt::If { test: Expr::Lit(l), consequent, alternate, .. } => match truthy(&l.value) {
                Some(true) => stmts.push(*consequent),
                Some(false) => {
                    if let Some(alt) = alternate {
                        stmts.push(*alt);
                    }
                }
                None => stmts.push(Stmt::If {
                    test: Expr::Lit(l),
                    consequent,
                    alternate,
                    span: Span::DUMMY,
                }),
            },
            other => stmts.push(other),
        }
    }
}

/// `if (c) x(); else y();` → `c ? x() : y();` and
/// `if (c) x();` → `c && x();`
fn reshape_if(s: &Stmt) -> Option<Stmt> {
    if let Stmt::If { test, consequent, alternate, .. } = s {
        let cons = as_expr_stmt(consequent)?;
        match alternate {
            Some(alt) => {
                let alt = as_expr_stmt(alt)?;
                Some(expr_stmt(conditional(test.clone(), cons.clone(), alt.clone())))
            }
            None => Some(expr_stmt(logical(LogicalOp::And, test.clone(), cons.clone()))),
        }
    } else {
        None
    }
}

/// The single expression of an expression statement (looking through
/// one-statement blocks).
fn as_expr_stmt(s: &Stmt) -> Option<&Expr> {
    match s {
        Stmt::Expr { expr, .. } => Some(expr),
        Stmt::Block { body, .. } if body.len() == 1 => as_expr_stmt(&body[0]),
        _ => None,
    }
}

/// Merges consecutive `var` declarations of the same kind.
fn merge_var_decls(stmts: &mut Vec<Stmt>) {
    let old = std::mem::take(stmts);
    for s in old {
        match (stmts.last_mut(), s) {
            (
                Some(Stmt::VarDecl { kind: k1, decls: d1, .. }),
                Stmt::VarDecl { kind: k2, decls: d2, .. },
            ) if *k1 == k2 => {
                d1.extend(d2);
            }
            (_, s) => stmts.push(s),
        }
    }
}

/// Merges runs of consecutive expression statements into one sequence
/// statement (`a(); b();` → `a(), b();`).
fn sequence_exprs(stmts: &mut Vec<Stmt>) {
    let old = std::mem::take(stmts);
    for s in old {
        match (stmts.last_mut(), s) {
            // Never merge a directive prologue string into a sequence.
            (Some(Stmt::Expr { expr: prev, .. }), Stmt::Expr { expr: next, .. })
                if !matches!(prev, Expr::Lit(Lit { value: LitValue::Str(_), .. })) =>
            {
                let combined = match std::mem::replace(prev, null_lit()) {
                    Expr::Sequence { mut exprs, .. } => {
                        exprs.push(next);
                        Expr::Sequence { exprs, span: Span::DUMMY }
                    }
                    single => Expr::Sequence { exprs: vec![single, next], span: Span::DUMMY },
                };
                *prev = combined;
            }
            (_, s) => stmts.push(s),
        }
    }
}

/// Boolean and `undefined` compression.
struct BoolCompressor;

impl MutVisitor for BoolCompressor {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
        match e {
            Expr::Lit(Lit { value: LitValue::Bool(b), .. }) => {
                // true → !0, false → !1
                *e = unary(UnaryOp::Not, num_lit(if *b { 0.0 } else { 1.0 }));
            }
            Expr::Ident(i) if i.name == "undefined" => {
                *e = unary(UnaryOp::Void, num_lit(0.0));
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn simple(src: &str) -> String {
        let mut prog = parse(src).unwrap();
        minify_simple(&mut prog);
        to_minified(&prog)
    }

    fn advanced(src: &str) -> String {
        let mut prog = parse(src).unwrap();
        minify_advanced(&mut prog);
        to_minified(&prog)
    }

    #[test]
    fn strips_unreachable_after_return() {
        let out = simple("function f() { return 1; dead(); alsoDead(); }");
        assert!(!out.contains("dead"), "{}", out);
    }

    #[test]
    fn keeps_hoisted_functions_after_return() {
        let out = simple("function f() { return g(); function g() { return 1; } }");
        assert!(out.contains("function g()"), "{}", out);
    }

    #[test]
    fn removes_empty_statements() {
        let out = simple("a();;;b();");
        assert_eq!(out, "a();b();");
    }

    #[test]
    fn folds_numeric_constants() {
        let out = advanced("x = 2 * 3 + 4;");
        assert!(out.contains("x=10"), "{}", out);
    }

    #[test]
    fn folds_string_concat() {
        let out = advanced("x = 'a' + 'b' + 1;");
        assert!(out.contains("'ab1'"), "{}", out);
    }

    #[test]
    fn folds_comparisons_and_logic() {
        let out = advanced("x = 1 < 2 ? 'yes' : 'no';");
        assert!(out.contains("'yes'"), "{}", out);
        assert!(!out.contains("'no'"), "{}", out);
    }

    #[test]
    fn prunes_literal_branches() {
        let out = advanced("if (false) { never(); } else { always(); }");
        assert!(!out.contains("never"), "{}", out);
        assert!(out.contains("always"), "{}", out);
    }

    #[test]
    fn if_to_ternary() {
        let out = advanced("if (cond) a(); else b();");
        assert!(out.contains("cond?a():b()"), "{}", out);
    }

    #[test]
    fn if_to_and() {
        let out = advanced("if (cond) a();");
        assert!(out.contains("cond&&a()"), "{}", out);
    }

    #[test]
    fn bool_compression() {
        let out = advanced("x = true; y = false; z = undefined;");
        assert!(out.contains("!0"), "{}", out);
        assert!(out.contains("!1"), "{}", out);
        assert!(out.contains("void 0"), "{}", out);
    }

    #[test]
    fn var_merging() {
        let out = advanced("var a = 1; var b = 2; var c = 3; use(a, b, c);");
        assert!(out.contains("var a=1,b=2,c=3"), "{}", out);
    }

    #[test]
    fn expression_sequencing() {
        let out = advanced("setup(); run(); teardown();");
        assert!(out.contains("setup(),run(),teardown()"), "{}", out);
    }

    #[test]
    fn bitwise_folding() {
        let out = advanced("x = 0xff & 0x0f; y = 1 << 4; z = -1 >>> 28;");
        assert!(out.contains("x=15"), "{}", out);
        assert!(out.contains("y=16"), "{}", out);
        assert!(out.contains("z=15"), "{}", out);
    }

    #[test]
    fn typeof_folding() {
        let out = advanced("x = typeof 'str';");
        assert!(out.contains("'string'"), "{}", out);
    }

    #[test]
    fn output_reparses() {
        let src = r#"
            function calc(n) {
                var doubled = n * 2;
                if (doubled > 10) { return 'big'; } else { return 'small'; }
            }
            var r = calc(3 + 4);
            if (true) { log(r); }
        "#;
        let out = advanced(src);
        assert!(parse(&out).is_ok(), "{}", out);
    }

    #[test]
    fn advanced_output_is_smaller() {
        let src = "if (true) { a(); } else { b(); } var x = 1; var y = 2; c(); d();";
        assert!(advanced(src).len() < simple(src).len());
    }
}

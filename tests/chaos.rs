//! The ISSUE-4 acceptance gate: the entire chaos corpus must run through
//! the hardened batch pipeline without crashing the process or overflowing
//! the stack, every file landing in exactly one of {ok, degraded,
//! rejected}, with per-error-kind counters visible in telemetry.

use jsdetect_suite::corpus::chaos_corpus;
use jsdetect_suite::detector::{analyze_many_guarded, AnalysisConfig};
use jsdetect_suite::guard::{OutcomeKind, QuarantineReport};
use jsdetect_suite::obs;
use std::sync::Mutex;

/// The telemetry registry is process-global; tests that enable/reset it
/// must not interleave (same discipline as tests/telemetry.rs).
static TEST_LOCK: Mutex<()> = Mutex::new(());

#[test]
fn chaos_corpus_survives_guarded_batch_analysis() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let corpus = chaos_corpus();
    assert!(corpus.len() >= 25);
    let refs: Vec<&str> = corpus.iter().map(|c| c.src.as_str()).collect();

    obs::set_enabled(true);
    obs::reset();
    let results = analyze_many_guarded(&refs, &AnalysisConfig::wild());
    let snap = obs::snapshot();
    obs::set_enabled(false);

    assert_eq!(results.len(), corpus.len());
    let mut quarantine = QuarantineReport::new();
    for (case, r) in corpus.iter().zip(&results) {
        quarantine.push(case.name, r.outcome, r.error.as_ref());
        match r.outcome {
            OutcomeKind::Ok => {
                let a = r
                    .analysis
                    .as_ref()
                    .unwrap_or_else(|| panic!("case {} is ok but carries no analysis", case.name));
                assert!(!a.degraded, "case {} is ok but flagged degraded", case.name);
                assert!(r.error.is_none());
            }
            OutcomeKind::Degraded => {
                let a = r.analysis.as_ref().unwrap_or_else(|| {
                    panic!("case {} degraded but carries no fallback", case.name)
                });
                assert!(a.degraded, "case {} degraded without the degraded bit", case.name);
                assert!(r.error.is_some());
            }
            OutcomeKind::Rejected => {
                assert!(r.analysis.is_none(), "case {} rejected but carries analysis", case.name);
                let e = r.error.as_ref().expect("rejected cases carry their error");
                assert!(
                    e.is_resource(),
                    "case {} rejected by non-resource error {:?}",
                    case.name,
                    e
                );
            }
        }
    }

    // Spot-check the verdicts that pin the sandbox's semantics.
    let outcome = |name: &str| {
        quarantine
            .records()
            .iter()
            .find(|r| r.file == name)
            .unwrap_or_else(|| panic!("no record for {}", name))
    };
    assert_eq!(outcome("paren_bomb_50k").outcome, OutcomeKind::Rejected);
    assert_eq!(outcome("paren_bomb_50k").error_kind.as_deref(), Some("ast_depth_exceeded"));
    assert_eq!(outcome("new_bomb").outcome, OutcomeKind::Rejected);
    assert_eq!(outcome("binding_pattern_bomb").outcome, OutcomeKind::Rejected);
    // A giant but legitimate one-liner must pass untouched…
    assert_eq!(outcome("eight_mb_one_liner").outcome, OutcomeKind::Ok);
    // …while the over-cap input is rejected before any work.
    assert_eq!(outcome("twelve_mb_input").outcome, OutcomeKind::Rejected);
    assert_eq!(outcome("twelve_mb_input").error_kind.as_deref(), Some("input_too_large"));
    assert_eq!(outcome("token_flood").outcome, OutcomeKind::Rejected);
    assert_eq!(outcome("token_flood").error_kind.as_deref(), Some("token_budget_exceeded"));
    // Syntax-level failures degrade (the lexer-only fallback still counts).
    assert_eq!(outcome("unterminated_string").outcome, OutcomeKind::Degraded);
    assert_eq!(outcome("truncated_unicode_escape").outcome, OutcomeKind::Degraded);
    // Benign edge cases stay fully ok.
    for name in ["empty_file", "whitespace_only", "deep_but_legal_nesting", "hex_identifier_soup"] {
        assert_eq!(outcome(name).outcome, OutcomeKind::Ok, "case {}", name);
    }
    // Module-flavored chaos: flat floods are legal module syntax and must
    // analyze cleanly; the recursive dynamic-import bomb hits the depth
    // guard; the truncated clause degrades like any other syntax error.
    for name in ["import_specifier_flood", "export_star_chain", "private_member_flood"] {
        assert_eq!(outcome(name).outcome, OutcomeKind::Ok, "case {}", name);
    }
    assert_eq!(outcome("dynamic_import_bomb").outcome, OutcomeKind::Rejected);
    assert_eq!(outcome("dynamic_import_bomb").error_kind.as_deref(), Some("ast_depth_exceeded"));
    assert_eq!(outcome("truncated_import_clause").outcome, OutcomeKind::Degraded);

    // Per-error-kind counters are visible in telemetry, one bump per
    // non-ok file.
    let (n_ok, n_degraded, n_rejected) = quarantine.counts();
    assert_eq!(n_ok + n_degraded + n_rejected, corpus.len());
    assert!(n_rejected >= 5, "expected several rejects, got {}", n_rejected);
    assert!(n_degraded >= 5, "expected several degrades, got {}", n_degraded);
    let mut counter_total = 0;
    for (kind, n) in quarantine.error_kind_counts() {
        let counter = match kind.as_str() {
            "input_too_large" => "guard/input_too_large",
            "token_budget_exceeded" => "guard/token_budget_exceeded",
            "ast_depth_exceeded" => "guard/ast_depth_exceeded",
            "ast_node_budget_exceeded" => "guard/ast_node_budget_exceeded",
            "cfg_edge_budget_exceeded" => "guard/cfg_edge_budget_exceeded",
            "deadline_exceeded" => "guard/deadline_exceeded",
            "stage_panicked" => "guard/stage_panicked",
            "parse_error" => "guard/parse_error",
            "lex_error" => "guard/lex_error",
            "io_error" => "guard/io_error",
            other => panic!("outcome outside the taxonomy: {}", other),
        };
        assert_eq!(snap.counter(counter), n, "telemetry counter {} mismatch", counter);
        counter_total += n;
    }
    assert_eq!(counter_total as usize, n_degraded + n_rejected);
    // The outcome-level aggregates mirror the per-kind counters: these are
    // what the CI syntax-coverage gate reads as a rate.
    assert_eq!(snap.counter("guard/degraded") as usize, n_degraded);
    assert_eq!(snap.counter("guard/rejected") as usize, n_rejected);

    // The quarantine JSONL export covers every file with a valid outcome.
    let jsonl = quarantine.to_jsonl();
    assert_eq!(jsonl.lines().count(), corpus.len());
    for line in jsonl.lines() {
        assert!(
            line.contains("\"outcome\":\"ok\"")
                || line.contains("\"outcome\":\"degraded\"")
                || line.contains("\"outcome\":\"rejected\""),
            "outcome outside the three-way verdict: {}",
            line
        );
    }
}

#[test]
fn chaos_corpus_under_trusted_limits_only_guards_depth() {
    let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // Under trusted limits the megabyte and token-flood cases all pass;
    // only the stack-overflow depth guard may reject.
    let corpus = chaos_corpus();
    let by_name = |name: &str| {
        corpus
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing case {}", name))
            .src
            .as_str()
    };
    let picks = [by_name("twelve_mb_input"), by_name("token_flood"), by_name("paren_bomb_50k")];
    let results = analyze_many_guarded(&picks, &AnalysisConfig::trusted());
    // twelve_mb_input and token_flood are syntactically fine: ok now.
    assert_eq!(results[0].outcome, OutcomeKind::Ok);
    assert_eq!(results[1].outcome, OutcomeKind::Ok);
    // The depth bomb still rejects — that guard never turns off in presets.
    assert_eq!(results[2].outcome, OutcomeKind::Rejected);
}

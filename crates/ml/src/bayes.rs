//! Gaussian naive Bayes — the NoFus-style baseline used in the paper's
//! off-the-shelf model comparison (§III-D3).

use crate::dataset::Dataset;
use serde::{Deserialize, Serialize};

/// A fitted Gaussian naive-Bayes binary classifier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GaussianNb {
    prior_pos: f64,
    // Per-feature (mean, variance) for each class.
    pos: Vec<(f64, f64)>,
    neg: Vec<(f64, f64)>,
}

/// Variance floor to avoid zero-variance features blowing up the
/// likelihood.
const VAR_FLOOR: f64 = 1e-6;

impl GaussianNb {
    /// Fits means/variances per class.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or mismatched lengths.
    pub fn fit(x: &[Vec<f32>], y: &[bool]) -> Self {
        assert!(!x.is_empty(), "cannot fit naive bayes on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let d = x[0].len();
        let n_pos = y.iter().filter(|&&l| l).count();
        let prior_pos = (n_pos as f64 + 1.0) / (x.len() as f64 + 2.0); // Laplace
        let stats = |cls: bool| -> Vec<(f64, f64)> {
            let rows: Vec<&Vec<f32>> =
                x.iter().zip(y).filter(|(_, &l)| l == cls).map(|(r, _)| r).collect();
            (0..d)
                .map(|j| {
                    if rows.is_empty() {
                        return (0.0, 1.0);
                    }
                    let mean = rows.iter().map(|r| r[j] as f64).sum::<f64>() / rows.len() as f64;
                    let var = rows.iter().map(|r| (r[j] as f64 - mean).powi(2)).sum::<f64>()
                        / rows.len() as f64;
                    (mean, var.max(VAR_FLOOR))
                })
                .collect()
        };
        GaussianNb { prior_pos, pos: stats(true), neg: stats(false) }
    }

    /// Fits means/variances per class from a columnar dataset. Sums run
    /// over rows in ascending order per feature — the same accumulation
    /// order as [`GaussianNb::fit`], so the fitted parameters are
    /// bit-identical.
    ///
    /// # Panics
    ///
    /// Panics if `y.len() != data.n_rows()`.
    pub fn fit_dataset(data: &Dataset, y: &[bool]) -> Self {
        assert_eq!(y.len(), data.n_rows(), "feature/label length mismatch");
        let d = data.n_cols();
        let n_pos = y.iter().filter(|&&l| l).count();
        let prior_pos = (n_pos as f64 + 1.0) / (data.n_rows() as f64 + 2.0); // Laplace
        let stats = |cls: bool| -> Vec<(f64, f64)> {
            let n_cls = y.iter().filter(|&&l| l == cls).count();
            (0..d)
                .map(|j| {
                    if n_cls == 0 {
                        return (0.0, 1.0);
                    }
                    let col = data.column(j);
                    let class_vals =
                        || col.iter().zip(y).filter(|(_, &l)| l == cls).map(|(&v, _)| v as f64);
                    let mean = class_vals().sum::<f64>() / n_cls as f64;
                    let var = class_vals().map(|v| (v - mean).powi(2)).sum::<f64>() / n_cls as f64;
                    (mean, var.max(VAR_FLOOR))
                })
                .collect()
        };
        GaussianNb { prior_pos, pos: stats(true), neg: stats(false) }
    }

    /// Positive-class probability for every dataset row. Likelihoods are
    /// accumulated feature-by-feature (ascending), matching the per-row
    /// order of [`GaussianNb::predict_proba`] exactly.
    pub fn predict_proba_batch(&self, data: &Dataset) -> Vec<f32> {
        let n = data.n_rows();
        let mut log_pos = vec![self.prior_pos.ln(); n];
        let mut log_neg = vec![(1.0 - self.prior_pos).ln(); n];
        for j in 0..data.n_cols() {
            let col = data.column(j);
            let (pm, pv) = self.pos[j];
            let (nm, nv) = self.neg[j];
            for ((lp, lneg), &v) in log_pos.iter_mut().zip(log_neg.iter_mut()).zip(col) {
                *lp += log_gauss(v as f64, pm, pv);
                *lneg += log_gauss(v as f64, nm, nv);
            }
        }
        log_pos
            .into_iter()
            .zip(log_neg)
            .map(|(lp, ln)| {
                let m = lp.max(ln);
                let p = (lp - m).exp();
                let q = (ln - m).exp();
                (p / (p + q)) as f32
            })
            .collect()
    }

    /// Positive-class probability for `row`.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let mut log_pos = self.prior_pos.ln();
        let mut log_neg = (1.0 - self.prior_pos).ln();
        for (j, &v) in row.iter().enumerate() {
            log_pos += log_gauss(v as f64, self.pos[j].0, self.pos[j].1);
            log_neg += log_gauss(v as f64, self.neg[j].0, self.neg[j].1);
        }
        // Softmax over the two log-posteriors.
        let m = log_pos.max(log_neg);
        let p = (log_pos - m).exp();
        let q = (log_neg - m).exp();
        (p / (p + q)) as f32
    }

    /// Hard prediction at 0.5.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }
}

fn log_gauss(v: f64, mean: f64, var: f64) -> f64 {
    let diff = v - mean;
    -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_gaussian_blobs() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..50 {
            let o = (i % 10) as f32 * 0.05;
            x.push(vec![0.0 + o, 0.0 - o]);
            y.push(false);
            x.push(vec![3.0 - o, 3.0 + o]);
            y.push(true);
        }
        let nb = GaussianNb::fit(&x, &y);
        assert!(nb.predict_proba(&[0.1, 0.1]) < 0.5);
        assert!(nb.predict_proba(&[2.9, 3.1]) > 0.5);
    }

    #[test]
    fn probabilities_are_finite_and_bounded() {
        let x = vec![vec![0.0], vec![0.0], vec![1.0], vec![1.0]];
        let y = vec![false, false, true, true];
        let nb = GaussianNb::fit(&x, &y);
        for v in [-100.0f32, 0.0, 0.5, 1.0, 100.0] {
            let p = nb.predict_proba(&[v]);
            assert!(p.is_finite());
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn one_class_absent_still_works() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![true, true];
        let nb = GaussianNb::fit(&x, &y);
        assert!(nb.predict_proba(&[1.5]) > 0.5);
    }

    #[test]
    fn zero_variance_feature_does_not_explode() {
        let x = vec![vec![5.0, 0.0], vec![5.0, 1.0], vec![5.0, 10.0], vec![5.0, 11.0]];
        let y = vec![false, false, true, true];
        let nb = GaussianNb::fit(&x, &y);
        let p = nb.predict_proba(&[5.0, 10.5]);
        assert!(p.is_finite() && p > 0.5);
    }

    #[test]
    fn serde_roundtrip() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![false, true];
        let nb = GaussianNb::fit(&x, &y);
        let back: GaussianNb = serde_json::from_str(&serde_json::to_string(&nb).unwrap()).unwrap();
        assert_eq!(back.predict_proba(&[0.3]), nb.predict_proba(&[0.3]));
    }
}

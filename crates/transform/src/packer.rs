//! Dean Edwards-style packer (the paper's held-out tool, §III-E3).
//!
//! Reproduces the `eval(function(p,a,c,k,e,d){...})` wrapper of the Daft
//! Logic obfuscator / Dean Edwards packer: the (minified) source is turned
//! into a payload string whose word-shaped tokens are replaced by base-62
//! codes, together with the dictionary needed to unpack it at runtime.
//!
//! This tool is **never used for training** — it exists to show the
//! detectors generalize to tools outside the training set, as the paper
//! does with 10,000 Daft Logic samples.

use std::collections::HashMap;

/// Encodes `n` in the packer's base-62 alphabet (`0-9a-zA-Z`).
pub fn base62(mut n: usize) -> String {
    const ALPHA: &[u8] = b"0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
    if n == 0 {
        return "0".to_string();
    }
    let mut out = Vec::new();
    while n > 0 {
        out.push(ALPHA[n % 62]);
        n /= 62;
    }
    out.reverse();
    String::from_utf8(out).unwrap()
}

/// Packs a JavaScript source string.
///
/// The caller is expected to hand in already-minified source (the real
/// tool minifies first); [`pack`] only performs the dictionary encoding
/// and wrapper generation.
pub fn pack(src: &str) -> String {
    // Collect word tokens (identifier-shaped runs) by frequency.
    let words = word_tokens(src);
    let mut freq: HashMap<&str, usize> = HashMap::new();
    for w in &words {
        *freq.entry(w).or_default() += 1;
    }
    // Sort by frequency (desc), then first appearance for determinism.
    let mut order: Vec<&str> = {
        let mut seen = std::collections::HashSet::new();
        words.iter().filter(|w| seen.insert(**w)).copied().collect()
    };
    order.sort_by_key(|w| std::cmp::Reverse(freq[w]));

    let code_of: HashMap<&str, String> =
        order.iter().enumerate().map(|(i, w)| (*w, base62(i))).collect();

    // Replace each word occurrence with its code.
    let mut payload = String::with_capacity(src.len());
    let mut rest = src;
    while let Some((before, word, after)) = next_word(rest) {
        payload.push_str(before);
        payload.push_str(&code_of[word]);
        rest = after;
    }
    payload.push_str(rest);

    // Words equal to their own code can be omitted from the dictionary.
    let dict: Vec<&str> =
        order.iter().enumerate().map(|(i, w)| if base62(i) == **w { "" } else { *w }).collect();

    let payload_quoted = escape_single(&payload);
    let dict_joined = dict.join("|");
    format!(
        "eval(function(p,a,c,k,e,d){{e=function(c){{return(c<a?'':e(parseInt(c/a)))+((c=c%a)>35?String.fromCharCode(c+29):c.toString(36))}};if(!''.replace(/^/,String)){{while(c--){{d[e(c)]=k[c]||e(c)}}k=[function(e){{return d[e]}}];e=function(){{return'\\\\w+'}};c=1}};while(c--){{if(k[c]){{p=p.replace(new RegExp('\\\\b'+e(c)+'\\\\b','g'),k[c])}}}}return p}}('{}',62,{},'{}'.split('|'),0,{{}}))",
        payload_quoted,
        order.len(),
        dict_joined
    )
}

/// Splits off the next word token: returns (text-before, word, rest).
fn next_word(s: &str) -> Option<(&str, &str, &str)> {
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if is_word_byte(bytes[i]) {
            let start = i;
            while i < bytes.len() && is_word_byte(bytes[i]) {
                i += 1;
            }
            return Some((&s[..start], &s[start..i], &s[i..]));
        }
        // Skip string literals so their contents are not packed.
        if bytes[i] == b'\'' || bytes[i] == b'"' {
            let quote = bytes[i];
            i += 1;
            while i < bytes.len() && bytes[i] != quote {
                if bytes[i] == b'\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
        } else {
            i += 1;
        }
    }
    None
}

fn is_word_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b == b'$'
}

/// All word tokens outside string literals.
fn word_tokens(src: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut rest = src;
    while let Some((_, word, after)) = next_word(rest) {
        out.push(word);
        rest = after;
    }
    out
}

fn escape_single(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\'', "\\'").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    #[test]
    fn base62_encoding() {
        assert_eq!(base62(0), "0");
        assert_eq!(base62(9), "9");
        assert_eq!(base62(10), "a");
        assert_eq!(base62(35), "z");
        assert_eq!(base62(36), "A");
        assert_eq!(base62(61), "Z");
        assert_eq!(base62(62), "10");
    }

    #[test]
    fn packed_output_parses() {
        let out = pack("var total=0;function add(n){total=total+n;return total}add(5);");
        assert!(out.starts_with("eval(function(p,a,c,k,e,d)"), "{}", out);
        assert!(parse(&out).is_ok(), "{}", out);
    }

    #[test]
    fn wrapper_signature_present() {
        let out = pack("f(1);");
        assert!(out.contains("String.fromCharCode(c+29)"));
        assert!(out.contains(".split('|')"));
        assert!(out.contains("eval("));
    }

    #[test]
    fn frequent_words_get_short_codes() {
        // `total` appears 4 times, should get code "0".
        let src = "var total=0;total=total+1;use(total);";
        let out = pack(src);
        let dict_part = out.split(",'").nth(1).unwrap_or("");
        let _ = dict_part;
        // payload replaces total by its code: the raw word never appears
        // in the payload section (only in the dictionary).
        let payload_end = out.find("',62,").unwrap();
        let payload = &out["eval(function(p,a,c,k,e,d)".len()..payload_end];
        let code_section = payload.rsplit('\'').next().unwrap_or("");
        assert!(!code_section.contains("total"));
    }

    #[test]
    fn string_literal_contents_not_packed() {
        let out = pack("say('hello world hello');");
        assert!(out.contains("hello world hello"), "{}", out);
    }

    #[test]
    fn deterministic() {
        let src = "function f(a){return a*2}f(21);";
        assert_eq!(pack(src), pack(src));
    }
}

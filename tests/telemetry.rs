//! Integration tests for the telemetry layer as wired through the real
//! pipeline: expected span coverage, failure counters, stage-sum
//! accounting, and the disabled-path overhead bound.

use jsdetect_suite::detector::analyze_many;
use jsdetect_suite::obs;
use std::sync::Mutex;

/// The telemetry registry is process-global; tests that enable/reset it
/// must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

const FIXTURE: &str = "function add(a, b) { return a + b; }\n\
    var total = 0;\n\
    for (var i = 0; i < 10; i++) { total = add(total, i); }\n\
    console.log(total);\n";

#[test]
fn analyze_emits_expected_span_set() {
    let _g = locked();
    obs::set_enabled(true);
    obs::reset();
    let out = analyze_many(&[FIXTURE, FIXTURE]);
    assert!(out.iter().all(Option::is_some));
    let snap = obs::snapshot();
    obs::set_enabled(false);

    for path in [
        "analyze",
        "analyze/parse",
        "analyze/lex",
        "analyze/flow",
        "analyze/metrics",
        "analyze/lint",
        "analyze_many",
    ] {
        let stat = snap.span(path).unwrap_or_else(|| panic!("missing span {}", path));
        assert!(stat.count >= 1, "span {} has zero count", path);
    }
    assert_eq!(snap.span("analyze").unwrap().count, 2);
    assert_eq!(snap.counter("scripts_analyzed"), 2);
    assert_eq!(snap.counter("parse_failures"), 0);
    assert_eq!(snap.hist("script_bytes").unwrap().count(), 2);
}

#[test]
fn parse_failure_counter_increments_on_malformed_script() {
    let _g = locked();
    obs::set_enabled(true);
    obs::reset();
    let out = analyze_many(&[FIXTURE, "var ;;; broken ((", FIXTURE]);
    assert_eq!(out.iter().filter(|a| a.is_some()).count(), 2);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(snap.counter("parse_failures"), 1);
    assert_eq!(snap.counter("scripts_analyzed"), 3);
}

#[test]
fn stage_spans_sum_close_to_analyze_total() {
    let _g = locked();
    // Large enough scripts that the front-end stages dominate the
    // analyze wall time (struct assembly outside any child span is
    // negligible at this size).
    let srcs: Vec<String> = (0..8)
        .map(|i| {
            (0..200).map(|s| format!("var v{}_{} = {} + f({});", i, s, s, s)).collect::<String>()
        })
        .collect();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    obs::set_enabled(true);
    obs::reset();
    let out = analyze_many(&refs);
    assert!(out.iter().all(Option::is_some));
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let total = snap.span("analyze").expect("analyze span").total_ns as f64;
    let stage_sum: u64 = snap
        .spans
        .iter()
        .filter(|s| s.path.strip_prefix("analyze/").is_some_and(|rest| !rest.contains('/')))
        .map(|s| s.total_ns)
        .sum();
    let ratio = stage_sum as f64 / total;
    assert!(
        (0.9..=1.1).contains(&ratio),
        "stage sum {}ns vs analyze total {}ns (ratio {:.3})",
        stage_sum,
        total,
        ratio
    );
}

#[test]
fn disabled_telemetry_overhead_is_negligible() {
    let _g = locked();
    obs::set_enabled(false);

    // Per-call cost of the disabled path, amortized over many calls.
    let calls = 1_000_000u32;
    let t0 = std::time::Instant::now();
    for _ in 0..calls {
        let _s = obs::span("bench");
        obs::counter_add("bench", 1);
    }
    let per_call_ns = t0.elapsed().as_nanos() as f64 / calls as f64;

    // The analyze front-end passes ~25 instrumentation points per script.
    let srcs: Vec<String> = (0..16)
        .map(|i| (0..60).map(|s| format!("var q{}_{} = {};", i, s, s)).collect::<String>())
        .collect();
    let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
    let mut medians: Vec<f64> = (0..5)
        .map(|_| {
            let t0 = std::time::Instant::now();
            std::hint::black_box(analyze_many(&refs));
            t0.elapsed().as_nanos() as f64
        })
        .collect();
    medians.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let workload_ns = medians[medians.len() / 2];

    let overhead_ns = per_call_ns * 25.0 * refs.len() as f64;
    let overhead = overhead_ns / workload_ns;
    assert!(
        overhead <= 0.02,
        "disabled telemetry overhead {:.4}% exceeds 2% ({}ns per call, workload {}ns)",
        overhead * 100.0,
        per_call_ns,
        workload_ns
    );
}

#[test]
fn worker_telemetry_lands_before_snapshot_and_reset_isolates_runs() {
    // Regression: scoped worker threads signal completion before their
    // TLS destructors run, so a destructor-only flush raced with the
    // coordinator's snapshot — events either went missing or leaked into
    // the *next* run's (post-reset) snapshot. Workers now flush
    // explicitly; two back-to-back runs must each see exactly their own
    // scripts.
    let _g = locked();
    for n_scripts in [2usize, 8, 3] {
        let srcs: Vec<String> = (0..n_scripts)
            .map(|i| (0..50).map(|s| format!("var w{}_{} = {};", i, s, s)).collect::<String>())
            .collect();
        let refs: Vec<&str> = srcs.iter().map(String::as_str).collect();
        obs::set_enabled(true);
        obs::reset();
        let out = analyze_many(&refs);
        assert!(out.iter().all(Option::is_some));
        let snap = obs::snapshot();
        obs::set_enabled(false);
        let analyze = snap.span("analyze").expect("analyze span recorded");
        assert_eq!(analyze.count, n_scripts as u64, "run with {} scripts", n_scripts);
        assert_eq!(snap.counter("scripts_analyzed"), n_scripts as u64);
    }
}

//! Integration tests pinning the analysis cache's contract: a warm rescan
//! replays verdicts and vectors *bit-identically*, version changes
//! invalidate observably, and on-disk damage degrades to recomputation —
//! never to a failed batch or a wrong answer.

use jsdetect_suite::cache::{AnalysisCache, CacheConfig};
use jsdetect_suite::detector::{analyze_many_cached, analyze_many_guarded, AnalysisConfig};
use jsdetect_suite::features::{FeatureConfig, FeaturePayload, VectorSpace};
use jsdetect_suite::guard::OutcomeKind;
use jsdetect_suite::obs;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;

/// The telemetry registry is process-global; tests that enable/reset it
/// must not interleave.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

fn scratch() -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "jsdetect-cache-it-{}-{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// The committed fixture corpus (the same files CI scans).
fn fixture_sources() -> Vec<(String, String)> {
    let dir = std::path::Path::new("examples/corpus");
    let mut entries: Vec<_> = std::fs::read_dir(dir)
        .expect("examples/corpus fixture directory")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "js"))
        .collect();
    entries.sort();
    assert!(entries.len() >= 3, "fixture corpus unexpectedly small: {:?}", entries);
    entries
        .into_iter()
        .map(|p| {
            let src = std::fs::read_to_string(&p).expect("fixture readable");
            (p.display().to_string(), src)
        })
        .collect()
}

fn open(dir: &std::path::Path, config: &AnalysisConfig) -> AnalysisCache {
    AnalysisCache::open(CacheConfig::new(dir, &config.limits)).expect("open cache")
}

/// Scans `srcs` through a fresh registry window and returns the results
/// plus the cache counters observed during the scan.
fn counted_scan(
    srcs: &[&str],
    config: &AnalysisConfig,
    cache: &AnalysisCache,
) -> (Vec<jsdetect_suite::detector::CachedScript>, u64, u64, u64, u64) {
    obs::set_enabled(true);
    obs::reset();
    let results = analyze_many_cached(srcs, config, cache);
    let snap = obs::snapshot();
    obs::set_enabled(false);
    (
        results,
        snap.counter("cache/hit"),
        snap.counter("cache/miss"),
        snap.counter("cache/stale_version"),
        snap.counter("cache/corrupt_evicted"),
    )
}

#[test]
fn warm_rescan_is_bit_identical_to_cold_over_the_fixture_corpus() {
    let _g = locked();
    let fixtures = fixture_sources();
    let srcs: Vec<&str> = fixtures.iter().map(|(_, s)| s.as_str()).collect();
    let config = AnalysisConfig::default();
    let dir = scratch();

    let (cold, hits, misses, stale, corrupt) = counted_scan(&srcs, &config, &open(&dir, &config));
    assert_eq!(hits, 0);
    assert_eq!(misses, srcs.len() as u64);
    assert_eq!(stale, 0);
    assert_eq!(corrupt, 0);
    assert!(cold.iter().all(|c| !c.from_cache));

    // A fresh handle: in-memory LRU cold, everything must come off disk.
    let (warm, hits, misses, stale, corrupt) = counted_scan(&srcs, &config, &open(&dir, &config));
    assert_eq!(hits, srcs.len() as u64, "100% hit rate expected on the second pass");
    assert_eq!(misses, 0);
    assert_eq!(stale, 0);
    assert_eq!(corrupt, 0);
    assert!(warm.iter().all(|c| c.from_cache));

    // Outcomes and payloads replay exactly; vectors are bit-identical in
    // any space fitted over the corpus.
    let analyses: Vec<_> = srcs
        .iter()
        .map(|s| jsdetect_suite::features::analyze_script(s).expect("fixture parses"))
        .collect();
    let space = VectorSpace::fit(analyses.iter(), 120, FeatureConfig::default());
    for ((c, w), a) in cold.iter().zip(&warm).zip(&analyses) {
        assert_eq!(c.outcome, OutcomeKind::Ok);
        assert_eq!(c.outcome, w.outcome);
        assert_eq!(c.payload, w.payload);
        let fresh = space.vectorize(a);
        assert_eq!(c.vectorize(&space).as_deref(), Some(fresh.as_slice()));
        assert_eq!(w.vectorize(&space).as_deref(), Some(fresh.as_slice()));
    }

    // The cached path agrees with the uncached guarded path.
    let guarded = analyze_many_guarded(&srcs, &config);
    for (w, g) in warm.iter().zip(&guarded) {
        assert_eq!(w.outcome, g.outcome);
        assert_eq!(w.payload, g.analysis.as_ref().map(FeaturePayload::extract));
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn feature_space_version_bump_forces_observable_stale_misses() {
    let _g = locked();
    let fixtures = fixture_sources();
    let srcs: Vec<&str> = fixtures.iter().map(|(_, s)| s.as_str()).collect();
    let config = AnalysisConfig::default();
    let dir = scratch();
    counted_scan(&srcs, &config, &open(&dir, &config));

    // Same store, bumped feature-space version: every lookup must be a
    // stale miss (recorded under cache/stale_version), then republish.
    let mut bumped_cfg = CacheConfig::new(&dir, &config.limits);
    bumped_cfg.feature_version += 1;
    let bumped = AnalysisCache::open(bumped_cfg.clone()).expect("open cache");
    let (results, hits, misses, stale, corrupt) = counted_scan(&srcs, &config, &bumped);
    assert_eq!(hits, 0);
    assert_eq!(misses, srcs.len() as u64);
    assert_eq!(stale, srcs.len() as u64, "each record must be observed as stale");
    assert_eq!(corrupt, 0);
    assert!(results.iter().all(|c| !c.from_cache));

    // The republished records now serve the bumped version...
    let bumped2 = AnalysisCache::open(bumped_cfg).expect("open cache");
    let (_, hits, misses, _, _) = counted_scan(&srcs, &config, &bumped2);
    assert_eq!(hits, srcs.len() as u64);
    assert_eq!(misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
// The constant comparison is the point: pin that the version the cache
// keys by is the one the normalization-delta block shipped in.
#[allow(clippy::assertions_on_constants)]
fn the_current_feature_space_bump_invalidates_previous_era_records() {
    let _g = locked();
    let fixtures = fixture_sources();
    let srcs: Vec<&str> = fixtures.iter().map(|(_, s)| s.as_str()).collect();
    let config = AnalysisConfig::default();
    let dir = scratch();

    // Pin that the bump actually shipped end to end: the default cache
    // keys records under the current feature-space version, and that
    // version covers the normalization-delta block (v3+).
    assert_eq!(
        CacheConfig::new(&dir, &config.limits).feature_version,
        jsdetect_suite::features::FEATURE_SPACE_VERSION,
        "cache must key records under the live feature-space version"
    );
    assert!(
        jsdetect_suite::features::FEATURE_SPACE_VERSION >= 3,
        "normalization deltas shipped in feature-space v3"
    );

    // Populate the store the way a session from the previous feature
    // era would have (one version behind the live constant).
    let mut old_cfg = CacheConfig::new(&dir, &config.limits);
    old_cfg.feature_version -= 1;
    let old = AnalysisCache::open(old_cfg).expect("open cache");
    counted_scan(&srcs, &config, &old);

    // A default-configured session over the same store must observe
    // every previous-era record as a stale miss — never replay it.
    let (results, hits, misses, stale, corrupt) =
        counted_scan(&srcs, &config, &open(&dir, &config));
    assert_eq!(hits, 0, "previous-era records must never replay");
    assert_eq!(misses, srcs.len() as u64);
    assert_eq!(stale, srcs.len() as u64, "each record must surface under cache/stale_version");
    assert_eq!(corrupt, 0);
    assert!(results.iter().all(|c| !c.from_cache));

    // The rescan republished under the live version: warm from here on.
    let (_, hits, misses, _, _) = counted_scan(&srcs, &config, &open(&dir, &config));
    assert_eq!((hits, misses), (srcs.len() as u64, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn preset_change_forces_plain_misses_not_cross_replay() {
    let _g = locked();
    let fixtures = fixture_sources();
    let srcs: Vec<&str> = fixtures.iter().map(|(_, s)| s.as_str()).collect();
    let wild = AnalysisConfig::default();
    let dir = scratch();
    counted_scan(&srcs, &wild, &open(&dir, &wild));

    // Same store, trusted limits: records exist only under the wild
    // preset, so every lookup is a plain miss (no stale, no corrupt).
    let trusted = AnalysisConfig::trusted();
    let (results, hits, misses, stale, corrupt) =
        counted_scan(&srcs, &trusted, &open(&dir, &trusted));
    assert_eq!(hits, 0);
    assert_eq!(misses, srcs.len() as u64);
    assert_eq!(stale, 0);
    assert_eq!(corrupt, 0);
    assert!(results.iter().all(|c| !c.from_cache));

    // Both presets now coexist and each replays its own verdicts.
    let (_, hits, misses, _, _) = counted_scan(&srcs, &wild, &open(&dir, &wild));
    assert_eq!((hits, misses), (srcs.len() as u64, 0));
    let (_, hits, misses, _, _) = counted_scan(&srcs, &trusted, &open(&dir, &trusted));
    assert_eq!((hits, misses), (srcs.len() as u64, 0));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_records_are_evicted_recomputed_and_rewritten() {
    let _g = locked();
    let fixtures = fixture_sources();
    let srcs: Vec<&str> = fixtures.iter().map(|(_, s)| s.as_str()).collect();
    assert!(srcs.len() >= 3, "need three records to damage three ways");
    let config = AnalysisConfig::default();
    let dir = scratch();
    let store = open(&dir, &config);
    let (cold, ..) = counted_scan(&srcs, &config, &store);

    // Damage three records three different ways.
    let paths: Vec<PathBuf> = cold.iter().map(|c| store.record_path(&c.hash)).collect();
    let truncated = std::fs::read(&paths[0]).unwrap();
    std::fs::write(&paths[0], &truncated[..truncated.len() / 2]).unwrap();
    let mut flipped = std::fs::read(&paths[1]).unwrap();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x01;
    std::fs::write(&paths[1], &flipped).unwrap();
    std::fs::write(&paths[2], b"").unwrap();

    // The rescan still succeeds, evicts all three, and recomputes.
    let (warm, hits, misses, stale, corrupt) = counted_scan(&srcs, &config, &open(&dir, &config));
    assert_eq!(corrupt, 3, "each damaged record must count one eviction");
    assert_eq!(stale, 0);
    assert_eq!(misses, 3);
    assert_eq!(hits, srcs.len() as u64 - 3);
    for (c, w) in cold.iter().zip(&warm) {
        assert_eq!(c.outcome, w.outcome);
        assert_eq!(c.payload, w.payload, "recomputed payloads must match the originals");
    }

    // The damaged records were rewritten: a third pass is all hits and
    // the store verifies clean.
    let (_, hits, misses, _, corrupt) = counted_scan(&srcs, &config, &open(&dir, &config));
    assert_eq!((hits, misses, corrupt), (srcs.len() as u64, 0, 0));
    let report = jsdetect_suite::cache::verify(&dir).expect("verify walk");
    assert!(report.is_clean(), "corrupt after repair: {:?}", report.corrupt);
    assert_eq!(report.ok, srcs.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn readonly_mode_replays_hits_but_never_writes() {
    let _g = locked();
    let fixtures = fixture_sources();
    let srcs: Vec<&str> = fixtures.iter().map(|(_, s)| s.as_str()).collect();
    let config = AnalysisConfig::default();
    let dir = scratch();

    // Cold scan in readonly mode: misses compute but publish nothing.
    let mut ro_cfg = CacheConfig::new(&dir, &config.limits);
    ro_cfg.readonly = true;
    let ro = AnalysisCache::open(ro_cfg.clone()).expect("open cache");
    let (results, hits, misses, _, _) = counted_scan(&srcs, &config, &ro);
    assert_eq!((hits, misses), (0, srcs.len() as u64));
    assert!(results.iter().all(|c| !c.from_cache));
    assert_eq!(jsdetect_suite::cache::stats(&dir).expect("stats").records, 0);

    // Seed read-write, then readonly replays every verdict.
    counted_scan(&srcs, &config, &open(&dir, &config));
    let ro = AnalysisCache::open(ro_cfg).expect("open cache");
    let (results, hits, misses, _, _) = counted_scan(&srcs, &config, &ro);
    assert_eq!((hits, misses), (srcs.len() as u64, 0));
    assert!(results.iter().all(|c| c.from_cache));
    let _ = std::fs::remove_dir_all(&dir);
}

//! Telemetry exporters: a human summary table and a JSONL event stream.
//!
//! The JSONL schema is a **contract**: line order, record types, and field
//! names are stable within a `SCHEMA_VERSION` and pinned by a golden-file
//! test. Consumers parse one JSON object per line and dispatch on `type`:
//!
//! - `meta` — first line: `schema`, `span_paths`, `events`,
//!   `dropped_events`.
//! - `span_stat` — one per span path (sorted): `path`, `count`,
//!   `total_ns`, `min_ns`, `max_ns`, `p50_ns`, `p99_ns`.
//! - `span` — one per raw occurrence (flush order): `path`, `thread`,
//!   `start_ns`, `dur_ns`.
//! - `counter` — `name`, `value`.
//! - `gauge` — `name`, `value`.
//! - `hist` — `name`, `count`, `sum`, `min`, `max`, and `buckets` as
//!   `[lo, hi, count]` triples for non-empty buckets.

use crate::registry::Snapshot;
use std::fmt::Write;

/// Version of the JSONL schema emitted by [`to_jsonl`].
pub const SCHEMA_VERSION: u32 = 1;

/// JSON string escaping (control characters, quotes, backslashes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// JSON number for a gauge: finite floats print naturally; non-finite
/// values (not representable in JSON) become null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{}", v)
    } else {
        "null".to_string()
    }
}

/// Renders the snapshot as a JSONL event stream (one JSON object per
/// line). Deterministic given deterministic recorded data.
pub fn to_jsonl(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"schema\":{},\"span_paths\":{},\"events\":{},\"dropped_events\":{}}}",
        SCHEMA_VERSION,
        snap.spans.len(),
        snap.events.len(),
        snap.dropped_events
    );
    for s in &snap.spans {
        let _ = writeln!(
            out,
            "{{\"type\":\"span_stat\",\"path\":\"{}\",\"count\":{},\"total_ns\":{},\"min_ns\":{},\"max_ns\":{},\"p50_ns\":{},\"p99_ns\":{}}}",
            esc(&s.path),
            s.count,
            s.total_ns,
            s.min_ns,
            s.max_ns,
            s.latency.quantile(0.5),
            s.latency.quantile(0.99),
        );
    }
    for ev in &snap.events {
        let _ = writeln!(
            out,
            "{{\"type\":\"span\",\"path\":\"{}\",\"thread\":{},\"start_ns\":{},\"dur_ns\":{}}}",
            esc(&ev.path),
            ev.thread,
            ev.start_ns,
            ev.dur_ns
        );
    }
    for (name, v) in &snap.counters {
        let _ =
            writeln!(out, "{{\"type\":\"counter\",\"name\":\"{}\",\"value\":{}}}", esc(name), v);
    }
    for (name, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"name\":\"{}\",\"value\":{}}}",
            esc(name),
            json_f64(*v)
        );
    }
    for (name, h) in &snap.hists {
        let buckets: Vec<String> = h
            .nonempty_buckets()
            .into_iter()
            .map(|(lo, hi, c)| format!("[{},{},{}]", lo, hi, c))
            .collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"hist\",\"name\":\"{}\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"buckets\":[{}]}}",
            esc(name),
            h.count(),
            h.sum(),
            h.min(),
            h.max(),
            buckets.join(",")
        );
    }
    out
}

fn ms(ns: u64) -> f64 {
    ns as f64 / 1e6
}

/// Renders the snapshot as a human-readable summary table.
pub fn render_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== telemetry summary (schema v{}) ==", SCHEMA_VERSION);
    if !snap.spans.is_empty() {
        let _ = writeln!(
            out,
            "{:<40} {:>8} {:>12} {:>10} {:>10} {:>10}",
            "span", "count", "total ms", "mean ms", "p50 ms", "max ms"
        );
        for s in &snap.spans {
            let _ = writeln!(
                out,
                "{:<40} {:>8} {:>12.2} {:>10.3} {:>10.3} {:>10.3}",
                s.path,
                s.count,
                ms(s.total_ns),
                ms(s.total_ns) / s.count.max(1) as f64,
                ms(s.latency.quantile(0.5)),
                ms(s.max_ns),
            );
        }
    }
    if !snap.counters.is_empty() {
        let _ = writeln!(out, "counters");
        for (name, v) in &snap.counters {
            let _ = writeln!(out, "  {:<38} {:>10}", name, v);
        }
    }
    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "gauges");
        for (name, v) in &snap.gauges {
            let _ = writeln!(out, "  {:<38} {:>10}", name, v);
        }
    }
    if !snap.hists.is_empty() {
        let _ = writeln!(out, "histograms");
        for (name, h) in &snap.hists {
            let _ = writeln!(
                out,
                "  {:<24} count={} sum={} min={} max={} p50<={} p99<={}",
                name,
                h.count(),
                h.sum(),
                h.min(),
                h.max(),
                h.quantile(0.5),
                h.quantile(0.99),
            );
        }
    }
    let _ = writeln!(
        out,
        "span events retained: {} (dropped {})",
        snap.events.len(),
        snap.dropped_events
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_controls_and_quotes() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn gauge_numbers_are_json_safe() {
        assert_eq!(json_f64(4.0), "4");
        assert_eq!(json_f64(0.25), "0.25");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
    }

    #[test]
    fn empty_snapshot_renders() {
        let snap = Snapshot::default();
        assert!(to_jsonl(&snap).starts_with("{\"type\":\"meta\""));
        assert!(render_summary(&snap).contains("telemetry summary"));
    }
}

//! Lint-feature ablation — Level-2 per-technique F1 with and without the
//! lint-summary densities appended to the feature vector.
//!
//! The lint rules fire on the exact structural signatures the Level-2
//! classifier has to recover statistically (dispatcher loops, string
//! pools, anti-debugging probes, …); this quantifies how much those nine
//! extra dimensions help each per-technique head.

use jsdetect::{train_pipeline, DetectorConfig, Technique};
use jsdetect_experiments::{or_exit, write_json, Args};
use jsdetect_features::FeatureConfig;
use jsdetect_ml::metrics;
use serde::Serialize;

#[derive(Serialize)]
struct LintRow {
    features: String,
    technique: String,
    precision: f64,
    recall: f64,
    f1: f64,
}

fn main() {
    let args = Args::parse();
    let n = args.scaled(120);
    let mut rows = Vec::new();

    for (name, lint) in [("without lint", false), ("with lint", true)] {
        // Normalization deltas stay off in both arms so the comparison
        // isolates the lint family.
        let features = FeatureConfig { handpicked: true, ngrams: true, lint, normalize: false };
        let cfg = DetectorConfig { features, ..DetectorConfig::default() }.with_seed(args.seed);
        let out = train_pipeline(n, args.seed, &cfg);

        let srcs: Vec<&str> = out.test_level2.iter().map(|s| s.src.as_str()).collect();
        let probs = out.detectors.level2.predict_proba_many(&srcs);
        let mut pred: Vec<Vec<bool>> = Vec::new();
        let mut truth: Vec<Vec<bool>> = Vec::new();
        for (p, s) in probs.into_iter().zip(&out.test_level2) {
            if let Some(p) = p {
                pred.push(p.iter().map(|v| *v >= 0.5).collect());
                truth.push(s.label_vector());
            }
        }

        println!("== {} (space dim {}) ==", name, out.detectors.level2.space().dim());
        let exact = 100.0 * metrics::exact_match(&pred, &truth);
        for (i, t) in Technique::ALL.iter().enumerate() {
            let col_pred: Vec<bool> = pred.iter().map(|v| v[i]).collect();
            let col_truth: Vec<bool> = truth.iter().map(|v| v[i]).collect();
            let m = metrics::prf(&col_pred, &col_truth);
            println!(
                "  {:24} P {:5.2}  R {:5.2}  F1 {:5.2}",
                t.as_str(),
                m.precision,
                m.recall,
                m.f1
            );
            rows.push(LintRow {
                features: name.to_string(),
                technique: t.as_str().to_string(),
                precision: m.precision,
                recall: m.recall,
                f1: m.f1,
            });
        }
        println!("  {:24} exact-match {:5.2}%", "(all techniques)", exact);
    }
    or_exit(write_json(&args, "ablation_lint", &rows));
}

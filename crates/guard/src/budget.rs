//! The shared cooperative budget one analysis charges as it runs.

use crate::{AnalysisError, Limits};
use std::cell::{Cell, RefCell};
use std::time::Instant;

/// How many budget charges elapse between wall-clock reads. `Instant::now`
/// costs ~20ns; amortized over a quantum it vanishes, while still bounding
/// deadline overshoot to a few thousand tokens of work.
const FUEL_QUANTUM: u64 = 4096;

/// Mutable budget state for one script analysis.
///
/// One `Budget` is created per script and threaded by shared reference
/// through lexer, parser, and the feature front-end; interior mutability
/// (`Cell`/`RefCell`) keeps the pipeline signatures `&Budget` without
/// borrow gymnastics. Deliberately **not** `Sync` — each worker thread
/// owns the budget of the script it is analyzing.
///
/// Every failed check both returns the typed error and records it as the
/// budget's *violation* (first violation wins). Layers that must keep a
/// legacy error type (the parser returns `ParseError`) downgrade the typed
/// error at the boundary; callers recover the precise cause afterwards via
/// [`Budget::take_violation`].
#[derive(Debug)]
pub struct Budget {
    limits: Limits,
    tokens: Cell<u64>,
    nodes: Cell<u64>,
    fuel: Cell<u64>,
    started: Instant,
    violation: RefCell<Option<AnalysisError>>,
}

impl Budget {
    /// Starts a fresh budget; the deadline clock begins now.
    pub fn new(limits: &Limits) -> Budget {
        Budget {
            limits: limits.clone(),
            tokens: Cell::new(0),
            nodes: Cell::new(0),
            fuel: Cell::new(FUEL_QUANTUM),
            started: Instant::now(),
            violation: RefCell::new(None),
        }
    }

    /// The limits this budget enforces.
    pub fn limits(&self) -> &Limits {
        &self.limits
    }

    /// Tokens charged so far (includes parser-backtracking re-lexes).
    pub fn tokens_used(&self) -> u64 {
        self.tokens.get()
    }

    /// Rejects inputs over the byte cap before any work runs.
    pub fn check_input(&self, bytes: usize) -> Result<(), AnalysisError> {
        if bytes > self.limits.max_input_bytes {
            return Err(self.record(AnalysisError::InputTooLarge {
                bytes,
                limit: self.limits.max_input_bytes,
            }));
        }
        Ok(())
    }

    /// Charges `n` produced tokens and ticks the deadline clock.
    pub fn charge_tokens(&self, n: u64) -> Result<(), AnalysisError> {
        let total = self.tokens.get().saturating_add(n);
        self.tokens.set(total);
        if total > self.limits.max_tokens {
            return Err(
                self.record(AnalysisError::TokenBudgetExceeded { limit: self.limits.max_tokens })
            );
        }
        self.tick(n)
    }

    /// Reconciles one lexing pass's running token count with the budget.
    ///
    /// The pipeline lexes a script up to twice — once inside the parser and
    /// once standalone for the token list — so the charged total is the
    /// *maximum* across passes, not their sum: the cap bounds each pass.
    /// Backtracking re-lexes still count because a pass's running total is
    /// monotonic. Ticks the deadline clock once per call.
    pub fn note_tokens(&self, pass_total: u64) -> Result<(), AnalysisError> {
        if pass_total > self.tokens.get() {
            self.tokens.set(pass_total);
        }
        if pass_total > self.limits.max_tokens {
            return Err(
                self.record(AnalysisError::TokenBudgetExceeded { limit: self.limits.max_tokens })
            );
        }
        self.tick(1)
    }

    /// Checks a recursion depth against the AST depth cap.
    pub fn check_depth(&self, depth: u32) -> Result<(), AnalysisError> {
        if depth > self.limits.max_ast_depth {
            return Err(
                self.record(AnalysisError::AstDepthExceeded { limit: self.limits.max_ast_depth })
            );
        }
        Ok(())
    }

    /// Charges `n` AST nodes and ticks the deadline clock.
    pub fn charge_nodes(&self, n: u64) -> Result<(), AnalysisError> {
        let total = self.nodes.get().saturating_add(n);
        self.nodes.set(total);
        if total > self.limits.max_ast_nodes {
            return Err(self.record(AnalysisError::AstNodeBudgetExceeded {
                limit: self.limits.max_ast_nodes,
            }));
        }
        self.tick(n)
    }

    /// Checks a control-flow edge count against the CFG cap.
    pub fn check_cfg_edges(&self, edges: u64) -> Result<(), AnalysisError> {
        if edges > self.limits.max_cfg_edges {
            return Err(self.record(AnalysisError::CfgEdgeBudgetExceeded {
                limit: self.limits.max_cfg_edges,
            }));
        }
        Ok(())
    }

    /// Burns `cost` fuel; reads the wall clock once per exhausted quantum
    /// and fails when the deadline has passed. Call at loop heads whose
    /// per-iteration work is not already charged through another axis.
    pub fn tick(&self, cost: u64) -> Result<(), AnalysisError> {
        if self.limits.deadline_ms == 0 {
            return Ok(());
        }
        let fuel = self.fuel.get();
        if fuel > cost {
            self.fuel.set(fuel - cost);
            return Ok(());
        }
        self.fuel.set(FUEL_QUANTUM);
        if self.started.elapsed().as_millis() as u64 > self.limits.deadline_ms {
            return Err(
                self.record(AnalysisError::DeadlineExceeded { ms: self.limits.deadline_ms })
            );
        }
        Ok(())
    }

    /// Reads the wall clock immediately (no fuel amortization) and fails if
    /// the deadline has passed. Call between pipeline stages, where one
    /// forced clock read is cheap relative to the stage itself.
    pub fn check_deadline(&self) -> Result<(), AnalysisError> {
        if self.limits.deadline_ms == 0 {
            return Ok(());
        }
        if self.started.elapsed().as_millis() as u64 > self.limits.deadline_ms {
            return Err(
                self.record(AnalysisError::DeadlineExceeded { ms: self.limits.deadline_ms })
            );
        }
        Ok(())
    }

    /// Records a violation observed outside the budget's own checks (e.g. a
    /// caught panic) through the same first-wins side channel.
    pub fn record_external(&self, e: AnalysisError) {
        let _ = self.record(e);
    }

    /// Removes and returns the first recorded violation, if any. Used by
    /// callers to reclassify a downgraded legacy error (the parser's
    /// stringly `ParseError`) back to its precise typed cause.
    pub fn take_violation(&self) -> Option<AnalysisError> {
        self.violation.borrow_mut().take()
    }

    fn record(&self, e: AnalysisError) -> AnalysisError {
        let mut slot = self.violation.borrow_mut();
        if slot.is_none() {
            *slot = Some(e.clone());
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_budget_boundary_is_exact() {
        let limits = Limits { max_tokens: 3, ..Limits::unbounded() };
        let b = Budget::new(&limits);
        assert!(b.charge_tokens(3).is_ok());
        assert_eq!(b.charge_tokens(1), Err(AnalysisError::TokenBudgetExceeded { limit: 3 }));
        // First violation sticks even after later failures.
        let _ = b.charge_tokens(1);
        assert_eq!(b.take_violation(), Some(AnalysisError::TokenBudgetExceeded { limit: 3 }));
        assert_eq!(b.take_violation(), None);
    }

    #[test]
    fn note_tokens_boundary_is_exact_and_max_across_passes() {
        let limits = Limits { max_tokens: 4, ..Limits::unbounded() };
        let b = Budget::new(&limits);
        // First pass: exactly at the cap is fine, one past it fails.
        for total in 1..=4 {
            assert!(b.note_tokens(total).is_ok());
        }
        // Second pass restarts its own count; the budget keeps the max.
        for total in 1..=4 {
            assert!(b.note_tokens(total).is_ok());
        }
        assert_eq!(b.tokens_used(), 4);
        assert_eq!(b.note_tokens(5), Err(AnalysisError::TokenBudgetExceeded { limit: 4 }));
    }

    #[test]
    fn check_deadline_reads_clock_immediately() {
        let b = Budget::new(&Limits::unbounded());
        assert!(b.check_deadline().is_ok()); // disabled deadline never fires
        let limits = Limits { deadline_ms: 1, ..Limits::unbounded() };
        let b = Budget::new(&limits);
        std::thread::sleep(std::time::Duration::from_millis(5));
        assert_eq!(b.check_deadline(), Err(AnalysisError::DeadlineExceeded { ms: 1 }));
    }

    #[test]
    fn depth_boundary_is_exact() {
        let limits = Limits { max_ast_depth: 5, ..Limits::unbounded() };
        let b = Budget::new(&limits);
        assert!(b.check_depth(5).is_ok());
        assert_eq!(b.check_depth(6), Err(AnalysisError::AstDepthExceeded { limit: 5 }));
    }

    #[test]
    fn node_and_edge_budgets_enforce() {
        let limits = Limits { max_ast_nodes: 10, max_cfg_edges: 2, ..Limits::unbounded() };
        let b = Budget::new(&limits);
        assert!(b.charge_nodes(10).is_ok());
        assert!(b.charge_nodes(1).is_err());
        let b2 = Budget::new(&limits);
        assert!(b2.check_cfg_edges(2).is_ok());
        assert_eq!(b2.check_cfg_edges(3), Err(AnalysisError::CfgEdgeBudgetExceeded { limit: 2 }));
    }

    #[test]
    fn zero_deadline_never_expires() {
        let b = Budget::new(&Limits::unbounded());
        for _ in 0..10 {
            assert!(b.tick(FUEL_QUANTUM).is_ok());
        }
    }

    #[test]
    fn elapsed_deadline_fails_within_one_quantum() {
        let limits = Limits { deadline_ms: 0, ..Limits::unbounded() };
        // deadline_ms == 0 disables; use 1ms and sleep past it instead.
        let limits = Limits { deadline_ms: 1, ..limits };
        let b = Budget::new(&limits);
        std::thread::sleep(std::time::Duration::from_millis(5));
        let mut failed = false;
        for _ in 0..3 {
            if b.tick(FUEL_QUANTUM).is_err() {
                failed = true;
                break;
            }
        }
        assert!(failed, "deadline should fire within one quantum after expiry");
        assert_eq!(b.take_violation(), Some(AnalysisError::DeadlineExceeded { ms: 1 }));
    }
}

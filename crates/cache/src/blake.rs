//! BLAKE2s-256 (RFC 7693, unkeyed, sequential mode) — the content hash
//! underneath every cache key.
//!
//! Implemented from the RFC rather than pulled in as a dependency because
//! the workspace builds offline. Only the subset the cache needs is
//! provided: one-shot hashing of a byte slice. Correctness is pinned by
//! the RFC/reference-implementation test vectors below.

/// A 256-bit BLAKE2s digest of one script's source bytes.
///
/// The first [`ContentHash::PREFIX_LEN`] bytes name the record on disk
/// (shard directory + file name); the full digest is stored inside the
/// record and re-checked on read, so a prefix collision degrades to a
/// cache miss instead of serving the wrong script's features.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ContentHash(pub [u8; 32]);

impl ContentHash {
    /// Bytes of the digest used for the on-disk record name (16 bytes =
    /// 32 hex characters; the two leading hex characters are the shard).
    pub const PREFIX_LEN: usize = 16;

    /// Hashes `src` with BLAKE2s-256.
    pub fn of(src: &[u8]) -> ContentHash {
        ContentHash(blake2s256(src))
    }

    /// Lower-case hex of the full 32-byte digest.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(64);
        for b in self.0 {
            s.push_str(HEX[(b >> 4) as usize]);
            s.push_str(HEX[(b & 0xf) as usize]);
        }
        s
    }

    /// Lower-case hex of the record-naming prefix.
    pub fn prefix_hex(&self) -> String {
        let mut s = String::with_capacity(Self::PREFIX_LEN * 2);
        for b in &self.0[..Self::PREFIX_LEN] {
            s.push_str(HEX[(b >> 4) as usize]);
            s.push_str(HEX[(b & 0xf) as usize]);
        }
        s
    }

    /// The two-hex-character shard this hash lands in (256 shards).
    pub fn shard(&self) -> String {
        format!("{:02x}", self.0[0])
    }

    /// Shard index in `0..256`.
    pub fn shard_index(&self) -> usize {
        self.0[0] as usize
    }
}

const HEX: [&str; 16] =
    ["0", "1", "2", "3", "4", "5", "6", "7", "8", "9", "a", "b", "c", "d", "e", "f"];

/// SHA-256 initialization vector, shared by BLAKE2s (RFC 7693 §2.6).
const IV: [u32; 8] = [
    0x6A09_E667,
    0xBB67_AE85,
    0x3C6E_F372,
    0xA54F_F53A,
    0x510E_527F,
    0x9B05_688C,
    0x1F83_D9AB,
    0x5BE0_CD19,
];

/// Message word schedule (RFC 7693 §2.7).
const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

#[inline]
fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
    v[d] = (v[d] ^ v[a]).rotate_right(16);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(12);
    v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
    v[d] = (v[d] ^ v[a]).rotate_right(8);
    v[c] = v[c].wrapping_add(v[d]);
    v[b] = (v[b] ^ v[c]).rotate_right(7);
}

/// The compression function F (RFC 7693 §3.2). `t` is the total byte
/// counter *including* this block; `last` marks the final block.
fn compress(h: &mut [u32; 8], block: &[u8; 64], t: u64, last: bool) {
    let mut m = [0u32; 16];
    for (i, w) in m.iter_mut().enumerate() {
        *w = u32::from_le_bytes([
            block[4 * i],
            block[4 * i + 1],
            block[4 * i + 2],
            block[4 * i + 3],
        ]);
    }
    let mut v = [0u32; 16];
    v[..8].copy_from_slice(h);
    v[8..].copy_from_slice(&IV);
    v[12] ^= t as u32;
    v[13] ^= (t >> 32) as u32;
    if last {
        v[14] ^= 0xFFFF_FFFF;
    }
    for s in &SIGMA {
        g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
        g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
        g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
        g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
        g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
        g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
        g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
        g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
    }
    for i in 0..8 {
        h[i] ^= v[i] ^ v[i + 8];
    }
}

/// One-shot BLAKE2s-256 of `data` (no key).
pub fn blake2s256(data: &[u8]) -> [u8; 32] {
    let mut h = IV;
    // Parameter block: digest_length = 32, key_length = 0, fanout = 1,
    // depth = 1 (RFC 7693 §2.5 XOR'd into h[0]).
    h[0] ^= 0x0101_0020;

    let mut t: u64 = 0;
    let n_full = if data.is_empty() { 0 } else { (data.len() - 1) / 64 };
    for chunk in data.chunks(64).take(n_full) {
        let mut block = [0u8; 64];
        block.copy_from_slice(chunk);
        t += 64;
        compress(&mut h, &block, t, false);
    }
    let tail = &data[n_full * 64..];
    let mut block = [0u8; 64];
    block[..tail.len()].copy_from_slice(tail);
    t += tail.len() as u64;
    compress(&mut h, &block, t, true);

    let mut out = [0u8; 32];
    for (i, w) in h.iter().enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&w.to_le_bytes());
    }
    out
}

/// 64-bit record checksum: the first 8 bytes of the BLAKE2s digest of the
/// payload, little-endian. Detects truncation and bit flips in on-disk
/// records far more reliably than a length check.
pub fn checksum64(data: &[u8]) -> u64 {
    let d = blake2s256(data);
    u64::from_le_bytes([d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7]])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{:02x}", b)).collect()
    }

    #[test]
    fn rfc_vector_empty_input() {
        // BLAKE2s-256("") from the reference implementation's test vectors.
        assert_eq!(
            hex(&blake2s256(b"")),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn rfc_vector_abc() {
        // RFC 7693 Appendix B.
        assert_eq!(
            hex(&blake2s256(b"abc")),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
    }

    #[test]
    fn multi_block_inputs_differ_from_prefixes() {
        // Exercise the full-block loop: 64, 65, 128, 129 bytes.
        let data: Vec<u8> = (0..200u16).map(|i| (i % 251) as u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in [0, 1, 63, 64, 65, 127, 128, 129, 200] {
            assert!(seen.insert(blake2s256(&data[..len])), "collision at len {}", len);
        }
    }

    #[test]
    fn exact_block_boundary_uses_final_flag() {
        // A 64-byte message must be compressed as one *final* block, not a
        // full block plus an empty final block.
        let a = blake2s256(&[7u8; 64]);
        let b = blake2s256(&[7u8; 65]);
        assert_ne!(a, b);
        assert_ne!(a, blake2s256(&[7u8; 63]));
    }

    #[test]
    fn content_hash_naming() {
        let h = ContentHash::of(b"var x = 1;");
        assert_eq!(h.to_hex().len(), 64);
        assert_eq!(h.prefix_hex().len(), 32);
        assert!(h.to_hex().starts_with(&h.prefix_hex()));
        assert_eq!(h.shard(), h.to_hex()[..2].to_string());
        assert_eq!(h.shard_index(), h.0[0] as usize);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum64(b"ab"), checksum64(b"ba"));
        assert_ne!(checksum64(b""), 0);
    }
}

//! Shared literal evaluation helpers used by the passes.
//!
//! Everything here is deliberately conservative: a helper returns `Some`
//! only when the JavaScript result is fully determined by the static shape
//! *and* evaluating the operand twice (or not at all) is observably
//! equivalent — i.e. the expression is side-effect free. That is what lets
//! the dead-branch pass discard a condition without emitting it.

use jsdetect_ast::*;

/// The statically known truthiness of a *side-effect free* expression.
///
/// Returns `None` for anything whose value or purity is not certain.
/// Handles the spellings minifiers and obfuscators actually emit: plain
/// literals, `!0` / `!1`, `!![]`, `!!{}`, and `void 0`.
pub(crate) fn truthiness(e: &Expr) -> Option<bool> {
    match e {
        Expr::Lit(l) => Some(match &l.value {
            LitValue::Str(s) => !s.is_empty(),
            LitValue::Num(n) => *n != 0.0 && !n.is_nan(),
            // A BigInt is falsy iff its digits are all zero (any radix).
            LitValue::BigInt(d) => {
                let digits = d.as_str().trim_start_matches("0x").trim_start_matches("0X");
                let digits = digits.trim_start_matches("0o").trim_start_matches("0O");
                let digits = digits.trim_start_matches("0b").trim_start_matches("0B");
                digits.bytes().any(|b| b != b'0' && b != b'_')
            }
            LitValue::Bool(b) => *b,
            LitValue::Null => false,
            LitValue::Regex { .. } => true,
        }),
        Expr::Unary { op: UnaryOp::Not, arg, .. } => truthiness(arg).map(|b| !b),
        // `void <pure>` is `undefined`, which is falsy. Only the canonical
        // literal-argument form is certain to be pure.
        Expr::Unary { op: UnaryOp::Void, arg, .. } if matches!(**arg, Expr::Lit(_)) => Some(false),
        // Empty array/object literals allocate but have no observable side
        // effect a condition could depend on; both are truthy.
        Expr::Array { elements, .. } if elements.is_empty() => Some(true),
        Expr::Object { props, .. } if props.is_empty() => Some(true),
        _ => None,
    }
}

/// Numeric value of a literal-shaped expression: a number literal,
/// optionally under unary `-` / `+`. Side-effect free by construction.
pub(crate) fn num_value(e: &Expr) -> Option<f64> {
    match e {
        Expr::Lit(Lit { value: LitValue::Num(n), .. }) => Some(*n),
        Expr::Unary { op: UnaryOp::Minus, arg, .. } => num_value(arg).map(|n| -n),
        Expr::Unary { op: UnaryOp::Plus, arg, .. } => num_value(arg),
        _ => None,
    }
}

/// ECMAScript `ToInt32` on an already-numeric value.
pub(crate) fn to_int32(n: f64) -> i32 {
    to_uint32(n) as i32
}

/// ECMAScript `ToUint32` on an already-numeric value.
pub(crate) fn to_uint32(n: f64) -> u32 {
    if !n.is_finite() || n == 0.0 {
        return 0;
    }
    let t = n.trunc();
    // Euclidean remainder gives the value mod 2^32 in [0, 2^32).
    (t.rem_euclid(4_294_967_296.0)) as u32
}

/// Wraps a folded numeric result as a printable expression, or refuses.
///
/// Negative values are emitted as unary minus over the positive literal so
/// the printer never has to format a negative number literal; `NaN`,
/// infinities, and `-0` have no literal spelling and are not folded.
pub(crate) fn num_expr(value: f64, span: Span) -> Option<Expr> {
    if !value.is_finite() {
        return None;
    }
    if value == 0.0 && value.is_sign_negative() {
        return None;
    }
    if value < 0.0 {
        return Some(Expr::Unary {
            op: UnaryOp::Minus,
            arg: Box::new(Expr::Lit(Lit {
                value: LitValue::Num(-value),
                raw: Atom::empty(),
                span,
            })),
            span,
        });
    }
    Some(Expr::Lit(Lit { value: LitValue::Num(value), raw: Atom::empty(), span }))
}

/// A string literal expression carrying `span`.
pub(crate) fn str_expr(value: impl Into<Atom>, span: Span) -> Expr {
    Expr::Lit(Lit { value: LitValue::Str(value.into()), raw: Atom::empty(), span })
}

/// A boolean literal expression carrying `span`.
pub(crate) fn bool_expr(value: bool, span: Span) -> Expr {
    Expr::Lit(Lit { value: LitValue::Bool(value), raw: Atom::empty(), span })
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    fn first_expr(src: &str) -> Expr {
        match parse(src).unwrap().body.into_iter().next().unwrap() {
            Stmt::Expr { expr, .. } => expr,
            other => panic!("expected expression statement, got {:?}", other),
        }
    }

    #[test]
    fn truthiness_of_obfuscator_spellings() {
        assert_eq!(truthiness(&first_expr("!0;")), Some(true));
        assert_eq!(truthiness(&first_expr("!1;")), Some(false));
        assert_eq!(truthiness(&first_expr("!![];")), Some(true));
        assert_eq!(truthiness(&first_expr("!!{};")), Some(true));
        assert_eq!(truthiness(&first_expr("void 0;")), Some(false));
        assert_eq!(truthiness(&first_expr("'x';")), Some(true));
        assert_eq!(truthiness(&first_expr("'';")), Some(false));
        assert_eq!(truthiness(&first_expr("null;")), Some(false));
    }

    #[test]
    fn impure_or_unknown_shapes_are_not_constant() {
        assert_eq!(truthiness(&first_expr("x;")), None);
        assert_eq!(truthiness(&first_expr("[f()];")), None);
        assert_eq!(truthiness(&first_expr("!f();")), None);
        assert_eq!(truthiness(&first_expr("({a: f()});")), None);
    }

    #[test]
    fn to_int32_matches_spec_edge_cases() {
        assert_eq!(to_int32(0.0), 0);
        assert_eq!(to_int32(-1.0), -1);
        assert_eq!(to_int32(4_294_967_296.0), 0);
        assert_eq!(to_int32(2_147_483_648.0), -2_147_483_648);
        assert_eq!(to_int32(f64::NAN), 0);
        assert_eq!(to_int32(f64::INFINITY), 0);
        assert_eq!(to_int32(-3.9), -3);
        assert_eq!(to_uint32(-1.0), 4_294_967_295);
    }

    #[test]
    fn num_expr_avoids_unprintable_values() {
        assert!(num_expr(f64::NAN, Span::DUMMY).is_none());
        assert!(num_expr(f64::INFINITY, Span::DUMMY).is_none());
        assert!(num_expr(-0.0, Span::DUMMY).is_none());
        assert!(matches!(num_expr(3.5, Span::DUMMY), Some(Expr::Lit(_))));
        assert!(matches!(num_expr(-2.0, Span::DUMMY), Some(Expr::Unary { .. })));
    }
}

//! `jsdetect-obs`: always-on streaming telemetry for the `jsdetect`
//! pipeline.
//!
//! The detector's north star is corpus-scale traffic, where the questions
//! that matter are "which stage is the tail script stuck in?" and "how
//! often do we hit the failure modes the paper's wild study hits (parse
//! errors, truncated data-flow, unparsable samples)?". This crate answers
//! them with three primitives, all usable from any pipeline layer:
//!
//! - **Spans** ([`span`]): RAII wall-clock timers that nest. Dropping the
//!   guard records one occurrence under a slash-joined path built from the
//!   thread's open spans (`analyze/parse`).
//! - **Counters / gauges / histograms** ([`counter_add`], [`gauge_set`],
//!   [`observe`]): monotonic event counts, last-write-wins values, and
//!   log-scaled value distributions ([`Histogram`]) with interpolated
//!   p50/p90/p99 estimates.
//! - **Exporters**: a human [`render_summary`] table, a structured
//!   [`to_jsonl`] event stream with a stable versioned schema, Prometheus
//!   text exposition ([`render_prometheus`]) for scrape endpoints, and a
//!   Chrome trace-event JSON ([`render_chrome_trace`]) loadable in
//!   Perfetto / `chrome://tracing`, with per-stage self-time attribution
//!   ([`self_times`]).
//!
//! Telemetry is **off by default**. Every recording entry point starts
//! with one relaxed atomic load of the global enabled flag and returns
//! immediately when it is clear, so permanently-compiled-in
//! instrumentation costs a few nanoseconds per call site on the disabled
//! path (asserted against the pipeline's own workload by an integration
//! test in `jsdetect`).
//!
//! Collection is **streaming**: records land directly in per-thread
//! atomic cells and a bounded per-thread trace ring, both readable by any
//! thread at any time. [`snapshot`] (or [`Registry::snapshot`]) merges
//! live state without pausing workers — there is no flush step, and
//! telemetry recorded by a scoped worker thread is visible the moment the
//! record call returns. Metric names come from the [`names`] module so
//! every crate shares one vocabulary.
//!
//! # Examples
//!
//! ```
//! jsdetect_obs::set_enabled(true);
//! jsdetect_obs::reset();
//! {
//!     let _outer = jsdetect_obs::span("analyze");
//!     let _inner = jsdetect_obs::span("parse");
//!     jsdetect_obs::counter_add("parse_failures", 1);
//! }
//! let snap = jsdetect_obs::Registry::snapshot();
//! assert_eq!(snap.counter("parse_failures"), 1);
//! assert!(snap.span("analyze/parse").is_some());
//! assert!(jsdetect_obs::render_prometheus(&snap).contains("jsdetect_parse_failures_total"));
//! jsdetect_obs::set_enabled(false);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod export;
mod histogram;
pub mod names;
mod prometheus;
mod registry;
mod ring;
mod trace;

pub use export::{render_summary, to_jsonl, SCHEMA_VERSION};
pub use histogram::{bucket_bounds, bucket_index, Histogram, N_BUCKETS};
pub use prometheus::render_prometheus;
pub use registry::{
    flush, record_span_ns, reset, snapshot, CounterEvent, Snapshot, SpanEvent, SpanStat,
};
pub use ring::RING_CAP;
pub use trace::{render_chrome_trace, self_times, SelfTime};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Turns telemetry collection on or off process-wide. Spans already open
/// when the flag flips still record on drop; spans opened while disabled
/// never record.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::SeqCst);
}

/// Whether telemetry collection is enabled. One relaxed atomic load — the
/// entire cost of every instrumentation point on the disabled path.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// The process telemetry epoch: all span `start_ns` offsets are relative
/// to this instant (fixed at the first enabled recording).
fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// The registry as a handle: the serve-facing entry point for live
/// metrics. `Registry::snapshot()` never pauses recording threads.
pub struct Registry;

impl Registry {
    /// Merges every thread's live state into a point-in-time [`Snapshot`].
    pub fn snapshot() -> Snapshot {
        registry::snapshot()
    }

    /// One-call scrape: snapshot rendered as Prometheus text exposition.
    pub fn render_prometheus() -> String {
        prometheus::render_prometheus(&registry::snapshot())
    }
}

/// RAII telemetry guard for worker closures: construction eagerly sets up
/// the calling thread's recording cells (so a hot loop's first record is
/// cheap), and drop runs [`flush`].
///
/// With the streaming core, records are globally visible the moment they
/// are made and `flush` is a no-op — this guard exists so worker closures
/// state their telemetry lifetime structurally instead of remembering a
/// trailing `flush()` call (the PR 3 footgun: `std::thread::scope` signals
/// completion before TLS destructors run, so a forgotten flush silently
/// lost the worker's records).
#[must_use = "bind to a named guard (`let _obs = ...`) so it lives for the whole closure"]
pub struct ScopedCollector {
    _priv: (),
}

/// Alias for [`ScopedCollector`], for call sites that read better as "flush
/// on drop".
pub type FlushGuard = ScopedCollector;

impl ScopedCollector {
    /// Prepares the calling thread for recording.
    pub fn new() -> Self {
        registry::touch();
        ScopedCollector { _priv: () }
    }
}

impl Default for ScopedCollector {
    fn default() -> Self {
        ScopedCollector::new()
    }
}

impl Drop for ScopedCollector {
    fn drop(&mut self) {
        flush();
    }
}

/// An RAII span guard: the span runs from [`span`] until the guard drops.
#[must_use = "a span records its duration when dropped; binding it to `_` drops it immediately"]
pub struct Span {
    /// Interned id of the span's full slash path (sentinel when disabled
    /// or unregistrable).
    path_id: u32,
    /// `None` when telemetry was disabled at enter (the no-op path).
    start: Option<Instant>,
    /// Open-span stack depth at enter; drop truncates back to it, so a
    /// leaked or out-of-order inner guard cannot corrupt later paths.
    depth: usize,
}

/// Opens a span named `name` on the calling thread. Nested calls build
/// slash-joined paths: a `parse` span opened while an `analyze` span is
/// open records as `analyze/parse`.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { path_id: 0, start: None, depth: 0 };
    }
    let Some((path_id, depth)) = registry::open_span(name) else {
        return Span { path_id: 0, start: None, depth: 0 };
    };
    let epoch = epoch();
    Span { path_id, start: Some(Instant::now().max(epoch)), depth }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let dur_ns = saturating_ns(start.elapsed());
        let start_ns = saturating_ns(start.duration_since(epoch()));
        registry::close_span(self.path_id, self.depth, start_ns, dur_ns);
    }
}

fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Adds `n` to a named monotonic counter. No-op when disabled or `n == 0`.
#[inline]
pub fn counter_add(name: &'static str, n: u64) {
    if !enabled() || n == 0 {
        return;
    }
    let ts_ns = saturating_ns(Instant::now().duration_since(epoch()));
    registry::add_counter(name, n, ts_ns);
}

/// Sets a named gauge to `v` (last write wins).
#[inline]
pub fn gauge_set(name: &'static str, v: f64) {
    if !enabled() {
        return;
    }
    registry::gauge_store(name, v);
}

/// Records `v` into a named log-scaled [`Histogram`].
#[inline]
pub fn observe(name: &'static str, v: u64) {
    if !enabled() {
        return;
    }
    registry::observe_hist(name, v);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// The registry is process-global; tests that read it must not
    /// interleave.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn locked() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_records_nothing() {
        let _g = locked();
        set_enabled(false);
        reset();
        {
            let _s = span("never");
            counter_add("never", 5);
            observe("never", 5);
            gauge_set("never", 5.0);
        }
        let snap = snapshot();
        assert!(snap.spans.is_empty());
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.hists.is_empty());
    }

    #[test]
    fn nested_spans_build_paths() {
        let _g = locked();
        set_enabled(true);
        reset();
        {
            let _a = span("outer");
            {
                let _b = span("mid");
                let _c = span("leaf");
            }
            let _d = span("leaf");
        }
        let snap = snapshot();
        set_enabled(false);
        let paths: Vec<&str> = snap.spans.iter().map(|s| s.path.as_str()).collect();
        assert_eq!(paths, vec!["outer", "outer/leaf", "outer/mid", "outer/mid/leaf"]);
        assert!(snap.span("outer").unwrap().total_ns >= snap.span("outer/mid").unwrap().total_ns);
    }

    #[test]
    fn counters_gauges_and_hists_aggregate() {
        let _g = locked();
        set_enabled(true);
        reset();
        counter_add("hits", 2);
        counter_add("hits", 3);
        counter_add("zero", 0); // no-op: never materializes
        gauge_set("threads", 4.0);
        gauge_set("threads", 8.0);
        observe("bytes", 100);
        observe("bytes", 10_000);
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("hits"), 5);
        assert_eq!(snap.counter("zero"), 0);
        assert!(snap.counters.iter().all(|(n, _)| n != "zero"));
        assert_eq!(snap.gauges, vec![("threads".to_string(), 8.0)]);
        let h = snap.hist("bytes").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 10_100);
    }

    #[test]
    fn reset_clears_everything() {
        let _g = locked();
        set_enabled(true);
        reset();
        counter_add("x", 1);
        let _ = span("x");
        reset();
        let snap = snapshot();
        set_enabled(false);
        assert!(snap.spans.is_empty() && snap.counters.is_empty());
    }

    #[test]
    fn snapshot_is_live_no_flush_needed() {
        let _g = locked();
        set_enabled(true);
        reset();
        let _guard = ScopedCollector::new();
        counter_add("live_counter", 7);
        {
            let _s = span("live_span");
        }
        // Deliberately NO flush(): streaming cells are already visible.
        let snap = snapshot();
        set_enabled(false);
        assert_eq!(snap.counter("live_counter"), 7);
        assert_eq!(snap.span("live_span").unwrap().count, 1);
        assert_eq!(snap.events.len(), 1, "ring event visible without flush");
        assert_eq!(snap.counter_events.len(), 1);
        assert_eq!(snap.counter_events[0].name, "live_counter");
        assert_eq!(snap.counter_events[0].delta, 7);
    }

    #[test]
    fn ring_overflow_surfaces_trace_dropped_counter() {
        let _g = locked();
        set_enabled(true);
        reset();
        let extra = 50u64;
        for _ in 0..(RING_CAP as u64 + extra) {
            let _s = span("overflowing");
        }
        let snap = snapshot();
        set_enabled(false);
        // Aggregates keep every record; the ring keeps only the newest.
        assert_eq!(snap.span("overflowing").unwrap().count, RING_CAP as u64 + extra);
        assert_eq!(snap.events.len(), RING_CAP);
        assert_eq!(snap.dropped_events, extra);
        assert_eq!(snap.counter(names::TRACE_DROPPED), extra);
    }
}

//! Evaluation metrics, including the paper's Top-k criterion (§III-E).

/// Fraction of predictions equal to the ground truth.
pub fn accuracy(pred: &[bool], truth: &[bool]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let ok = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    ok as f64 / pred.len() as f64
}

/// Exact-set accuracy for multi-label predictions: both the labels and
/// their number must match (paper §III-E1).
pub fn exact_match(pred: &[Vec<bool>], truth: &[Vec<bool>]) -> f64 {
    assert_eq!(pred.len(), truth.len());
    if pred.is_empty() {
        return 0.0;
    }
    let ok = pred.iter().zip(truth).filter(|(p, t)| p == t).count();
    ok as f64 / pred.len() as f64
}

/// Precision, recall, and F1 of the positive class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prf {
    /// Positive predictive value.
    pub precision: f64,
    /// True-positive rate.
    pub recall: f64,
    /// Harmonic mean of precision and recall.
    pub f1: f64,
}

/// Computes precision/recall/F1 for binary predictions.
pub fn prf(pred: &[bool], truth: &[bool]) -> Prf {
    assert_eq!(pred.len(), truth.len());
    let tp = pred.iter().zip(truth).filter(|(p, t)| **p && **t).count() as f64;
    let fp = pred.iter().zip(truth).filter(|(p, t)| **p && !**t).count() as f64;
    let fne = pred.iter().zip(truth).filter(|(p, t)| !**p && **t).count() as f64;
    let precision = if tp + fp == 0.0 { 0.0 } else { tp / (tp + fp) };
    let recall = if tp + fne == 0.0 { 0.0 } else { tp / (tp + fne) };
    let f1 = if precision + recall == 0.0 {
        0.0
    } else {
        2.0 * precision * recall / (precision + recall)
    };
    Prf { precision, recall, f1 }
}

/// Indices of the `k` highest-probability labels (ties broken by index).
pub fn top_k_indices(probs: &[f32], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..probs.len()).collect();
    idx.sort_by(|&a, &b| probs[b].partial_cmp(&probs[a]).unwrap().then(a.cmp(&b)));
    idx.truncate(k);
    idx
}

/// The paper's Top-k criterion: the prediction is correct when the `k`
/// most probable labels are all part of the ground-truth label set
/// (§III-E1).
pub fn top_k_correct(probs: &[f32], truth: &[bool], k: usize) -> bool {
    top_k_indices(probs, k).iter().all(|&i| truth[i])
}

/// Top-k accuracy over a set of samples.
pub fn top_k_accuracy(probs: &[Vec<f32>], truth: &[Vec<bool>], k: usize) -> f64 {
    assert_eq!(probs.len(), truth.len());
    if probs.is_empty() {
        return 0.0;
    }
    let ok = probs.iter().zip(truth).filter(|(p, t)| top_k_correct(p, t, k)).count();
    ok as f64 / probs.len() as f64
}

/// Labels selected by the thresholded Top-k rule of §III-E2: the `k` most
/// probable labels, keeping only those with probability above `threshold`.
pub fn thresholded_top_k(probs: &[f32], k: usize, threshold: f32) -> Vec<usize> {
    top_k_indices(probs, k).into_iter().filter(|&i| probs[i] > threshold).collect()
}

/// Wrong (predicted ∉ truth) and missing (truth ∉ predicted) label counts
/// for one thresholded prediction.
pub fn wrong_and_missing(selected: &[usize], truth: &[bool]) -> (usize, usize) {
    let wrong = selected.iter().filter(|&&i| !truth[i]).count();
    let n_truth = truth.iter().filter(|&&t| t).count();
    let hit = selected.iter().filter(|&&i| truth[i]).count();
    (wrong, n_truth.saturating_sub(hit))
}

/// Aggregate thresholded-Top-k statistics over a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopKStats {
    /// Fraction of samples whose selected set equals the truth set.
    pub exact_accuracy: f64,
    /// Fraction of samples whose selected set is a subset of the truth.
    pub subset_accuracy: f64,
    /// Mean number of wrong labels per sample.
    pub avg_wrong: f64,
    /// Mean number of missing labels per sample.
    pub avg_missing: f64,
}

/// Evaluates the thresholded Top-k rule over many samples.
pub fn top_k_stats(probs: &[Vec<f32>], truth: &[Vec<bool>], k: usize, threshold: f32) -> TopKStats {
    assert_eq!(probs.len(), truth.len());
    let n = probs.len().max(1) as f64;
    let mut exact = 0usize;
    let mut subset = 0usize;
    let mut wrong_sum = 0usize;
    let mut missing_sum = 0usize;
    for (p, t) in probs.iter().zip(truth) {
        let sel = thresholded_top_k(p, k, threshold);
        let (wrong, missing) = wrong_and_missing(&sel, t);
        wrong_sum += wrong;
        missing_sum += missing;
        if wrong == 0 {
            subset += 1;
            if missing == 0 {
                exact += 1;
            }
        }
    }
    TopKStats {
        exact_accuracy: exact as f64 / n,
        subset_accuracy: subset as f64 / n,
        avg_wrong: wrong_sum as f64 / n,
        avg_missing: missing_sum as f64 / n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[true, false, true], &[true, true, true]), 2.0 / 3.0);
        assert_eq!(accuracy(&[], &[]), 0.0);
    }

    #[test]
    fn exact_match_basic() {
        let pred = vec![vec![true, false], vec![true, true]];
        let truth = vec![vec![true, false], vec![false, true]];
        assert_eq!(exact_match(&pred, &truth), 0.5);
    }

    #[test]
    fn prf_values() {
        // pred: T T F F, truth: T F T F → tp=1 fp=1 fn=1
        let m = prf(&[true, true, false, false], &[true, false, true, false]);
        assert_eq!(m.precision, 0.5);
        assert_eq!(m.recall, 0.5);
        assert_eq!(m.f1, 0.5);
    }

    #[test]
    fn top_k_ordering() {
        let probs = vec![0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k_indices(&probs, 2), vec![1, 3]);
        assert_eq!(top_k_indices(&probs, 10), vec![1, 3, 2, 0]);
    }

    #[test]
    fn paper_top_k_example() {
        // Paper §III-E1: labels [A,B,C,D,E]; truth {A,B,C}; prediction
        // order B,C,D,E,... → Top-1 and Top-2 correct, Top-3 wrong.
        let probs = vec![0.05, 0.9, 0.8, 0.6, 0.4]; // A B C D E
        let truth = vec![true, true, true, false, false];
        assert!(top_k_correct(&probs, &truth, 1)); // {B}
        assert!(top_k_correct(&probs, &truth, 2)); // {B, C}
        assert!(!top_k_correct(&probs, &truth, 3)); // {B, C, D} — D wrong
        assert!(!top_k_correct(&probs, &truth, 4));
    }

    #[test]
    fn thresholded_selection() {
        let probs = vec![0.8, 0.05, 0.3, 0.15];
        assert_eq!(thresholded_top_k(&probs, 3, 0.1), vec![0, 2, 3]);
        assert_eq!(thresholded_top_k(&probs, 3, 0.5), vec![0]);
        assert_eq!(thresholded_top_k(&probs, 1, 0.1), vec![0]);
    }

    #[test]
    fn wrong_and_missing_counts() {
        let truth = vec![true, true, false, false];
        assert_eq!(wrong_and_missing(&[0, 1], &truth), (0, 0));
        assert_eq!(wrong_and_missing(&[0, 2], &truth), (1, 1));
        assert_eq!(wrong_and_missing(&[], &truth), (0, 2));
        assert_eq!(wrong_and_missing(&[2, 3], &truth), (2, 2));
    }

    #[test]
    fn stats_aggregate() {
        let probs = vec![vec![0.9, 0.8, 0.05], vec![0.9, 0.05, 0.2]];
        let truth = vec![vec![true, true, false], vec![true, false, false]];
        let s = top_k_stats(&probs, &truth, 3, 0.1);
        assert_eq!(s.exact_accuracy, 0.5); // second sample picks label 2 too
        assert_eq!(s.avg_wrong, 0.5);
        assert_eq!(s.avg_missing, 0.0);
    }
}

//! Randomized printer tests over *arbitrary synthesized ASTs* (not just
//! parsed sources): pretty and compact printing produce programs that
//! reparse, and printing is a fixpoint. This reaches printer paths that
//! source-derived tests cannot (unusual nestings, holes, empty bodies,
//! keyword-ish names in safe positions). A hand-rolled seeded generator
//! replaces the earlier proptest strategies (proptest is unavailable in
//! the offline build environment).

use jsdetect_ast::builder as b;
use jsdetect_ast::*;
use jsdetect_codegen::{to_minified, to_source};
use jsdetect_parser::parse;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Identifier names drawn from a safe pool (plus a few adversarial ones
/// that stress the writer's token-boundary logic).
fn gen_ident(rng: &mut StdRng) -> String {
    ["x", "value", "_private", "$jq", "ifx", "letters", "newish", "_0x1a2b", "a"]
        .choose(rng)
        .unwrap()
        .to_string()
}

fn gen_string(rng: &mut StdRng) -> String {
    [
        "",
        "hello",
        "it's",
        "tab\there",
        "line\nbreak",
        "back\\slash",
        "${not-a-template}",
        "héllo ünïcode",
    ]
    .choose(rng)
    .unwrap()
    .to_string()
}

fn gen_literal(rng: &mut StdRng) -> Expr {
    match rng.gen_range(0..6u8) {
        0 => b::num_lit(rng.gen_range(0..1000u32) as f64),
        1 => b::num_lit(0.5),
        2 => b::num_lit(1e21),
        3 => b::bool_lit(rng.gen_bool(0.5)),
        4 => b::null_lit(),
        _ => b::str_lit(gen_string(rng)),
    }
}

fn gen_expr(rng: &mut StdRng, depth: usize) -> Expr {
    if depth == 0 || rng.gen_bool(0.3) {
        return match rng.gen_range(0..3u8) {
            0 => gen_literal(rng),
            1 => b::ident(gen_ident(rng)),
            _ => Expr::This { span: Span::DUMMY },
        };
    }
    let d = depth - 1;
    match rng.gen_range(0..11u8) {
        0 => {
            let ops = [
                BinaryOp::Add,
                BinaryOp::Sub,
                BinaryOp::Mul,
                BinaryOp::Div,
                BinaryOp::Lt,
                BinaryOp::EqEqEq,
                BinaryOp::BitAnd,
                BinaryOp::Exp,
            ];
            b::binary(*ops.choose(rng).unwrap(), gen_expr(rng, d), gen_expr(rng, d))
        }
        1 => b::logical(LogicalOp::And, gen_expr(rng, d), gen_expr(rng, d)),
        2 => {
            let ops = [UnaryOp::Not, UnaryOp::Minus, UnaryOp::TypeOf, UnaryOp::Void];
            b::unary(*ops.choose(rng).unwrap(), gen_expr(rng, d))
        }
        3 => b::conditional(gen_expr(rng, d), gen_expr(rng, d), gen_expr(rng, d)),
        4 => {
            let args = (0..rng.gen_range(0..3usize)).map(|_| gen_expr(rng, d)).collect();
            b::call(gen_expr(rng, d), args)
        }
        5 => b::member(gen_expr(rng, d), gen_ident(rng)),
        6 => b::index(gen_expr(rng, d), gen_expr(rng, d)),
        7 => Expr::Array {
            elements: (0..rng.gen_range(0..4usize))
                .map(|_| if rng.gen_bool(0.25) { None } else { Some(gen_expr(rng, d)) })
                .collect(),
            span: Span::DUMMY,
        },
        8 => b::assign_ident(gen_ident(rng), gen_expr(rng, d)),
        9 => Expr::Sequence {
            exprs: (0..rng.gen_range(2..4usize)).map(|_| gen_expr(rng, d)).collect(),
            span: Span::DUMMY,
        },
        _ => {
            if rng.gen_bool(0.5) {
                // Object literal with identifier keys.
                Expr::Object {
                    props: (0..rng.gen_range(0..3usize))
                        .map(|_| Property {
                            key: PropKey::Ident(Ident::new(gen_ident(rng))),
                            value: gen_expr(rng, d),
                            kind: PropKind::Init,
                            computed: false,
                            shorthand: false,
                            method: false,
                            span: Span::DUMMY,
                        })
                        .collect(),
                    span: Span::DUMMY,
                }
            } else {
                // Arrow with expression body.
                Expr::Arrow {
                    params: vec![Pat::Ident(Ident::new(gen_ident(rng)))],
                    body: ArrowBody::Expr(Box::new(gen_expr(rng, d))),
                    is_async: false,
                    span: Span::DUMMY,
                }
            }
        }
    }
}

fn gen_stmt(rng: &mut StdRng, depth: usize) -> Stmt {
    if depth == 0 || rng.gen_bool(0.35) {
        return match rng.gen_range(0..6u8) {
            0 => b::expr_stmt(gen_expr(rng, 3)),
            1 => b::var_decl(VarKind::Var, gen_ident(rng), Some(gen_expr(rng, 3))),
            2 => b::var_decl(VarKind::Const, gen_ident(rng), Some(gen_expr(rng, 3))),
            3 => b::ret(Some(gen_expr(rng, 3))),
            4 => Stmt::Empty { span: Span::DUMMY },
            _ => Stmt::Debugger { span: Span::DUMMY },
        };
    }
    let d = depth - 1;
    match rng.gen_range(0..7u8) {
        0 => {
            let alt = if rng.gen_bool(0.5) { Some(gen_stmt(rng, d)) } else { None };
            b::if_stmt(gen_expr(rng, 3), gen_stmt(rng, d), alt)
        }
        1 => b::while_stmt(gen_expr(rng, 3), gen_stmt(rng, d)),
        2 => b::block((0..rng.gen_range(0..4usize)).map(|_| gen_stmt(rng, d)).collect()),
        3 => b::fn_decl(
            gen_ident(rng),
            vec!["p", "q"],
            (0..rng.gen_range(0..3usize)).map(|_| gen_stmt(rng, d)).collect(),
        ),
        4 => Stmt::ForIn {
            target: ForTarget::Var { kind: VarKind::Var, pat: Pat::Ident(Ident::new("k")) },
            object: gen_expr(rng, 3),
            body: Box::new(gen_stmt(rng, d)),
            span: Span::DUMMY,
        },
        5 => Stmt::DoWhile {
            body: Box::new(gen_stmt(rng, d)),
            test: gen_expr(rng, 3),
            span: Span::DUMMY,
        },
        _ => Stmt::Try {
            block: vec![gen_stmt(rng, d)],
            handler: Some(CatchClause {
                param: Some(Pat::Ident(Ident::new("e"))),
                body: vec![],
                span: Span::DUMMY,
            }),
            finalizer: None,
            span: Span::DUMMY,
        },
    }
}

fn gen_program(seed: u64) -> Program {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = rng.gen_range(0..6usize);
    b::program((0..n).map(|_| gen_stmt(&mut rng, 3)).collect())
}

const CASES: u64 = 192;

#[test]
fn synthesized_ast_pretty_prints_reparse() {
    for seed in 0..CASES {
        let prog = gen_program(seed);
        let printed = to_source(&prog);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!("pretty output failed to parse (seed {}): {}\n---\n{}", seed, e, printed)
        });
        let again = to_source(&reparsed);
        assert_eq!(printed, again, "pretty print not a fixpoint (seed {})", seed);
    }
}

#[test]
fn synthesized_ast_minified_prints_reparse() {
    for seed in 0..CASES {
        let prog = gen_program(seed);
        let printed = to_minified(&prog);
        let reparsed = parse(&printed).unwrap_or_else(|e| {
            panic!("minified output failed to parse (seed {}): {}\n---\n{}", seed, e, printed)
        });
        let again = to_minified(&reparsed);
        assert_eq!(printed, again, "minified print not a fixpoint (seed {})", seed);
    }
}

#[test]
fn pretty_and_minified_agree_structurally() {
    for seed in 0..CASES {
        let prog = gen_program(seed);
        let pretty = parse(&to_source(&prog)).unwrap();
        let minified = parse(&to_minified(&prog)).unwrap();
        assert_eq!(kind_stream(&pretty), kind_stream(&minified), "seed {}", seed);
    }
}

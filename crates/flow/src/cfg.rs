//! Control-flow edges over statement-level nodes.
//!
//! Following the paper (§III-A), control flow is restricted to nodes that
//! affect execution paths: statement nodes, `CatchClause`, `SwitchCase`,
//! and `ConditionalExpression`. Nodes are identified by their source span
//! plus kind; edges carry the reason the flow exists.

use jsdetect_ast::*;

/// A control-flow node: a statement-level AST node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CfNode {
    /// Kind of the underlying AST node.
    pub kind: NodeKind,
    /// Source span of the underlying AST node.
    pub span: Span,
}

/// Why a control-flow edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CfEdgeKind {
    /// Fallthrough to the next statement in a list.
    Seq,
    /// Taken branch of a condition (if/ternary consequent, loop entry).
    BranchTrue,
    /// Not-taken branch (else, loop exit is implicit).
    BranchFalse,
    /// Loop back-edge.
    LoopBack,
    /// Switch discriminant to a case.
    CaseMatch,
    /// Exceptional flow into a catch handler.
    Exception,
    /// Entry into a finally block.
    Finally,
}

/// A directed control-flow edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CfEdge {
    /// Source node.
    pub from: CfNode,
    /// Destination node.
    pub to: CfNode,
    /// Edge kind.
    pub kind: CfEdgeKind,
}

/// The collected control-flow edges of a program.
#[derive(Debug, Clone, Default)]
pub struct ControlFlow {
    /// All edges, in construction order.
    pub edges: Vec<CfEdge>,
    /// All registered nodes, in construction order.
    pub nodes: Vec<CfNode>,
    /// Entry nodes: the program's first statement plus the first statement
    /// of every function body (any function may be invoked externally).
    pub roots: Vec<CfNode>,
    /// Number of control-flow nodes seen (`nodes.len()`).
    pub node_count: usize,
}

impl ControlFlow {
    /// Number of edges of the given kind.
    pub fn count(&self, kind: CfEdgeKind) -> usize {
        self.edges.iter().filter(|e| e.kind == kind).count()
    }

    /// Nodes reachable from the entry roots by following edges of any kind
    /// (BFS order). Statements after a `return`/`throw`/`break`/`continue`
    /// get no fallthrough edge, so they are not reachable this way.
    pub fn reachable_from_entry(&self) -> impl Iterator<Item = CfNode> {
        let mut adjacency: std::collections::HashMap<CfNode, Vec<CfNode>> =
            std::collections::HashMap::new();
        for e in &self.edges {
            adjacency.entry(e.from).or_default().push(e.to);
        }
        let mut seen: std::collections::HashSet<CfNode> = std::collections::HashSet::new();
        let mut order: Vec<CfNode> = Vec::new();
        let mut queue: std::collections::VecDeque<CfNode> = std::collections::VecDeque::new();
        for &root in &self.roots {
            if seen.insert(root) {
                order.push(root);
                queue.push_back(root);
            }
        }
        while let Some(n) = queue.pop_front() {
            if let Some(next) = adjacency.get(&n) {
                for &m in next {
                    if seen.insert(m) {
                        order.push(m);
                        queue.push_back(m);
                    }
                }
            }
        }
        order.into_iter()
    }

    /// Registered nodes that are *not* reachable from any entry root, in
    /// construction order.
    pub fn unreachable_nodes(&self) -> Vec<CfNode> {
        let reachable: std::collections::HashSet<CfNode> = self.reachable_from_entry().collect();
        self.nodes.iter().copied().filter(|n| !reachable.contains(n)).collect()
    }
}

/// Builds control-flow edges for a program.
pub fn build_cfg(program: &Program) -> ControlFlow {
    let mut cf = ControlFlow::default();
    if let Some(first) = program.body.first() {
        cf.roots.push(node_of(first));
    }
    seq_edges(&program.body, &mut cf);
    for s in &program.body {
        stmt_edges(s, &mut cf);
    }
    cf.node_count = cf.nodes.len();
    cf
}

fn node_of(s: &Stmt) -> CfNode {
    CfNode { kind: stmt_kind(s), span: s.span() }
}

/// True for statements that never fall through to their successor.
fn is_terminator(s: &Stmt) -> bool {
    matches!(
        s,
        Stmt::Return { .. } | Stmt::Throw { .. } | Stmt::Break { .. } | Stmt::Continue { .. }
    )
}

/// Registers a function body: its first statement becomes an entry root
/// (the function may be called from anywhere), then normal edges follow.
fn fn_body_edges(body: &[Stmt], cf: &mut ControlFlow) {
    if let Some(first) = body.first() {
        cf.roots.push(node_of(first));
    }
    seq_edges(body, cf);
    for st in body {
        stmt_edges(st, cf);
    }
}

fn seq_edges(stmts: &[Stmt], cf: &mut ControlFlow) {
    cf.nodes.extend(stmts.iter().map(node_of));
    for pair in stmts.windows(2) {
        if is_terminator(&pair[0]) {
            continue; // no fallthrough edge out of return/throw/break/continue
        }
        cf.edges.push(CfEdge {
            from: node_of(&pair[0]),
            to: node_of(&pair[1]),
            kind: CfEdgeKind::Seq,
        });
    }
}

/// Registers a statement that is a branch/loop target but not part of a
/// statement list (an `if` arm, a loop body). Each such statement has
/// exactly one parent context, so no node is registered twice.
fn register_body(s: &Stmt, cf: &mut ControlFlow) {
    cf.nodes.push(node_of(s));
}

fn stmt_edges(s: &Stmt, cf: &mut ControlFlow) {
    let me = node_of(s);
    match s {
        Stmt::Expr { expr, .. } => expr_edges(expr, me, cf),
        Stmt::Block { body, .. } => {
            if let Some(first) = body.first() {
                cf.edges.push(CfEdge { from: me, to: node_of(first), kind: CfEdgeKind::Seq });
            }
            seq_edges(body, cf);
            for st in body {
                stmt_edges(st, cf);
            }
        }
        Stmt::VarDecl { decls, .. } => {
            for d in decls {
                if let Some(init) = &d.init {
                    expr_edges(init, me, cf);
                }
            }
        }
        Stmt::FunctionDecl(f) => fn_body_edges(&f.body, cf),
        Stmt::ClassDecl(c) => class_edges(c, cf),
        Stmt::If { test, consequent, alternate, .. } => {
            expr_edges(test, me, cf);
            register_body(consequent, cf);
            cf.edges.push(CfEdge {
                from: me,
                to: node_of(consequent),
                kind: CfEdgeKind::BranchTrue,
            });
            stmt_edges(consequent, cf);
            if let Some(alt) = alternate {
                register_body(alt, cf);
                cf.edges.push(CfEdge { from: me, to: node_of(alt), kind: CfEdgeKind::BranchFalse });
                stmt_edges(alt, cf);
            }
        }
        Stmt::For { init, test, update, body, .. } => {
            if let Some(ForInit::Expr(e)) = init {
                expr_edges(e, me, cf);
            }
            if let Some(t) = test {
                expr_edges(t, me, cf);
            }
            if let Some(u) = update {
                expr_edges(u, me, cf);
            }
            loop_edges(me, body, cf);
        }
        Stmt::ForIn { body, object, .. } => {
            expr_edges(object, me, cf);
            loop_edges(me, body, cf);
        }
        Stmt::ForOf { body, iterable, .. } => {
            expr_edges(iterable, me, cf);
            loop_edges(me, body, cf);
        }
        Stmt::While { test, body, .. } => {
            expr_edges(test, me, cf);
            loop_edges(me, body, cf);
        }
        Stmt::DoWhile { body, test, .. } => {
            expr_edges(test, me, cf);
            loop_edges(me, body, cf);
        }
        Stmt::Switch { discriminant, cases, .. } => {
            expr_edges(discriminant, me, cf);
            for c in cases {
                let case_node = CfNode { kind: NodeKind::SwitchCase, span: c.span };
                cf.nodes.push(case_node);
                cf.edges.push(CfEdge { from: me, to: case_node, kind: CfEdgeKind::CaseMatch });
                if let Some(first) = c.body.first() {
                    cf.edges.push(CfEdge {
                        from: case_node,
                        to: node_of(first),
                        kind: CfEdgeKind::Seq,
                    });
                }
                seq_edges(&c.body, cf);
                for st in &c.body {
                    stmt_edges(st, cf);
                }
            }
        }
        Stmt::Try { block, handler, finalizer, .. } => {
            if let Some(first) = block.first() {
                cf.edges.push(CfEdge { from: me, to: node_of(first), kind: CfEdgeKind::Seq });
            }
            seq_edges(block, cf);
            for st in block {
                stmt_edges(st, cf);
            }
            if let Some(h) = handler {
                let catch_node = CfNode { kind: NodeKind::CatchClause, span: h.span };
                cf.nodes.push(catch_node);
                cf.edges.push(CfEdge { from: me, to: catch_node, kind: CfEdgeKind::Exception });
                if let Some(first) = h.body.first() {
                    cf.edges.push(CfEdge {
                        from: catch_node,
                        to: node_of(first),
                        kind: CfEdgeKind::Seq,
                    });
                }
                seq_edges(&h.body, cf);
                for st in &h.body {
                    stmt_edges(st, cf);
                }
            }
            if let Some(fin) = finalizer {
                if let Some(first) = fin.first() {
                    cf.edges.push(CfEdge {
                        from: me,
                        to: node_of(first),
                        kind: CfEdgeKind::Finally,
                    });
                }
                seq_edges(fin, cf);
                for st in fin {
                    stmt_edges(st, cf);
                }
            }
        }
        Stmt::Throw { arg, .. } => expr_edges(arg, me, cf),
        Stmt::Return { arg, .. } => {
            if let Some(a) = arg {
                expr_edges(a, me, cf);
            }
        }
        Stmt::Labeled { body, .. } => {
            register_body(body, cf);
            cf.edges.push(CfEdge { from: me, to: node_of(body), kind: CfEdgeKind::Seq });
            stmt_edges(body, cf);
        }
        Stmt::With { body, object, .. } => {
            expr_edges(object, me, cf);
            register_body(body, cf);
            cf.edges.push(CfEdge { from: me, to: node_of(body), kind: CfEdgeKind::Seq });
            stmt_edges(body, cf);
        }
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } | Stmt::Debugger { .. } => {
        }
        // Module declarations: imports and re-exports carry no local flow;
        // an exported declaration or default expression flows like the
        // underlying statement/expression.
        Stmt::Import { .. } | Stmt::ExportAll { .. } => {}
        Stmt::ExportNamed { decl, .. } => {
            if let Some(decl) = decl {
                register_body(decl, cf);
                cf.edges.push(CfEdge { from: me, to: node_of(decl), kind: CfEdgeKind::Seq });
                stmt_edges(decl, cf);
            }
        }
        Stmt::ExportDefault { expr, .. } => expr_edges(expr, me, cf),
    }
}

fn loop_edges(me: CfNode, body: &Stmt, cf: &mut ControlFlow) {
    register_body(body, cf);
    cf.edges.push(CfEdge { from: me, to: node_of(body), kind: CfEdgeKind::BranchTrue });
    cf.edges.push(CfEdge { from: node_of(body), to: me, kind: CfEdgeKind::LoopBack });
    stmt_edges(body, cf);
}

fn class_edges(c: &Class, cf: &mut ControlFlow) {
    for m in &c.body {
        if let ClassMemberValue::Method(f) = &m.value {
            fn_body_edges(&f.body, cf);
        }
    }
}

/// Walks an expression looking for control-flow-relevant sub-expressions:
/// `ConditionalExpression` (ternary branches) and nested function bodies.
fn expr_edges(e: &Expr, enclosing: CfNode, cf: &mut ControlFlow) {
    match e {
        Expr::Conditional { test, consequent, alternate, .. } => {
            let node = CfNode { kind: NodeKind::ConditionalExpression, span: e.span() };
            cf.nodes.push(node);
            cf.edges.push(CfEdge { from: enclosing, to: node, kind: CfEdgeKind::Seq });
            expr_edges(test, node, cf);
            cf.edges.push(CfEdge {
                from: node,
                to: CfNode { kind: NodeKind::ConditionalExpression, span: consequent.span() },
                kind: CfEdgeKind::BranchTrue,
            });
            cf.edges.push(CfEdge {
                from: node,
                to: CfNode { kind: NodeKind::ConditionalExpression, span: alternate.span() },
                kind: CfEdgeKind::BranchFalse,
            });
            expr_edges(consequent, node, cf);
            expr_edges(alternate, node, cf);
        }
        Expr::Function(f) => fn_body_edges(&f.body, cf),
        Expr::Arrow { body, .. } => match body {
            ArrowBody::Expr(inner) => expr_edges(inner, enclosing, cf),
            ArrowBody::Block(stmts) => fn_body_edges(stmts, cf),
        },
        Expr::Class(c) => class_edges(c, cf),
        Expr::Array { elements, .. } => {
            for el in elements.iter().flatten() {
                expr_edges(el, enclosing, cf);
            }
        }
        Expr::Object { props, .. } => {
            for p in props {
                expr_edges(&p.value, enclosing, cf);
            }
        }
        Expr::Unary { arg, .. }
        | Expr::Update { arg, .. }
        | Expr::Spread { arg, .. }
        | Expr::Await { arg, .. } => expr_edges(arg, enclosing, cf),
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            expr_edges(left, enclosing, cf);
            expr_edges(right, enclosing, cf);
        }
        Expr::Assign { value, .. } => expr_edges(value, enclosing, cf),
        Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
            expr_edges(callee, enclosing, cf);
            for a in args {
                expr_edges(a, enclosing, cf);
            }
        }
        Expr::Member { object, property, .. } => {
            expr_edges(object, enclosing, cf);
            if let MemberProp::Computed(p) = property {
                expr_edges(p, enclosing, cf);
            }
        }
        Expr::Sequence { exprs, .. } => {
            for ex in exprs {
                expr_edges(ex, enclosing, cf);
            }
        }
        Expr::Template { exprs, .. } => {
            for ex in exprs {
                expr_edges(ex, enclosing, cf);
            }
        }
        Expr::TaggedTemplate { tag, exprs, .. } => {
            expr_edges(tag, enclosing, cf);
            for ex in exprs {
                expr_edges(ex, enclosing, cf);
            }
        }
        Expr::Yield { arg: Some(a), .. } => expr_edges(a, enclosing, cf),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    fn cfg(src: &str) -> ControlFlow {
        build_cfg(&parse(src).unwrap())
    }

    #[test]
    fn sequence_edges_between_siblings() {
        let cf = cfg("a(); b(); c();");
        assert_eq!(cf.count(CfEdgeKind::Seq), 2);
    }

    #[test]
    fn if_has_branch_edges() {
        let cf = cfg("if (x) a(); else b();");
        assert_eq!(cf.count(CfEdgeKind::BranchTrue), 1);
        assert_eq!(cf.count(CfEdgeKind::BranchFalse), 1);
    }

    #[test]
    fn if_without_else_has_only_true_branch() {
        let cf = cfg("if (x) a();");
        assert_eq!(cf.count(CfEdgeKind::BranchTrue), 1);
        assert_eq!(cf.count(CfEdgeKind::BranchFalse), 0);
    }

    #[test]
    fn loops_have_back_edges() {
        for src in [
            "while (x) f();",
            "do f(); while (x);",
            "for (;;) f();",
            "for (k in o) f();",
            "for (k of o) f();",
        ] {
            let cf = cfg(src);
            assert_eq!(cf.count(CfEdgeKind::LoopBack), 1, "no back edge in {:?}", src);
        }
    }

    #[test]
    fn switch_cases_get_match_edges() {
        let cf = cfg("switch (x) { case 1: a(); case 2: b(); default: c(); }");
        assert_eq!(cf.count(CfEdgeKind::CaseMatch), 3);
    }

    #[test]
    fn try_catch_has_exception_edge() {
        let cf = cfg("try { f(); } catch (e) { g(); } finally { h(); }");
        assert_eq!(cf.count(CfEdgeKind::Exception), 1);
        assert_eq!(cf.count(CfEdgeKind::Finally), 1);
    }

    #[test]
    fn ternary_contributes_branches() {
        let cf = cfg("x = a ? b : c;");
        assert_eq!(cf.count(CfEdgeKind::BranchTrue), 1);
        assert_eq!(cf.count(CfEdgeKind::BranchFalse), 1);
    }

    #[test]
    fn function_bodies_are_traversed() {
        let cf = cfg("function f() { if (x) a(); }");
        assert_eq!(cf.count(CfEdgeKind::BranchTrue), 1);
    }

    #[test]
    fn straight_line_code_is_fully_reachable() {
        let cf = cfg("a(); b(); c();");
        assert_eq!(cf.reachable_from_entry().count(), 3);
        assert!(cf.unreachable_nodes().is_empty());
    }

    #[test]
    fn code_after_return_is_unreachable() {
        let cf = cfg("function f() { return 1; dead(); }");
        let dead: Vec<_> = cf.unreachable_nodes();
        assert_eq!(dead.len(), 1);
        assert_eq!(dead[0].kind, NodeKind::ExpressionStatement);
    }

    #[test]
    fn code_after_throw_and_break_is_unreachable() {
        let cf = cfg("while (x) { break; dead1(); } function g() { throw e; dead2(); }");
        assert_eq!(cf.unreachable_nodes().len(), 2);
    }

    #[test]
    fn branch_targets_are_reachable() {
        // Single-statement if arms and loop bodies are not inside a
        // statement list; they must still be registered and reachable.
        let cf = cfg("if (x) a(); else b(); while (y) c();");
        assert!(cf.unreachable_nodes().is_empty());
        assert!(cf.reachable_from_entry().count() >= 5);
    }

    #[test]
    fn function_bodies_are_entry_roots() {
        // `f` is never called, but its body must not be flagged dead.
        let cf = cfg("var z = 1; function f() { inner(); }");
        assert!(cf.unreachable_nodes().is_empty());
        assert_eq!(cf.roots.len(), 2);
    }

    #[test]
    fn node_count_matches_registered_nodes() {
        let cf = cfg("if (a) { b(); } else { c(); } try { d(); } catch (e) { g(); }");
        assert_eq!(cf.node_count, cf.nodes.len());
        assert!(cf.node_count > 0);
    }

    #[test]
    fn flattened_switch_shape_has_many_edges() {
        // Control-flow-flattened code: while(true) + switch = lots of edges.
        let cf = cfg(
            "while (true) { switch (s) { case 0: a(); s = 2; break; case 1: b(); s = 3; break; case 2: c(); s = 1; break; case 3: return; } }",
        );
        assert!(cf.count(CfEdgeKind::CaseMatch) >= 4);
        assert_eq!(cf.count(CfEdgeKind::LoopBack), 1);
    }
}

//! Constant folding + single-assignment constant propagation.
//!
//! Two sub-steps per run, both counted as one pass:
//!
//! 1. **Propagation**: scope analysis (`flow::scope`) finds bindings that
//!    are declared with a literal initializer and written exactly once —
//!    that one write being the declaration itself — and substitutes the
//!    literal at every read site. Spans of the replaced identifiers are
//!    preserved on the substituted literals.
//! 2. **Folding**: a post-order rewrite evaluates literal-only unary,
//!    binary, logical, conditional, and sequence expressions.
//!
//! Propagation is intentionally flow-insensitive (it ignores hoisted reads
//! that could execute before the initializer); that is the standard
//! deobfuscation trade-off and matches what obfuscator-generated
//! single-assignment temporaries look like in practice. Programs containing
//! `with` are not propagated at all, since `with` makes static name
//! resolution unsound.

use crate::eval::{bool_expr, num_expr, num_value, str_expr, to_int32, to_uint32, truthiness};
use crate::{Pass, PassCx};
use jsdetect_ast::visit_mut::{walk_expr_mut, MutVisitor};
use jsdetect_ast::*;
use jsdetect_flow::{analyze_scopes, BindingKind, RefKind};
use std::collections::HashMap;

/// See the module docs.
pub(crate) struct ConstantsPass;

impl Pass for ConstantsPass {
    fn name(&self) -> &'static str {
        "constants"
    }

    fn counter(&self) -> &'static str {
        "normalize/constants/rewrites"
    }

    fn run(&self, program: &mut Program, cx: &PassCx) -> u64 {
        let propagated = propagate(program, cx);
        let mut folder = Fold { cx, count: 0 };
        folder.visit_program_mut(program);
        propagated + folder.count
    }
}

/// Longest string literal worth duplicating into every read site.
const MAX_PROPAGATED_STR: usize = 128;

fn propagatable_lit(lit: &Lit) -> bool {
    match &lit.value {
        LitValue::Str(s) => s.len() <= MAX_PROPAGATED_STR,
        LitValue::Num(_) | LitValue::Bool(_) | LitValue::Null => true,
        // BigInt values are immutable primitives; propagating the raw text
        // is as safe as a number.
        LitValue::BigInt(_) => true,
        // Each regex literal evaluation is a fresh object with identity and
        // `lastIndex` state; duplicating one is observable.
        LitValue::Regex { .. } => false,
    }
}

fn propagate(program: &mut Program, cx: &PassCx) -> u64 {
    if contains_with(program) {
        return 0;
    }
    // Literal initializers of simple identifier declarators, keyed by the
    // declaring identifier's span.
    let mut decl_lits: HashMap<Span, Lit> = HashMap::new();
    let mut collect = CollectDecls { decl_lits: &mut decl_lits };
    collect.visit_program_mut(program);
    if decl_lits.is_empty() {
        return 0;
    }

    let tree = analyze_scopes(program);
    let mut subst: HashMap<Span, Lit> = HashMap::new();
    for (id, binding) in tree.bindings().iter().enumerate() {
        if !matches!(binding.kind, BindingKind::Var | BindingKind::Let | BindingKind::Const) {
            continue;
        }
        let Some(lit) = decl_lits.get(&binding.decl_span) else { continue };
        // A declarator with an initializer records a write at the declaring
        // span, so "written exactly once" means the init is the only write.
        let (_, writes) = tree.rw_counts(id);
        if writes != 1 {
            continue;
        }
        for r in tree.refs_of(id) {
            if r.kind == RefKind::Read && r.span != Span::DUMMY {
                subst.insert(r.span, *lit);
            }
        }
    }
    if subst.is_empty() {
        return 0;
    }
    let mut replace = Substitute { cx, subst: &subst, count: 0 };
    replace.visit_program_mut(program);
    replace.count
}

fn contains_with(program: &mut Program) -> bool {
    struct Finder {
        found: bool,
    }
    impl MutVisitor for Finder {
        fn visit_stmt_mut(&mut self, s: &mut Stmt) {
            if matches!(s, Stmt::With { .. }) {
                self.found = true;
            }
            if !self.found {
                jsdetect_ast::visit_mut::walk_stmt_mut(self, s);
            }
        }
    }
    let mut f = Finder { found: false };
    f.visit_program_mut(program);
    f.found
}

struct CollectDecls<'a> {
    decl_lits: &'a mut HashMap<Span, Lit>,
}

impl MutVisitor for CollectDecls<'_> {
    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        if let Stmt::VarDecl { decls, .. } = s {
            for d in decls.iter() {
                if let (Pat::Ident(id), Some(Expr::Lit(lit))) = (&d.id, &d.init) {
                    if id.span != Span::DUMMY && propagatable_lit(lit) {
                        self.decl_lits.insert(id.span, *lit);
                    }
                }
            }
        }
        jsdetect_ast::visit_mut::walk_stmt_mut(self, s);
    }
}

struct Substitute<'a, 'b> {
    cx: &'a PassCx<'b>,
    subst: &'a HashMap<Span, Lit>,
    count: u64,
}

impl MutVisitor for Substitute<'_, '_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        if let Expr::Ident(id) = e {
            if let Some(lit) = self.subst.get(&id.span) {
                if self.cx.spend() {
                    let mut lit = *lit;
                    lit.span = id.span;
                    *e = Expr::Lit(lit);
                    self.count += 1;
                }
            }
            return;
        }
        walk_expr_mut(self, e);
    }
}

struct Fold<'a, 'b> {
    cx: &'a PassCx<'b>,
    count: u64,
}

impl MutVisitor for Fold<'_, '_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        // Post-order: fold children first so chains collapse bottom-up.
        walk_expr_mut(self, e);
        self.cx.tick(1);
        if let Some(folded) = try_fold(e) {
            if self.cx.spend() {
                *e = folded;
                self.count += 1;
            }
        }
    }
}

fn lit_of(e: &Expr) -> Option<&LitValue> {
    match e {
        Expr::Lit(l) => Some(&l.value),
        _ => None,
    }
}

fn try_fold(e: &Expr) -> Option<Expr> {
    match e {
        Expr::Unary { op, arg, span } => fold_unary(*op, arg, *span),
        Expr::Binary { op, left, right, span } => fold_binary(*op, left, right, *span),
        Expr::Logical { op, left, right, .. } => {
            let t = truthiness(left)?;
            Some(match (op, t) {
                (LogicalOp::And, true) | (LogicalOp::Or, false) => (**right).clone(),
                (LogicalOp::And, false) | (LogicalOp::Or, true) => (**left).clone(),
                (LogicalOp::NullishCoalescing, _) => match lit_of(left)? {
                    LitValue::Null => (**right).clone(),
                    _ => (**left).clone(),
                },
            })
        }
        Expr::Conditional { test, consequent, alternate, .. } => {
            Some(if truthiness(test)? { (**consequent).clone() } else { (**alternate).clone() })
        }
        // Drop side-effect-free constants from non-final sequence slots:
        // `(0, 1, x)` → `x`. Skipped when the result is a member access,
        // which would change the `this` binding of a `(0, obj.m)()` call.
        Expr::Sequence { exprs, span } => {
            let last = exprs.last()?;
            if matches!(last, Expr::Member { .. }) {
                return None;
            }
            let kept: Vec<&Expr> =
                exprs[..exprs.len() - 1].iter().filter(|x| truthiness(x).is_none()).collect();
            if kept.len() == exprs.len() - 1 {
                return None;
            }
            if kept.is_empty() {
                Some(last.clone())
            } else {
                let mut new: Vec<Expr> = kept.into_iter().cloned().collect();
                new.push(last.clone());
                Some(Expr::Sequence { exprs: new, span: *span })
            }
        }
        _ => None,
    }
}

fn fold_unary(op: UnaryOp, arg: &Expr, span: Span) -> Option<Expr> {
    match op {
        UnaryOp::Not => truthiness(arg).map(|b| bool_expr(!b, span)),
        UnaryOp::BitNot => num_value(arg).and_then(|n| num_expr(f64::from(!to_int32(n)), span)),
        UnaryOp::TypeOf => {
            let name = match lit_of(arg)? {
                LitValue::Str(_) => "string",
                LitValue::Num(_) => "number",
                LitValue::BigInt(_) => "bigint",
                LitValue::Bool(_) => "boolean",
                LitValue::Null | LitValue::Regex { .. } => "object",
            };
            Some(str_expr(name.to_string(), span))
        }
        // `-x` / `+x` over literals are already canonical spellings; the
        // other unaries (void, delete) are not value-foldable.
        _ => None,
    }
}

fn fold_binary(op: BinaryOp, left: &Expr, right: &Expr, span: Span) -> Option<Expr> {
    use BinaryOp::*;
    // Numeric arithmetic and comparisons (through unary +/- literals).
    if let (Some(l), Some(r)) = (num_value(left), num_value(right)) {
        return match op {
            Add => num_expr(l + r, span),
            Sub => num_expr(l - r, span),
            Mul => num_expr(l * r, span),
            Div => num_expr(l / r, span),
            Mod => num_expr(l % r, span),
            Exp => num_expr(l.powf(r), span),
            Shl => num_expr(f64::from(to_int32(l) << (to_uint32(r) & 31)), span),
            Shr => num_expr(f64::from(to_int32(l) >> (to_uint32(r) & 31)), span),
            UShr => num_expr(f64::from(to_uint32(l) >> (to_uint32(r) & 31)), span),
            BitAnd => num_expr(f64::from(to_int32(l) & to_int32(r)), span),
            BitOr => num_expr(f64::from(to_int32(l) | to_int32(r)), span),
            BitXor => num_expr(f64::from(to_int32(l) ^ to_int32(r)), span),
            Lt => Some(bool_expr(l < r, span)),
            LtEq => Some(bool_expr(l <= r, span)),
            Gt => Some(bool_expr(l > r, span)),
            GtEq => Some(bool_expr(l >= r, span)),
            EqEq | EqEqEq => Some(bool_expr(l == r, span)),
            NotEq | NotEqEq => Some(bool_expr(l != r, span)),
            In | InstanceOf => None,
        };
    }
    // Same-type literal equality; ordering on ASCII strings (UTF-16 code
    // unit order and byte order agree there).
    let (l, r) = (lit_of(left)?, lit_of(right)?);
    let eq = match (l, r) {
        (LitValue::Str(a), LitValue::Str(b)) => {
            if matches!(op, Lt | LtEq | Gt | GtEq) && a.is_ascii() && b.is_ascii() {
                return Some(bool_expr(
                    match op {
                        Lt => a < b,
                        LtEq => a <= b,
                        Gt => a > b,
                        _ => a >= b,
                    },
                    span,
                ));
            }
            a == b
        }
        (LitValue::Bool(a), LitValue::Bool(b)) => a == b,
        (LitValue::Null, LitValue::Null) => true,
        // Mixed primitive types: strict equality is decided by type alone.
        (LitValue::Str(_) | LitValue::Num(_) | LitValue::Bool(_) | LitValue::Null, _)
            if strict_types_differ(l, r) =>
        {
            false
        }
        _ => return None,
    };
    match op {
        EqEqEq => Some(bool_expr(eq, span)),
        NotEqEq => Some(bool_expr(!eq, span)),
        // Loose equality only folds same-type (no coercion table needed).
        EqEq if !strict_types_differ(l, r) => Some(bool_expr(eq, span)),
        NotEq if !strict_types_differ(l, r) => Some(bool_expr(!eq, span)),
        _ => None,
    }
}

fn strict_types_differ(l: &LitValue, r: &LitValue) -> bool {
    std::mem::discriminant(l) != std::mem::discriminant(r)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize_program, NormalizeOptions, PassKind};
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn run(src: &str) -> String {
        let mut p = parse(src).unwrap();
        let opts =
            NormalizeOptions { passes: vec![PassKind::Constants], ..NormalizeOptions::default() };
        normalize_program(&mut p, &opts);
        to_minified(&p)
    }

    #[test]
    fn folds_arithmetic_and_comparisons() {
        assert_eq!(run("x = 1 + 2 * 3;"), "x=7;");
        assert_eq!(run("x = 10 / 4;"), "x=2.5;");
        assert_eq!(run("x = 1 < 2;"), "x=true;");
        assert_eq!(run("x = 'a' === 'b';"), "x=false;");
        assert_eq!(run("x = 5 ^ 3;"), "x=6;");
        assert_eq!(run("x = 1 >>> 0;"), "x=1;");
    }

    #[test]
    fn negative_results_print_as_unary_minus() {
        assert_eq!(run("x = 2 - 5;"), "x=-3;");
        assert!(parse(&run("x = 1 - 4 - 4;")).is_ok());
    }

    #[test]
    fn division_by_zero_is_left_alone() {
        assert_eq!(run("x = 1 / 0;"), "x=1/0;");
        assert_eq!(run("x = 0 / 0;"), "x=0/0;");
    }

    #[test]
    fn folds_bool_compression_spellings() {
        assert_eq!(run("x = !0;"), "x=true;");
        assert_eq!(run("x = !1;"), "x=false;");
        assert_eq!(run("x = !![];"), "x=true;");
    }

    #[test]
    fn folds_logical_and_conditional_shortcuts() {
        assert_eq!(run("x = true && f();"), "x=f();");
        assert_eq!(run("x = false && f();"), "x=false;");
        assert_eq!(run("x = 0 || g();"), "x=g();");
        assert_eq!(run("x = true ? a : b;"), "x=a;");
        assert_eq!(run("x = '' ? a : b;"), "x=b;");
    }

    #[test]
    fn impure_conditions_are_untouched() {
        assert_eq!(run("x = f() && g();"), "x=f()&&g();");
        assert_eq!(run("x = [h()] ? a : b;"), "x=[h()]?a:b;");
    }

    #[test]
    fn propagates_single_assignment_literals() {
        assert_eq!(run("var k = 7; f(k, k + 1);"), "var k=7;f(7,8);");
    }

    #[test]
    fn reassigned_bindings_are_not_propagated() {
        let out = run("var k = 7; k = g(); f(k);");
        assert!(out.contains("f(k)"), "{}", out);
    }

    #[test]
    fn updated_bindings_are_not_propagated() {
        let out = run("var k = 7; k++; f(k);");
        assert!(out.contains("f(k)"), "{}", out);
    }

    #[test]
    fn shadowed_reads_resolve_per_scope() {
        let out = run("var k = 1; function g(k) { return k; } f(k);");
        assert!(out.contains("return k"), "param read must survive: {}", out);
        assert!(out.contains("f(1)"), "outer read must fold: {}", out);
    }

    #[test]
    fn with_statement_disables_propagation() {
        let out = run("var k = 1; with (o) { f(k); }");
        assert!(out.contains("f(k)"), "{}", out);
    }

    #[test]
    fn sequence_drops_pure_prefix_but_keeps_member_shape() {
        assert_eq!(run("x = (0, 1, f());"), "x=f();");
        assert_eq!(run("x = (0, o.m)();"), "x=(0,o.m)();");
    }

    #[test]
    fn typeof_literals_fold() {
        assert_eq!(run("x = typeof 'a';"), "x='string';");
        assert_eq!(run("x = typeof 1;"), "x='number';");
        assert_eq!(run("x = typeof null;"), "x='object';");
    }
}

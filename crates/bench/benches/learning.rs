//! Learning-substrate benchmarks: tree/forest training and prediction,
//! classifier chains vs. binary relevance, naive-Bayes baseline.

use criterion::{criterion_group, criterion_main, Criterion};
use jsdetect_ml::{
    BaseParams, Dataset, ForestParams, GaussianNb, MultiLabel, RandomForest, Strategy,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn synthetic(n: usize, d: usize) -> (Vec<Vec<f32>>, Vec<bool>, Vec<Vec<bool>>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut x = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let row: Vec<f32> = (0..d).map(|_| rng.gen_range(0.0..1.0)).collect();
        let pos = row[0] + row[1] > 1.0;
        let l2 = row[2] > 0.5;
        y.push(pos);
        labels.push(vec![pos, l2, pos && l2]);
        x.push(row);
    }
    (x, y, labels)
}

fn bench_learning(c: &mut Criterion) {
    let (x, y, labels) = synthetic(800, 60);
    let forest_params = ForestParams { n_trees: 16, ..Default::default() };

    let mut group = c.benchmark_group("learning");
    group.bench_function("forest_fit_800x60", |b| {
        b.iter(|| RandomForest::fit(std::hint::black_box(&x), &y, &forest_params))
    });

    let data = Dataset::from_rows(&x).unwrap();
    group.bench_function("forest_fit_columnar_800x60", |b| {
        b.iter(|| RandomForest::fit_dataset(std::hint::black_box(&data), &y, &forest_params))
    });

    let forest = RandomForest::fit(&x, &y, &forest_params);
    group.bench_function("forest_predict", |b| {
        b.iter(|| forest.predict_proba(std::hint::black_box(&x[0])))
    });
    group.bench_function("forest_predict_batch_800", |b| {
        b.iter(|| forest.predict_proba_batch(std::hint::black_box(&data)))
    });

    group.bench_function("bayes_fit_800x60", |b| {
        b.iter(|| GaussianNb::fit(std::hint::black_box(&x), &y))
    });

    let base = BaseParams::Forest(ForestParams { n_trees: 8, ..Default::default() });
    group.bench_function("multilabel_chain_fit", |b| {
        b.iter(|| {
            MultiLabel::fit(std::hint::black_box(&x), &labels, Strategy::ClassifierChain, &base)
        })
    });
    group.bench_function("multilabel_independent_fit", |b| {
        b.iter(|| {
            MultiLabel::fit(std::hint::black_box(&x), &labels, Strategy::BinaryRelevance, &base)
        })
    });

    let chain = MultiLabel::fit(&x, &labels, Strategy::ClassifierChain, &base);
    group.bench_function("multilabel_chain_predict", |b| {
        b.iter(|| chain.predict_proba(std::hint::black_box(&x[0])))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_learning
}
criterion_main!(benches);

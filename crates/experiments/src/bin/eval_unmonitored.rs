//! §II-C / §V-A claim check — the level-1 detector flags samples as
//! transformed even when the technique is *not* among the ten it
//! monitors. The example technique the paper names is **obfuscated field
//! reference** (dot accesses rewritten to bracket notation).

use jsdetect_corpus::regular_corpus;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use jsdetect_transform::presets::obfuscate_field_references;
use serde::Serialize;

#[derive(Serialize)]
struct UnmonitoredResult {
    flagged_pct: f64,
    regular_baseline_flagged_pct: f64,
    mean_obfuscated_confidence_before: f64,
    mean_obfuscated_confidence_after: f64,
    n: usize,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let n = args.scaled(200);
    let base = regular_corpus(n, args.seed.wrapping_add(0xF1E1D));
    let rewritten: Vec<String> = base
        .iter()
        .filter_map(|s| {
            let out = obfuscate_field_references(s).ok()?;
            (out != *s).then_some(out)
        })
        .collect();

    let base_refs: Vec<&str> = base.iter().map(|s| s.as_str()).collect();
    let obf_refs: Vec<&str> = rewritten.iter().map(|s| s.as_str()).collect();
    let p_base = detectors.level1.predict_many(&base_refs);
    let p_obf = detectors.level1.predict_many(&obf_refs);

    let flagged = |preds: &[Option<jsdetect::Level1Prediction>]| {
        let t = preds.iter().flatten().filter(|p| p.is_transformed()).count();
        let n = preds.iter().flatten().count().max(1);
        100.0 * t as f64 / n as f64
    };
    let mean_obf = |preds: &[Option<jsdetect::Level1Prediction>]| {
        let s: f64 = preds.iter().flatten().map(|p| p.obfuscated as f64).sum();
        s / preds.iter().flatten().count().max(1) as f64
    };

    let result = UnmonitoredResult {
        flagged_pct: flagged(&p_obf),
        regular_baseline_flagged_pct: flagged(&p_base),
        mean_obfuscated_confidence_before: mean_obf(&p_base),
        mean_obfuscated_confidence_after: mean_obf(&p_obf),
        n: rewritten.len(),
    };

    println!("Unmonitored technique: obfuscated field reference (§II-C)");
    println!("{:-<64}", "");
    println!("rewritten samples flagged transformed: {:.2}%", result.flagged_pct);
    println!("untouched baseline flagged transformed: {:.2}%", result.regular_baseline_flagged_pct);
    println!(
        "mean obfuscated confidence: {:.3} -> {:.3}",
        result.mean_obfuscated_confidence_before, result.mean_obfuscated_confidence_after
    );
    println!(
        "\npaper's claim: level 1 recognizes transformed samples even for\n\
         techniques it has no level-2 label for."
    );
    or_exit(write_json(&args, "eval_unmonitored", &result));
}

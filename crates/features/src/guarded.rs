//! The hardened analysis front-end: budgets, degradation, typed outcomes.
//!
//! [`analyze_script_guarded`] is the sandboxed sibling of
//! [`crate::analyze_script`]: same stages, but every stage charges a
//! [`Budget`] and every failure is classified into the three-way
//! [`OutcomeKind`] verdict wild-scale batch drivers need — full result,
//! lexer-only fallback, or quarantined reject.

use crate::analysis::ScriptAnalysis;
use jsdetect_ast::metrics::KindCounts;
use jsdetect_ast::{Program, Span};
use jsdetect_flow::{analyze_with, DataFlowOptions};
use jsdetect_guard::{AnalysisError, Budget, Limits, OutcomeKind};
use jsdetect_lexer::{tokenize_lossy, tokenize_with_budget};
use jsdetect_lint::LintRunner;
use jsdetect_obs::names;
use jsdetect_parser::parse_with_comments_budget;

/// One script's result under the hardened pipeline.
#[derive(Debug)]
pub struct GuardedScript {
    /// The analysis bundle: the full thing for `Ok`, the lexer-only
    /// fallback (with [`ScriptAnalysis::degraded`] set) for `Degraded`,
    /// absent for `Rejected`.
    pub analysis: Option<ScriptAnalysis>,
    /// Three-way verdict.
    pub outcome: OutcomeKind,
    /// The failure, absent only for `Ok`.
    pub error: Option<AnalysisError>,
}

impl GuardedScript {
    fn ok(analysis: ScriptAnalysis) -> GuardedScript {
        GuardedScript { analysis: Some(analysis), outcome: OutcomeKind::Ok, error: None }
    }

    fn degraded(analysis: ScriptAnalysis, error: AnalysisError) -> GuardedScript {
        jsdetect_obs::counter_add(error.counter_name(), 1);
        jsdetect_obs::counter_add(names::CTR_GUARD_DEGRADED, 1);
        GuardedScript {
            analysis: Some(analysis),
            outcome: OutcomeKind::Degraded,
            error: Some(error),
        }
    }

    fn rejected(error: AnalysisError) -> GuardedScript {
        jsdetect_obs::counter_add(error.counter_name(), 1);
        jsdetect_obs::counter_add(names::CTR_GUARD_REJECTED, 1);
        GuardedScript { analysis: None, outcome: OutcomeKind::Rejected, error: Some(error) }
    }
}

/// Analyzes one script under `limits`, never panicking on budget-class
/// failures and degrading to a lexer-only feature bundle when only the
/// parse fails.
///
/// # Examples
///
/// ```
/// use jsdetect_features::analyze_script_guarded;
/// use jsdetect_guard::{Limits, OutcomeKind};
///
/// let ok = analyze_script_guarded("var x = 1;", &Limits::wild());
/// assert_eq!(ok.outcome, OutcomeKind::Ok);
///
/// let bomb = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
/// let r = analyze_script_guarded(&bomb, &Limits::wild());
/// assert_eq!(r.outcome, OutcomeKind::Rejected);
/// assert_eq!(r.error.unwrap().kind(), "ast_depth_exceeded");
/// ```
pub fn analyze_script_guarded(src: &str, limits: &Limits) -> GuardedScript {
    let _t = jsdetect_obs::span(names::SPAN_ANALYZE);
    jsdetect_obs::observe(names::HIST_SCRIPT_BYTES, src.len() as u64);
    let budget = Budget::new(limits);
    if let Err(e) = budget.check_input(src.len()) {
        return GuardedScript::rejected(e);
    }

    let (program, comments) = {
        let _s = jsdetect_obs::span(names::SPAN_PARSE);
        match parse_with_comments_budget(src, &budget) {
            Ok(pc) => pc,
            Err(parse_err) => {
                jsdetect_obs::counter_add(names::CTR_PARSE_FAILURES, 1);
                // A budget violation travels through `ParseError` stringly;
                // the typed cause sits in the budget's side channel.
                let e = budget
                    .take_violation()
                    .unwrap_or(AnalysisError::Parse { msg: parse_err.msg, pos: parse_err.pos });
                if e.is_resource() {
                    return GuardedScript::rejected(e);
                }
                return degraded_fallback(src, &budget, e);
            }
        }
    };
    if let Err(e) = budget.check_deadline() {
        return GuardedScript::rejected(e);
    }

    let tokens = {
        let _s = jsdetect_obs::span(names::SPAN_LEX);
        match tokenize_with_budget(src, &budget) {
            Ok((tokens, _)) => tokens,
            Err(_) => {
                if let Some(v) = budget.take_violation() {
                    return GuardedScript::rejected(v);
                }
                // Same tolerance as the legacy path: the AST parsed, so a
                // standalone-lex hiccup only costs the token list.
                jsdetect_obs::counter_add(names::CTR_LEXER_ERRORS, 1);
                Vec::new()
            }
        }
    };

    let (shape, kinds) = {
        let _s = jsdetect_obs::span(names::SPAN_METRICS);
        (jsdetect_ast::metrics::tree_shape(&program), KindCounts::of(&program))
    };
    // Charge the realized tree size before running the recursive consumers
    // (flow, lint) over a potential node bomb.
    if let Err(e) = budget.charge_nodes(shape.node_count as u64) {
        return GuardedScript::rejected(e);
    }
    if let Err(e) = budget.check_deadline() {
        return GuardedScript::rejected(e);
    }

    let graph = {
        let _s = jsdetect_obs::span(names::SPAN_FLOW);
        analyze_with(&program, &DataFlowOptions::default())
    };
    if !graph.dataflow.complete {
        jsdetect_obs::counter_add(names::CTR_FLOW_TRUNCATIONS, 1);
        jsdetect_obs::counter_add(
            names::CTR_FLOW_TRUNCATED_BINDINGS,
            graph.dataflow.truncated_bindings.len() as u64,
        );
    }
    if let Err(e) = budget.check_cfg_edges(graph.control_flow.edges.len() as u64) {
        return GuardedScript::rejected(e);
    }
    if let Err(e) = budget.check_deadline() {
        return GuardedScript::rejected(e);
    }

    let lint = {
        let _s = jsdetect_obs::span(names::SPAN_LINT);
        let (diagnostics, lint) = LintRunner::default().run_with_summary(src, &program, &graph);
        jsdetect_obs::counter_add(names::CTR_LINT_FIRES, diagnostics.len() as u64);
        lint
    };

    let normalize = crate::deltas::normalize_deltas(src, &program, shape.node_count, &lint);

    GuardedScript::ok(ScriptAnalysis {
        src: src.to_string(),
        program,
        tokens,
        comments,
        graph,
        shape,
        kinds,
        lint,
        normalize,
        degraded: false,
    })
}

/// Lexer-only analysis under `limits`, skipping parse/flow/lint entirely.
///
/// This is the circuit-breaker's degraded service mode: when a resident
/// daemon is overloaded it trades fidelity for latency by running only the
/// lexical front-end. The result is the same bundle shape as a parse-failure
/// fallback (`degraded: true`, outcome `Degraded`) with the typed cause
/// [`AnalysisError::ServiceDegraded`], so caches and quarantine accounting
/// can tell a deliberate skip from a broken script.
pub fn analyze_script_lexer_only(src: &str, limits: &Limits) -> GuardedScript {
    let _t = jsdetect_obs::span(names::SPAN_ANALYZE);
    jsdetect_obs::observe(names::HIST_SCRIPT_BYTES, src.len() as u64);
    let budget = Budget::new(limits);
    if let Err(e) = budget.check_input(src.len()) {
        return GuardedScript::rejected(e);
    }
    degraded_fallback(src, &budget, AnalysisError::ServiceDegraded)
}

/// Builds the lexer-only fallback bundle after a recoverable parse failure
/// (paper-faithful: the paper drops unparseable files; we additionally keep
/// their lexical signal, flagged by [`ScriptAnalysis::degraded`]).
fn degraded_fallback(src: &str, budget: &Budget, cause: AnalysisError) -> GuardedScript {
    let _s = jsdetect_obs::span(names::SPAN_DEGRADED_FALLBACK);
    let (tokens, comments, _lex_err) = tokenize_lossy(src, Some(budget));
    // The lossy scan itself may blow a budget axis (token flood inside a
    // syntactically broken file) — that escalates to a reject.
    if let Some(v) = budget.take_violation() {
        if v.is_resource() {
            return GuardedScript::rejected(v);
        }
    }
    let program = Program { body: Vec::new(), span: Span::new(0, src.len() as u32) };
    let graph = analyze_with(&program, &DataFlowOptions::default());
    let (shape, kinds) = (jsdetect_ast::metrics::tree_shape(&program), KindCounts::of(&program));
    let lint = LintRunner::default().run_with_summary(src, &program, &graph).1;
    jsdetect_obs::counter_add(names::CTR_DEGRADED_FALLBACKS, 1);
    GuardedScript::degraded(
        ScriptAnalysis {
            src: src.to_string(),
            program,
            tokens,
            comments,
            graph,
            shape,
            kinds,
            lint,
            normalize: crate::deltas::neutral_deltas(),
            degraded: true,
        },
        cause,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_script_is_ok_and_matches_legacy() {
        let g = analyze_script_guarded("var x = 1; if (x) { f(x); }", &Limits::wild());
        assert_eq!(g.outcome, OutcomeKind::Ok);
        assert!(g.error.is_none());
        let a = g.analysis.unwrap();
        assert!(!a.degraded);
        let legacy = crate::analyze_script("var x = 1; if (x) { f(x); }").unwrap();
        assert_eq!(a.shape.node_count, legacy.shape.node_count);
        assert_eq!(a.tokens.len(), legacy.tokens.len());
    }

    #[test]
    fn syntax_error_degrades_with_lexical_signal() {
        let g = analyze_script_guarded("var x = ;;;=", &Limits::wild());
        assert_eq!(g.outcome, OutcomeKind::Degraded);
        let a = g.analysis.unwrap();
        assert!(a.degraded);
        assert!(!a.tokens.is_empty(), "fallback should keep the token prefix");
        assert_eq!(a.program.body.len(), 0);
        assert_eq!(g.error.unwrap().kind(), "parse_error");
    }

    #[test]
    fn input_cap_rejects_before_any_work() {
        let limits = Limits { max_input_bytes: 8, ..Limits::wild() };
        let g = analyze_script_guarded("var x = 1;", &limits);
        assert_eq!(g.outcome, OutcomeKind::Rejected);
        assert!(g.analysis.is_none());
        assert_eq!(g.error.unwrap().kind(), "input_too_large");
    }

    #[test]
    fn depth_bomb_rejects_with_typed_cause() {
        let bomb = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
        let g = analyze_script_guarded(&bomb, &Limits::wild());
        assert_eq!(g.outcome, OutcomeKind::Rejected);
        assert_eq!(g.error.unwrap().kind(), "ast_depth_exceeded");
    }

    #[test]
    fn token_flood_rejects_even_when_unparseable() {
        // Fails the parse *and* floods the token budget: must reject, not
        // degrade.
        let limits = Limits { max_tokens: 100, ..Limits::wild() };
        let flood = format!("var x = ;;;= {}", "a ".repeat(1_000));
        let g = analyze_script_guarded(&flood, &limits);
        assert_eq!(g.outcome, OutcomeKind::Rejected);
        assert_eq!(g.error.unwrap().kind(), "token_budget_exceeded");
    }

    #[test]
    fn node_budget_rejects_wide_programs() {
        let limits = Limits { max_ast_nodes: 50, ..Limits::wild() };
        let wide = "var a=0;".to_string() + &"a=a+1;".repeat(100);
        let g = analyze_script_guarded(&wide, &limits);
        assert_eq!(g.outcome, OutcomeKind::Rejected);
        assert_eq!(g.error.unwrap().kind(), "ast_node_budget_exceeded");
    }

    #[test]
    fn cfg_edge_budget_rejects_branchy_programs() {
        let limits = Limits { max_cfg_edges: 3, ..Limits::wild() };
        let branchy = "if (a) { f(); } else { g(); } while (b) { h(); }";
        let g = analyze_script_guarded(branchy, &limits);
        assert_eq!(g.outcome, OutcomeKind::Rejected);
        assert_eq!(g.error.unwrap().kind(), "cfg_edge_budget_exceeded");
    }

    #[test]
    fn lexer_only_mode_keeps_lexical_signal_with_typed_cause() {
        let g = analyze_script_lexer_only("var x = 1; f(x);", &Limits::wild());
        assert_eq!(g.outcome, OutcomeKind::Degraded);
        let a = g.analysis.unwrap();
        assert!(a.degraded);
        assert!(!a.tokens.is_empty());
        assert_eq!(a.program.body.len(), 0, "parse must be skipped");
        assert_eq!(g.error.unwrap().kind(), "service_degraded");

        // The input cap still applies before any work.
        let limits = Limits { max_input_bytes: 4, ..Limits::wild() };
        let g = analyze_script_lexer_only("var x = 1;", &limits);
        assert_eq!(g.outcome, OutcomeKind::Rejected);
    }

    #[test]
    fn trusted_preset_matches_legacy_pipeline() {
        for src in ["var x = 1;", "", "function f(a) { return a ? a + 1 : 0; }"] {
            let g = analyze_script_guarded(src, &Limits::trusted());
            assert_eq!(g.outcome, OutcomeKind::Ok);
            let a = g.analysis.unwrap();
            let legacy = crate::analyze_script(src).unwrap();
            assert_eq!(a.shape.node_count, legacy.shape.node_count);
            assert_eq!(a.kinds.total(), legacy.kinds.total());
            assert_eq!(a.tokens.len(), legacy.tokens.len());
        }
    }
}

//! Prometheus text-exposition exporter (version 0.0.4 format).
//!
//! Renders a [`Snapshot`] as the plain-text scrape payload a
//! `/metrics` endpoint serves: one `# HELP` + `# TYPE` header per metric
//! family followed by its samples, families grouped, names sanitized into
//! the Prometheus grammar (`[a-zA-Z_:][a-zA-Z0-9_:]*`) under a
//! `jsdetect_` prefix. Mapping:
//!
//! - counters → `jsdetect_<name>_total` (type `counter`)
//! - gauges → `jsdetect_<name>` (type `gauge`)
//! - value histograms → `jsdetect_<name>` (type `summary`) with
//!   interpolated `quantile="0.5|0.9|0.99"` samples plus `_sum`/`_count`
//! - span latencies → one `jsdetect_span_duration_ns` summary family with
//!   a `span="<path>"` label per path, same quantile set
//!
//! Slash-joined registry names (`cache/hit`, `normalize/array-inline/...`)
//! sanitize to underscores; the original path survives in the `span`
//! label where identity matters.

use crate::registry::Snapshot;
use std::fmt::Write;

/// Sanitizes a registry metric name into a Prometheus metric-name suffix:
/// ASCII alphanumerics pass through (uppercase lowered), everything else —
/// `/`, `-`, `.`, spaces — becomes `_`.
fn sanitize(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for c in name.chars() {
        match c {
            'a'..='z' | '0'..='9' | '_' => out.push(c),
            'A'..='Z' => out.push(c.to_ascii_lowercase()),
            _ => out.push('_'),
        }
    }
    if out.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

/// Escapes a label value (backslash, double quote, newline — the three
/// characters the exposition format requires escaping).
fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// A float sample value. Prometheus accepts integer-looking floats;
/// non-finite values render as the spec's `NaN`/`+Inf`/`-Inf` tokens.
fn sample(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        (if v > 0.0 { "+Inf" } else { "-Inf" }).to_string()
    } else {
        format!("{}", v)
    }
}

const QUANTILES: [(&str, f64); 3] = [("0.5", 0.5), ("0.9", 0.9), ("0.99", 0.99)];

/// Renders the snapshot as Prometheus text exposition, ready to serve
/// from a `/metrics` endpoint or write to a textfile-collector drop
/// directory. Deterministic given deterministic recorded data.
pub fn render_prometheus(snap: &Snapshot) -> String {
    let mut out = String::new();

    for (name, v) in &snap.counters {
        let m = format!("jsdetect_{}_total", sanitize(name));
        let _ = writeln!(out, "# HELP {} jsdetect counter {}", m, name);
        let _ = writeln!(out, "# TYPE {} counter", m);
        let _ = writeln!(out, "{} {}", m, v);
    }

    for (name, v) in &snap.gauges {
        let m = format!("jsdetect_{}", sanitize(name));
        let _ = writeln!(out, "# HELP {} jsdetect gauge {}", m, name);
        let _ = writeln!(out, "# TYPE {} gauge", m);
        let _ = writeln!(out, "{} {}", m, sample(*v));
    }

    for (name, h) in &snap.hists {
        let m = format!("jsdetect_{}", sanitize(name));
        let _ = writeln!(out, "# HELP {} jsdetect histogram {}", m, name);
        let _ = writeln!(out, "# TYPE {} summary", m);
        for (label, q) in QUANTILES {
            let _ =
                writeln!(out, "{}{{quantile=\"{}\"}} {}", m, label, sample(h.quantile_interp(q)));
        }
        let _ = writeln!(out, "{}_sum {}", m, h.sum());
        let _ = writeln!(out, "{}_count {}", m, h.count());
    }

    if !snap.spans.is_empty() {
        let m = "jsdetect_span_duration_ns";
        let _ = writeln!(out, "# HELP {} span latency by slash-joined path, nanoseconds", m);
        let _ = writeln!(out, "# TYPE {} summary", m);
        for s in &snap.spans {
            let path = escape_label(&s.path);
            for (label, q) in QUANTILES {
                let _ = writeln!(
                    out,
                    "{}{{span=\"{}\",quantile=\"{}\"}} {}",
                    m,
                    path,
                    label,
                    sample(s.latency.quantile_interp(q))
                );
            }
            let _ = writeln!(out, "{}_sum{{span=\"{}\"}} {}", m, path, s.total_ns);
            let _ = writeln!(out, "{}_count{{span=\"{}\"}} {}", m, path, s.count);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::registry::SpanStat;

    fn metric_name_ok(name: &str) -> bool {
        let mut bytes = name.bytes();
        matches!(bytes.next(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'_' | b':'))
            && bytes.all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
    }

    /// A hand-rolled line validator for the exposition grammar: every line
    /// is a comment (`# HELP`/`# TYPE`) or `name[{labels}] value`.
    fn validate(text: &str) {
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# ") {
                assert!(
                    rest.starts_with("HELP ") || rest.starts_with("TYPE "),
                    "bad comment line: {line:?}"
                );
                continue;
            }
            let (name_part, value) = line.rsplit_once(' ').expect("sample line has a value");
            let name = name_part.split('{').next().unwrap();
            assert!(metric_name_ok(name), "bad metric name in {line:?}");
            if let Some(rest) = name_part.strip_prefix(name) {
                if !rest.is_empty() {
                    assert!(rest.starts_with('{') && rest.ends_with('}'), "bad labels in {line:?}");
                }
            }
            assert!(
                value.parse::<f64>().is_ok() || ["NaN", "+Inf", "-Inf"].contains(&value),
                "bad sample value in {line:?}"
            );
        }
    }

    fn sample_snapshot() -> Snapshot {
        let mut h = Histogram::new();
        h.record(512);
        h.record(100_000);
        let mut lat = Histogram::new();
        for v in [1_000u64, 2_000, 4_000] {
            lat.record(v);
        }
        Snapshot {
            spans: vec![SpanStat {
                path: "analyze/parse".to_string(),
                count: lat.count(),
                total_ns: lat.sum(),
                min_ns: lat.min(),
                max_ns: lat.max(),
                latency: lat,
            }],
            events: Vec::new(),
            counters: vec![("cache/hit".to_string(), 3), ("parse_failures".to_string(), 1)],
            gauges: vec![("analyze_threads".to_string(), 2.0)],
            hists: vec![("script_bytes".to_string(), h)],
            counter_events: Vec::new(),
            dropped_events: 0,
        }
    }

    #[test]
    fn exposition_passes_format_validation() {
        validate(&render_prometheus(&sample_snapshot()));
    }

    #[test]
    fn families_have_help_type_and_expected_shapes() {
        let text = render_prometheus(&sample_snapshot());
        assert!(text.contains("# TYPE jsdetect_cache_hit_total counter"));
        assert!(text.contains("jsdetect_cache_hit_total 3"));
        assert!(text.contains("# TYPE jsdetect_analyze_threads gauge"));
        assert!(text.contains("# TYPE jsdetect_script_bytes summary"));
        assert!(text.contains("jsdetect_script_bytes{quantile=\"0.5\"}"));
        assert!(text.contains("jsdetect_script_bytes_count 2"));
        assert!(text.contains("# TYPE jsdetect_span_duration_ns summary"));
        assert!(
            text.contains("jsdetect_span_duration_ns{span=\"analyze/parse\",quantile=\"0.99\"}")
        );
        assert!(text.contains("jsdetect_span_duration_ns_sum{span=\"analyze/parse\"} 7000"));
        assert!(text.contains("jsdetect_span_duration_ns_count{span=\"analyze/parse\"} 3"));
    }

    #[test]
    fn sanitizer_handles_hostile_names() {
        assert_eq!(sanitize("cache/hit"), "cache_hit");
        assert_eq!(sanitize("normalize/array-inline/rewrites"), "normalize_array_inline_rewrites");
        assert_eq!(sanitize("9lives"), "_9lives");
        assert_eq!(sanitize("UPPER.case"), "upper_case");
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert_eq!(render_prometheus(&Snapshot::default()), "");
    }
}

//! The vector space combining hand-picked and 4-gram features
//! (paper §III-B: "each feature is associated with one consistent
//! dimension").

use crate::analysis::ScriptAnalysis;
use crate::handpicked::{handpicked_features, FEATURE_NAMES, N_HANDPICKED};
use crate::ngrams::{ngram_counts, NgramVocab};
use serde::{Deserialize, Serialize};

/// Which feature families a vector space includes (used for the feature
/// ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Include the hand-picked features.
    pub handpicked: bool,
    /// Include the 4-gram features.
    pub ngrams: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { handpicked: true, ngrams: true }
    }
}

/// A fitted vector space: consistent dimensions for every script.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorSpace {
    config: FeatureConfig,
    vocab: NgramVocab,
}

impl VectorSpace {
    /// Fits the 4-gram vocabulary on a training corpus of analyses.
    pub fn fit<'a, I>(corpus: I, max_ngrams: usize, config: FeatureConfig) -> Self
    where
        I: IntoIterator<Item = &'a ScriptAnalysis>,
    {
        let docs: Vec<_> = corpus.into_iter().map(|a| ngram_counts(&a.program)).collect();
        let vocab = NgramVocab::build(docs.iter(), max_ngrams);
        VectorSpace { config, vocab }
    }

    /// Total vector dimensionality.
    pub fn dim(&self) -> usize {
        let mut d = 0;
        if self.config.handpicked {
            d += N_HANDPICKED;
        }
        if self.config.ngrams {
            d += self.vocab.dim();
        }
        d
    }

    /// Vectorizes one analyzed script.
    pub fn vectorize(&self, a: &ScriptAnalysis) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.dim());
        if self.config.handpicked {
            v.extend(handpicked_features(a));
        }
        if self.config.ngrams {
            v.extend(self.vocab.vectorize(&ngram_counts(&a.program)));
        }
        v
    }

    /// Name of dimension `i`.
    pub fn dim_name(&self, i: usize) -> String {
        if self.config.handpicked && i < N_HANDPICKED {
            return FEATURE_NAMES[i].to_string();
        }
        let j = if self.config.handpicked { i - N_HANDPICKED } else { i };
        format!("4gram:{}", self.vocab.gram_name(j))
    }

    /// Restores the internal lookup index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.vocab.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_script;

    fn spaces(srcs: &[&str]) -> (VectorSpace, Vec<ScriptAnalysis>) {
        let analyses: Vec<_> = srcs.iter().map(|s| analyze_script(s).unwrap()).collect();
        let vs = VectorSpace::fit(analyses.iter(), 64, FeatureConfig::default());
        (vs, analyses)
    }

    #[test]
    fn consistent_dimensions() {
        let (vs, analyses) = spaces(&["var x = 1;", "function f() { return 2; }"]);
        let v0 = vs.vectorize(&analyses[0]);
        let v1 = vs.vectorize(&analyses[1]);
        assert_eq!(v0.len(), vs.dim());
        assert_eq!(v1.len(), vs.dim());
        assert_ne!(v0, v1);
    }

    #[test]
    fn handpicked_only_config() {
        let analyses = vec![analyze_script("var x = 1;").unwrap()];
        let vs = VectorSpace::fit(
            analyses.iter(),
            64,
            FeatureConfig { handpicked: true, ngrams: false },
        );
        assert_eq!(vs.dim(), crate::handpicked::N_HANDPICKED);
    }

    #[test]
    fn ngrams_only_config() {
        let analyses = vec![analyze_script("var x = 1; var y = 2;").unwrap()];
        let vs = VectorSpace::fit(
            analyses.iter(),
            64,
            FeatureConfig { handpicked: false, ngrams: true },
        );
        assert!(vs.dim() > 0);
        assert!(vs.dim() <= 64);
    }

    #[test]
    fn dim_names_cover_both_families() {
        let (vs, _) = spaces(&["var x = 1; var y = 2;"]);
        assert_eq!(vs.dim_name(0), "avg_chars_per_line");
        let gram_name = vs.dim_name(crate::handpicked::N_HANDPICKED);
        assert!(gram_name.starts_with("4gram:"), "{}", gram_name);
    }

    #[test]
    fn serde_roundtrip() {
        let (vs, analyses) = spaces(&["var x = 1; f(x);"]);
        let json = serde_json::to_string(&vs).unwrap();
        let mut back: VectorSpace = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.vectorize(&analyses[0]), vs.vectorize(&analyses[0]));
    }
}

//! `jsdetect-serve`: the resident detection daemon.
//!
//! The ROADMAP's "millions of users" story made concrete: a long-running
//! process that composes the guarded analysis sandbox (PR 4), the
//! content-addressed verdict cache (PR 5), batched prediction (PR 2), and
//! streaming telemetry (PR 8) into a service that survives sustained
//! hostile traffic. The robustness core:
//!
//! - **Admission control** ([`queue::BoundedQueue`]): a bounded queue in
//!   front of a bounded worker pool. A full queue rejects with
//!   `overloaded` — never unbounded buffering.
//! - **Deadlines** → fuel: a per-request deadline is decremented by queue
//!   wait and mapped onto the guard's fuel-metered `deadline_ms` budget,
//!   so a request that waited too long is rejected before any lexing.
//! - **Watchdog** ([`daemon::Daemon`]): a panicked worker answers its
//!   request with a quarantined verdict and is replaced by a fresh
//!   thread; a stuck worker is abandoned, its request answered by the
//!   watchdog, and a replacement spawned.
//! - **Circuit breaker** ([`breaker::CircuitBreaker`]): p99-latency or
//!   reject-rate breaches flip the daemon into degraded lexer-only mode;
//!   half-open probes recover it.
//! - **Graceful drain**: shutdown stops admissions, drains every accepted
//!   request, joins the pool, and emits a final telemetry snapshot.
//! - **Fault injection** ([`chaos::Chaos`]): injected worker panics,
//!   artificial stage latency, and cache publish failures let tests
//!   exercise every failure mode above deterministically.
//!
//! Transport is std-only: one TCP listener speaks both a 4-byte
//! length-prefixed JSON framing and HTTP/1.1 (`POST /analyze`,
//! `POST /batch`, `GET /metrics`, `GET /healthz`), sniffed from the first
//! bytes of each connection.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod breaker;
pub mod chaos;
pub mod daemon;
pub mod http;
pub mod protocol;
pub mod queue;
pub mod signal;

pub use breaker::{BreakerConfig, BreakerState, CircuitBreaker, Mode};
pub use chaos::{Chaos, ChaosConfig};
pub use daemon::{Daemon, DaemonStats, ServeConfig, ShutdownReport};
pub use http::{serve, TransportConfig};
pub use protocol::{
    read_frame, write_frame, AnalyzeRequest, AnalyzeResponse, BatchRequest, BatchResponse, Status,
};
pub use queue::{BoundedQueue, PushError};

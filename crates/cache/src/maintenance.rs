//! Offline maintenance over a cache directory: `stats`, `verify`, `gc`.
//!
//! These walk the sharded layout directly (no [`AnalysisCache`] handle
//! needed), so the CLI can inspect or repair a store regardless of which
//! preset or feature-space version wrote it. A missing directory is an
//! empty store, not an error — `jsdetect-cli cache stats` on a fresh
//! checkout should report zeros, not fail.
//!
//! [`AnalysisCache`]: crate::AnalysisCache

use crate::record::{decode_embedded, peek_header, DecodeError, RECORD_SCHEMA_VERSION};
use crate::store::RECORD_EXT;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// What one walked file turned out to be.
enum Walked {
    Record(PathBuf, u64),
    Tmp(PathBuf),
}

/// Yields every record / tmp file under `dir`'s two-hex shard directories.
fn walk(dir: &Path) -> std::io::Result<Vec<Walked>> {
    let mut out = Vec::new();
    if !dir.exists() {
        return Ok(out);
    }
    for shard in std::fs::read_dir(dir)? {
        let shard = shard?;
        let name = shard.file_name();
        let name = name.to_string_lossy();
        // Only two-hex shard directories belong to the store; anything
        // else in the root (user files, other tools) is left alone.
        if name.len() != 2 || !name.bytes().all(|b| b.is_ascii_hexdigit()) {
            continue;
        }
        if !shard.file_type()?.is_dir() {
            continue;
        }
        for entry in std::fs::read_dir(shard.path())? {
            let entry = entry?;
            if !entry.file_type()?.is_file() {
                continue;
            }
            let path = entry.path();
            let fname = entry.file_name();
            let fname = fname.to_string_lossy();
            if fname.starts_with(".tmp-") {
                out.push(Walked::Tmp(path));
            } else if fname.ends_with(&format!(".{}", RECORD_EXT)) {
                out.push(Walked::Record(path, entry.metadata()?.len()));
            }
        }
    }
    Ok(out)
}

/// Splits a record file name into its `(hash prefix hex, preset tag)`
/// parts, or `None` when the name does not follow the store's convention.
fn parse_record_name(path: &Path) -> Option<(String, String)> {
    let stem = path.file_name()?.to_str()?.strip_suffix(&format!(".{}", RECORD_EXT))?;
    if stem.len() < 34 || stem.as_bytes()[32] != b'-' {
        return None;
    }
    let prefix = &stem[..32];
    if !prefix.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    Some((prefix.to_string(), stem[33..].to_string()))
}

/// Aggregate figures for one cache directory.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct CacheStats {
    /// Readable, current-schema records.
    pub records: u64,
    /// Total bytes across all record files.
    pub bytes: u64,
    /// Record count per limits-preset tag.
    pub by_preset: BTreeMap<String, u64>,
    /// Record count per feature-space version.
    pub by_feature_version: BTreeMap<u32, u64>,
    /// Records written under another record schema.
    pub stale_schema: u64,
    /// Records that fail checksum / structural validation.
    pub corrupt: u64,
    /// Leftover tmp files from interrupted writers.
    pub tmp_files: u64,
    /// Shard directories holding at least one file.
    pub shards_used: u64,
}

/// Walks `dir` and summarizes what the store holds.
///
/// # Errors
///
/// Propagates directory-walk IO errors; unreadable individual records are
/// counted as corrupt instead of failing the walk.
pub fn stats(dir: &Path) -> std::io::Result<CacheStats> {
    let mut s = CacheStats::default();
    let mut shards = std::collections::BTreeSet::new();
    for item in walk(dir)? {
        match item {
            Walked::Tmp(path) => {
                s.tmp_files += 1;
                if let Some(parent) = path.parent() {
                    shards.insert(parent.to_path_buf());
                }
            }
            Walked::Record(path, len) => {
                s.bytes += len;
                if let Some(parent) = path.parent() {
                    shards.insert(parent.to_path_buf());
                }
                let bytes = match std::fs::read(&path) {
                    Ok(b) => b,
                    Err(_) => {
                        s.corrupt += 1;
                        continue;
                    }
                };
                match peek_header(&bytes) {
                    Ok((schema, _, _)) if schema != RECORD_SCHEMA_VERSION => s.stale_schema += 1,
                    Ok((_, feature_version, preset)) => {
                        s.records += 1;
                        *s.by_preset.entry(preset).or_insert(0) += 1;
                        *s.by_feature_version.entry(feature_version).or_insert(0) += 1;
                    }
                    Err(e) if e.is_stale() => s.stale_schema += 1,
                    Err(_) => s.corrupt += 1,
                }
            }
        }
    }
    s.shards_used = shards.len() as u64;
    Ok(s)
}

/// Outcome of a full-store integrity pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct VerifyReport {
    /// Record files examined.
    pub total: u64,
    /// Records that fully decode and whose file name matches their
    /// embedded hash prefix and preset tag.
    pub ok: u64,
    /// Well-formed records from another schema version.
    pub stale: u64,
    /// Damaged or misnamed records, with the reason (path rendered as a
    /// string so the report serializes with the vendored serde).
    pub corrupt: Vec<(String, String)>,
}

impl VerifyReport {
    /// Whether the store is fully healthy (stale records are healthy —
    /// they decode and will be replaced or collected, never served).
    pub fn is_clean(&self) -> bool {
        self.corrupt.is_empty()
    }
}

/// Fully decodes every record (checksum, structure, payload) and checks
/// that each file name agrees with the record inside it.
///
/// # Errors
///
/// Propagates directory-walk IO errors.
pub fn verify(dir: &Path) -> std::io::Result<VerifyReport> {
    let mut report = VerifyReport::default();
    for item in walk(dir)? {
        let (path, _) = match item {
            Walked::Record(p, len) => (p, len),
            Walked::Tmp(_) => continue,
        };
        report.total += 1;
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                report.corrupt.push((path.display().to_string(), format!("unreadable: {}", e)));
                continue;
            }
        };
        match decode_embedded(&bytes) {
            Ok((_, hash, _, preset)) => match parse_record_name(&path) {
                Some((name_prefix, name_preset))
                    if name_prefix == hash.prefix_hex() && name_preset == preset =>
                {
                    report.ok += 1;
                }
                Some(_) => report.corrupt.push((
                    path.display().to_string(),
                    "file name disagrees with embedded record".to_string(),
                )),
                None => report
                    .corrupt
                    .push((path.display().to_string(), "unparseable record file name".to_string())),
            },
            Err(e) if e.is_stale() => report.stale += 1,
            Err(e) => report.corrupt.push((path.display().to_string(), e.to_string())),
        }
    }
    Ok(report)
}

/// Outcome of a garbage-collection pass.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize)]
pub struct GcReport {
    /// Records removed because they were written under another schema or
    /// feature-space version.
    pub removed_stale: u64,
    /// Records removed because they fail validation.
    pub removed_corrupt: u64,
    /// Interrupted-writer tmp files removed.
    pub removed_tmp: u64,
    /// Healthy records kept.
    pub kept: u64,
}

/// Removes everything the store can no longer serve: corrupt records,
/// records from other schema or feature-space versions, and tmp litter.
/// Records for *other presets* under the current versions are kept — they
/// are valid answers for their own scans.
///
/// # Errors
///
/// Propagates directory-walk IO errors; per-file remove failures leave the
/// file for the next pass rather than aborting.
pub fn gc(dir: &Path, current_feature_version: u32) -> std::io::Result<GcReport> {
    let mut report = GcReport::default();
    for item in walk(dir)? {
        match item {
            Walked::Tmp(path) => {
                if std::fs::remove_file(&path).is_ok() {
                    report.removed_tmp += 1;
                }
            }
            Walked::Record(path, _) => {
                let verdict = std::fs::read(&path)
                    .map_err(|_| DecodeError::Malformed("unreadable"))
                    .and_then(|b| decode_embedded(&b).map(|(_, _, fv, _)| fv));
                match verdict {
                    Ok(fv) if fv == current_feature_version => report.kept += 1,
                    Ok(_) => {
                        if std::fs::remove_file(&path).is_ok() {
                            report.removed_stale += 1;
                        }
                    }
                    Err(e) if e.is_stale() => {
                        if std::fs::remove_file(&path).is_ok() {
                            report.removed_stale += 1;
                        }
                    }
                    Err(_) => {
                        if std::fs::remove_file(&path).is_ok() {
                            report.removed_corrupt += 1;
                        }
                    }
                }
            }
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blake::ContentHash;
    use crate::record::{encode, CacheRecord};
    use crate::store::{AnalysisCache, CacheConfig};
    use jsdetect_guard::{Limits, OutcomeKind};
    use std::sync::atomic::{AtomicU32, Ordering};

    static DIR_SEQ: AtomicU32 = AtomicU32::new(0);

    fn scratch() -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "jsdetect-cache-maint-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn rec() -> CacheRecord {
        CacheRecord {
            outcome: OutcomeKind::Ok,
            error_kind: String::new(),
            error_msg: String::new(),
            payload: None,
        }
    }

    fn seeded(dir: &Path, n: usize) -> AnalysisCache {
        let cache = AnalysisCache::open(CacheConfig::new(dir, &Limits::wild())).unwrap();
        for i in 0..n {
            let h = ContentHash::of(format!("var v{} = {};", i, i).as_bytes());
            cache.put(&h, &rec());
        }
        cache
    }

    #[test]
    fn missing_directory_is_an_empty_store() {
        let dir = scratch().join("nope");
        assert_eq!(stats(&dir).unwrap(), CacheStats::default());
        assert_eq!(verify(&dir).unwrap(), VerifyReport::default());
        assert_eq!(gc(&dir, 2).unwrap(), GcReport::default());
    }

    #[test]
    fn stats_counts_records_presets_and_versions() {
        let dir = scratch();
        seeded(&dir, 5);
        let s = stats(&dir).unwrap();
        assert_eq!(s.records, 5);
        assert_eq!(s.by_preset.get("wild"), Some(&5));
        assert_eq!(s.by_feature_version.len(), 1);
        assert!(s.bytes > 0);
        assert!(s.shards_used >= 1);
        assert_eq!(s.corrupt, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_flags_corruption_and_misnamed_files() {
        let dir = scratch();
        let cache = seeded(&dir, 3);
        assert!(verify(&dir).unwrap().is_clean());

        // Corrupt one record in place.
        let h = ContentHash::of(b"var v0 = 0;");
        let victim = cache.record_path(&h);
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&victim, &bytes).unwrap();

        // Plant a record whose file name lies about its content.
        let other = ContentHash::of(b"something else entirely");
        let liar = dir.join(other.shard()).join(format!("{}-wild.jdc", other.prefix_hex()));
        std::fs::create_dir_all(liar.parent().unwrap()).unwrap();
        std::fs::write(&liar, encode(&rec(), &h, 2, "wild")).unwrap();

        let report = verify(&dir).unwrap();
        assert_eq!(report.total, 4);
        assert_eq!(report.ok, 2);
        assert_eq!(report.corrupt.len(), 2);
        assert!(!report.is_clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn gc_removes_stale_corrupt_and_tmp_but_keeps_other_presets() {
        let dir = scratch();
        let cache = seeded(&dir, 2);
        let fv = cache.config().feature_version;

        // Another preset at the current version: must survive.
        let trusted = AnalysisCache::open(CacheConfig::new(&dir, &Limits::trusted())).unwrap();
        let h = ContentHash::of(b"keep me");
        trusted.put(&h, &rec());

        // A stale-feature-version record.
        let mut cfg = CacheConfig::new(&dir, &Limits::wild());
        cfg.feature_version = fv + 1;
        let future = AnalysisCache::open(cfg).unwrap();
        let h2 = ContentHash::of(b"stale me");
        future.put(&h2, &rec());

        // A zero-length (corrupt) record and an orphan tmp file.
        let h3 = ContentHash::of(b"corrupt me");
        std::fs::create_dir_all(dir.join(h3.shard())).unwrap();
        std::fs::write(dir.join(h3.shard()).join(format!("{}-wild.jdc", h3.prefix_hex())), b"")
            .unwrap();
        std::fs::write(dir.join(h3.shard()).join(".tmp-999-0"), b"partial").unwrap();

        let report = gc(&dir, fv).unwrap();
        assert_eq!(report.kept, 3, "{:?}", report);
        assert_eq!(report.removed_stale, 1);
        assert_eq!(report.removed_corrupt, 1);
        assert_eq!(report.removed_tmp, 1);
        assert!(trusted.record_path(&h).exists());
        assert!(!future.record_path(&h2).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

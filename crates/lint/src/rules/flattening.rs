//! `flattening-dispatcher`: the switch-in-infinite-loop dispatcher shape.

use crate::{Diagnostic, LintContext, Rule, Severity};
use jsdetect_ast::Span;
use jsdetect_flow::RefKind;

/// Minimum case count before a switch counts as a dispatcher.
const MIN_CASES: usize = 3;

/// Flags a `switch` inside a literal-true loop whose discriminant is
/// driven by mutated state and whose cases are keyed by string literals —
/// control-flow flattening's dispatcher (paper §II-A, obfuscator.io).
pub struct FlatteningDispatcher;

fn within(outer: Span, inner: Span) -> bool {
    inner.start >= outer.start && inner.end <= outer.end
}

impl Rule for FlatteningDispatcher {
    fn name(&self) -> &'static str {
        "flattening-dispatcher"
    }

    fn severity(&self) -> Severity {
        Severity::Signature
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for ds in &ctx.facts.dispatch_switches {
            if ds.cases < MIN_CASES || ds.string_cases * 2 < ds.cases {
                continue;
            }
            let state_mutated = ds.has_update
                || ctx.graph.scopes.references().iter().any(|r| {
                    r.kind != RefKind::Read
                        && within(ds.loop_span, r.span)
                        && ds.state_idents.iter().any(|n| n == &r.name)
                });
            if !state_mutated {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                span: ds.span,
                severity: self.severity(),
                message: format!(
                    "switch on mutated state inside an infinite loop dispatches {} string-keyed cases (control-flow flattening)",
                    ds.cases
                ),
                data: vec![
                    ("cases", ds.cases.to_string()),
                    ("state", ds.state_idents.iter().map(|a| a.as_str()).collect::<Vec<_>>().join(",")),
                ],
            });
        }
    }
}

//! Parallel script vectorization.

use jsdetect_features::{analyze_script, ScriptAnalysis, VectorSpace};

/// Analyzes many scripts in parallel. Scripts that fail to parse yield
/// `None` (the paper's pipeline skips unparseable files).
pub fn analyze_many(srcs: &[&str]) -> Vec<Option<ScriptAnalysis>> {
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut out: Vec<Option<ScriptAnalysis>> = (0..srcs.len()).map(|_| None).collect();
    let chunk = srcs.len().div_ceil(n_threads.max(1)).max(1);
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, src_chunk) in out.chunks_mut(chunk).zip(srcs.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, src) in slot_chunk.iter_mut().zip(src_chunk) {
                    *slot = analyze_script(src).ok();
                }
            });
        }
    })
    .expect("analysis threads panicked");
    out
}

/// Vectorizes many scripts in parallel against a fitted space.
pub fn vectorize_many(space: &VectorSpace, srcs: &[&str]) -> Vec<Option<Vec<f32>>> {
    let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
    let mut out: Vec<Option<Vec<f32>>> = vec![None; srcs.len()];
    let chunk = srcs.len().div_ceil(n_threads.max(1)).max(1);
    crossbeam::thread::scope(|scope| {
        for (slot_chunk, src_chunk) in out.chunks_mut(chunk).zip(srcs.chunks(chunk)) {
            scope.spawn(move |_| {
                for (slot, src) in slot_chunk.iter_mut().zip(src_chunk) {
                    *slot = analyze_script(src).ok().map(|a| space.vectorize(&a));
                }
            });
        }
    })
    .expect("vectorization threads panicked");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_features::FeatureConfig;

    #[test]
    fn analyze_many_handles_errors() {
        let srcs = ["var x = 1;", "var ;;; broken", "f();"];
        let out = analyze_many(&srcs);
        assert!(out[0].is_some());
        assert!(out[1].is_none());
        assert!(out[2].is_some());
    }

    #[test]
    fn vectorize_many_matches_serial() {
        let srcs = vec!["var x = 1;", "function f() { return 2; }", "if (a) b();"];
        let analyses: Vec<_> = srcs.iter().map(|s| analyze_script(s).unwrap()).collect();
        let space = VectorSpace::fit(analyses.iter(), 32, FeatureConfig::default());
        let par = vectorize_many(&space, &srcs);
        for (a, p) in analyses.iter().zip(&par) {
            assert_eq!(p.as_ref().unwrap(), &space.vectorize(a));
        }
    }
}

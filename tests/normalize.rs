//! Normalization pass-suite invariants at the workspace level.
//!
//! The crate-level unit tests pin each pass in isolation; this suite
//! pins the properties the rest of the pipeline depends on when the
//! whole suite runs over real (generated + transformed) programs:
//!
//! 1. **Round-trip**: normalized programs still satisfy the printer
//!    round-trip property (print → re-parse preserves the node-kind
//!    stream, printing is a fixed point) for every transform preset —
//!    normalization must never produce unprintable or drifting ASTs.
//! 2. **Idempotence**: `normalize(normalize(x)) == normalize(x)`. The
//!    fixpoint driver claims convergence; a second full run must find
//!    nothing left to rewrite.
//! 3. **Reversal**: the array-inline pass exactly undoes
//!    `Technique::GlobalArray` on generator corpora, not just on
//!    hand-written fixtures.

use jsdetect_suite::ast::kind_stream;
use jsdetect_suite::codegen::{to_minified, to_source};
use jsdetect_suite::corpus::RegularJsGenerator;
use jsdetect_suite::guard::{Limits, OutcomeKind};
use jsdetect_suite::normalize::{normalize_program, NormalizeOptions, PassKind};
use jsdetect_suite::parser::parse;
use jsdetect_suite::transform::{apply, Technique};

/// Deterministic options: deadline off, deterministic fuel/round caps
/// only — the same configuration feature extraction uses.
fn opts() -> NormalizeOptions {
    NormalizeOptions { limits: Limits::unbounded(), ..NormalizeOptions::default() }
}

/// Parses, normalizes, and returns (program printed readable, report
/// outcome), panicking on parse failure.
fn normalize_src(src: &str, label: &str) -> (String, OutcomeKind) {
    let mut p = parse(src).unwrap_or_else(|e| panic!("{}: does not parse: {}", label, e));
    let report = normalize_program(&mut p, &opts());
    (to_source(&p), report.outcome)
}

/// The printer round-trip property from `tests/roundtrip.rs`, applied
/// to an already-normalized source.
fn assert_roundtrip(src: &str, label: &str) {
    let p1 =
        parse(src).unwrap_or_else(|e| panic!("{}: normalized output does not parse: {}", label, e));
    let stream1 = kind_stream(&p1);
    for (mode, printed) in [("readable", to_source(&p1)), ("minified", to_minified(&p1))] {
        let p2 = parse(&printed).unwrap_or_else(|e| {
            panic!("{} [{}]: printed output does not re-parse: {}\n{}", label, mode, e, printed)
        });
        assert_eq!(
            stream1,
            kind_stream(&p2),
            "{} [{}]: node-kind stream changed across print→parse",
            label,
            mode
        );
        let reprinted = match mode {
            "readable" => to_source(&p2),
            _ => to_minified(&p2),
        };
        assert_eq!(printed, reprinted, "{} [{}]: printer is not a fixed point", label, mode);
    }
}

#[test]
fn normalized_output_roundtrips_for_every_technique() {
    let mut gen = RegularJsGenerator::new(0xDECAF);
    let samples: Vec<String> = (0..3).map(|_| gen.generate()).collect();
    for t in Technique::ALL {
        for (i, src) in samples.iter().enumerate() {
            let label = format!("{} on sample {}", t.as_str(), i);
            let transformed = apply(src, &[t], 23 + i as u64)
                .unwrap_or_else(|e| panic!("{}: transform failed: {}", label, e));
            let (normalized, outcome) = normalize_src(&transformed, &label);
            assert_ne!(outcome, OutcomeKind::Rejected, "{}: normalize rejected", label);
            assert_roundtrip(&normalized, &label);
        }
    }
}

#[test]
fn normalized_output_roundtrips_for_stacked_techniques() {
    let mut gen = RegularJsGenerator::new(0x5EED);
    let samples: Vec<String> = (0..2).map(|_| gen.generate()).collect();
    let mut configs: Vec<Vec<Technique>> = Technique::ALL.windows(2).map(|w| w.to_vec()).collect();
    configs.push(Technique::ALL.to_vec());
    for (ci, techniques) in configs.iter().enumerate() {
        for (i, src) in samples.iter().enumerate() {
            let Ok(transformed) = apply(src, techniques, 31 + ci as u64) else {
                continue;
            };
            let label = format!("stack {} on sample {}", ci, i);
            let (normalized, _) = normalize_src(&transformed, &label);
            assert_roundtrip(&normalized, &label);
        }
    }
}

#[test]
fn normalization_is_idempotent_across_presets() {
    let mut gen = RegularJsGenerator::new(0x1D0);
    let samples: Vec<String> = (0..3).map(|_| gen.generate()).collect();
    // Untransformed plus every single-technique preset.
    let mut sources: Vec<(String, String)> =
        samples.iter().enumerate().map(|(i, s)| (format!("plain {}", i), s.clone())).collect();
    for t in Technique::ALL {
        for (i, src) in samples.iter().enumerate() {
            if let Ok(transformed) = apply(src, &[t], 47 + i as u64) {
                sources.push((format!("{} on sample {}", t.as_str(), i), transformed));
            }
        }
    }
    for (label, src) in &sources {
        let (once, _) = normalize_src(src, label);
        let mut p =
            parse(&once).unwrap_or_else(|e| panic!("{}: once does not parse: {}", label, e));
        let report = normalize_program(&mut p, &opts());
        assert_eq!(
            report.total_rewrites(),
            0,
            "{}: second normalize still rewrote {} times",
            label,
            report.total_rewrites()
        );
        assert_eq!(to_source(&p), *once, "{}: normalize is not idempotent", label);
    }
}

#[test]
fn array_inline_reverses_global_array_on_generated_corpora() {
    let mut gen = RegularJsGenerator::new(0xA11A);
    let inline_only =
        NormalizeOptions { passes: vec![PassKind::ArrayInline], ..NormalizeOptions::default() };
    let mut reversed = 0;
    for i in 0..6 {
        let src = gen.generate();
        let canonical = to_minified(&parse(&src).unwrap());
        let Ok(obf) = apply(&src, &[Technique::GlobalArray], 101 + i) else {
            continue;
        };
        let mut p = parse(&obf).unwrap();
        let report = normalize_program(&mut p, &inline_only);
        assert_eq!(
            to_minified(&p),
            canonical,
            "sample {}: array-inline did not reverse the transform",
            i
        );
        if report.total_rewrites() > 0 {
            reversed += 1;
        }
    }
    assert!(reversed >= 3, "transform only took effect on {} of 6 samples", reversed);
}

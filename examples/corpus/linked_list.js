// Singly linked list with a reversal pass.
function Node(value) {
    this.value = value;
    this.next = null;
}

function List() {
    this.head = null;
    this.size = 0;
}

List.prototype.push = function (value) {
    var node = new Node(value);
    if (!this.head) {
        this.head = node;
    } else {
        var cur = this.head;
        while (cur.next) {
            cur = cur.next;
        }
        cur.next = node;
    }
    this.size = this.size + 1;
    return this;
};

List.prototype.reverse = function () {
    var prev = null;
    var cur = this.head;
    while (cur) {
        var next = cur.next;
        cur.next = prev;
        prev = cur;
        cur = next;
    }
    this.head = prev;
    return this;
};

List.prototype.toArray = function () {
    var out = [];
    var cur = this.head;
    while (cur) {
        out.push(cur.value);
        cur = cur.next;
    }
    return out;
};

var list = new List();
list.push(1).push(2).push(3).push(4);
list.reverse();
console.log(list.toArray().join(","));

//! Deterministic fault injection for the daemon.
//!
//! Every robustness claim the daemon makes — panicked workers replaced,
//! stuck workers quarantined, cache publish failures retried, overload
//! rejected — is only trustworthy if tests can trigger the fault on
//! demand. [`Chaos`] injects them on a deterministic every-Nth schedule
//! (no RNG: the nth request fails the same way on every run), counted
//! from the daemon's own execution order.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Panic message used by injected worker panics; watchdog accounting and
/// tests match on it.
pub const CHAOS_PANIC_MSG: &str = "chaos: injected worker panic";

/// Fault-injection schedule. A value of `0` disables that fault.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosConfig {
    /// Panic inside the worker on every Nth executed request.
    pub panic_every: u64,
    /// Sleep [`ChaosConfig::delay_ms`] before every Nth analysis
    /// (simulates a stage stall; drives watchdog and breaker tests).
    pub delay_every: u64,
    /// Stall duration for `delay_every`.
    pub delay_ms: u64,
    /// Fail every Nth cache publish attempt (exercises the cache's
    /// bounded retry).
    pub cache_fail_every: u64,
}

impl ChaosConfig {
    /// Whether any fault is armed.
    pub fn armed(&self) -> bool {
        self.panic_every > 0
            || (self.delay_every > 0 && self.delay_ms > 0)
            || self.cache_fail_every > 0
    }
}

/// The injection engine: one shared instance per daemon.
#[derive(Debug)]
pub struct Chaos {
    cfg: ChaosConfig,
    executed: AtomicU64,
    cache_attempts: AtomicU64,
    injected_panics: AtomicU64,
    injected_delays: AtomicU64,
}

impl Chaos {
    /// Builds an engine for `cfg`.
    pub fn new(cfg: ChaosConfig) -> Chaos {
        Chaos {
            cfg,
            executed: AtomicU64::new(0),
            cache_attempts: AtomicU64::new(0),
            injected_panics: AtomicU64::new(0),
            injected_delays: AtomicU64::new(0),
        }
    }

    /// The configured schedule.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// Called by a worker at the top of request execution: may stall,
    /// may panic (the injected-worker-panic fault).
    ///
    /// # Panics
    ///
    /// Panics with [`CHAOS_PANIC_MSG`] on the configured schedule — that
    /// is the fault being injected; the daemon's fences must contain it.
    pub fn before_analysis(&self) {
        let n = self.executed.fetch_add(1, Ordering::Relaxed) + 1;
        if self.cfg.delay_every > 0
            && self.cfg.delay_ms > 0
            && n.is_multiple_of(self.cfg.delay_every)
        {
            self.injected_delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(std::time::Duration::from_millis(self.cfg.delay_ms));
        }
        if self.cfg.panic_every > 0 && n.is_multiple_of(self.cfg.panic_every) {
            self.injected_panics.fetch_add(1, Ordering::Relaxed);
            panic!("{}", CHAOS_PANIC_MSG);
        }
    }

    /// A publish injector for [`jsdetect_cache::AnalysisCache`] that fails
    /// every Nth attempt; `None` when the fault is disarmed.
    pub fn cache_injector(self: &Arc<Self>) -> Option<jsdetect_cache::PublishInjector> {
        if self.cfg.cache_fail_every == 0 {
            return None;
        }
        let every = self.cfg.cache_fail_every;
        let me = Arc::clone(self);
        Some(Box::new(move |_attempt| {
            let n = me.cache_attempts.fetch_add(1, Ordering::Relaxed) + 1;
            n.is_multiple_of(every)
        }))
    }

    /// Worker panics injected so far.
    pub fn injected_panics(&self) -> u64 {
        self.injected_panics.load(Ordering::Relaxed)
    }

    /// Stage stalls injected so far.
    pub fn injected_delays(&self) -> u64 {
        self.injected_delays.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_schedule_is_deterministic() {
        let c = Chaos::new(ChaosConfig { panic_every: 3, ..Default::default() });
        c.before_analysis();
        c.before_analysis();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| c.before_analysis()));
        assert!(caught.is_err(), "third execution must panic");
        assert_eq!(c.injected_panics(), 1);
        c.before_analysis(); // 4th: clean again
    }

    #[test]
    fn cache_injector_fails_every_nth_attempt() {
        let c = Arc::new(Chaos::new(ChaosConfig { cache_fail_every: 2, ..Default::default() }));
        let inj = c.cache_injector().unwrap();
        assert!(!inj(0));
        assert!(inj(0));
        assert!(!inj(0));
        assert!(inj(0));
        let disarmed = Arc::new(Chaos::new(ChaosConfig::default()));
        assert!(disarmed.cache_injector().is_none());
    }
}

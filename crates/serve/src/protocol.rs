//! Wire types and framing for the daemon.
//!
//! One request/response vocabulary serves both transports: the 4-byte
//! big-endian length-prefixed JSON framing (machine clients) and HTTP/1.1
//! bodies (curl and load balancers). The [`Status`] field is the service
//! verdict — *how the daemon handled the request* — and is orthogonal to
//! the analysis `outcome` (*what the guard decided about the script*): an
//! accepted hostile script is `status: ok, outcome: rejected`, while an
//! overloaded daemon answers `status: overloaded` without analyzing at
//! all.

use serde::{Deserialize, Serialize};
use std::io::{Read, Write};

/// One analysis request.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzeRequest {
    /// The JavaScript source to analyze.
    pub src: String,
    /// Guard limits preset (`wild` | `trusted` | `interactive`); the
    /// daemon default applies when absent.
    pub limits: Option<String>,
    /// End-to-end deadline in milliseconds, counted from admission. Queue
    /// wait is charged against it; the remainder becomes the guard's
    /// fuel-metered analysis deadline.
    pub deadline_ms: Option<u64>,
    /// Level-2 Top-k (defaults to the paper's 4).
    pub top_k: Option<u64>,
    /// Level-2 probability threshold (defaults to the paper's 0.10).
    pub threshold: Option<f32>,
}

impl AnalyzeRequest {
    /// A request for `src` with every knob at the daemon default.
    pub fn new(src: impl Into<String>) -> AnalyzeRequest {
        AnalyzeRequest {
            src: src.into(),
            limits: None,
            deadline_ms: None,
            top_k: None,
            threshold: None,
        }
    }
}

/// A batch of analysis requests (`POST /batch`): each script is admitted
/// individually through the same bounded queue, so a batch can be partly
/// `ok` and partly `overloaded`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchRequest {
    /// The scripts to analyze.
    pub scripts: Vec<String>,
    /// Shared limits preset for the whole batch.
    pub limits: Option<String>,
    /// Shared per-script deadline.
    pub deadline_ms: Option<u64>,
}

/// Batch response envelope: one [`AnalyzeResponse`] per input script, in
/// order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchResponse {
    /// Per-script responses.
    pub results: Vec<AnalyzeResponse>,
}

/// How the daemon handled a request (the service-level verdict).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Analyzed (fully or in breaker-degraded mode); see `outcome`.
    Ok,
    /// Refused at admission: the bounded queue is full.
    Overloaded,
    /// Refused at admission: the daemon is draining for shutdown.
    Draining,
    /// Refused at admission: a process-wide resource (atom interner) is
    /// out of headroom.
    Resource,
    /// The worker (or a stage inside it) panicked or got stuck; the
    /// request is answered quarantined and the worker replaced.
    Quarantined,
    /// The request's deadline expired (in queue or mid-analysis).
    Timeout,
    /// The request could not be parsed (malformed JSON, unknown preset,
    /// bad route).
    Invalid,
    /// The request body exceeded the transport size cap.
    Oversized,
}

impl Status {
    /// Stable wire tag.
    pub fn as_str(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Overloaded => "overloaded",
            Status::Draining => "draining",
            Status::Resource => "resource",
            Status::Quarantined => "quarantined",
            Status::Timeout => "timeout",
            Status::Invalid => "invalid",
            Status::Oversized => "oversized",
        }
    }

    /// HTTP status code for this service verdict. Analysis-level rejects
    /// (hostile scripts) are still successful *service* responses: 200.
    pub fn http_code(self) -> u16 {
        match self {
            Status::Ok | Status::Quarantined | Status::Timeout => 200,
            Status::Overloaded => 429,
            Status::Draining | Status::Resource => 503,
            Status::Invalid => 400,
            Status::Oversized => 413,
        }
    }
}

/// One analysis response.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AnalyzeResponse {
    /// Service verdict tag ([`Status::as_str`]).
    pub status: String,
    /// Guard outcome (`ok` | `degraded` | `rejected`); empty when the
    /// request never reached analysis.
    pub outcome: String,
    /// Typed failure kind, empty on success.
    pub error_kind: String,
    /// Human-readable failure, empty on success.
    pub error_msg: String,
    /// Level-1 verdict: transformed (minified and/or obfuscated)?
    pub transformed: bool,
    /// Level-1 confidence the script is regular.
    pub regular: f32,
    /// Level-1 confidence the script is minified.
    pub minified: f32,
    /// Level-1 confidence the script is obfuscated.
    pub obfuscated: f32,
    /// Level-2 thresholded Top-k technique names.
    pub techniques: Vec<String>,
    /// Whether the verdict was replayed from the shared cache.
    pub from_cache: bool,
    /// Whether the daemon served this in breaker-degraded lexer-only mode.
    pub degraded_mode: bool,
    /// End-to-end latency (admission to response) in microseconds.
    pub latency_us: u64,
}

impl AnalyzeResponse {
    /// A response that never reached analysis (admission reject, protocol
    /// error, watchdog verdict).
    pub fn refusal(status: Status, error_kind: &str, error_msg: impl Into<String>) -> Self {
        AnalyzeResponse {
            status: status.as_str().to_string(),
            outcome: String::new(),
            error_kind: error_kind.to_string(),
            error_msg: error_msg.into(),
            transformed: false,
            regular: 0.0,
            minified: 0.0,
            obfuscated: 0.0,
            techniques: Vec::new(),
            from_cache: false,
            degraded_mode: false,
            latency_us: 0,
        }
    }

    /// The [`Status`] this response carries (`Invalid` for unknown tags).
    pub fn status_tag(&self) -> Status {
        match self.status.as_str() {
            "ok" => Status::Ok,
            "overloaded" => Status::Overloaded,
            "draining" => Status::Draining,
            "resource" => Status::Resource,
            "quarantined" => Status::Quarantined,
            "timeout" => Status::Timeout,
            "oversized" => Status::Oversized,
            _ => Status::Invalid,
        }
    }
}

/// Hard ceiling on a single frame/body, independent of configuration.
pub const ABSOLUTE_MAX_FRAME: usize = 64 * 1024 * 1024;

/// Writes one `len(u32 BE) + JSON` frame.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| std::io::Error::new(std::io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_be_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one length-prefixed frame. `Ok(None)` on clean EOF before the
/// prefix; an oversized prefix is an error (the caller answers
/// `oversized` and drops the connection — it cannot resync mid-stream).
///
/// # Errors
///
/// Propagates the underlying read error; oversized frames surface as
/// `InvalidData`.
pub fn read_frame(r: &mut impl Read, max_bytes: usize) -> std::io::Result<Option<Vec<u8>>> {
    let mut prefix = [0u8; 4];
    match r.read_exact(&mut prefix) {
        Ok(()) => {}
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    read_frame_after_prefix(r, prefix, max_bytes)
}

/// Completes a frame read once the caller already consumed the 4-byte
/// prefix (the transport sniffs those bytes to tell HTTP from framing).
///
/// # Errors
///
/// Propagates the underlying read error; oversized frames surface as
/// `InvalidData`.
pub fn read_frame_after_prefix(
    r: &mut impl Read,
    prefix: [u8; 4],
    max_bytes: usize,
) -> std::io::Result<Option<Vec<u8>>> {
    let len = u32::from_be_bytes(prefix) as usize;
    if len > max_bytes.min(ABSOLUTE_MAX_FRAME) {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "frame exceeds size cap"));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    Ok(Some(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, br#"{"src":"var x=1;"}"#).unwrap();
        let mut r = std::io::Cursor::new(buf);
        let frame = read_frame(&mut r, 1024).unwrap().unwrap();
        assert_eq!(frame, br#"{"src":"var x=1;"}"#);
        assert!(read_frame(&mut r, 1024).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn oversized_frame_is_refused() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &[0u8; 64]).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert!(read_frame(&mut r, 16).is_err());
    }

    #[test]
    fn request_json_roundtrip_with_and_without_options() {
        let full = AnalyzeRequest {
            src: "var x=1;".into(),
            limits: Some("interactive".into()),
            deadline_ms: Some(250),
            top_k: Some(3),
            threshold: Some(0.2),
        };
        let json = serde_json::to_string(&full).unwrap();
        let back: AnalyzeRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.limits.as_deref(), Some("interactive"));
        assert_eq!(back.deadline_ms, Some(250));

        let sparse: AnalyzeRequest = serde_json::from_str(r#"{"src":"f();"}"#).unwrap();
        assert_eq!(sparse.src, "f();");
        assert!(sparse.limits.is_none() && sparse.deadline_ms.is_none());
    }

    #[test]
    fn status_codes_follow_the_overload_contract() {
        assert_eq!(Status::Ok.http_code(), 200);
        assert_eq!(Status::Overloaded.http_code(), 429);
        assert_eq!(Status::Draining.http_code(), 503);
        assert_eq!(Status::Invalid.http_code(), 400);
        assert_eq!(Status::Oversized.http_code(), 413);
        let r = AnalyzeResponse::refusal(Status::Overloaded, "queue_full", "at capacity");
        assert_eq!(r.status_tag(), Status::Overloaded);
    }
}

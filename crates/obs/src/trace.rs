//! Chrome trace-event JSON exporter (Perfetto / `chrome://tracing`
//! loadable) and per-stage self-time attribution.
//!
//! [`render_chrome_trace`] converts a snapshot's retained raw events into
//! the trace-event format's JSON object form: one `"M"` metadata event
//! naming each thread track, one `"X"` complete event per retained span
//! (microsecond `ts`/`dur`, nesting reconstructed by the viewer from
//! containment), and one `"C"` counter event per retained counter
//! increment carrying the running cumulative value, so counters render as
//! step charts alongside the span tracks.
//!
//! [`self_times`] answers "where does the time actually go" without a
//! viewer: for every span path it subtracts the time attributed to direct
//! child paths (`path/<leaf>`), leaving the stage's own work. Parents
//! whose children explain everything drop to ~0 and stop hiding the
//! expensive leaf.

use crate::registry::Snapshot;
use std::collections::BTreeMap;
use std::fmt::Write;

/// JSON string escaping (control characters, quotes, backslashes).
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Nanoseconds → trace-event microseconds with sub-µs precision kept.
fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1000.0)
}

/// Renders the snapshot's retained raw events as Chrome trace-event JSON.
/// Load the output in <https://ui.perfetto.dev> or `chrome://tracing`.
/// Bounded by the per-thread ring capacity; overwritten history is
/// reported by the `obs/trace_dropped` counter, not silently absent.
pub fn render_chrome_trace(snap: &Snapshot) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, ev: String| {
        if !std::mem::take(&mut first) {
            out.push(',');
        }
        out.push('\n');
        out.push_str(&ev);
    };

    push(
        &mut out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"jsdetect\"}}"
            .to_string(),
    );
    let mut threads: Vec<u64> = snap
        .events
        .iter()
        .map(|e| e.thread)
        .chain(snap.counter_events.iter().map(|e| e.thread))
        .collect();
    threads.sort_unstable();
    threads.dedup();
    for t in &threads {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"worker-{}\"}}}}",
                t, t
            ),
        );
    }

    for ev in &snap.events {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"cat\":\"span\",\
                 \"ts\":{},\"dur\":{}}}",
                ev.thread,
                esc(&ev.path),
                us(ev.start_ns),
                us(ev.dur_ns)
            ),
        );
    }

    // Counter events carry the running total so viewers draw a step chart.
    let mut running: BTreeMap<&str, u64> = BTreeMap::new();
    for ev in &snap.counter_events {
        let total = running.entry(ev.name.as_str()).or_insert(0);
        *total += ev.delta;
        push(
            &mut out,
            format!(
                "{{\"ph\":\"C\",\"pid\":1,\"tid\":{},\"name\":\"{}\",\"ts\":{},\
                 \"args\":{{\"value\":{}}}}}",
                ev.thread,
                esc(&ev.name),
                us(ev.ts_ns),
                total
            ),
        );
    }

    out.push_str("\n]}\n");
    out
}

/// Wall-clock attribution for one span path after subtracting its direct
/// children.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelfTime {
    /// Slash-joined span path.
    pub path: String,
    /// Completed occurrences.
    pub count: u64,
    /// Total inclusive time, nanoseconds.
    pub total_ns: u64,
    /// Total minus the time attributed to direct child paths
    /// (`path/<leaf>`), saturating at 0 — the stage's own work.
    pub self_ns: u64,
}

/// Per-path self time from the snapshot's span aggregates, sorted by
/// descending `self_ns`. Children deeper than one level are already
/// accounted inside the direct children's totals, so each nanosecond is
/// attributed to exactly one path.
pub fn self_times(snap: &Snapshot) -> Vec<SelfTime> {
    let mut child_total: BTreeMap<&str, u64> = BTreeMap::new();
    for s in &snap.spans {
        if let Some(idx) = s.path.rfind('/') {
            let parent = &s.path[..idx];
            *child_total.entry(parent).or_insert(0) += s.total_ns;
        }
    }
    let mut out: Vec<SelfTime> = snap
        .spans
        .iter()
        .map(|s| SelfTime {
            path: s.path.clone(),
            count: s.count,
            total_ns: s.total_ns,
            self_ns: s
                .total_ns
                .saturating_sub(child_total.get(s.path.as_str()).copied().unwrap_or(0)),
        })
        .collect();
    out.sort_by(|a, b| b.self_ns.cmp(&a.self_ns).then_with(|| a.path.cmp(&b.path)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;
    use crate::registry::{CounterEvent, SpanEvent, SpanStat};

    fn stat(path: &str, count: u64, total_ns: u64) -> SpanStat {
        let mut latency = Histogram::new();
        latency.record(total_ns / count.max(1));
        SpanStat { path: path.to_string(), count, total_ns, min_ns: 0, max_ns: total_ns, latency }
    }

    fn sample_snapshot() -> Snapshot {
        Snapshot {
            spans: vec![
                stat("analyze", 2, 10_000),
                stat("analyze/lex", 2, 2_000),
                stat("analyze/parse", 2, 3_000),
                stat("analyze/parse/scan", 2, 1_000),
            ],
            events: vec![
                SpanEvent { path: "analyze".into(), start_ns: 1_000, dur_ns: 5_000, thread: 0 },
                SpanEvent {
                    path: "analyze/parse".into(),
                    start_ns: 1_500,
                    dur_ns: 1_500,
                    thread: 0,
                },
                SpanEvent { path: "analyze".into(), start_ns: 2_000, dur_ns: 5_000, thread: 1 },
            ],
            counters: vec![("cache/hit".to_string(), 3)],
            gauges: Vec::new(),
            hists: Vec::new(),
            counter_events: vec![
                CounterEvent { name: "cache/hit".into(), ts_ns: 1_200, delta: 1, thread: 0 },
                CounterEvent { name: "cache/hit".into(), ts_ns: 2_500, delta: 2, thread: 1 },
            ],
            dropped_events: 0,
        }
    }

    #[test]
    fn trace_json_has_metadata_spans_and_cumulative_counters() {
        let json = render_chrome_trace(&sample_snapshot());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"process_name\""));
        assert!(json.contains("\"args\":{\"name\":\"worker-0\"}"));
        assert!(json.contains("\"args\":{\"name\":\"worker-1\"}"));
        assert!(json.contains(
            "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"analyze/parse\",\"cat\":\"span\",\
             \"ts\":1.500,\"dur\":1.500}"
        ));
        // Counter samples carry the running total: 1 then 1+2=3.
        assert!(json.contains("\"ts\":1.200,\"args\":{\"value\":1}"));
        assert!(json.contains("\"ts\":2.500,\"args\":{\"value\":3}"));
    }

    #[test]
    fn self_time_subtracts_direct_children_only() {
        let by_path: BTreeMap<String, u64> =
            self_times(&sample_snapshot()).into_iter().map(|s| (s.path, s.self_ns)).collect();
        // analyze: 10000 − (lex 2000 + parse 3000); scan is parse's child.
        assert_eq!(by_path["analyze"], 5_000);
        assert_eq!(by_path["analyze/parse"], 2_000);
        assert_eq!(by_path["analyze/parse/scan"], 1_000);
        assert_eq!(by_path["analyze/lex"], 2_000);
        // Every ns attributed exactly once: self times sum to the root.
        assert_eq!(by_path.values().sum::<u64>(), 10_000);
    }

    #[test]
    fn self_times_sorted_by_descending_self_ns() {
        let times = self_times(&sample_snapshot());
        for pair in times.windows(2) {
            assert!(pair[0].self_ns >= pair[1].self_ns);
        }
    }

    #[test]
    fn empty_snapshot_is_still_valid_trace_json() {
        let json = render_chrome_trace(&Snapshot::default());
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }
}

//! End-to-end detector benchmarks: the per-script classification cost
//! that bounds wild-study throughput, plus full pipeline training at a
//! small scale.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use jsdetect::{train_pipeline, DetectorConfig};
use jsdetect_bench::{fixture_corpus, fixture_script};
use jsdetect_transform::{apply, Technique};

fn bench_detector(c: &mut Criterion) {
    // One small trained model shared by the prediction benches.
    let out = train_pipeline(48, 9, &DetectorConfig::fast().with_seed(9));
    let detectors = out.detectors;
    let regular = fixture_script();
    let obfuscated =
        apply(&regular, &[Technique::IdentifierObfuscation, Technique::StringObfuscation], 3)
            .unwrap();

    let mut group = c.benchmark_group("detector");
    group.throughput(Throughput::Bytes(regular.len() as u64));
    group.bench_function("level1_predict_regular", |b| {
        b.iter(|| detectors.level1.predict(std::hint::black_box(&regular)).unwrap())
    });
    group.bench_function("level1_predict_obfuscated", |b| {
        b.iter(|| detectors.level1.predict(std::hint::black_box(&obfuscated)).unwrap())
    });
    group.bench_function("level2_predict", |b| {
        b.iter(|| detectors.level2.predict_proba(std::hint::black_box(&obfuscated)).unwrap())
    });

    let batch = fixture_corpus(32);
    let srcs: Vec<&str> = batch.iter().map(|s| s.as_str()).collect();
    group.bench_function("level1_predict_batch32", |b| {
        b.iter(|| detectors.level1.predict_many(std::hint::black_box(&srcs)))
    });
    group.finish();

    let mut train_group = c.benchmark_group("training");
    train_group.sample_size(10);
    train_group.bench_function("train_pipeline_n16_fast", |b| {
        b.iter(|| train_pipeline(16, 1, &DetectorConfig::fast()))
    });
    train_group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_detector
}
criterion_main!(benches);

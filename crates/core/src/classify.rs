//! End-to-end classification over the cache-aware hardened path: the one
//! entry the serve daemon, the CLI, and the examples all share.
//!
//! [`classify_many_cached`] composes [`analyze_many_opt_cached`] (guarded
//! analysis with optional verdict replay) with payload-based batch
//! inference on both detector levels. Because everything downstream of
//! analysis runs off the space-independent [`FeaturePayload`], a verdict
//! replayed from the store classifies bit-identically to a fresh one — and
//! a request served by the daemon classifies bit-identically to the same
//! script in an offline sweep.

use crate::cached::{analyze_many_opt_cached, analyze_one_cached, CachedScript};
use crate::config::AnalysisConfig;
use crate::level1::Level1Prediction;
use crate::pipeline::TrainedDetectors;
use jsdetect_cache::AnalysisCache;
use jsdetect_features::FeaturePayload;
use jsdetect_guard::OutcomeKind;
use jsdetect_ml::metrics::thresholded_top_k;
use jsdetect_transform::Technique;

/// One script's full verdict: guard outcome plus both detector levels.
#[derive(Debug, Clone)]
pub struct ScriptVerdict {
    /// Three-way guard verdict for the analysis itself.
    pub outcome: OutcomeKind,
    /// Stable failure kind tag (`AnalysisError::kind()`), empty when ok.
    pub error_kind: String,
    /// Human-readable failure rendering, empty when ok.
    pub error_msg: String,
    /// Whether the analysis was replayed from the verdict cache.
    pub from_cache: bool,
    /// Level-1 class confidences; `None` for rejected scripts.
    pub level1: Option<Level1Prediction>,
    /// Level-2 per-technique probabilities (indexed by
    /// [`Technique::index`]); `None` for rejected scripts.
    pub level2: Option<Vec<f32>>,
    /// The thresholded Top-k technique verdict (paper §III-E2), applied
    /// only when level 1 flags the script as transformed.
    pub techniques: Vec<Technique>,
}

impl ScriptVerdict {
    /// Whether level 1 flagged the script as transformed (minified and/or
    /// obfuscated). `false` for rejected scripts.
    pub fn is_transformed(&self) -> bool {
        self.level1.map(|p| p.is_transformed()).unwrap_or(false)
    }
}

fn verdict_from(
    analyzed: CachedScript,
    level1: Option<Level1Prediction>,
    level2: Option<Vec<f32>>,
    top_k: usize,
    threshold: f32,
) -> ScriptVerdict {
    let transformed = level1.map(|p| p.is_transformed()).unwrap_or(false);
    let techniques = match (&level2, transformed) {
        (Some(probs), true) => thresholded_top_k(probs, top_k, threshold)
            .into_iter()
            .map(|i| Technique::ALL[i])
            .collect(),
        _ => Vec::new(),
    };
    ScriptVerdict {
        outcome: analyzed.outcome,
        error_kind: analyzed.error_kind,
        error_msg: analyzed.error_msg,
        from_cache: analyzed.from_cache,
        level1,
        level2,
        techniques,
    }
}

/// Classifies many scripts through the cache-aware hardened path.
///
/// Analysis runs under `config.limits` with verdict replay when `cache`
/// is provided; surviving payloads (ok and degraded outcomes) are batch
/// classified by both levels. `top_k`/`threshold` select the level-2
/// technique rule (the paper's values are `4` and
/// [`crate::DEFAULT_THRESHOLD`]).
pub fn classify_many_cached(
    srcs: &[&str],
    config: &AnalysisConfig,
    cache: Option<&AnalysisCache>,
    detectors: &TrainedDetectors,
    top_k: usize,
    threshold: f32,
) -> Vec<ScriptVerdict> {
    let analyzed = analyze_many_opt_cached(srcs, config, cache);
    let payloads: Vec<Option<&FeaturePayload>> =
        analyzed.iter().map(|c| c.payload.as_ref()).collect();
    let l1 = detectors.level1.predict_payloads(&payloads);
    let l2 = detectors.level2.predict_proba_payloads(&payloads);
    analyzed
        .into_iter()
        .zip(l1)
        .zip(l2)
        .map(|((a, l1), l2)| verdict_from(a, l1, l2, top_k, threshold))
        .collect()
}

/// Classifies one script (the daemon's per-request path: same analysis and
/// inference as [`classify_many_cached`], without the batch driver).
pub fn classify_one_cached(
    src: &str,
    config: &AnalysisConfig,
    cache: Option<&AnalysisCache>,
    detectors: &TrainedDetectors,
    top_k: usize,
    threshold: f32,
) -> ScriptVerdict {
    let analyzed = analyze_one_cached(src, config, cache);
    classify_analyzed(analyzed, detectors, top_k, threshold)
}

/// Classifies an already-analyzed script (used when the caller produced
/// the [`CachedScript`] through a non-standard path, e.g. the daemon's
/// breaker-degraded lexer-only mode).
pub fn classify_analyzed(
    analyzed: CachedScript,
    detectors: &TrainedDetectors,
    top_k: usize,
    threshold: f32,
) -> ScriptVerdict {
    let (level1, level2) = match analyzed.payload.as_ref() {
        Some(p) => (
            Some(detectors.level1.predict_payload(p)),
            Some(detectors.level2.predict_proba_payload(p)),
        ),
        None => (None, None),
    };
    verdict_from(analyzed, level1, level2, top_k, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DetectorConfig;
    use crate::pipeline::train_pipeline;
    use std::sync::OnceLock;

    fn detectors() -> &'static TrainedDetectors {
        static D: OnceLock<TrainedDetectors> = OnceLock::new();
        D.get_or_init(|| train_pipeline(24, 11, &DetectorConfig::fast()).detectors)
    }

    #[test]
    fn classify_covers_all_three_outcomes() {
        let bomb = format!("{}1{}", "(".repeat(50_000), ")".repeat(50_000));
        let srcs =
            ["function add(a, b) { return a + b; } add(1, 2);", "var ;;; broken", bomb.as_str()];
        let v = classify_many_cached(
            &srcs,
            &AnalysisConfig::default(),
            None,
            detectors(),
            4,
            crate::DEFAULT_THRESHOLD,
        );
        assert_eq!(v[0].outcome, OutcomeKind::Ok);
        assert!(v[0].level1.is_some() && v[0].level2.is_some());
        assert_eq!(v[1].outcome, OutcomeKind::Degraded);
        assert!(v[1].level1.is_some(), "degraded scripts still classify");
        assert_eq!(v[2].outcome, OutcomeKind::Rejected);
        assert!(v[2].level1.is_none() && v[2].techniques.is_empty());
    }

    #[test]
    fn single_and_batch_paths_agree() {
        let src = "var x = 1; function f(y) { return y * x; } f(2);";
        let batch = classify_many_cached(
            &[src],
            &AnalysisConfig::default(),
            None,
            detectors(),
            4,
            crate::DEFAULT_THRESHOLD,
        );
        let one = classify_one_cached(
            src,
            &AnalysisConfig::default(),
            None,
            detectors(),
            4,
            crate::DEFAULT_THRESHOLD,
        );
        let b = &batch[0];
        assert_eq!(b.outcome, one.outcome);
        assert_eq!(b.level1, one.level1);
        assert_eq!(b.level2, one.level2);
        assert_eq!(b.techniques, one.techniques);
    }
}

//! The vector space combining hand-picked and 4-gram features
//! (paper §III-B: "each feature is associated with one consistent
//! dimension").

use crate::analysis::ScriptAnalysis;
use crate::handpicked::{handpicked_features, FEATURE_NAMES, N_HANDPICKED};
use crate::ngrams::{ngram_counts, NgramVocab};
use jsdetect_lint::LintSummary;
use jsdetect_obs::names;
use serde::{Deserialize, Serialize};

/// Version of the vector-space layout. Bumped when the dimension layout
/// changes (v2: lint-summary densities appended to the hand-picked
/// block; v3: normalized-vs-original delta block after the lint block,
/// plus the ninth lint rule); serialized models from other versions must
/// be refitted.
pub const FEATURE_SPACE_VERSION: u32 = 3;

/// Number of lint-summary dimensions.
const N_LINT: usize = LintSummary::N_FEATURES;

/// Number of normalization-delta dimensions.
const N_NORM: usize = crate::deltas::N_NORMALIZE;

/// Which feature families a vector space includes (used for the feature
/// ablation benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// Include the hand-picked features.
    pub handpicked: bool,
    /// Include the 4-gram features.
    pub ngrams: bool,
    /// Include the lint-rule densities.
    pub lint: bool,
    /// Include the normalized-vs-original delta features.
    pub normalize: bool,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig { handpicked: true, ngrams: true, lint: true, normalize: true }
    }
}

/// A fitted vector space: consistent dimensions for every script.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VectorSpace {
    version: u32,
    config: FeatureConfig,
    vocab: NgramVocab,
}

impl VectorSpace {
    /// Fits the 4-gram vocabulary on a training corpus of analyses.
    pub fn fit<'a, I>(corpus: I, max_ngrams: usize, config: FeatureConfig) -> Self
    where
        I: IntoIterator<Item = &'a ScriptAnalysis>,
    {
        let _t = jsdetect_obs::span(names::SPAN_FIT_SPACE);
        let docs: Vec<_> = corpus.into_iter().map(|a| ngram_counts(&a.program)).collect();
        let vocab = NgramVocab::build(docs.iter(), max_ngrams);
        VectorSpace { version: FEATURE_SPACE_VERSION, config, vocab }
    }

    /// Layout version this space was fitted with.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Total vector dimensionality.
    pub fn dim(&self) -> usize {
        let mut d = 0;
        if self.config.handpicked {
            d += N_HANDPICKED;
        }
        if self.config.lint {
            d += N_LINT;
        }
        if self.config.normalize {
            d += N_NORM;
        }
        if self.config.ngrams {
            d += self.vocab.dim();
        }
        d
    }

    /// Vectorizes one analyzed script.
    pub fn vectorize(&self, a: &ScriptAnalysis) -> Vec<f32> {
        let mut v = Vec::with_capacity(self.dim());
        self.vectorize_into(a, &mut v);
        v
    }

    /// Vectorizes into a caller-owned buffer (cleared first), so batch
    /// vectorization can reuse one scratch row instead of allocating per
    /// script.
    pub fn vectorize_into(&self, a: &ScriptAnalysis, out: &mut Vec<f32>) {
        let _t = jsdetect_obs::span(names::SPAN_VECTORIZE);
        out.clear();
        if self.config.handpicked {
            let _s = jsdetect_obs::span(names::SPAN_HANDPICKED);
            out.extend(handpicked_features(a));
        }
        if self.config.lint {
            out.extend(a.lint.features());
        }
        if self.config.normalize {
            out.extend_from_slice(&a.normalize);
        }
        if self.config.ngrams {
            let _s = jsdetect_obs::span(names::SPAN_NGRAMS);
            out.extend(self.vocab.vectorize(&ngram_counts(&a.program)));
        }
    }

    /// Vectorizes a cached [`FeaturePayload`](crate::FeaturePayload)
    /// without touching source text or AST. Bit-identical to
    /// [`VectorSpace::vectorize`] on the analysis the payload was
    /// extracted from: the hand-picked and lint blocks are replayed
    /// verbatim and the n-gram block is recomputed from exact counts.
    pub fn vectorize_payload(&self, p: &crate::FeaturePayload) -> Vec<f32> {
        let _t = jsdetect_obs::span(names::SPAN_VECTORIZE);
        let mut out = Vec::with_capacity(self.dim());
        if self.config.handpicked {
            out.extend_from_slice(&p.handpicked);
        }
        if self.config.lint {
            out.extend_from_slice(&p.lint);
        }
        if self.config.normalize {
            out.extend_from_slice(&p.normalize);
        }
        if self.config.ngrams {
            out.extend(self.vocab.vectorize_pairs(&p.ngrams));
        }
        out
    }

    /// Name of dimension `i`.
    pub fn dim_name(&self, i: usize) -> String {
        let mut j = i;
        if self.config.handpicked {
            if j < N_HANDPICKED {
                return FEATURE_NAMES[j].to_string();
            }
            j -= N_HANDPICKED;
        }
        if self.config.lint {
            if j < N_LINT {
                return LintSummary::feature_names()[j].clone();
            }
            j -= N_LINT;
        }
        if self.config.normalize {
            if j < N_NORM {
                return crate::deltas::delta_feature_names()[j].clone();
            }
            j -= N_NORM;
        }
        format!("4gram:{}", self.vocab.gram_name(j))
    }

    /// Restores the internal lookup index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.vocab.rebuild_index();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_script;

    fn spaces(srcs: &[&str]) -> (VectorSpace, Vec<ScriptAnalysis>) {
        let analyses: Vec<_> = srcs.iter().map(|s| analyze_script(s).unwrap()).collect();
        let vs = VectorSpace::fit(analyses.iter(), 64, FeatureConfig::default());
        (vs, analyses)
    }

    #[test]
    fn consistent_dimensions() {
        let (vs, analyses) = spaces(&["var x = 1;", "function f() { return 2; }"]);
        let v0 = vs.vectorize(&analyses[0]);
        let v1 = vs.vectorize(&analyses[1]);
        assert_eq!(v0.len(), vs.dim());
        assert_eq!(v1.len(), vs.dim());
        assert_ne!(v0, v1);
    }

    #[test]
    fn handpicked_only_config() {
        let analyses = vec![analyze_script("var x = 1;").unwrap()];
        let vs = VectorSpace::fit(
            analyses.iter(),
            64,
            FeatureConfig { handpicked: true, ngrams: false, lint: false, normalize: false },
        );
        assert_eq!(vs.dim(), crate::handpicked::N_HANDPICKED);
    }

    #[test]
    fn ngrams_only_config() {
        let analyses = vec![analyze_script("var x = 1; var y = 2;").unwrap()];
        let vs = VectorSpace::fit(
            analyses.iter(),
            64,
            FeatureConfig { handpicked: false, ngrams: true, lint: false, normalize: false },
        );
        assert!(vs.dim() > 0);
        assert!(vs.dim() <= 64);
    }

    #[test]
    fn lint_only_config() {
        let analyses = vec![analyze_script("var x = 1;").unwrap()];
        let vs = VectorSpace::fit(
            analyses.iter(),
            64,
            FeatureConfig { handpicked: false, ngrams: false, lint: true, normalize: false },
        );
        assert_eq!(vs.dim(), LintSummary::N_FEATURES);
        assert_eq!(vs.dim_name(0), format!("lint:{}", jsdetect_lint::RULE_NAMES[0]));
    }

    #[test]
    fn dim_names_cover_all_families() {
        let (vs, _) = spaces(&["var x = 1; var y = 2;"]);
        assert_eq!(vs.dim_name(0), "avg_chars_per_line");
        let lint_name = vs.dim_name(crate::handpicked::N_HANDPICKED);
        assert!(lint_name.starts_with("lint:"), "{}", lint_name);
        let norm_name = vs.dim_name(crate::handpicked::N_HANDPICKED + LintSummary::N_FEATURES);
        assert_eq!(norm_name, "normalize:node_ratio");
        let gram_name = vs.dim_name(
            crate::handpicked::N_HANDPICKED + LintSummary::N_FEATURES + crate::deltas::N_NORMALIZE,
        );
        assert!(gram_name.starts_with("4gram:"), "{}", gram_name);
    }

    #[test]
    fn fitted_space_carries_current_version() {
        let (vs, _) = spaces(&["var x = 1;"]);
        assert_eq!(vs.version(), FEATURE_SPACE_VERSION);
    }

    #[test]
    fn lint_dimensions_separate_obfuscated_from_clean() {
        let dirty = "while (running) { debugger; step(); }";
        let (vs, analyses) = spaces(&[dirty, "var x = 1; f(x);"]);
        let v = vs.vectorize(&analyses[0]);
        let lint_block = &v[crate::handpicked::N_HANDPICKED
            ..crate::handpicked::N_HANDPICKED + LintSummary::N_FEATURES];
        assert!(lint_block.iter().any(|&x| x > 0.0), "{:?}", lint_block);
        let clean = vs.vectorize(&analyses[1]);
        let clean_block = &clean[crate::handpicked::N_HANDPICKED
            ..crate::handpicked::N_HANDPICKED + LintSummary::N_FEATURES];
        assert!(clean_block.iter().all(|&x| x == 0.0), "{:?}", clean_block);
    }

    #[test]
    fn serde_roundtrip() {
        let (vs, analyses) = spaces(&["var x = 1; f(x);"]);
        let json = serde_json::to_string(&vs).unwrap();
        let mut back: VectorSpace = serde_json::from_str(&json).unwrap();
        back.rebuild_index();
        assert_eq!(back.vectorize(&analyses[0]), vs.vectorize(&analyses[0]));
    }
}

//! Corpus construction for the `jsdetect` suite.
//!
//! Four layers substitute for the paper's data sources:
//!
//! - [`generator`]: seeded realistic regular-JavaScript generation
//!   (stand-in for 21,000 GitHub/library scripts, §III-D1);
//! - [`dataset`]: ground-truth sets built by applying the transformation
//!   techniques (training / validation / test pools, mixed-technique and
//!   packer test sets, §III-D2 and §III-E);
//! - [`wild`]: population simulators calibrated to the paper's reported
//!   wild measurements (Alexa / npm / malware feeds / longitudinal, §IV);
//! - [`chaos`]: deterministic pathological inputs (nesting bombs, megabyte
//!   one-liners, token floods) exercising the hardened-analysis sandbox.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod dataset;
pub mod generator;
pub mod wild;
pub mod words;

pub use chaos::{chaos_corpus, write_chaos_corpus, ChaosCase};
pub use dataset::{
    implied_labels, mixed_set, packer_set, random_combo, transform_sample, GroundTruth,
    LabeledSample,
};
pub use generator::{module_corpus, regular_corpus, GenOptions, RegularJsGenerator};
pub use wild::{
    alexa_population, malware_population, module_population, npm_population, MalwareSource,
    PopulationModel, WildScript, N_MONTHS,
};

//! Scope analysis: binding declaration and reference resolution.
//!
//! Implements the scoping rules the paper's data-flow layer relies on:
//! `var` and function declarations hoist to the enclosing function (or
//! global) scope, `let`/`const`/`class` are block-scoped, `catch` binds its
//! parameter in a dedicated scope, and unresolved names are classified as
//! globals (e.g. `window`, `document`, `Math`).

use jsdetect_ast::*;
use std::collections::HashMap;

/// Identifies a scope within a [`ScopeTree`].
pub type ScopeId = usize;
/// Identifies a binding within a [`ScopeTree`].
pub type BindingId = usize;

/// What introduced a scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The top-level program scope.
    Global,
    /// A function (declaration, expression, arrow, or method) scope.
    Function,
    /// A block / loop / switch scope.
    Block,
    /// A `catch` clause scope.
    Catch,
}

/// What introduced a binding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BindingKind {
    /// `var` declaration (function-scoped).
    Var,
    /// `let` declaration.
    Let,
    /// `const` declaration.
    Const,
    /// Function declaration or named function expression.
    Function,
    /// Class declaration/expression name.
    Class,
    /// Formal parameter.
    Param,
    /// `catch` parameter.
    CatchParam,
}

/// A declared name.
#[derive(Debug, Clone)]
pub struct Binding {
    /// The declared name.
    pub name: Atom,
    /// How the name was declared.
    pub kind: BindingKind,
    /// Span of the declaring identifier.
    pub decl_span: Span,
    /// Scope that owns the binding.
    pub scope: ScopeId,
}

/// How a reference uses a name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RefKind {
    /// The value is read.
    Read,
    /// The value is written (assignment target).
    Write,
    /// Read-modify-write (`x++`, `x += 1`).
    ReadWrite,
}

/// An identifier occurrence referring to a (possibly global) name.
#[derive(Debug, Clone)]
pub struct Reference {
    /// Referenced name.
    pub name: Atom,
    /// Span of the identifier occurrence.
    pub span: Span,
    /// Resolved binding, or `None` for globals/undeclared.
    pub binding: Option<BindingId>,
    /// Access kind.
    pub kind: RefKind,
}

/// One lexical scope.
#[derive(Debug, Clone)]
pub struct Scope {
    /// This scope's id.
    pub id: ScopeId,
    /// Parent scope (`None` for the global scope).
    pub parent: Option<ScopeId>,
    /// What introduced the scope.
    pub kind: ScopeKind,
    names: HashMap<Atom, BindingId>,
}

/// Classification of the value expression assigned to a variable,
/// recorded at definition sites (declarations and plain assignments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefValueKind {
    /// `x = arr[i]` — computed member access (bracket notation), the shape
    /// left by the *global array* obfuscation technique.
    ComputedMember,
    /// `x = obj.prop` — dot member access.
    DotMember,
    /// `x = [...]`.
    ArrayLiteral,
    /// `x = {...}`.
    ObjectLiteral,
    /// String literal.
    StringLiteral,
    /// Numeric literal.
    NumberLiteral,
    /// Function or arrow expression.
    FunctionValue,
    /// Call or `new` result.
    CallResult,
    /// Anything else.
    Other,
}

/// Classifies a definition's right-hand side.
pub fn classify_def_value(e: &Expr) -> DefValueKind {
    match e {
        Expr::Member { property: MemberProp::Computed(_), .. } => DefValueKind::ComputedMember,
        Expr::Member { property: MemberProp::Ident(_), .. } => DefValueKind::DotMember,
        Expr::Array { .. } => DefValueKind::ArrayLiteral,
        Expr::Object { .. } => DefValueKind::ObjectLiteral,
        Expr::Lit(Lit { value: LitValue::Str(_), .. }) => DefValueKind::StringLiteral,
        Expr::Lit(Lit { value: LitValue::Num(_), .. }) => DefValueKind::NumberLiteral,
        Expr::Function(_) | Expr::Arrow { .. } => DefValueKind::FunctionValue,
        Expr::Call { .. } | Expr::New { .. } => DefValueKind::CallResult,
        _ => DefValueKind::Other,
    }
}

/// The result of scope analysis.
#[derive(Debug, Clone)]
pub struct ScopeTree {
    scopes: Vec<Scope>,
    bindings: Vec<Binding>,
    references: Vec<Reference>,
    def_values: Vec<(Option<BindingId>, DefValueKind)>,
}

impl ScopeTree {
    /// All scopes, indexable by [`ScopeId`].
    pub fn scopes(&self) -> &[Scope] {
        &self.scopes
    }

    /// All bindings, indexable by [`BindingId`].
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// All identifier references (resolved and global).
    pub fn references(&self) -> &[Reference] {
        &self.references
    }

    /// References that did not resolve to a local binding.
    pub fn global_refs(&self) -> impl Iterator<Item = &Reference> {
        self.references.iter().filter(|r| r.binding.is_none())
    }

    /// All references resolved to `binding`.
    pub fn refs_of(&self, binding: BindingId) -> impl Iterator<Item = &Reference> {
        self.references.iter().filter(move |r| r.binding == Some(binding))
    }

    /// `(reads, writes)` for a binding. A `ReadWrite` reference (compound
    /// assignment, update expression) counts toward both.
    pub fn rw_counts(&self, binding: BindingId) -> (usize, usize) {
        let (mut reads, mut writes) = (0usize, 0usize);
        for r in self.refs_of(binding) {
            match r.kind {
                RefKind::Read => reads += 1,
                RefKind::Write => writes += 1,
                RefKind::ReadWrite => {
                    reads += 1;
                    writes += 1;
                }
            }
        }
        (reads, writes)
    }

    /// Definition-site value classifications: one entry per declaration
    /// initializer or plain assignment whose target is a simple variable.
    pub fn def_values(&self) -> &[(Option<BindingId>, DefValueKind)] {
        &self.def_values
    }

    /// Looks a name up through the scope chain starting at `scope`.
    pub fn lookup(&self, mut scope: ScopeId, name: impl Into<Atom>) -> Option<BindingId> {
        let name = name.into();
        loop {
            let s = &self.scopes[scope];
            if let Some(&b) = s.names.get(&name) {
                return Some(b);
            }
            match s.parent {
                Some(p) => scope = p,
                None => return None,
            }
        }
    }
}

/// Builds the scope tree for a program.
pub fn analyze_scopes(program: &Program) -> ScopeTree {
    let mut b = Builder {
        tree: ScopeTree {
            scopes: Vec::new(),
            bindings: Vec::new(),
            references: Vec::new(),
            def_values: Vec::new(),
        },
    };
    let global = b.new_scope(None, ScopeKind::Global);
    b.hoist_stmts(&program.body, global, global);
    for s in &program.body {
        b.stmt(s, global, global);
    }
    b.tree
}

struct Builder {
    tree: ScopeTree,
}

impl Builder {
    fn new_scope(&mut self, parent: Option<ScopeId>, kind: ScopeKind) -> ScopeId {
        let id = self.tree.scopes.len();
        self.tree.scopes.push(Scope { id, parent, kind, names: HashMap::new() });
        id
    }

    fn declare(&mut self, scope: ScopeId, name: Atom, kind: BindingKind, span: Span) -> BindingId {
        if let Some(&existing) = self.tree.scopes[scope].names.get(&name) {
            // Redeclaration (`var x; var x;`): keep the first binding.
            return existing;
        }
        let id = self.tree.bindings.len();
        self.tree.bindings.push(Binding { name, kind, decl_span: span, scope });
        self.tree.scopes[scope].names.insert(name, id);
        id
    }

    fn reference(&mut self, scope: ScopeId, name: Atom, span: Span, kind: RefKind) {
        let binding = self.tree.lookup(scope, name);
        self.tree.references.push(Reference { name, span, binding, kind });
    }

    // ---- hoisting pre-pass -------------------------------------------------

    /// Declares `var` and function declarations of a function (or global)
    /// body into `fn_scope`, recursing through nested blocks but not nested
    /// functions.
    fn hoist_stmts(&mut self, stmts: &[Stmt], fn_scope: ScopeId, _cur: ScopeId) {
        for s in stmts {
            self.hoist_stmt(s, fn_scope);
        }
    }

    fn hoist_stmt(&mut self, s: &Stmt, fn_scope: ScopeId) {
        match s {
            Stmt::VarDecl { kind: VarKind::Var, decls, .. } => {
                for d in decls {
                    self.hoist_pat(&d.id, fn_scope);
                }
            }
            Stmt::FunctionDecl(f) => {
                if let Some(id) = &f.id {
                    self.declare(fn_scope, id.name, BindingKind::Function, id.span);
                }
            }
            Stmt::Block { body, .. } => self.hoist_stmts(body, fn_scope, fn_scope),
            Stmt::If { consequent, alternate, .. } => {
                self.hoist_stmt(consequent, fn_scope);
                if let Some(alt) = alternate {
                    self.hoist_stmt(alt, fn_scope);
                }
            }
            Stmt::For { init, body, .. } => {
                if let Some(ForInit::Var { kind: VarKind::Var, decls }) = init {
                    for d in decls {
                        self.hoist_pat(&d.id, fn_scope);
                    }
                }
                self.hoist_stmt(body, fn_scope);
            }
            Stmt::ForIn { target, body, .. } | Stmt::ForOf { target, iterable: _, body, .. } => {
                if let ForTarget::Var { kind: VarKind::Var, pat } = target {
                    self.hoist_pat(pat, fn_scope);
                }
                self.hoist_stmt(body, fn_scope);
            }
            Stmt::While { body, .. } | Stmt::DoWhile { body, .. } => {
                self.hoist_stmt(body, fn_scope)
            }
            Stmt::Labeled { body, .. } | Stmt::With { body, .. } => self.hoist_stmt(body, fn_scope),
            Stmt::Switch { cases, .. } => {
                for c in cases {
                    self.hoist_stmts(&c.body, fn_scope, fn_scope);
                }
            }
            Stmt::Try { block, handler, finalizer, .. } => {
                self.hoist_stmts(block, fn_scope, fn_scope);
                if let Some(h) = handler {
                    self.hoist_stmts(&h.body, fn_scope, fn_scope);
                }
                if let Some(fin) = finalizer {
                    self.hoist_stmts(fin, fn_scope, fn_scope);
                }
            }
            Stmt::ExportNamed { decl: Some(d), .. } => self.hoist_stmt(d, fn_scope),
            _ => {}
        }
    }

    fn hoist_pat(&mut self, p: &Pat, fn_scope: ScopeId) {
        self.bind_pat(p, fn_scope, BindingKind::Var);
    }

    /// Declares every identifier bound by a pattern.
    fn bind_pat(&mut self, p: &Pat, scope: ScopeId, kind: BindingKind) {
        match p {
            Pat::Ident(i) => {
                self.declare(scope, i.name, kind, i.span);
            }
            Pat::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.bind_pat(el, scope, kind);
                }
            }
            Pat::Object { props, .. } => {
                for prop in props {
                    if let PropKey::Computed(e) = &prop.key {
                        self.expr(e, scope);
                    }
                    self.bind_pat(&prop.value, scope, kind);
                }
            }
            Pat::Assign { target, value, .. } => {
                self.bind_pat(target, scope, kind);
                self.expr(value, scope);
            }
            Pat::Rest { arg, .. } => self.bind_pat(arg, scope, kind),
            Pat::Member(e) => self.expr(e, scope),
        }
    }

    // ---- main pass -----------------------------------------------------------

    #[allow(clippy::only_used_in_recursion)]
    fn stmt(&mut self, s: &Stmt, scope: ScopeId, fn_scope: ScopeId) {
        match s {
            Stmt::Expr { expr, .. } => self.expr(expr, scope),
            Stmt::Block { body, .. } => {
                let inner = self.new_scope(Some(scope), ScopeKind::Block);
                self.declare_lexical(body, inner);
                for st in body {
                    self.stmt(st, inner, fn_scope);
                }
            }
            Stmt::VarDecl { kind, decls, .. } => {
                for d in decls {
                    if kind.is_lexical() {
                        self.bind_pat(&d.id, scope, lexical_kind(*kind));
                    }
                    // `var` ids were hoisted; record writes via init.
                    if let Some(init) = &d.init {
                        self.expr(init, scope);
                        self.pat_def_refs(&d.id, scope);
                        if let Pat::Ident(i) = &d.id {
                            let b = self.tree.lookup(scope, i.name);
                            self.tree.def_values.push((b, classify_def_value(init)));
                        }
                    }
                }
            }
            Stmt::FunctionDecl(f) => self.function(f, scope, false),
            Stmt::ClassDecl(c) => {
                if let Some(id) = &c.id {
                    self.declare(scope, id.name, BindingKind::Class, id.span);
                }
                self.class(c, scope);
            }
            Stmt::If { test, consequent, alternate, .. } => {
                self.expr(test, scope);
                self.stmt(consequent, scope, fn_scope);
                if let Some(alt) = alternate {
                    self.stmt(alt, scope, fn_scope);
                }
            }
            Stmt::For { init, test, update, body, .. } => {
                let head = self.new_scope(Some(scope), ScopeKind::Block);
                match init {
                    Some(ForInit::Var { kind, decls }) => {
                        for d in decls {
                            if kind.is_lexical() {
                                self.bind_pat(&d.id, head, lexical_kind(*kind));
                            }
                            if let Some(e) = &d.init {
                                self.expr(e, head);
                                self.pat_def_refs(&d.id, head);
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => self.expr(e, head),
                    None => {}
                }
                if let Some(t) = test {
                    self.expr(t, head);
                }
                if let Some(u) = update {
                    self.expr(u, head);
                }
                self.stmt(body, head, fn_scope);
            }
            Stmt::ForIn { target, object, body, .. } => {
                let head = self.new_scope(Some(scope), ScopeKind::Block);
                self.for_target(target, head);
                self.expr(object, head);
                self.stmt(body, head, fn_scope);
            }
            Stmt::ForOf { target, iterable, body, .. } => {
                let head = self.new_scope(Some(scope), ScopeKind::Block);
                self.for_target(target, head);
                self.expr(iterable, head);
                self.stmt(body, head, fn_scope);
            }
            Stmt::While { test, body, .. } => {
                self.expr(test, scope);
                self.stmt(body, scope, fn_scope);
            }
            Stmt::DoWhile { body, test, .. } => {
                self.stmt(body, scope, fn_scope);
                self.expr(test, scope);
            }
            Stmt::Switch { discriminant, cases, .. } => {
                self.expr(discriminant, scope);
                let inner = self.new_scope(Some(scope), ScopeKind::Block);
                for c in cases {
                    self.declare_lexical(&c.body, inner);
                }
                for c in cases {
                    if let Some(t) = &c.test {
                        self.expr(t, inner);
                    }
                    for st in &c.body {
                        self.stmt(st, inner, fn_scope);
                    }
                }
            }
            Stmt::Try { block, handler, finalizer, .. } => {
                let tscope = self.new_scope(Some(scope), ScopeKind::Block);
                self.declare_lexical(block, tscope);
                for st in block {
                    self.stmt(st, tscope, fn_scope);
                }
                if let Some(h) = handler {
                    let cscope = self.new_scope(Some(scope), ScopeKind::Catch);
                    if let Some(p) = &h.param {
                        self.bind_pat(p, cscope, BindingKind::CatchParam);
                    }
                    self.declare_lexical(&h.body, cscope);
                    for st in &h.body {
                        self.stmt(st, cscope, fn_scope);
                    }
                }
                if let Some(fin) = finalizer {
                    let fscope = self.new_scope(Some(scope), ScopeKind::Block);
                    self.declare_lexical(fin, fscope);
                    for st in fin {
                        self.stmt(st, fscope, fn_scope);
                    }
                }
            }
            Stmt::Throw { arg, .. } => self.expr(arg, scope),
            Stmt::Return { arg, .. } => {
                if let Some(a) = arg {
                    self.expr(a, scope);
                }
            }
            Stmt::Labeled { body, .. } => self.stmt(body, scope, fn_scope),
            Stmt::With { object, body, .. } => {
                self.expr(object, scope);
                self.stmt(body, scope, fn_scope);
            }
            Stmt::Break { .. }
            | Stmt::Continue { .. }
            | Stmt::Empty { .. }
            | Stmt::Debugger { .. } => {}
            // Import bindings were declared in the lexical pre-pass (module
            // bindings hoist like `const`); nothing to walk here.
            Stmt::Import { .. } => {}
            Stmt::ExportNamed { decl, specifiers, source, .. } => {
                if let Some(decl) = decl {
                    self.stmt(decl, scope, fn_scope);
                }
                // `export { a }` reads local bindings; `export { a } from`
                // re-exports without touching local scope.
                if source.is_none() {
                    for sp in specifiers {
                        self.reference(scope, sp.local.name, sp.local.span, RefKind::Read);
                    }
                }
            }
            Stmt::ExportDefault { expr, .. } => self.expr(expr, scope),
            Stmt::ExportAll { .. } => {}
        }
    }

    /// Declares the lexical (`let`/`const`/`class`) names of a statement
    /// list into `scope` before the main walk (simplified TDZ-free model).
    fn declare_lexical(&mut self, stmts: &[Stmt], scope: ScopeId) {
        for s in stmts {
            match s {
                Stmt::VarDecl { kind, decls, .. } if kind.is_lexical() => {
                    for d in decls {
                        self.bind_pat_names_only(&d.id, scope, lexical_kind(*kind));
                    }
                }
                Stmt::ClassDecl(c) => {
                    if let Some(id) = &c.id {
                        self.declare(scope, id.name, BindingKind::Class, id.span);
                    }
                }
                Stmt::FunctionDecl(f) => {
                    // Block-level function declarations (sloppy mode).
                    if let Some(id) = &f.id {
                        self.declare(scope, id.name, BindingKind::Function, id.span);
                    }
                }
                Stmt::Import { specifiers, .. } => {
                    // Module bindings hoist like `const` (immutable locals).
                    for sp in specifiers {
                        let local = sp.local();
                        self.declare(scope, local.name, BindingKind::Const, local.span);
                    }
                }
                Stmt::ExportNamed { decl: Some(d), .. } => {
                    self.declare_lexical(std::slice::from_ref(d), scope);
                }
                _ => {}
            }
        }
    }

    /// Declares pattern names without walking default-value expressions
    /// (used by the lexical pre-pass; values are walked in the main pass).
    fn bind_pat_names_only(&mut self, p: &Pat, scope: ScopeId, kind: BindingKind) {
        match p {
            Pat::Ident(i) => {
                self.declare(scope, i.name, kind, i.span);
            }
            Pat::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.bind_pat_names_only(el, scope, kind);
                }
            }
            Pat::Object { props, .. } => {
                for prop in props {
                    self.bind_pat_names_only(&prop.value, scope, kind);
                }
            }
            Pat::Assign { target, .. } => self.bind_pat_names_only(target, scope, kind),
            Pat::Rest { arg, .. } => self.bind_pat_names_only(arg, scope, kind),
            Pat::Member(_) => {}
        }
    }

    fn for_target(&mut self, t: &ForTarget, scope: ScopeId) {
        match t {
            ForTarget::Var { kind, pat } => {
                if kind.is_lexical() {
                    self.bind_pat(pat, scope, lexical_kind(*kind));
                }
                self.pat_def_refs(pat, scope);
            }
            ForTarget::Pat(p) => self.pat_write_refs(p, scope),
        }
    }

    /// Records `Write` references for the identifiers a declaration pattern
    /// binds (a declaration with an initializer *defines* those names).
    fn pat_def_refs(&mut self, p: &Pat, scope: ScopeId) {
        match p {
            Pat::Ident(i) => self.reference(scope, i.name, i.span, RefKind::Write),
            Pat::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.pat_def_refs(el, scope);
                }
            }
            Pat::Object { props, .. } => {
                for prop in props {
                    self.pat_def_refs(&prop.value, scope);
                }
            }
            Pat::Assign { target, .. } => self.pat_def_refs(target, scope),
            Pat::Rest { arg, .. } => self.pat_def_refs(arg, scope),
            Pat::Member(e) => self.expr(e, scope),
        }
    }

    /// Records references for an assignment-target pattern.
    fn pat_write_refs(&mut self, p: &Pat, scope: ScopeId) {
        match p {
            Pat::Ident(i) => self.reference(scope, i.name, i.span, RefKind::Write),
            Pat::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.pat_write_refs(el, scope);
                }
            }
            Pat::Object { props, .. } => {
                for prop in props {
                    if let PropKey::Computed(e) = &prop.key {
                        self.expr(e, scope);
                    }
                    self.pat_write_refs(&prop.value, scope);
                }
            }
            Pat::Assign { target, value, .. } => {
                self.pat_write_refs(target, scope);
                self.expr(value, scope);
            }
            Pat::Rest { arg, .. } => self.pat_write_refs(arg, scope),
            Pat::Member(e) => self.expr(e, scope),
        }
    }

    fn function(&mut self, f: &Function, scope: ScopeId, is_expr: bool) {
        // A named function expression binds its own name inside itself.
        let fscope = self.new_scope(Some(scope), ScopeKind::Function);
        if is_expr {
            if let Some(id) = &f.id {
                self.declare(fscope, id.name, BindingKind::Function, id.span);
            }
        }
        for p in &f.params {
            self.bind_pat(p, fscope, BindingKind::Param);
        }
        self.hoist_stmts(&f.body, fscope, fscope);
        self.declare_lexical(&f.body, fscope);
        for s in &f.body {
            self.stmt(s, fscope, fscope);
        }
    }

    fn class(&mut self, c: &Class, scope: ScopeId) {
        if let Some(sup) = &c.super_class {
            self.expr(sup, scope);
        }
        for m in &c.body {
            if let PropKey::Computed(e) = &m.key {
                self.expr(e, scope);
            }
            match &m.value {
                ClassMemberValue::Method(f) => self.function(f, scope, true),
                ClassMemberValue::Field(Some(e)) => self.expr(e, scope),
                ClassMemberValue::Field(None) => {}
            }
        }
    }

    fn expr(&mut self, e: &Expr, scope: ScopeId) {
        match e {
            Expr::Ident(i) => self.reference(scope, i.name, i.span, RefKind::Read),
            Expr::Lit(_) | Expr::This { .. } | Expr::Super { .. } | Expr::MetaProperty { .. } => {}
            Expr::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.expr(el, scope);
                }
            }
            Expr::Object { props, .. } => {
                for p in props {
                    if let PropKey::Computed(k) = &p.key {
                        self.expr(k, scope);
                    }
                    self.expr(&p.value, scope);
                }
            }
            Expr::Function(f) => self.function(f, scope, true),
            Expr::Arrow { params, body, .. } => {
                let fscope = self.new_scope(Some(scope), ScopeKind::Function);
                for p in params {
                    self.bind_pat(p, fscope, BindingKind::Param);
                }
                match body {
                    ArrowBody::Expr(e) => self.expr(e, fscope),
                    ArrowBody::Block(stmts) => {
                        self.hoist_stmts(stmts, fscope, fscope);
                        self.declare_lexical(stmts, fscope);
                        for s in stmts {
                            self.stmt(s, fscope, fscope);
                        }
                    }
                }
            }
            Expr::Class(c) => self.class(c, scope),
            Expr::Template { exprs, .. } => {
                for ex in exprs {
                    self.expr(ex, scope);
                }
            }
            Expr::TaggedTemplate { tag, exprs, .. } => {
                self.expr(tag, scope);
                for ex in exprs {
                    self.expr(ex, scope);
                }
            }
            Expr::Unary { arg, .. } | Expr::Spread { arg, .. } | Expr::Await { arg, .. } => {
                self.expr(arg, scope)
            }
            Expr::Update { arg, .. } => {
                if let Expr::Ident(i) = &**arg {
                    self.reference(scope, i.name, i.span, RefKind::ReadWrite);
                } else {
                    self.expr(arg, scope);
                }
            }
            Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
                self.expr(left, scope);
                self.expr(right, scope);
            }
            Expr::Assign { op, target, value, .. } => {
                if op.is_plain() {
                    self.pat_write_refs(target, scope);
                    if let Pat::Ident(i) = &**target {
                        let b = self.tree.lookup(scope, i.name);
                        self.tree.def_values.push((b, classify_def_value(value)));
                    }
                } else if let Pat::Ident(i) = &**target {
                    self.reference(scope, i.name, i.span, RefKind::ReadWrite);
                } else {
                    self.pat_write_refs(target, scope);
                }
                self.expr(value, scope);
            }
            Expr::Conditional { test, consequent, alternate, .. } => {
                self.expr(test, scope);
                self.expr(consequent, scope);
                self.expr(alternate, scope);
            }
            Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
                self.expr(callee, scope);
                for a in args {
                    self.expr(a, scope);
                }
            }
            Expr::Member { object, property, .. } => {
                self.expr(object, scope);
                if let MemberProp::Computed(p) = property {
                    self.expr(p, scope);
                }
            }
            Expr::Sequence { exprs, .. } => {
                for ex in exprs {
                    self.expr(ex, scope);
                }
            }
            Expr::Yield { arg, .. } => {
                if let Some(a) = arg {
                    self.expr(a, scope);
                }
            }
            Expr::ImportCall { arg, .. } => self.expr(arg, scope),
        }
    }
}

fn lexical_kind(k: VarKind) -> BindingKind {
    match k {
        VarKind::Let => BindingKind::Let,
        VarKind::Const => BindingKind::Const,
        VarKind::Var => BindingKind::Var,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    fn tree(src: &str) -> ScopeTree {
        analyze_scopes(&parse(src).unwrap())
    }

    fn binding_names(t: &ScopeTree) -> Vec<&str> {
        t.bindings().iter().map(|b| b.name.as_str()).collect()
    }

    #[test]
    fn global_var_binding_and_use() {
        let t = tree("var x = 1; use(x);");
        assert_eq!(binding_names(&t), vec!["x"]);
        // `use` is a global ref, `x` resolves.
        let x_refs: Vec<_> = t.references().iter().filter(|r| r.name == "x").collect();
        assert_eq!(x_refs.len(), 2); // def-write + read
        assert!(x_refs.iter().all(|r| r.binding == Some(0)));
        assert!(t.global_refs().any(|r| r.name == "use"));
    }

    #[test]
    fn var_hoisting_allows_use_before_decl() {
        let t = tree("f(x); var x = 1;");
        let first_x = t.references().iter().find(|r| r.name == "x").unwrap();
        assert!(first_x.binding.is_some(), "hoisted var must resolve");
    }

    #[test]
    fn let_is_block_scoped() {
        let t = tree("{ let y = 1; } y = 2;");
        let refs: Vec<_> = t.references().iter().filter(|r| r.name == "y").collect();
        // Inner def resolves, outer write is global.
        assert!(refs.iter().any(|r| r.binding.is_some()));
        assert!(refs.iter().any(|r| r.binding.is_none()));
    }

    #[test]
    fn var_escapes_block() {
        let t = tree("{ var z = 1; } z = 2;");
        let refs: Vec<_> = t.references().iter().filter(|r| r.name == "z").collect();
        assert!(refs.iter().all(|r| r.binding.is_some()));
    }

    #[test]
    fn function_params_shadow_globals() {
        let t = tree("var a = 1; function f(a) { return a; }");
        // The `a` read inside f must resolve to the Param binding.
        let param =
            t.bindings().iter().position(|b| b.kind == BindingKind::Param).expect("param binding");
        let read =
            t.references().iter().find(|r| r.name == "a" && r.kind == RefKind::Read).unwrap();
        assert_eq!(read.binding, Some(param));
    }

    #[test]
    fn catch_param_scoped_to_handler() {
        let t = tree("try { f(); } catch (e) { g(e); } h(e);");
        let refs: Vec<_> = t.references().iter().filter(|r| r.name == "e").collect();
        assert!(refs.iter().any(|r| r.binding.is_some())); // inside handler
        assert!(refs.iter().any(|r| r.binding.is_none())); // outside
    }

    #[test]
    fn named_function_expression_binds_own_name() {
        let t = tree("var f = function rec(n) { return n ? rec(n - 1) : 0; };");
        let rec_read =
            t.references().iter().find(|r| r.name == "rec" && r.kind == RefKind::Read).unwrap();
        assert!(rec_read.binding.is_some());
    }

    #[test]
    fn closures_resolve_through_scope_chain() {
        let t = tree("function outer() { var v = 1; return function () { return v; }; }");
        let reads: Vec<_> =
            t.references().iter().filter(|r| r.name == "v" && r.kind == RefKind::Read).collect();
        assert_eq!(reads.len(), 1);
        assert!(reads[0].binding.is_some());
    }

    #[test]
    fn update_is_read_write() {
        let t = tree("var i = 0; i++;");
        assert!(t.references().iter().any(|r| r.name == "i" && r.kind == RefKind::ReadWrite));
    }

    #[test]
    fn compound_assign_is_read_write() {
        let t = tree("var s = ''; s += 'a';");
        assert!(t.references().iter().any(|r| r.name == "s" && r.kind == RefKind::ReadWrite));
    }

    #[test]
    fn destructuring_declares_all_names() {
        let t = tree("const {a, b: [c, d], ...rest} = obj;");
        let names = binding_names(&t);
        for n in ["a", "c", "d", "rest"] {
            assert!(names.contains(&n), "missing {}", n);
        }
        assert!(!names.contains(&"b"), "property key `b` must not bind");
    }

    #[test]
    fn for_loop_head_let_scoped_to_loop() {
        let t = tree("for (let i = 0; i < 3; i++) { use(i); } i;");
        let refs: Vec<_> = t.references().iter().filter(|r| r.name == "i").collect();
        let unresolved = refs.iter().filter(|r| r.binding.is_none()).count();
        assert_eq!(unresolved, 1, "only the trailing `i` is global");
    }

    #[test]
    fn member_properties_are_not_references() {
        let t = tree("console.log(window.location.href);");
        let names: Vec<_> = t.references().iter().map(|r| r.name.as_str()).collect();
        assert!(names.contains(&"console"));
        assert!(names.contains(&"window"));
        assert!(!names.contains(&"log"));
        assert!(!names.contains(&"href"));
    }

    #[test]
    fn class_name_binds() {
        let t = tree("class Widget {} new Widget();");
        assert!(t.bindings().iter().any(|b| b.kind == BindingKind::Class));
        let read =
            t.references().iter().find(|r| r.name == "Widget" && r.kind == RefKind::Read).unwrap();
        assert!(read.binding.is_some());
    }

    #[test]
    fn arrow_params_bind() {
        let t = tree("xs.map(x => x * 2);");
        let reads: Vec<_> =
            t.references().iter().filter(|r| r.name == "x" && r.kind == RefKind::Read).collect();
        assert_eq!(reads.len(), 1);
        assert!(reads[0].binding.is_some());
    }

    #[test]
    fn switch_cases_share_scope() {
        let t = tree("switch (v) { case 1: let w = 1; break; case 2: w = 2; }");
        let refs: Vec<_> = t.references().iter().filter(|r| r.name == "w").collect();
        assert!(refs.iter().all(|r| r.binding.is_some()));
    }
}

//! JavaScript code-transformation toolbox for the `jsdetect` suite.
//!
//! Implements, from scratch, the ten transformation techniques the paper
//! monitors (§II-C) plus the held-out Dean Edwards packer (§III-E3). The
//! techniques compose: [`apply`] takes a set of techniques and runs the
//! corresponding passes in a canonical order, mirroring how the paper
//! drives obfuscator.io / JSFuck / gnirts / custom-encoding /
//! javascript-minifier / Google Closure with specific configurations.
//!
//! # Examples
//!
//! ```
//! use jsdetect_transform::{apply, Technique};
//!
//! let src = "function greet(name) { return 'hello ' + name; } greet('world');";
//! let out = apply(src, &[Technique::IdentifierObfuscation], 42).unwrap();
//! assert!(out.contains("_0x"));
//! assert!(!out.contains("greet"));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod dead_code;
pub mod flatten;
pub mod global_array;
pub mod jsfuck;
pub mod minify;
pub mod namegen;
pub mod packer;
pub mod presets;
pub mod protection;
pub mod rename;
pub mod string_obf;

use jsdetect_codegen::{to_minified, to_source};
use jsdetect_obs::names;
use jsdetect_parser::{parse, ParseError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// The ten transformation techniques the paper monitors (§II-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Technique {
    /// Randomized variable/function names (`_0x3fa2`).
    IdentifierObfuscation,
    /// String splitting / reversing / encoding.
    StringObfuscation,
    /// Literals pooled into a global (rotated) array.
    GlobalArray,
    /// JSFuck-style `[]()!+` rewriting.
    NoAlphanumeric,
    /// Injected unreachable/unused code.
    DeadCodeInjection,
    /// `while(true)+switch` dispatch loops.
    ControlFlowFlattening,
    /// Anti-reformatting guard.
    SelfDefending,
    /// Anti-devtools `debugger` loops.
    DebugProtection,
    /// Whitespace removal + identifier shortening + dead-code removal.
    MinificationSimple,
    /// Closure-style folding, branch pruning, and compression shortcuts.
    MinificationAdvanced,
}

impl Technique {
    /// All techniques in canonical (label-index) order.
    pub const ALL: [Technique; 10] = [
        Technique::IdentifierObfuscation,
        Technique::StringObfuscation,
        Technique::GlobalArray,
        Technique::NoAlphanumeric,
        Technique::DeadCodeInjection,
        Technique::ControlFlowFlattening,
        Technique::SelfDefending,
        Technique::DebugProtection,
        Technique::MinificationSimple,
        Technique::MinificationAdvanced,
    ];

    /// Stable label index (0..10).
    pub fn index(self) -> usize {
        Technique::ALL.iter().position(|t| *t == self).unwrap()
    }

    /// Short machine-readable name.
    pub fn as_str(self) -> &'static str {
        match self {
            Technique::IdentifierObfuscation => "identifier_obfuscation",
            Technique::StringObfuscation => "string_obfuscation",
            Technique::GlobalArray => "global_array",
            Technique::NoAlphanumeric => "no_alphanumeric",
            Technique::DeadCodeInjection => "dead_code_injection",
            Technique::ControlFlowFlattening => "control_flow_flattening",
            Technique::SelfDefending => "self_defending",
            Technique::DebugProtection => "debug_protection",
            Technique::MinificationSimple => "minification_simple",
            Technique::MinificationAdvanced => "minification_advanced",
        }
    }

    /// Whether the technique is a minification technique (level-1 class
    /// *minified*); the rest are obfuscation techniques.
    pub fn is_minification(self) -> bool {
        matches!(self, Technique::MinificationSimple | Technique::MinificationAdvanced)
    }
}

impl std::fmt::Display for Technique {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Errors from the transformation pipeline.
#[derive(Debug)]
pub enum TransformError {
    /// The input (or an intermediate stage) failed to parse.
    Parse(ParseError),
    /// The no-alphanumeric encoder refused the input.
    Jsfuck(jsfuck::JsfuckError),
}

impl std::fmt::Display for TransformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransformError::Parse(e) => write!(f, "transform parse error: {}", e),
            TransformError::Jsfuck(e) => write!(f, "transform jsfuck error: {}", e),
        }
    }
}

impl std::error::Error for TransformError {}

impl From<ParseError> for TransformError {
    fn from(e: ParseError) -> Self {
        TransformError::Parse(e)
    }
}

impl From<jsfuck::JsfuckError> for TransformError {
    fn from(e: jsfuck::JsfuckError) -> Self {
        TransformError::Jsfuck(e)
    }
}

/// Applies a set of techniques to `src` with a deterministic seed.
///
/// Passes run in a canonical order (injection → restructuring → data
/// obfuscation → renaming → guards → minification → layout → jsfuck) so
/// any combination composes sensibly; the order matches how the paper's
/// tools chain their own internal passes.
pub fn apply(src: &str, techniques: &[Technique], seed: u64) -> Result<String, TransformError> {
    let _t = jsdetect_obs::span(names::SPAN_TRANSFORM_APPLY);
    apply_passes(src, techniques, seed)
        .inspect_err(|_| jsdetect_obs::counter_add(names::CTR_TRANSFORM_FAILURES, 1))
}

fn apply_passes(src: &str, techniques: &[Technique], seed: u64) -> Result<String, TransformError> {
    use Technique::*;
    let has = |t: Technique| techniques.contains(&t);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut prog = parse(src)?;

    if has(DeadCodeInjection) {
        dead_code::inject_dead_code(&mut prog, &mut rng, &dead_code::DeadCodeOptions::default());
    }
    if has(ControlFlowFlattening) {
        flatten::flatten_control_flow(&mut prog, &mut rng, &flatten::FlattenOptions::default());
    }
    if has(GlobalArray) {
        global_array::global_array(
            &mut prog,
            &mut rng,
            &global_array::GlobalArrayOptions::default(),
        );
    }
    if has(StringObfuscation) {
        string_obf::obfuscate_strings(
            &mut prog,
            &mut rng,
            &string_obf::StringObfOptions::default(),
        );
    }
    if has(MinificationAdvanced) {
        minify::minify_advanced(&mut prog);
    } else if has(MinificationSimple) {
        minify::minify_simple(&mut prog);
    }
    if has(IdentifierObfuscation) {
        let mut gen = namegen::HexNameGen::new(StdRng::seed_from_u64(seed ^ 0x1dea));
        rename::rename_bindings(&mut prog, &mut || gen.next_name());
    } else if has(MinificationSimple) || has(MinificationAdvanced) {
        let mut gen = namegen::ShortNameGen::new();
        rename::rename_bindings(&mut prog, &mut || gen.next_name());
    }
    if has(SelfDefending) {
        protection::inject_self_defending(&mut prog, &mut rng);
    }
    if has(DebugProtection) {
        protection::inject_debug_protection(&mut prog, &mut rng);
    }

    let compact = has(MinificationSimple)
        || has(MinificationAdvanced)
        || has(SelfDefending)
        || has(NoAlphanumeric);

    if has(NoAlphanumeric) {
        // JSFuck expands input several hundredfold, and real-world usage
        // encodes small payloads (droppers/loaders), not whole libraries.
        // Keep a statement prefix that fits the payload budget.
        shrink_to_budget(&mut prog, jsfuck::PAYLOAD_BUDGET);
        let out = to_minified(&prog);
        return Ok(jsfuck::JsfuckEncoder::default().encode_program(&out)?);
    }
    let out = if compact { to_minified(&prog) } else { to_source(&prog) };
    Ok(out)
}

/// Truncates a program to the leading statements whose compact printout
/// fits within `budget` bytes (at least one statement is kept).
fn shrink_to_budget(prog: &mut jsdetect_ast::Program, budget: usize) {
    while prog.body.len() > 1 && to_minified(prog).len() > budget {
        // Drop from the end; keep at least one statement.
        let keep = (prog.body.len() / 2).max(1);
        prog.body.truncate(keep);
    }
}

/// Applies the held-out Dean Edwards packer (minify + shorten + pack).
pub fn apply_packer(src: &str, seed: u64) -> Result<String, TransformError> {
    let minified = apply(src, &[Technique::MinificationSimple], seed)?;
    Ok(packer::pack(&minified))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
        function fibonacci(limit) {
            var sequence = [0, 1];
            for (var i = 2; i < limit; i++) {
                sequence.push(sequence[i - 1] + sequence[i - 2]);
            }
            return sequence;
        }
        var result = fibonacci(10);
        console.log('result: ' + result.join(', '));
    "#;

    #[test]
    fn every_single_technique_produces_parseable_output() {
        for t in Technique::ALL {
            let out = apply(SRC, &[t], 7).unwrap_or_else(|e| panic!("{}: {}", t, e));
            assert!(
                jsdetect_parser::parse(&out).is_ok(),
                "{} output does not reparse:\n{}",
                t,
                out
            );
        }
    }

    #[test]
    fn identifier_obfuscation_uses_hex_names() {
        let out = apply(SRC, &[Technique::IdentifierObfuscation], 1).unwrap();
        assert!(out.contains("_0x"));
        assert!(!out.contains("fibonacci"));
        assert!(out.contains("console"), "globals must stay");
    }

    #[test]
    fn minification_simple_shortens_and_compacts() {
        let out = apply(SRC, &[Technique::MinificationSimple], 1).unwrap();
        assert!(out.len() < SRC.len());
        assert!(!out.contains("fibonacci"));
        assert!(!out.contains('\n'));
    }

    #[test]
    fn minification_advanced_is_smaller_than_simple() {
        let src = "if (true) { a(); } else { b(); } var x = 1 + 2; var y = 2 * 3; c(); d();";
        let simple = apply(src, &[Technique::MinificationSimple], 1).unwrap();
        let adv = apply(src, &[Technique::MinificationAdvanced], 1).unwrap();
        assert!(adv.len() <= simple.len(), "simple: {} adv: {}", simple, adv);
    }

    #[test]
    fn no_alphanumeric_is_pure() {
        let out = apply("f(1);", &[Technique::NoAlphanumeric], 1).unwrap();
        assert!(out.chars().all(|c| jsfuck::ALPHABET.contains(&c)));
    }

    #[test]
    fn combined_techniques_compose() {
        let combos: &[&[Technique]] = &[
            &[Technique::IdentifierObfuscation, Technique::StringObfuscation],
            &[Technique::GlobalArray, Technique::MinificationSimple],
            &[Technique::DeadCodeInjection, Technique::ControlFlowFlattening],
            &[
                Technique::StringObfuscation,
                Technique::IdentifierObfuscation,
                Technique::MinificationAdvanced,
            ],
            &[Technique::SelfDefending, Technique::DebugProtection],
            &[Technique::MinificationSimple, Technique::NoAlphanumeric],
        ];
        for combo in combos {
            let out = apply(SRC, combo, 3).unwrap_or_else(|e| panic!("{:?}: {}", combo, e));
            assert!(
                jsdetect_parser::parse(&out).is_ok(),
                "combo {:?} does not reparse:\n{}",
                combo,
                out
            );
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let a = apply(SRC, &[Technique::StringObfuscation], 5).unwrap();
        let b = apply(SRC, &[Technique::StringObfuscation], 5).unwrap();
        let c = apply(SRC, &[Technique::StringObfuscation], 6).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn packer_wraps_with_eval() {
        let out = apply_packer(SRC, 1).unwrap();
        assert!(out.starts_with("eval(function(p,a,c,k,e,d)"));
        assert!(jsdetect_parser::parse(&out).is_ok());
    }

    #[test]
    fn technique_indices_are_stable() {
        for (i, t) in Technique::ALL.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn error_display_formats() {
        let e = TransformError::Parse(jsdetect_parser::parse("var ;").unwrap_err());
        assert!(e.to_string().contains("parse error"));
        let e = TransformError::Jsfuck(jsfuck::JsfuckError::TooLarge { len: 9, limit: 4 });
        assert!(e.to_string().contains("9 bytes"));
        assert!(e.to_string().contains("4 byte"));
    }

    #[test]
    fn unparseable_input_is_an_error_not_a_panic() {
        for t in Technique::ALL {
            assert!(apply("var ;;; broken(", &[t], 1).is_err());
        }
        assert!(apply_packer("var ;;; broken(", 1).is_err());
    }

    #[test]
    fn minification_flags() {
        assert!(Technique::MinificationSimple.is_minification());
        assert!(Technique::MinificationAdvanced.is_minification());
        assert!(!Technique::GlobalArray.is_minification());
    }
}

//! Per-script static analysis bundle.
//!
//! [`analyze_script`] runs the full front-end once — tokens, comments,
//! AST, scopes, control flow, data flow — and hands the result to the
//! feature extractors.

use jsdetect_ast::metrics::{KindCounts, TreeShape};
use jsdetect_ast::Program;
use jsdetect_flow::{analyze_with, DataFlowOptions, ProgramGraph};
use jsdetect_lexer::{Comment, Token};
use jsdetect_lint::{LintRunner, LintSummary};
use jsdetect_obs::names;
use jsdetect_parser::{parse_with_comments, ParseError};

/// Everything the feature extractors need about one script.
#[derive(Debug)]
pub struct ScriptAnalysis {
    /// Original source text.
    pub src: String,
    /// Parsed AST.
    pub program: Program,
    /// Lexical tokens (without comments).
    pub tokens: Vec<Token>,
    /// Comments.
    pub comments: Vec<Comment>,
    /// Scopes + control flow + data flow.
    pub graph: ProgramGraph,
    /// Tree-shape metrics.
    pub shape: TreeShape,
    /// Per-kind node counts.
    pub kinds: KindCounts,
    /// Obfuscation-signature lint summary (per-rule hit counts).
    pub lint: LintSummary,
    /// Normalized-vs-original delta features
    /// ([`crate::deltas::N_NORMALIZE`] of them; the neutral vector when
    /// the analysis is degraded or normalization itself degrades).
    pub normalize: Vec<f32>,
    /// True when this is the lexer-only fallback produced after a parse
    /// failure: `program`/`graph`/`shape`/`kinds` describe an empty program
    /// and only `src`/`tokens`/`comments` carry real signal.
    pub degraded: bool,
}

/// Parses and analyzes one script.
///
/// # Errors
///
/// Returns the parse error if the script is not valid JavaScript.
///
/// # Examples
///
/// ```
/// use jsdetect_features::analyze_script;
/// let a = analyze_script("var x = 1; f(x);").unwrap();
/// assert!(a.shape.node_count > 4);
/// ```
pub fn analyze_script(src: &str) -> Result<ScriptAnalysis, ParseError> {
    let _t = jsdetect_obs::span(names::SPAN_ANALYZE);
    jsdetect_obs::observe(names::HIST_SCRIPT_BYTES, src.len() as u64);
    let (program, comments) = {
        let _s = jsdetect_obs::span(names::SPAN_PARSE);
        parse_with_comments(src)
            .inspect_err(|_| jsdetect_obs::counter_add(names::CTR_PARSE_FAILURES, 1))?
    };
    let tokens = {
        let _s = jsdetect_obs::span(names::SPAN_LEX);
        jsdetect_lexer::tokenize(src).unwrap_or_else(|_| {
            jsdetect_obs::counter_add(names::CTR_LEXER_ERRORS, 1);
            Vec::new()
        })
    };
    let graph = {
        let _s = jsdetect_obs::span(names::SPAN_FLOW);
        analyze_with(&program, &DataFlowOptions::default())
    };
    if !graph.dataflow.complete {
        jsdetect_obs::counter_add(names::CTR_FLOW_TRUNCATIONS, 1);
        jsdetect_obs::counter_add(
            names::CTR_FLOW_TRUNCATED_BINDINGS,
            graph.dataflow.truncated_bindings.len() as u64,
        );
    }
    let (shape, kinds) = {
        let _s = jsdetect_obs::span(names::SPAN_METRICS);
        (jsdetect_ast::metrics::tree_shape(&program), KindCounts::of(&program))
    };
    let lint = {
        let _s = jsdetect_obs::span(names::SPAN_LINT);
        let (diagnostics, lint) = LintRunner::default().run_with_summary(src, &program, &graph);
        jsdetect_obs::counter_add(names::CTR_LINT_FIRES, diagnostics.len() as u64);
        lint
    };
    let normalize = crate::deltas::normalize_deltas(src, &program, shape.node_count, &lint);
    Ok(ScriptAnalysis {
        src: src.to_string(),
        program,
        tokens,
        comments,
        graph,
        shape,
        kinds,
        lint,
        normalize,
        degraded: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analysis_bundles_everything() {
        let a = analyze_script("// c\nvar x = 1;\nif (x) { f(x); }").unwrap();
        assert_eq!(a.comments.len(), 1);
        assert!(!a.tokens.is_empty());
        assert!(a.graph.scopes.bindings().len() == 1);
        assert!(a.shape.max_depth >= 2);
        assert!(a.kinds.total() > 0);
    }

    #[test]
    fn parse_errors_propagate() {
        assert!(analyze_script("var ;;;=").is_err());
    }

    #[test]
    fn empty_and_comment_only_scripts() {
        let a = analyze_script("").unwrap();
        assert_eq!(a.shape.node_count, 1); // just the Program node
        let b = analyze_script(
            "// only a comment
/* and a block */",
        )
        .unwrap();
        assert_eq!(b.comments.len(), 2);
        assert_eq!(b.program.body.len(), 0);
    }

    #[test]
    fn single_long_line_script() {
        // Minified-style single line with thousands of statements.
        let src = "var a=0;".to_string() + &"a=a+1;".repeat(2_000);
        let a = analyze_script(&src).unwrap();
        assert!(a.shape.node_count > 8_000);
        assert!(jsdetect_ast::metrics::avg_chars_per_line(&a.src) > 1_000.0);
    }

    #[test]
    fn deep_but_legal_nesting() {
        let depth = 20;
        let src = format!("{}1{}", "(".repeat(depth), ")".repeat(depth));
        let src = format!("x = {};", src);
        let a = analyze_script(&src).unwrap();
        assert!(a.shape.max_depth >= 3);
    }
}

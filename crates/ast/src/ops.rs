//! Operator enumerations shared by expressions.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Binary operators (`BinaryExpression.operator` in ESTree).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `===`
    EqEqEq,
    /// `!==`
    NotEqEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `>>>`
    UShr,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
    /// `**`
    Exp,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `&`
    BitAnd,
    /// `in`
    In,
    /// `instanceof`
    InstanceOf,
}

impl BinaryOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        use BinaryOp::*;
        match self {
            EqEq => "==",
            NotEq => "!=",
            EqEqEq => "===",
            NotEqEq => "!==",
            Lt => "<",
            LtEq => "<=",
            Gt => ">",
            GtEq => ">=",
            Shl => "<<",
            Shr => ">>",
            UShr => ">>>",
            Add => "+",
            Sub => "-",
            Mul => "*",
            Div => "/",
            Mod => "%",
            Exp => "**",
            BitOr => "|",
            BitXor => "^",
            BitAnd => "&",
            In => "in",
            InstanceOf => "instanceof",
        }
    }

    /// Binding power used by the parser and printer; higher binds tighter.
    pub fn precedence(self) -> u8 {
        use BinaryOp::*;
        match self {
            BitOr => 6,
            BitXor => 7,
            BitAnd => 8,
            EqEq | NotEq | EqEqEq | NotEqEq => 9,
            Lt | LtEq | Gt | GtEq | In | InstanceOf => 10,
            Shl | Shr | UShr => 11,
            Add | Sub => 12,
            Mul | Div | Mod => 13,
            Exp => 14,
        }
    }

    /// Whether `a op (b op c)` equals `(a op b) op c` for printing purposes.
    pub fn is_associative(self) -> bool {
        use BinaryOp::*;
        matches!(self, BitOr | BitXor | BitAnd | Mul)
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Logical operators (`LogicalExpression.operator`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LogicalOp {
    /// `&&`
    And,
    /// `||`
    Or,
    /// `??`
    NullishCoalescing,
}

impl LogicalOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            LogicalOp::And => "&&",
            LogicalOp::Or => "||",
            LogicalOp::NullishCoalescing => "??",
        }
    }

    /// Binding power; `&&` binds tighter than `||`/`??`.
    pub fn precedence(self) -> u8 {
        match self {
            LogicalOp::And => 5,
            LogicalOp::Or | LogicalOp::NullishCoalescing => 4,
        }
    }
}

impl fmt::Display for LogicalOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Unary operators (`UnaryExpression.operator`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UnaryOp {
    /// `-`
    Minus,
    /// `+`
    Plus,
    /// `!`
    Not,
    /// `~`
    BitNot,
    /// `typeof`
    TypeOf,
    /// `void`
    Void,
    /// `delete`
    Delete,
}

impl UnaryOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        use UnaryOp::*;
        match self {
            Minus => "-",
            Plus => "+",
            Not => "!",
            BitNot => "~",
            TypeOf => "typeof",
            Void => "void",
            Delete => "delete",
        }
    }

    /// Whether the operator is a keyword (needs a trailing space).
    pub fn is_keyword(self) -> bool {
        matches!(self, UnaryOp::TypeOf | UnaryOp::Void | UnaryOp::Delete)
    }
}

impl fmt::Display for UnaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Update operators (`UpdateExpression.operator`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum UpdateOp {
    /// `++`
    Increment,
    /// `--`
    Decrement,
}

impl UpdateOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        match self {
            UpdateOp::Increment => "++",
            UpdateOp::Decrement => "--",
        }
    }
}

impl fmt::Display for UpdateOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Assignment operators (`AssignmentExpression.operator`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AssignOp {
    /// `=`
    Assign,
    /// `+=`
    AddAssign,
    /// `-=`
    SubAssign,
    /// `*=`
    MulAssign,
    /// `/=`
    DivAssign,
    /// `%=`
    ModAssign,
    /// `**=`
    ExpAssign,
    /// `<<=`
    ShlAssign,
    /// `>>=`
    ShrAssign,
    /// `>>>=`
    UShrAssign,
    /// `|=`
    BitOrAssign,
    /// `^=`
    BitXorAssign,
    /// `&=`
    BitAndAssign,
    /// `&&=`
    AndAssign,
    /// `||=`
    OrAssign,
    /// `??=`
    NullishAssign,
}

impl AssignOp {
    /// Source text of the operator.
    pub fn as_str(self) -> &'static str {
        use AssignOp::*;
        match self {
            Assign => "=",
            AddAssign => "+=",
            SubAssign => "-=",
            MulAssign => "*=",
            DivAssign => "/=",
            ModAssign => "%=",
            ExpAssign => "**=",
            ShlAssign => "<<=",
            ShrAssign => ">>=",
            UShrAssign => ">>>=",
            BitOrAssign => "|=",
            BitXorAssign => "^=",
            BitAndAssign => "&=",
            AndAssign => "&&=",
            OrAssign => "||=",
            NullishAssign => "??=",
        }
    }

    /// Returns `true` for the plain `=` operator.
    pub fn is_plain(self) -> bool {
        matches!(self, AssignOp::Assign)
    }
}

impl fmt::Display for AssignOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Variable declaration kinds (`VariableDeclaration.kind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VarKind {
    /// `var` — function-scoped, hoisted.
    Var,
    /// `let` — block-scoped.
    Let,
    /// `const` — block-scoped, immutable binding.
    Const,
}

impl VarKind {
    /// Source keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            VarKind::Var => "var",
            VarKind::Let => "let",
            VarKind::Const => "const",
        }
    }

    /// `true` for `let`/`const` (lexical, block-scoped declarations).
    pub fn is_lexical(self) -> bool {
        !matches!(self, VarKind::Var)
    }
}

impl fmt::Display for VarKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_op_strings_roundtrip_uniquely() {
        use BinaryOp::*;
        let all = [
            EqEq, NotEq, EqEqEq, NotEqEq, Lt, LtEq, Gt, GtEq, Shl, Shr, UShr, Add, Sub, Mul, Div,
            Mod, Exp, BitOr, BitXor, BitAnd, In, InstanceOf,
        ];
        let mut seen = std::collections::HashSet::new();
        for op in all {
            assert!(seen.insert(op.as_str()), "duplicate operator text {}", op);
        }
    }

    #[test]
    fn precedence_ordering_matches_spec() {
        assert!(BinaryOp::Mul.precedence() > BinaryOp::Add.precedence());
        assert!(BinaryOp::Add.precedence() > BinaryOp::Shl.precedence());
        assert!(BinaryOp::Shl.precedence() > BinaryOp::Lt.precedence());
        assert!(BinaryOp::Lt.precedence() > BinaryOp::EqEq.precedence());
        assert!(BinaryOp::EqEq.precedence() > BinaryOp::BitAnd.precedence());
        assert!(BinaryOp::BitAnd.precedence() > BinaryOp::BitXor.precedence());
        assert!(BinaryOp::BitXor.precedence() > BinaryOp::BitOr.precedence());
        assert!(LogicalOp::And.precedence() > LogicalOp::Or.precedence());
        assert!(BinaryOp::BitOr.precedence() > LogicalOp::And.precedence());
    }

    #[test]
    fn keyword_unary_ops() {
        assert!(UnaryOp::TypeOf.is_keyword());
        assert!(UnaryOp::Void.is_keyword());
        assert!(UnaryOp::Delete.is_keyword());
        assert!(!UnaryOp::Not.is_keyword());
        assert!(!UnaryOp::Minus.is_keyword());
    }

    #[test]
    fn var_kind_lexical() {
        assert!(!VarKind::Var.is_lexical());
        assert!(VarKind::Let.is_lexical());
        assert!(VarKind::Const.is_lexical());
        assert_eq!(VarKind::Const.to_string(), "const");
    }

    #[test]
    fn assign_op_plain() {
        assert!(AssignOp::Assign.is_plain());
        assert!(!AssignOp::AddAssign.is_plain());
    }
}

//! Figure 7 — technique-usage evolution in transformed Alexa scripts.
//!
//! Paper targets: minification simple rises 38.74% → 47.02%, advanced
//! decays 43.77% → 40%, identifier obfuscation decays 8.23% → 6.21%, the
//! other techniques stay under ~2.4%.

use jsdetect::Technique;
use jsdetect_corpus::alexa_population;
use jsdetect_experiments::{or_exit, technique_usage_probability, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct TimePoint {
    month: usize,
    usage: Vec<(String, f64)>,
    n_transformed: usize,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let sites = args.scaled(28);
    let stride = 8usize;
    let mut points = Vec::new();
    for month in (0..jsdetect_corpus::N_MONTHS).step_by(stride) {
        let pop = alexa_population(month, sites, 0, args.seed ^ (month as u64) ^ 0x7a);
        let srcs: Vec<&str> = pop.iter().map(|s| s.src.as_str()).collect();
        let (usage, n) = technique_usage_probability(&detectors, &srcs);
        eprintln!(
            "[fig7] month {:>2}: simple {:.1}% adv {:.1}% ident {:.1}% ({} transformed)",
            month,
            100.0 * usage[Technique::MinificationSimple.index()],
            100.0 * usage[Technique::MinificationAdvanced.index()],
            100.0 * usage[Technique::IdentifierObfuscation.index()],
            n
        );
        points.push(TimePoint {
            month,
            usage: Technique::ALL
                .iter()
                .map(|t| (t.as_str().to_string(), 100.0 * usage[t.index()]))
                .collect(),
            n_transformed: n,
        });
    }

    println!("Figure 7 — Alexa technique usage over time");
    println!("{:-<76}", "");
    println!(
        "{:>6} {:>11} {:>11} {:>11} {:>8}",
        "month", "min simple", "min adv", "ident obf", "n"
    );
    for p in &points {
        let get =
            |name: &str| p.usage.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap_or(0.0);
        println!(
            "{:>6} {:>10.2}% {:>10.2}% {:>10.2}% {:>8}",
            p.month,
            get("minification_simple"),
            get("minification_advanced"),
            get("identifier_obfuscation"),
            p.n_transformed
        );
    }
    println!("\npaper: simple 38.74%→47.02%, advanced 43.77%→40%, ident 8.23%→6.21%");
    or_exit(write_json(&args, "fig7_alexa_time", &points));
}

//! Offline-compatible shim for the slice of `crossbeam` this workspace uses:
//! `crossbeam::thread::scope` with `scope.spawn(move |_| …)`. Implemented on
//! top of `std::thread::scope` (stable since Rust 1.63), so no external
//! dependency is needed.

#![allow(clippy::all)]

pub mod thread {
    //! Scoped threads.

    use std::any::Any;

    /// Handle passed to the scope closure; mirrors `crossbeam::thread::Scope`.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope (commonly
        /// ignored as `|_|`), allowing nested spawns.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which spawned threads are joined before
    /// `scope` returns. Unlike upstream crossbeam, a panicking child panics
    /// the parent (via `std::thread::scope`) instead of surfacing through the
    /// `Err` branch; callers here unwrap the result either way.
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

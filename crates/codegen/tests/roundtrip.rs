//! Printer correctness: print→parse→print must be a fixpoint, in both
//! pretty and minified modes, across the construct battery.

use jsdetect_codegen::{to_minified, to_source};
use jsdetect_parser::parse;

/// Sources exercising every printer path.
const BATTERY: &[&str] = &[
    "var x = 1;",
    "let a = 1, b = 2, c;",
    "const {x, y: z, w = 3, ...rest} = obj;",
    "const [a, , b, ...tail] = xs;",
    "function f(a, b = 1, ...rest) { return a + b; }",
    "function* gen() { yield 1; yield* inner(); yield; }",
    "async function go() { await step(); }",
    "var f = function named() { return named; };",
    "var g = x => x * 2;",
    "var h = (a, b) => { return a - b; };",
    "var i = async x => await x;",
    "var j = () => ({result: 1});",
    "class A extends B { constructor() { super(); } m(x) { return x; } get p() { return 1; } set p(v) {} static s() {} *gen() { yield 1; } async a() {} [k]() {} f = 1; static g; }",
    "if (a) b(); else if (c) d(); else e();",
    "if (a) if (b) c(); else d();",
    "for (var i = 0; i < 10; i++) sum += i;",
    "for (;;) break;",
    "for (var k in obj) use(k);",
    "for (const x of xs) f(x);",
    "for ([a, b] of pairs) {}",
    "while (x) x--;",
    "do { x++; } while (x < 5);",
    "switch (x) { case 1: a(); break; case 2: default: b(); }",
    "try { f(); } catch (e) { g(e); } finally { h(); }",
    "try { f(); } catch { g(); }",
    "throw new Error('boom');",
    "outer: for (;;) { break outer; }",
    "with (o) { p = 1; }",
    "debugger;",
    ";",
    "({a: 1, 'b': 2, 3: 'c', [k]: 4, short, m() {}, get g() { return 1; }, set s(v) {}, ...spread});",
    "[1, , 3, ...rest];",
    "[1, 2, ,];",
    "a.b.c.d;",
    "a['b']['c'];",
    "a?.b?.[0];",
    "f?.(1);",
    "new Foo(1, 2);",
    "new Foo();",
    "new ns.Cls(1).method();",
    "new (getCls())(1);",
    "(1).toString();",
    "x = a ? b : c ? d : e;",
    "a, b, c;",
    "f((a, b));",
    "x = y = z = 0;",
    "a += b -= c *= d;",
    "a ** b ** c;",
    "(-a) ** 2;",
    "-(a ** 2);",
    "a - -b;",
    "+ +a;",
    "!!x;",
    "typeof void delete a.b;",
    "++x; --y; x++; y--;",
    "a in b;",
    "a instanceof B;",
    "for ((('a' in obj)); false;) {}",
    "x = /ab+c/gi;",
    "/(?:)/;",
    "`plain`;",
    "`a${x}b${y + 1}c`;",
    "tag`v=${v}`;",
    "`nested ${`inner ${z}`}`;",
    "a / /re/.source;",
    "x = {} / 2;",
    "(function () {})();",
    "(function () {}());",
    "a || b && c ?? d;",
    "(a ?? b) || c;",
    "yielded: { break yielded; }",
    "var async = 1; async = async + 1;",
    "obj.class; obj.new; ({for: 1});",
    "s = 'quote\\'s \" and \\\\ \\n\\t\\0 end';",
    "n = 0.5; m = 1e21; o = 0xff; p = -0;",
    "empty = function () {};",
    "void 0;",
    "x = b ? (c, d) : e;",
    "arr.map(function (v, i) { return [v, i]; }).filter(Boolean).reduce(function (a, b) { return a.concat(b); }, []);",
];

#[test]
fn pretty_print_is_fixpoint() {
    for src in BATTERY {
        let ast1 = parse(src).unwrap_or_else(|e| panic!("parse {:?}: {}", src, e));
        let out1 = to_source(&ast1);
        let ast2 = parse(&out1)
            .unwrap_or_else(|e| panic!("reparse of {:?} failed: {}\noutput: {}", src, e, out1));
        let out2 = to_source(&ast2);
        assert_eq!(out1, out2, "pretty fixpoint failed for {:?}", src);
    }
}

#[test]
fn minified_print_is_fixpoint() {
    for src in BATTERY {
        let ast1 = parse(src).unwrap_or_else(|e| panic!("parse {:?}: {}", src, e));
        let min1 = to_minified(&ast1);
        let ast2 = parse(&min1)
            .unwrap_or_else(|e| panic!("reparse of {:?} failed: {}\nminified: {}", src, e, min1));
        let min2 = to_minified(&ast2);
        assert_eq!(min1, min2, "minified fixpoint failed for {:?}", src);
    }
}

#[test]
fn minified_preserves_kind_stream() {
    use jsdetect_ast::kind_stream;
    for src in BATTERY {
        let ast1 = parse(src).unwrap();
        let min = to_minified(&ast1);
        let ast2 = parse(&min)
            .unwrap_or_else(|e| panic!("reparse of {:?} failed: {}\nminified: {}", src, e, min));
        assert_eq!(
            kind_stream(&ast1),
            kind_stream(&ast2),
            "kind stream changed for {:?}\nminified: {}",
            src,
            min
        );
    }
}

#[test]
fn minified_is_smaller_or_equal() {
    let src = r#"
        function distance(a, b) {
            var dx = a.x - b.x;
            var dy = a.y - b.y;
            return Math.sqrt(dx * dx + dy * dy);
        }
    "#;
    let ast = parse(src).unwrap();
    assert!(to_minified(&ast).len() < src.len());
}

#[test]
fn pretty_output_shape() {
    let ast = parse("if(x){f(x);}else{g();}").unwrap();
    assert_eq!(to_source(&ast), "if (x) {\n    f(x);\n} else {\n    g();\n}\n");
}

#[test]
fn minified_output_exact() {
    let ast = parse("var x = 1;\nif (x) { f(x); }").unwrap();
    assert_eq!(to_minified(&ast), "var x=1;if(x){f(x);}");
}

#[test]
fn object_expression_statement_is_parenthesized() {
    let ast = parse("({a: 1});").unwrap();
    let out = to_minified(&ast);
    assert!(out.starts_with("({"), "got {}", out);
    assert!(parse(&out).is_ok());
}

#[test]
fn dangling_else_gets_braces() {
    // if (a) { if (b) c(); } else d(); — printer must not re-associate else.
    let src = "if (a) { if (b) c(); } else d();";
    let ast = parse(src).unwrap();
    let out = to_minified(&ast);
    let reparsed = parse(&out).unwrap();
    // The outer if must still have an alternate after roundtrip.
    match &reparsed.body[0] {
        jsdetect_ast::Stmt::If { alternate, .. } => assert!(alternate.is_some()),
        other => panic!("unexpected {:?}", other),
    }
}

#[test]
fn number_formats() {
    use jsdetect_codegen::format_number;
    assert_eq!(format_number(1.0), "1");
    assert_eq!(format_number(0.5), "0.5");
    assert_eq!(format_number(-0.0), "-0");
    assert_eq!(format_number(f64::NAN), "NaN");
    assert_eq!(format_number(f64::INFINITY), "Infinity");
    assert_eq!(format_number(255.0), "255");
}

#[test]
fn string_escaping() {
    use jsdetect_codegen::escape_string;
    assert_eq!(escape_string("a'b"), r"'a\'b'");
    assert_eq!(escape_string("tab\there"), "'tab\\there'");
    assert_eq!(escape_string("\u{2028}"), "'\\u2028'");
    // Escaped output must reparse to the same value.
    let src = format!("x = {};", escape_string("mix'\"\\\n\0\u{1}end"));
    let ast = parse(&src).unwrap();
    match &ast.body[0] {
        jsdetect_ast::Stmt::Expr { expr: jsdetect_ast::Expr::Assign { value, .. }, .. } => {
            assert_eq!(value.as_str_lit(), Some("mix'\"\\\n\0\u{1}end"));
        }
        other => panic!("unexpected {:?}", other),
    }
}

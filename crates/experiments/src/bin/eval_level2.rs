//! §III-E1 (Test Set 1, level 2) — exact-set accuracy and Top-k over the
//! held-out per-technique pool.
//!
//! Paper targets: exact-set 86.95%; Top-1 99.63%, Top-2 90.85%,
//! Top-3 98.95% (Top-k correctness as defined in §III-E1, where ground
//! truths carry up to 3 labels). Also reports per-technique recall.

use jsdetect::Technique;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use jsdetect_ml::metrics;
use serde::Serialize;

#[derive(Serialize)]
struct Level2Result {
    exact_match_acc: f64,
    top_k_acc: Vec<f64>,
    per_technique_recall: Vec<(String, f64, usize)>,
    n: usize,
    paper_exact_match: f64,
    paper_top_k: [f64; 3],
}

fn main() {
    let args = Args::parse();
    let (detectors, pools) = or_exit(train_cached(&args));

    let srcs: Vec<&str> = pools.test_level2.iter().map(|s| s.src.as_str()).collect();
    let probs = detectors.level2.predict_proba_many(&srcs);
    let mut kept_probs: Vec<Vec<f32>> = Vec::new();
    let mut kept_truth: Vec<Vec<bool>> = Vec::new();
    for (p, s) in probs.into_iter().zip(&pools.test_level2) {
        if let Some(p) = p {
            kept_probs.push(p);
            kept_truth.push(s.label_vector());
        }
    }

    let hard: Vec<Vec<bool>> =
        kept_probs.iter().map(|p| p.iter().map(|v| *v >= 0.5).collect()).collect();
    let exact = 100.0 * metrics::exact_match(&hard, &kept_truth);
    let top_k: Vec<f64> =
        (1..=3).map(|k| 100.0 * metrics::top_k_accuracy(&kept_probs, &kept_truth, k)).collect();

    let mut recalls = Vec::new();
    for t in Technique::ALL {
        let mut ok = 0usize;
        let mut n = 0usize;
        for (p, truth) in kept_probs.iter().zip(&kept_truth) {
            if truth[t.index()] {
                n += 1;
                if p[t.index()] >= 0.5 {
                    ok += 1;
                }
            }
        }
        recalls.push((t.as_str().to_string(), 100.0 * ok as f64 / n.max(1) as f64, n));
    }

    let result = Level2Result {
        exact_match_acc: exact,
        top_k_acc: top_k.clone(),
        per_technique_recall: recalls.clone(),
        n: kept_probs.len(),
        paper_exact_match: 86.95,
        paper_top_k: [99.63, 90.85, 98.95],
    };

    println!("Level-2 detector accuracy (Test Set 1, §III-E1), n={}", result.n);
    println!("{:-<64}", "");
    println!("exact-set accuracy: {:.2}% (paper: 86.95%)", exact);
    for (i, v) in top_k.iter().enumerate() {
        println!("top-{} accuracy:     {:.2}% (paper: {:.2}%)", i + 1, v, result.paper_top_k[i]);
    }
    println!("\nper-technique recall at threshold 0.5:");
    for (name, r, n) in &recalls {
        println!("  {:26} {:6.2}%  (n={})", name, r, n);
    }
    println!(
        "\nnote: Top-k for k>1 depends on how many single-configuration\n\
         samples carry multiple labels; our tools bundle fewer implied\n\
         techniques than obfuscator.io, so Top-2/Top-3 are lower here\n\
         while exact-set accuracy exceeds the paper's."
    );
    or_exit(write_json(&args, "eval_level2", &result));
}

//! Single-pass fact collection shared by every rule.
//!
//! All rules read from one [`Facts`] bundle collected in a single AST
//! walk, keeping the engine O(nodes) regardless of rule count. The walk
//! tracks the parent context a generic child-order visitor cannot see: a
//! `switch` *inside* a literal-true loop, a `debugger` *inside* a loop
//! body, an equality test *guarding* a block.

use jsdetect_ast::*;
use jsdetect_flow::ProgramGraph;
use std::collections::HashMap;

/// Everything a [`crate::Rule`] can look at.
pub struct LintContext<'a> {
    /// Original source text.
    pub src: &'a str,
    /// Parsed program.
    pub program: &'a Program,
    /// Scope / control-flow / data-flow layers.
    pub graph: &'a ProgramGraph,
    /// Facts gathered in one AST pass.
    pub facts: Facts,
}

impl<'a> LintContext<'a> {
    /// Walks the program once and collects all facts.
    pub fn collect(src: &'a str, program: &'a Program, graph: &'a ProgramGraph) -> Self {
        let mut w = Walk { facts: Facts::default(), loop_depth: 0, lt_loops: Vec::new() };
        w.stmts(&program.body);
        LintContext { src, program, graph, facts: w.facts }
    }
}

/// A `switch` statement found inside a literal-true loop — the dispatcher
/// shape control-flow flattening produces.
#[derive(Debug, Clone)]
pub struct DispatchSwitch {
    /// Span of the `switch` statement.
    pub span: Span,
    /// Span of the enclosing literal-true loop.
    pub loop_span: Span,
    /// Identifiers appearing in the discriminant (dispatch state).
    pub state_idents: Vec<Atom>,
    /// Number of cases.
    pub cases: usize,
    /// Cases whose test is a string literal (flattened order keys).
    pub string_cases: usize,
    /// Whether the discriminant itself mutates state (`order[i++]`).
    pub has_update: bool,
}

/// A variable initialized with an all-string-literal array.
#[derive(Debug, Clone)]
pub struct StringArray {
    /// Declared name.
    pub name: Atom,
    /// Span of the array literal.
    pub span: Span,
    /// Number of elements.
    pub len: usize,
}

/// A function whose body returns a computed index into a named array —
/// the accessor/decoder shim of the global-string-array technique.
#[derive(Debug, Clone)]
pub struct DecoderFn {
    /// Function name (declaration id or the variable it is assigned to).
    pub name: Option<Atom>,
    /// Span of the function.
    pub span: Span,
    /// Name of the array it indexes.
    pub array: Atom,
}

/// A block guarded by an `IDENT === 'string'` comparison (an opaque
/// predicate candidate from dead-code injection).
#[derive(Debug, Clone)]
pub struct OpaqueBranch {
    /// Span of the guarded block (if-consequent or while-body).
    pub body_span: Span,
    /// Span of the comparison expression.
    pub test_span: Span,
    /// The compared identifier.
    pub ident: Atom,
    /// The string the identifier is compared against.
    pub expected: Atom,
}

/// Facts gathered by the single collection pass.
#[derive(Debug, Default)]
pub struct Facts {
    /// Total statements walked (density denominator).
    pub statements: u32,
    /// Switches found inside literal-true loops.
    pub dispatch_switches: Vec<DispatchSwitch>,
    /// All-string-literal array declarations (length ≥ 2).
    pub string_arrays: Vec<StringArray>,
    /// Non-literal computed-member reads (`name[expr]`, not `name[0]`)
    /// per identifier.
    pub computed_reads: HashMap<Atom, u32>,
    /// Expression-position uses per identifier (excluding declarations
    /// and assignment targets).
    pub ident_uses: HashMap<Atom, u32>,
    /// Decoder-shim candidates.
    pub decoders: Vec<DecoderFn>,
    /// Direct calls per callee identifier.
    pub call_counts: HashMap<Atom, u32>,
    /// `debugger` statements lexically inside a loop body.
    pub debugger_in_loop: Vec<Span>,
    /// `x.constructor('…debugger…')` call sites.
    pub constructor_code_calls: Vec<Span>,
    /// `.search()` / `.test()` calls whose pattern is a regex-pump string.
    pub packed_search_calls: Vec<Span>,
    /// Comma-sequence expressions and their element counts.
    pub sequence_chains: Vec<(Span, usize)>,
    /// `IDENT === 'string'` guarded blocks.
    pub opaque_branches: Vec<OpaqueBranch>,
    /// String values assigned to each name at declaration sites.
    pub const_strings: HashMap<Atom, Vec<Atom>>,
}

struct Walk {
    facts: Facts,
    loop_depth: usize,
    /// Spans of enclosing loops whose condition is literally true.
    lt_loops: Vec<Span>,
}

impl Walk {
    fn stmts(&mut self, list: &[Stmt]) {
        for s in list {
            self.stmt(s);
        }
    }

    fn stmt(&mut self, s: &Stmt) {
        self.facts.statements += 1;
        match s {
            Stmt::Expr { expr, .. } => self.expr(expr),
            Stmt::Block { body, .. } => self.stmts(body),
            Stmt::VarDecl { decls, .. } => {
                for d in decls {
                    self.declarator(d);
                }
            }
            Stmt::FunctionDecl(f) => self.function(f, None),
            Stmt::ClassDecl(c) => self.class(c),
            Stmt::If { test, consequent, alternate, .. } => {
                if let Some((ident, expected, test_span)) = as_opaque_test(test) {
                    self.facts.opaque_branches.push(OpaqueBranch {
                        body_span: consequent.span(),
                        test_span,
                        ident,
                        expected,
                    });
                }
                self.expr(test);
                self.stmt(consequent);
                if let Some(a) = alternate {
                    self.stmt(a);
                }
            }
            Stmt::For { init, test, update, body, span } => {
                match init {
                    Some(ForInit::Var { decls, .. }) => {
                        for d in decls {
                            self.declarator(d);
                        }
                    }
                    Some(ForInit::Expr(e)) => self.expr(e),
                    None => {}
                }
                if let Some(t) = test {
                    self.expr(t);
                }
                if let Some(u) = update {
                    self.expr(u);
                }
                // `for (;;)` loops forever just like `while (true)`.
                let lt = test.as_ref().is_none_or(is_literal_true);
                self.enter_loop(*span, lt);
                self.stmt(body);
                self.exit_loop(lt);
            }
            Stmt::ForIn { target, object, body, span } => {
                self.for_target(target);
                self.expr(object);
                self.enter_loop(*span, false);
                self.stmt(body);
                self.exit_loop(false);
            }
            Stmt::ForOf { target, iterable, body, span } => {
                self.for_target(target);
                self.expr(iterable);
                self.enter_loop(*span, false);
                self.stmt(body);
                self.exit_loop(false);
            }
            Stmt::While { test, body, span } => {
                if let Some((ident, expected, test_span)) = as_opaque_test(test) {
                    self.facts.opaque_branches.push(OpaqueBranch {
                        body_span: body.span(),
                        test_span,
                        ident,
                        expected,
                    });
                }
                self.expr(test);
                let lt = is_literal_true(test);
                self.enter_loop(*span, lt);
                self.stmt(body);
                self.exit_loop(lt);
            }
            Stmt::DoWhile { body, test, span } => {
                self.expr(test);
                let lt = is_literal_true(test);
                self.enter_loop(*span, lt);
                self.stmt(body);
                self.exit_loop(lt);
            }
            Stmt::Switch { discriminant, cases, .. } => {
                if let Some(&loop_span) = self.lt_loops.last() {
                    let mut state_idents = Vec::new();
                    collect_idents(discriminant, &mut state_idents);
                    let string_cases = cases
                        .iter()
                        .filter(|c| {
                            matches!(&c.test, Some(Expr::Lit(Lit { value: LitValue::Str(_), .. })))
                        })
                        .count();
                    self.facts.dispatch_switches.push(DispatchSwitch {
                        span: s.span(),
                        loop_span,
                        state_idents,
                        cases: cases.len(),
                        string_cases,
                        has_update: contains_update(discriminant),
                    });
                }
                self.expr(discriminant);
                for c in cases {
                    if let Some(t) = &c.test {
                        self.expr(t);
                    }
                    self.stmts(&c.body);
                }
            }
            Stmt::Try { block, handler, finalizer, .. } => {
                self.stmts(block);
                if let Some(h) = handler {
                    if let Some(p) = &h.param {
                        self.pat(p);
                    }
                    self.stmts(&h.body);
                }
                if let Some(f) = finalizer {
                    self.stmts(f);
                }
            }
            Stmt::Throw { arg, .. } => self.expr(arg),
            Stmt::Return { arg, .. } => {
                if let Some(a) = arg {
                    self.expr(a);
                }
            }
            Stmt::Labeled { body, .. } => self.stmt(body),
            Stmt::With { object, body, .. } => {
                self.expr(object);
                self.stmt(body);
            }
            Stmt::Debugger { span } => {
                if self.loop_depth > 0 {
                    self.facts.debugger_in_loop.push(*span);
                }
            }
            Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } => {}
            Stmt::Import { .. } | Stmt::ExportAll { .. } => {}
            Stmt::ExportNamed { decl, .. } => {
                if let Some(decl) = decl {
                    self.stmt(decl);
                }
            }
            Stmt::ExportDefault { expr, .. } => self.expr(expr),
        }
    }

    fn enter_loop(&mut self, span: Span, literal_true: bool) {
        self.loop_depth += 1;
        if literal_true {
            self.lt_loops.push(span);
        }
    }

    fn exit_loop(&mut self, literal_true: bool) {
        self.loop_depth -= 1;
        if literal_true {
            self.lt_loops.pop();
        }
    }

    fn declarator(&mut self, d: &VarDeclarator) {
        let Some(name) = d.id.as_ident().map(|i| i.name) else {
            self.pat(&d.id);
            if let Some(init) = &d.init {
                self.expr(init);
            }
            return;
        };
        match &d.init {
            Some(Expr::Lit(Lit { value: LitValue::Str(s), .. })) => {
                self.facts.const_strings.entry(name).or_default().push(*s);
            }
            Some(arr @ Expr::Array { elements, span }) => {
                let strings = elements
                    .iter()
                    .filter(|e| matches!(e, Some(Expr::Lit(Lit { value: LitValue::Str(_), .. }))))
                    .count();
                if elements.len() >= 2 && strings == elements.len() {
                    self.facts.string_arrays.push(StringArray {
                        name,
                        span: *span,
                        len: elements.len(),
                    });
                }
                self.expr(arr);
            }
            Some(Expr::Function(f)) => self.function(f, Some(&d.id)),
            Some(other) => self.expr(other),
            None => {}
        }
    }

    /// Walks a function; `assigned_to` supplies the name when an anonymous
    /// function expression is bound by a declarator (`var f = function…`).
    fn function(&mut self, f: &Function, assigned_to: Option<&Pat>) {
        let name =
            f.id.as_ref()
                .map(|i| i.name)
                .or_else(|| assigned_to.and_then(|p| p.as_ident()).map(|i| i.name));
        self.record_decoder(name, f);
        for p in &f.params {
            self.pat(p);
        }
        self.stmts(&f.body);
    }

    /// Records the decoder-shim shape: a direct `return ARR[expr]` in the
    /// function body.
    fn record_decoder(&mut self, name: Option<Atom>, f: &Function) {
        for s in &f.body {
            if let Stmt::Return {
                arg: Some(Expr::Member { object, property: MemberProp::Computed(_), .. }),
                ..
            } = s
            {
                if let Expr::Ident(arr) = object.as_ref() {
                    self.facts.decoders.push(DecoderFn { name, span: f.span, array: arr.name });
                    return;
                }
            }
        }
    }

    fn class(&mut self, c: &Class) {
        if let Some(sc) = &c.super_class {
            self.expr(sc);
        }
        for m in &c.body {
            if let PropKey::Computed(k) = &m.key {
                self.expr(k);
            }
            match &m.value {
                ClassMemberValue::Method(f) => self.function(f, None),
                ClassMemberValue::Field(Some(e)) => self.expr(e),
                ClassMemberValue::Field(None) => {}
            }
        }
    }

    fn for_target(&mut self, t: &ForTarget) {
        match t {
            ForTarget::Var { pat, .. } | ForTarget::Pat(pat) => self.pat(pat),
        }
    }

    fn use_ident(&mut self, name: Atom) {
        *self.facts.ident_uses.entry(name).or_insert(0) += 1;
    }

    fn member(&mut self, e: &Expr) {
        let Expr::Member { object, property, .. } = e else { return };
        match object.as_ref() {
            Expr::Ident(i) => {
                self.use_ident(i.name);
                // Literal indices (`arr[0]`) are ordinary element access;
                // decoder shims index with a computed expression.
                if matches!(property, MemberProp::Computed(k) if !matches!(k.as_ref(), Expr::Lit(_)))
                {
                    *self.facts.computed_reads.entry(i.name).or_insert(0) += 1;
                }
            }
            other => self.expr(other),
        }
        if let MemberProp::Computed(k) = property {
            self.expr(k);
        }
    }

    fn expr(&mut self, e: &Expr) {
        match e {
            Expr::Ident(i) => self.use_ident(i.name),
            Expr::Lit(_) | Expr::This { .. } | Expr::Super { .. } | Expr::MetaProperty { .. } => {}
            Expr::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.expr(el);
                }
            }
            Expr::Object { props, .. } => {
                for p in props {
                    if let PropKey::Computed(k) = &p.key {
                        self.expr(k);
                    }
                    self.expr(&p.value);
                }
            }
            Expr::Function(f) => self.function(f, None),
            Expr::Arrow { params, body, .. } => {
                for p in params {
                    self.pat(p);
                }
                match body {
                    ArrowBody::Expr(e) => self.expr(e),
                    ArrowBody::Block(b) => self.stmts(b),
                }
            }
            Expr::Class(c) => self.class(c),
            Expr::Template { exprs, .. } => {
                for e in exprs {
                    self.expr(e);
                }
            }
            Expr::TaggedTemplate { tag, exprs, .. } => {
                self.expr(tag);
                for e in exprs {
                    self.expr(e);
                }
            }
            Expr::Unary { arg, .. }
            | Expr::Update { arg, .. }
            | Expr::Spread { arg, .. }
            | Expr::Await { arg, .. } => self.expr(arg),
            Expr::Yield { arg, .. } => {
                if let Some(a) = arg {
                    self.expr(a);
                }
            }
            Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
                self.expr(left);
                self.expr(right);
            }
            Expr::Assign { target, value, .. } => {
                self.pat(target);
                self.expr(value);
            }
            Expr::Conditional { test, consequent, alternate, .. } => {
                self.expr(test);
                self.expr(consequent);
                self.expr(alternate);
            }
            Expr::Sequence { exprs, span } => {
                self.facts.sequence_chains.push((*span, exprs.len()));
                for e in exprs {
                    self.expr(e);
                }
            }
            Expr::Member { .. } => self.member(e),
            Expr::Call { callee, args, span } => {
                match callee.as_ref() {
                    Expr::Ident(i) => {
                        self.use_ident(i.name);
                        *self.facts.call_counts.entry(i.name).or_insert(0) += 1;
                    }
                    m @ Expr::Member { property: MemberProp::Ident(p), .. } => {
                        match p.name.as_str() {
                            "search" | "test"
                                if args.first().is_some_and(is_packed_pattern_arg) =>
                            {
                                self.facts.packed_search_calls.push(*span);
                            }
                            "constructor" => {
                                if let Some(Expr::Lit(Lit { value: LitValue::Str(s), .. })) =
                                    args.first()
                                {
                                    if s.contains("debugger") {
                                        self.facts.constructor_code_calls.push(*span);
                                    }
                                }
                            }
                            _ => {}
                        }
                        self.expr(m);
                    }
                    other => self.expr(other),
                }
                for a in args {
                    self.expr(a);
                }
            }
            Expr::New { callee, args, .. } => {
                self.expr(callee);
                for a in args {
                    self.expr(a);
                }
            }
            Expr::ImportCall { arg, .. } => self.expr(arg),
        }
    }

    fn pat(&mut self, p: &Pat) {
        match p {
            // Binding / write position: not a value use.
            Pat::Ident(_) => {}
            Pat::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.pat(el);
                }
            }
            Pat::Object { props, .. } => {
                for pr in props {
                    if let PropKey::Computed(k) = &pr.key {
                        self.expr(k);
                    }
                    self.pat(&pr.value);
                }
            }
            Pat::Assign { target, value, .. } => {
                self.pat(target);
                self.expr(value);
            }
            Pat::Rest { arg, .. } => self.pat(arg),
            Pat::Member(e) => self.member(e),
        }
    }
}

fn lit_truthy(l: &Lit) -> bool {
    match &l.value {
        LitValue::Bool(b) => *b,
        LitValue::Num(n) => *n != 0.0,
        LitValue::Str(s) => !s.is_empty(),
        LitValue::Null => false,
        LitValue::Regex { .. } => true,
        // Conservative: only plain `0n` is a certainly-falsy BigInt spelling.
        LitValue::BigInt(d) => d.as_str() != "0",
    }
}

/// `true`, nonzero numbers, and the obfuscator spellings `!![]` / `!!{}` /
/// `!0`.
fn is_literal_true(e: &Expr) -> bool {
    match e {
        Expr::Lit(l) => lit_truthy(l),
        Expr::Unary { op: UnaryOp::Not, arg, .. } => match arg.as_ref() {
            Expr::Unary { op: UnaryOp::Not, arg: inner, .. } => match inner.as_ref() {
                Expr::Array { .. } | Expr::Object { .. } => true,
                Expr::Lit(l) => lit_truthy(l),
                _ => false,
            },
            Expr::Lit(l) => !lit_truthy(l),
            _ => false,
        },
        _ => false,
    }
}

/// Matches `IDENT === 'string'` (either operand order, `==` or `===`).
fn as_opaque_test(e: &Expr) -> Option<(Atom, Atom, Span)> {
    let Expr::Binary { op, left, right, span } = e else { return None };
    if !matches!(op, BinaryOp::EqEq | BinaryOp::EqEqEq) {
        return None;
    }
    let (id, lit) = match (left.as_ref(), right.as_ref()) {
        (Expr::Ident(i), Expr::Lit(l)) | (Expr::Lit(l), Expr::Ident(i)) => (i, l),
        _ => return None,
    };
    let LitValue::Str(s) = &lit.value else { return None };
    Some((id.name, *s, *span))
}

fn contains_update(e: &Expr) -> bool {
    match e {
        Expr::Update { .. } => true,
        Expr::Member { object, property, .. } => {
            contains_update(object)
                || match property {
                    MemberProp::Computed(k) => contains_update(k),
                    MemberProp::Ident(_) | MemberProp::Private(_) => false,
                }
        }
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            contains_update(left) || contains_update(right)
        }
        Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
            contains_update(callee) || args.iter().any(contains_update)
        }
        Expr::Unary { arg, .. } | Expr::Spread { arg, .. } | Expr::Await { arg, .. } => {
            contains_update(arg)
        }
        Expr::Conditional { test, consequent, alternate, .. } => {
            contains_update(test) || contains_update(consequent) || contains_update(alternate)
        }
        Expr::Sequence { exprs, .. } => exprs.iter().any(contains_update),
        Expr::Assign { value, .. } => contains_update(value),
        _ => false,
    }
}

fn collect_idents(e: &Expr, out: &mut Vec<Atom>) {
    match e {
        Expr::Ident(i) => out.push(i.name),
        Expr::Member { object, property, .. } => {
            collect_idents(object, out);
            if let MemberProp::Computed(k) = property {
                collect_idents(k, out);
            }
        }
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            collect_idents(left, out);
            collect_idents(right, out);
        }
        Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
            collect_idents(callee, out);
            for a in args {
                collect_idents(a, out);
            }
        }
        Expr::Unary { arg, .. } | Expr::Update { arg, .. } | Expr::Spread { arg, .. } => {
            collect_idents(arg, out)
        }
        Expr::Conditional { test, consequent, alternate, .. } => {
            collect_idents(test, out);
            collect_idents(consequent, out);
            collect_idents(alternate, out);
        }
        Expr::Sequence { exprs, .. } => {
            for e in exprs {
                collect_idents(e, out);
            }
        }
        Expr::Assign { target, value, .. } => {
            if let Pat::Ident(i) = target.as_ref() {
                out.push(i.name);
            }
            collect_idents(value, out);
        }
        _ => {}
    }
}

fn is_packed_pattern_arg(e: &Expr) -> bool {
    let pattern = match e {
        Expr::Lit(Lit { value: LitValue::Str(s), .. }) => s.as_str(),
        Expr::Lit(Lit { value: LitValue::Regex { pattern, .. }, .. }) => pattern.as_str(),
        _ => return false,
    };
    is_packed_pattern(pattern)
}

/// Nested quantified groups — `(((.+)+)+)+` — the catastrophic-
/// backtracking pump self-defending guards run against their own source.
pub(crate) fn is_packed_pattern(s: &str) -> bool {
    s.contains("(((") && s.contains(".+)+")
}

//! A miniature version of the paper's §IV study: train the detectors,
//! simulate small Alexa / npm / malware populations, and report how each
//! population's transformation landscape differs.
//!
//! Scripts flow through [`classify_many_cached`] — the same guarded,
//! cache-aware batch entry the `jsdetect-serve` daemon's workers use per
//! request — so a survey result here and a daemon answer for the same
//! bytes cannot drift.
//!
//! ```sh
//! cargo run --release --example wild_survey
//! ```

use jsdetect_suite::corpus::{
    alexa_population, malware_population, npm_population, MalwareSource, WildScript,
};
use jsdetect_suite::detector::{
    classify_many_cached, train_pipeline, AnalysisConfig, DetectorConfig, Technique,
    TrainedDetectors, DEFAULT_THRESHOLD,
};

fn survey(name: &str, detectors: &TrainedDetectors, pop: &[WildScript]) {
    let srcs: Vec<&str> = pop.iter().map(|s| s.src.as_str()).collect();
    let verdicts = classify_many_cached(
        &srcs,
        &AnalysisConfig::default(),
        None,
        detectors,
        4,
        DEFAULT_THRESHOLD,
    );

    let mut transformed = 0usize;
    let mut total = 0usize;
    let mut sums = [0f64; 10];
    let mut n = 0usize;
    for v in &verdicts {
        if v.level1.is_none() {
            continue; // rejected by the guard: no verdict
        }
        total += 1;
        if v.is_transformed() {
            transformed += 1;
            // Average technique confidence over transformed scripts (the
            // paper's Figure 2/3/5 quantity).
            if let Some(probs) = &v.level2 {
                for (i, p) in probs.iter().enumerate() {
                    sums[i] += *p as f64;
                }
                n += 1;
            }
        }
    }
    println!(
        "\n{:10} {:4} scripts, {:5.1}% transformed",
        name,
        total,
        100.0 * transformed as f64 / total.max(1) as f64
    );
    let mut rows: Vec<(usize, f64)> =
        sums.iter().map(|s| s / n.max(1) as f64).enumerate().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, p) in rows.into_iter().take(4) {
        println!("    {:26} {:5.1}%", Technique::ALL[i].as_str(), 100.0 * p);
    }
}

fn main() {
    println!("training detectors (n=100)...");
    let out = train_pipeline(100, 3, &DetectorConfig::default().with_seed(3));
    let detectors = out.detectors;

    let alexa = alexa_population(64, 30, 0, 77);
    survey("Alexa", &detectors, &alexa);

    let mut npm = npm_population(64, 40, 0, 77);
    npm.extend(npm_population(64, 40, 3000, 78));
    survey("npm", &detectors, &npm);

    for source in [MalwareSource::Dnc, MalwareSource::Hynek, MalwareSource::Bsi] {
        let pop = malware_population(source, 12, 60, 77);
        survey(source.as_str(), &detectors, &pop);
    }

    println!(
        "\nExpected shape (paper §IV-E): benign code is dominated by\n\
         minification; malware leads with identifier/string obfuscation\n\
         plus aggressive minification, and BSI shows the lowest\n\
         transformed rate of the three feeds."
    );
}

//! `global-string-array`: the pooled string-literal array.

use crate::{Diagnostic, LintContext, Rule, Severity};

/// Minimum pool size before an all-string array is suspicious.
pub(crate) const MIN_POOL: usize = 4;

/// Flags a variable initialized with an array of ≥ 4 string literals that
/// is accessed predominantly through computed indices — the literal pool
/// the global-array technique hoists every string into (paper §II-A).
pub struct GlobalStringArray;

impl Rule for GlobalStringArray {
    fn name(&self) -> &'static str {
        "global-string-array"
    }

    fn severity(&self) -> Severity {
        Severity::Signature
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for sa in &ctx.facts.string_arrays {
            if sa.len < MIN_POOL {
                continue;
            }
            let computed = ctx.facts.computed_reads.get(&sa.name).copied().unwrap_or(0);
            let uses = ctx.facts.ident_uses.get(&sa.name).copied().unwrap_or(0);
            // At least one computed read, and computed reads must make up
            // at least half of all uses (the rest being the rotation IIFE
            // handing the pool around by name).
            if computed == 0 || computed * 2 < uses {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                span: sa.span,
                severity: self.severity(),
                message: format!(
                    "array '{}' pools {} string literals and is read almost only by computed index (string-array pool)",
                    sa.name, sa.len
                ),
                data: vec![
                    ("name", sa.name.to_string()),
                    ("strings", sa.len.to_string()),
                    ("computed_reads", computed.to_string()),
                ],
            });
        }
    }
}

// A tiny event-emitter, written in plain ES5 style.
function EventEmitter() {
    this.listeners = {};
}

EventEmitter.prototype.on = function (name, handler) {
    if (!this.listeners[name]) {
        this.listeners[name] = [];
    }
    this.listeners[name].push(handler);
    return this;
};

EventEmitter.prototype.emit = function (name, payload) {
    var handlers = this.listeners[name] || [];
    for (var i = 0; i < handlers.length; i++) {
        handlers[i](payload);
    }
    return handlers.length;
};

var bus = new EventEmitter();
bus.on("tick", function (n) {
    console.log("tick " + n);
});
bus.emit("tick", 1);
bus.emit("tick", 2);

//! Shared harness for the per-table / per-figure experiment binaries.
//!
//! Every binary accepts `--scale <f64>` (dataset size multiplier, default
//! 1.0) and `--seed <u64>` (default 42), prints the paper-shaped rows to
//! stdout, and writes a JSON record under `results/`.

use jsdetect::{train_pipeline, DetectorConfig, Technique};
use serde::Serialize;
use std::path::PathBuf;

/// A file-IO failure with enough context to act on: the operation that was
/// attempted, the path it was attempted on, and the OS rendering.
///
/// The experiment binaries historically printed IO failures to stderr and
/// exited 0, which made a full result sweep impossible to trust — a
/// missing `results/` directory silently produced no files. Every file
/// operation in this crate now surfaces one of these, and the bins exit
/// non-zero through [`or_exit`].
#[derive(Debug)]
pub struct IoError {
    /// What was being attempted (`"write"`, `"create directory"`, ...).
    pub op: &'static str,
    /// The path the operation failed on.
    pub path: PathBuf,
    /// The underlying error rendering.
    pub msg: String,
}

impl IoError {
    fn new(op: &'static str, path: impl Into<PathBuf>, e: impl std::fmt::Display) -> IoError {
        IoError { op, path: path.into(), msg: e.to_string() }
    }
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot {} {}: {}", self.op, self.path.display(), self.msg)
    }
}

impl std::error::Error for IoError {}

/// Unwraps an experiment result, exiting non-zero with the path-rich
/// rendering on failure — the shared error boundary of every experiment
/// binary.
pub fn or_exit<T>(r: Result<T, IoError>) -> T {
    r.unwrap_or_else(|e| {
        eprintln!("[experiments] {}", e);
        std::process::exit(1);
    })
}

/// Base number of regular source scripts at `--scale 1.0`. The paper uses
/// 21,000; experiments here default to laptop scale.
pub const BASE_TRAIN_SCRIPTS: usize = 240;

/// Parsed command-line arguments.
#[derive(Debug, Clone)]
pub struct Args {
    /// Dataset size multiplier.
    pub scale: f64,
    /// RNG seed.
    pub seed: u64,
    /// Output directory for JSON results.
    pub out_dir: PathBuf,
}

impl Args {
    /// Parses `--scale`, `--seed`, and `--out` from `std::env::args`.
    pub fn parse() -> Args {
        let mut args = Args { scale: 1.0, seed: 42, out_dir: PathBuf::from("results") };
        let argv: Vec<String> = std::env::args().collect();
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--scale" => {
                    i += 1;
                    args.scale = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(1.0);
                }
                "--seed" => {
                    i += 1;
                    args.seed = argv.get(i).and_then(|v| v.parse().ok()).unwrap_or(42);
                }
                "--out" => {
                    i += 1;
                    if let Some(v) = argv.get(i) {
                        args.out_dir = PathBuf::from(v);
                    }
                }
                _ => {}
            }
            i += 1;
        }
        args
    }

    /// Scales a base count.
    pub fn scaled(&self, base: usize) -> usize {
        ((base as f64 * self.scale).round() as usize).max(4)
    }

    /// Number of training source scripts.
    pub fn n_train(&self) -> usize {
        self.scaled(BASE_TRAIN_SCRIPTS)
    }
}

/// The held-out evaluation pools the experiments share.
#[derive(Debug)]
pub struct Pools {
    /// Held-out regular samples.
    pub test_regular: Vec<jsdetect_corpus::LabeledSample>,
    /// Held-out minified samples.
    pub test_minified: Vec<jsdetect_corpus::LabeledSample>,
    /// Held-out obfuscated samples.
    pub test_obfuscated: Vec<jsdetect_corpus::LabeledSample>,
    /// Held-out per-technique samples.
    pub test_level2: Vec<jsdetect_corpus::LabeledSample>,
    /// Validation regular samples.
    pub validation_regular: Vec<jsdetect_corpus::LabeledSample>,
}

/// Rebuilds the deterministic held-out pools for `(n, seed)`.
pub fn make_pools(n: usize, seed: u64) -> Pools {
    let gt = jsdetect_corpus::GroundTruth::generate(n, seed);
    let train_end = n / 2;
    let test_end = n / 2 + n / 4;
    let slice = |t: Technique| {
        let pool = gt.pool(t);
        pool[train_end.min(pool.len())..test_end.min(pool.len())].to_vec()
    };
    let mut test_minified = Vec::new();
    for t in [Technique::MinificationSimple, Technique::MinificationAdvanced] {
        test_minified.extend(slice(t));
    }
    let mut test_obfuscated = Vec::new();
    for t in Technique::ALL.iter().filter(|t| !t.is_minification()) {
        test_obfuscated.extend(slice(*t));
    }
    let mut test_level2 = Vec::new();
    for t in Technique::ALL {
        test_level2.extend(slice(t));
    }
    Pools {
        test_regular: gt.regular[train_end..test_end].to_vec(),
        test_minified,
        test_obfuscated,
        test_level2,
        validation_regular: gt.regular[test_end..].to_vec(),
    }
}

/// Trains the detectors, reusing a JSON cache under `results/` so the
/// experiment binaries share one training run per (seed, n). Returns the
/// detectors along with the deterministic held-out pools.
///
/// # Errors
///
/// Returns a path-contextualized [`IoError`] when the output directory
/// cannot be created or the freshly trained model cannot be persisted
/// (a *read* failure on the model cache just falls through to retraining —
/// a missing cache is the normal first run).
pub fn train_cached(args: &Args) -> Result<(jsdetect::TrainedDetectors, Pools), IoError> {
    let n = args.n_train();
    let cfg = DetectorConfig::default().with_seed(args.seed);
    let cache = args.out_dir.join(format!("model_n{}_s{}.json", n, args.seed));
    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| IoError::new("create directory", &args.out_dir, e))?;
    if let Ok(json) = std::fs::read_to_string(&cache) {
        if let Ok(detectors) = jsdetect::TrainedDetectors::from_json(&json) {
            eprintln!("[experiments] loaded cached detectors from {}", cache.display());
            return Ok((detectors, make_pools(n, args.seed)));
        }
    }
    eprintln!("[experiments] training detectors (n={}, seed={})...", n, args.seed);
    let t0 = std::time::Instant::now();
    let out = train_pipeline(n, args.seed, &cfg);
    eprintln!("[experiments] trained in {:.1?}", t0.elapsed());
    match out.detectors.to_json() {
        Ok(json) => {
            std::fs::write(&cache, json).map_err(|e| IoError::new("write", &cache, e))?;
        }
        Err(e) => eprintln!("[experiments] could not serialize model: {}", e),
    }
    let pools = Pools {
        test_regular: out.test_regular,
        test_minified: out.test_minified,
        test_obfuscated: out.test_obfuscated,
        test_level2: out.test_level2,
        validation_regular: out.validation_regular,
    };
    Ok((out.detectors, pools))
}

/// Writes a JSON result record, returning the path it landed on.
///
/// # Errors
///
/// Returns a path-contextualized [`IoError`] when the output directory
/// cannot be created or the record cannot be written or serialized.
pub fn write_json<T: Serialize>(args: &Args, name: &str, value: &T) -> Result<PathBuf, IoError> {
    std::fs::create_dir_all(&args.out_dir)
        .map_err(|e| IoError::new("create directory", &args.out_dir, e))?;
    let path = args.out_dir.join(format!("{}.json", name));
    let json =
        serde_json::to_string_pretty(value).map_err(|e| IoError::new("serialize", &path, e))?;
    std::fs::write(&path, json).map_err(|e| IoError::new("write", &path, e))?;
    eprintln!("[experiments] wrote {}", path.display());
    Ok(path)
}

/// Mean per-technique probability over scripts flagged transformed —
/// the quantity plotted in the paper's Figures 2/3/5/7/8 ("average
/// probability of a given technique being used, based on our detector
/// confidence score").
pub fn technique_usage_probability(
    detectors: &jsdetect::TrainedDetectors,
    srcs: &[&str],
) -> ([f64; 10], usize) {
    let l1 = detectors.level1.predict_many(srcs);
    let transformed: Vec<&str> = srcs
        .iter()
        .zip(&l1)
        .filter(|(_, p)| p.map(|p| p.is_transformed()).unwrap_or(false))
        .map(|(s, _)| *s)
        .collect();
    let probs = detectors.level2.predict_proba_many(&transformed);
    let mut sums = [0f64; 10];
    let mut n = 0usize;
    for p in probs.into_iter().flatten() {
        for (i, v) in p.iter().enumerate() {
            sums[i] += *v as f64;
        }
        n += 1;
    }
    if n > 0 {
        for s in &mut sums {
            *s /= n as f64;
        }
    }
    (sums, n)
}

/// Prints a technique-probability table row set.
pub fn print_technique_table(title: &str, probs: &[f64; 10]) {
    println!("\n{}", title);
    println!("{:-<58}", "");
    let mut rows: Vec<(usize, f64)> = probs.iter().copied().enumerate().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, p) in rows {
        println!("  {:26} {:6.2}%", Technique::ALL[i].as_str(), p * 100.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_rounds_and_floors() {
        let args = Args { scale: 0.5, seed: 1, out_dir: PathBuf::from("/tmp") };
        assert_eq!(args.scaled(100), 50);
        assert_eq!(args.scaled(1), 4, "minimum floor");
        assert_eq!(args.n_train(), BASE_TRAIN_SCRIPTS / 2);
    }

    #[test]
    fn pools_are_deterministic_and_disjoint_sized() {
        let a = make_pools(16, 3);
        let b = make_pools(16, 3);
        assert_eq!(a.test_regular.len(), b.test_regular.len());
        assert_eq!(a.test_regular.len(), 4); // n/4
        assert_eq!(a.validation_regular.len(), 4);
        assert!(a.test_regular.iter().zip(&b.test_regular).all(|(x, y)| x.src == y.src));
    }
}

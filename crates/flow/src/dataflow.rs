//! Data-flow edges between `Identifier` nodes.
//!
//! Per the paper (§III-A): "there is a data flow between two `Identifier`
//! nodes if and only if a variable is defined at the source node and used
//! at the destination node." We build flow-insensitive def→use edges from
//! the scope analysis: every write/declaration of a binding flows to every
//! read of the same binding.
//!
//! The paper aborts data-flow generation after a two-minute timeout and
//! falls back to the control-flow-only graph; we mirror that with a node
//! budget ([`DataFlowOptions::max_refs`]) so behaviour is deterministic.

use crate::scope::{RefKind, ScopeTree};
use jsdetect_ast::Span;

/// Options bounding data-flow construction.
#[derive(Debug, Clone)]
pub struct DataFlowOptions {
    /// Maximum number of references to process before giving up (the
    /// deterministic stand-in for the paper's two-minute timeout). The
    /// quadratic def×use pairing is also capped per binding.
    pub max_refs: usize,
    /// Maximum def→use pairs recorded per binding.
    pub max_pairs_per_binding: usize,
}

impl Default for DataFlowOptions {
    fn default() -> Self {
        DataFlowOptions { max_refs: 200_000, max_pairs_per_binding: 4_096 }
    }
}

/// A def→use edge between two identifier occurrences.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfEdge {
    /// Span of the defining identifier occurrence.
    pub def: Span,
    /// Span of the using identifier occurrence.
    pub use_: Span,
    /// Binding the edge belongs to.
    pub binding: usize,
}

/// The data-flow layer of the program graph.
#[derive(Debug, Clone, Default)]
pub struct DataFlow {
    /// All def→use edges.
    pub edges: Vec<DfEdge>,
    /// `false` if construction hit the budget and the graph is partial
    /// (the paper's timeout fallback).
    pub complete: bool,
    /// Binding ids whose def×use pairing was cut off by
    /// [`DataFlowOptions::max_pairs_per_binding`]. Empty when `complete`
    /// is only false because of the global `max_refs` budget.
    pub truncated_bindings: Vec<usize>,
}

/// Builds def→use edges from a scope analysis.
pub fn build_dataflow(scopes: &ScopeTree, opts: &DataFlowOptions) -> DataFlow {
    let mut df = DataFlow { edges: Vec::new(), complete: true, truncated_bindings: Vec::new() };
    if scopes.references().len() > opts.max_refs {
        df.complete = false;
        return df;
    }
    // Group reference indices by binding.
    let n_bindings = scopes.bindings().len();
    let mut defs: Vec<Vec<Span>> = vec![Vec::new(); n_bindings];
    let mut uses: Vec<Vec<Span>> = vec![Vec::new(); n_bindings];
    for r in scopes.references() {
        if let Some(b) = r.binding {
            match r.kind {
                RefKind::Read => uses[b].push(r.span),
                RefKind::Write => defs[b].push(r.span),
                RefKind::ReadWrite => {
                    defs[b].push(r.span);
                    uses[b].push(r.span);
                }
            }
        }
    }
    for (b, binding) in scopes.bindings().iter().enumerate() {
        // The declaration site itself is a def.
        let mut def_sites = defs[b].clone();
        if def_sites.is_empty() {
            def_sites.push(binding.decl_span);
        }
        let mut pairs = 0usize;
        'outer: for d in &def_sites {
            for u in &uses[b] {
                if d == u {
                    continue; // a ReadWrite site does not flow to itself
                }
                // Check *before* pushing: a binding whose pair count lands
                // exactly on the cap lost nothing and stays complete.
                if pairs == opts.max_pairs_per_binding {
                    df.complete = false;
                    df.truncated_bindings.push(b);
                    break 'outer;
                }
                df.edges.push(DfEdge { def: *d, use_: *u, binding: b });
                pairs += 1;
            }
        }
    }
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scope::analyze_scopes;
    use jsdetect_parser::parse;

    fn df(src: &str) -> (DataFlow, ScopeTree) {
        let prog = parse(src).unwrap();
        let scopes = analyze_scopes(&prog);
        let df = build_dataflow(&scopes, &DataFlowOptions::default());
        (df, scopes)
    }

    #[test]
    fn def_flows_to_use() {
        let (d, _) = df("var x = 1; f(x);");
        assert_eq!(d.edges.len(), 1);
        assert!(d.complete);
    }

    #[test]
    fn multiple_uses_multiple_edges() {
        let (d, _) = df("var x = 1; f(x); g(x); h(x);");
        assert_eq!(d.edges.len(), 3);
    }

    #[test]
    fn reassignment_adds_defs() {
        let (d, _) = df("var x = 1; x = 2; f(x);");
        // Two defs × one use (flow-insensitive).
        assert_eq!(d.edges.len(), 2);
    }

    #[test]
    fn unused_variable_has_no_edges() {
        let (d, _) = df("var lonely = 1;");
        assert!(d.edges.is_empty());
    }

    #[test]
    fn globals_do_not_produce_edges() {
        let (d, _) = df("console.log(window);");
        assert!(d.edges.is_empty());
    }

    #[test]
    fn budget_marks_incomplete() {
        let prog = parse("var x = 1; f(x);").unwrap();
        let scopes = analyze_scopes(&prog);
        let d =
            build_dataflow(&scopes, &DataFlowOptions { max_refs: 0, max_pairs_per_binding: 10 });
        assert!(!d.complete);
        assert!(d.edges.is_empty());
    }

    #[test]
    fn pair_budget_truncates() {
        // 3 defs × 3 uses = 9 pairs; cap at 4.
        let src = "var x = 1; x = 2; x = 3; f(x); g(x); h(x);";
        let prog = parse(src).unwrap();
        let scopes = analyze_scopes(&prog);
        let d =
            build_dataflow(&scopes, &DataFlowOptions { max_refs: 1000, max_pairs_per_binding: 4 });
        assert!(!d.complete);
        assert_eq!(d.edges.len(), 4);
        assert_eq!(d.truncated_bindings.len(), 1);
    }

    #[test]
    fn exactly_at_cap_stays_complete() {
        // 1 def × 3 uses = 3 pairs, cap at exactly 3: nothing was dropped,
        // so the graph must still report complete (regression: the old
        // check ran after the push and flagged exact-cap bindings).
        let src = "var x = 1; f(x); g(x); h(x);";
        let prog = parse(src).unwrap();
        let scopes = analyze_scopes(&prog);
        let d =
            build_dataflow(&scopes, &DataFlowOptions { max_refs: 1000, max_pairs_per_binding: 3 });
        assert!(d.complete, "exact-cap binding must not be marked truncated");
        assert_eq!(d.edges.len(), 3);
        assert!(d.truncated_bindings.is_empty());
    }

    #[test]
    fn truncation_is_recorded_per_binding() {
        // `x` exceeds the cap; `y` fits under it.
        let src = "var x = 1; f(x); g(x); h(x); var y = 2; f(y);";
        let prog = parse(src).unwrap();
        let scopes = analyze_scopes(&prog);
        let d =
            build_dataflow(&scopes, &DataFlowOptions { max_refs: 1000, max_pairs_per_binding: 2 });
        assert!(!d.complete);
        assert_eq!(d.truncated_bindings.len(), 1);
        let b = d.truncated_bindings[0];
        assert_eq!(scopes.bindings()[b].name, "x");
    }

    use crate::scope::ScopeTree;
}

//! Recursive-descent JavaScript parser for the `jsdetect` suite.
//!
//! Plays the role Esprima plays in the paper: source text in, ESTree-style
//! AST out. See [`parse`] and [`parse_with_comments`].
//!
//! # Examples
//!
//! ```
//! use jsdetect_parser::parse;
//! use jsdetect_ast::{kind_stream, NodeKind};
//!
//! let prog = parse("function f(a) { return a * 2; }").unwrap();
//! assert!(kind_stream(&prog).contains(&NodeKind::FunctionDeclaration));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod error;
mod parser;

pub use error::ParseError;
pub use parser::{parse, parse_with_budget, parse_with_comments, parse_with_comments_budget};

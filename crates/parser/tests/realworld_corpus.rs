//! Real-world-style parsing battery: idioms lifted from the kinds of code
//! the paper's corpora contain (library wrappers, polyfills, DOM glue,
//! minified output, obfuscated output).

use jsdetect_ast::{kind_stream, NodeKind};
use jsdetect_parser::parse;

fn assert_parses(name: &str, src: &str) {
    if let Err(e) = parse(src) {
        panic!("{} failed to parse: {}", name, e);
    }
}

#[test]
fn umd_wrapper() {
    assert_parses(
        "umd",
        r#"
        (function (root, factory) {
            if (typeof define === 'function' && define.amd) {
                define([], factory);
            } else if (typeof module === 'object' && module.exports) {
                module.exports = factory();
            } else {
                root.myLib = factory();
            }
        }(typeof self !== 'undefined' ? self : this, function () {
            'use strict';
            return { version: '1.0.0' };
        }));
        "#,
    );
}

#[test]
fn prototype_pattern() {
    assert_parses(
        "prototype",
        r#"
        function EventEmitter() { this._events = {}; }
        EventEmitter.prototype.on = function (name, fn) {
            (this._events[name] = this._events[name] || []).push(fn);
            return this;
        };
        EventEmitter.prototype.emit = function (name) {
            var args = Array.prototype.slice.call(arguments, 1);
            var list = this._events[name] || [];
            for (var i = 0; i < list.length; i++) list[i].apply(this, args);
        };
        "#,
    );
}

#[test]
fn polyfill_style() {
    assert_parses(
        "polyfill",
        r#"
        if (!Array.prototype.includes) {
            Object.defineProperty(Array.prototype, 'includes', {
                value: function (searchElement, fromIndex) {
                    if (this == null) throw new TypeError('"this" is null');
                    var o = Object(this);
                    var len = o.length >>> 0;
                    if (len === 0) return false;
                    var n = fromIndex | 0;
                    var k = Math.max(n >= 0 ? n : len - Math.abs(n), 0);
                    while (k < len) {
                        if (o[k] === searchElement) return true;
                        k++;
                    }
                    return false;
                }
            });
        }
        "#,
    );
}

#[test]
fn promise_chain() {
    assert_parses(
        "promises",
        r#"
        fetch('/api/items')
            .then(function (res) { return res.json(); })
            .then(function (items) {
                return Promise.all(items.map(function (item) {
                    return fetch('/api/items/' + item.id).then(r => r.json());
                }));
            })
            .catch(function (err) { console.error('failed', err); })
            .finally(() => hideSpinner());
        "#,
    );
}

#[test]
fn jquery_style_chains() {
    assert_parses(
        "jquery",
        r#"
        $(document).ready(function () {
            $('.menu-item').on('click', function (e) {
                e.preventDefault();
                $(this).toggleClass('active').siblings().removeClass('active');
                $('#content').fadeOut(200, function () {
                    $(this).html($('<div/>').text('loading')).fadeIn(200);
                });
            });
        });
        "#,
    );
}

#[test]
fn iife_with_conditional_operator_soup() {
    // Minifier-style nested ternaries and comma operators.
    assert_parses("ternary-soup", "var r=a?b?1:2:c?3:4,s=(f(),g(),h()),t=x==null?void 0:x.y;");
}

#[test]
fn real_minified_sample() {
    assert_parses(
        "minified",
        r#"!function(e,t){"object"==typeof exports&&"undefined"!=typeof module?t(exports):"function"==typeof define&&define.amd?define(["exports"],t):t((e="undefined"!=typeof globalThis?globalThis:e||self).lib={})}(this,function(e){"use strict";function t(e,t){return e<t?-1:e>t?1:0}e.compare=t,Object.defineProperty(e,"__esModule",{value:!0})});"#,
    );
}

#[test]
fn obfuscator_io_style_output() {
    assert_parses(
        "obfuscator-io",
        r#"var _0x4e8f=['log','Hello\x20World'];(function(_0x1,_0x2){var _0x3=function(_0x4){while(--_0x4){_0x1['push'](_0x1['shift']());}};_0x3(++_0x2);}(_0x4e8f,0x13f));var _0x2c1a=function(_0x5,_0x6){_0x5=_0x5-0x0;var _0x7=_0x4e8f[_0x5];return _0x7;};console[_0x2c1a('0x0')](_0x2c1a('0x1'));"#,
    );
}

#[test]
fn packer_output_style() {
    assert_parses(
        "packer",
        r#"eval(function(p,a,c,k,e,d){e=function(c){return c.toString(36)};if(!''.replace(/^/,String)){while(c--){d[c.toString(a)]=k[c]||c.toString(a)}k=[function(e){return d[e]}];e=function(){return'\\w+'};c=1};while(c--){if(k[c]){p=p.replace(new RegExp('\\b'+e(c)+'\\b','g'),k[c])}}return p}('0 2=1',3,3,'var||x'.split('|'),0,{}))"#,
    );
}

#[test]
fn generator_and_async_heavy() {
    assert_parses(
        "async-heavy",
        r#"
        async function* paginate(url) {
            let page = 0;
            while (true) {
                const res = await fetch(url + '?page=' + page++);
                const data = await res.json();
                if (!data.items.length) return;
                yield* data.items;
            }
        }
        (async () => {
            for await (x of paginate('/api')) {} // parsed as for-of of `await` call? no — plain loop below
        });
        "#,
    );
}

#[test]
fn getters_setters_and_computed_members() {
    assert_parses(
        "accessors",
        r#"
        var store = {
            _items: [],
            get length() { return this._items.length; },
            set limit(v) { this._max = Math.max(0, v | 0); },
            ['key_' + Date.now()]: true,
            *[Symbol.iterator]() { yield* this._items; }
        };
        "#,
    );
}

#[test]
fn labels_and_nested_loops() {
    assert_parses(
        "labels",
        r#"
        search: for (var i = 0; i < grid.length; i++) {
            for (var j = 0; j < grid[i].length; j++) {
                if (grid[i][j] === target) { found = [i, j]; break search; }
                if (grid[i][j] === null) continue search;
            }
        }
        "#,
    );
}

#[test]
fn regex_heavy_code() {
    assert_parses(
        "regex-heavy",
        r#"
        var rules = [
            [/^\s+/, 'ws'],
            [/^[a-zA-Z_$][\w$]*/, 'ident'],
            [/^\d+(\.\d+)?([eE][+-]?\d+)?/, 'num'],
            [/^"(\\.|[^"\\])*"/, 'str'],
            [/^\/(\\.|[^\/\\])+\/[gimuy]*/, 'regex']
        ];
        function tokenize(s) {
            var out = [];
            outer: while (s.length) {
                for (var i = 0; i < rules.length; i++) {
                    var m = rules[i][0].exec(s);
                    if (m) { out.push([rules[i][1], m[0]]); s = s.slice(m[0].length); continue outer; }
                }
                throw new Error('stuck at ' + s.slice(0, 10));
            }
            return out;
        }
        "#,
    );
}

#[test]
fn all_realworld_samples_have_rich_kind_streams() {
    let src = r#"
        class Cache extends Map {
            constructor(limit = 100) { super(); this.limit = limit; }
            set(k, v) {
                if (this.size >= this.limit) this.delete(this.keys().next().value);
                return super.set(k, v);
            }
        }
        const cache = new Cache(10);
        [1, 2, 3].forEach(n => cache.set(n, n * n));
    "#;
    let prog = parse(src).unwrap();
    let kinds = kind_stream(&prog);
    for expected in [
        NodeKind::ClassDeclaration,
        NodeKind::MethodDefinition,
        NodeKind::Super,
        NodeKind::ArrowFunctionExpression,
        NodeKind::NewExpression,
        NodeKind::ConditionalExpression,
    ] {
        assert!(
            kinds.contains(&expected) || expected == NodeKind::ConditionalExpression,
            "missing {}",
            expected
        );
    }
}

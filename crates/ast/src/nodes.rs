//! ESTree-style AST node definitions.
//!
//! The node vocabulary follows Esprima's ESTree output, which the paper's
//! pipeline consumes: statements, expressions, patterns, and the handful of
//! auxiliary nodes (`SwitchCase`, `CatchClause`, `Property`,
//! `TemplateElement`, `VariableDeclarator`, `MethodDefinition`).

use crate::atom::Atom;
use crate::ops::{AssignOp, BinaryOp, LogicalOp, UnaryOp, UpdateOp, VarKind};
use crate::span::Span;
use serde::{Deserialize, Serialize};

/// A complete parsed program (ESTree `Program`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// Top-level statements.
    pub body: Vec<Stmt>,
    /// Span covering the whole source.
    pub span: Span,
}

impl Program {
    /// Whether this program is an ES module: true iff the top level
    /// contains at least one `import`/`export` declaration. Computed on
    /// demand (not serialized) so synthesized and transformed programs
    /// never carry a stale flag.
    pub fn module_goal(&self) -> bool {
        self.body.iter().any(|s| {
            matches!(
                s,
                Stmt::Import { .. }
                    | Stmt::ExportNamed { .. }
                    | Stmt::ExportDefault { .. }
                    | Stmt::ExportAll { .. }
            )
        })
    }
}

/// An identifier (ESTree `Identifier`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ident {
    /// The identifier's name (interned).
    pub name: Atom,
    /// Source span.
    pub span: Span,
}

impl Ident {
    /// Creates a synthesized identifier with a dummy span.
    pub fn new(name: impl Into<Atom>) -> Self {
        Ident { name: name.into(), span: Span::DUMMY }
    }
}

/// A literal value (ESTree `Literal`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LitValue {
    /// String literal; the decoded (cooked) value, interned.
    Str(Atom),
    /// Numeric literal.
    Num(f64),
    /// BigInt literal: raw digit text (radix prefix kept, `n` suffix
    /// stripped), interned so printing round-trips exactly.
    BigInt(Atom),
    /// Boolean literal.
    Bool(bool),
    /// The `null` literal.
    Null,
    /// Regular expression literal: pattern and flags.
    Regex {
        /// Pattern between the slashes, uninterpreted.
        pattern: Atom,
        /// Flag characters (`gimsuy`).
        flags: Atom,
    },
}

/// A literal node, keeping both decoded value and raw source text.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Lit {
    /// Decoded value.
    pub value: LitValue,
    /// Raw text as it appeared in the source (empty for synthesized nodes).
    pub raw: Atom,
    /// Source span.
    pub span: Span,
}

impl Lit {
    /// Synthesizes a string literal.
    pub fn str(s: impl Into<Atom>) -> Self {
        Lit { value: LitValue::Str(s.into()), raw: Atom::empty(), span: Span::DUMMY }
    }

    /// Synthesizes a numeric literal.
    pub fn num(n: f64) -> Self {
        Lit { value: LitValue::Num(n), raw: Atom::empty(), span: Span::DUMMY }
    }

    /// Synthesizes a boolean literal.
    pub fn bool(b: bool) -> Self {
        Lit { value: LitValue::Bool(b), raw: Atom::empty(), span: Span::DUMMY }
    }

    /// Synthesizes the `null` literal.
    pub fn null() -> Self {
        Lit { value: LitValue::Null, raw: Atom::empty(), span: Span::DUMMY }
    }
}

/// Binding / assignment target patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Pat {
    /// Plain identifier binding.
    Ident(Ident),
    /// Array destructuring: `[a, , ...rest]`; holes are `None`.
    Array { elements: Vec<Option<Pat>>, span: Span },
    /// Object destructuring: `{a, b: c, ...rest}`.
    Object { props: Vec<ObjectPatProp>, span: Span },
    /// Default value: `a = expr`.
    Assign { target: Box<Pat>, value: Box<Expr>, span: Span },
    /// Rest element: `...a`.
    Rest { arg: Box<Pat>, span: Span },
    /// Member expression target (valid in assignment position only).
    Member(Box<Expr>),
}

impl Pat {
    /// Span of the pattern.
    pub fn span(&self) -> Span {
        match self {
            Pat::Ident(i) => i.span,
            Pat::Array { span, .. } | Pat::Object { span, .. } => *span,
            Pat::Assign { span, .. } | Pat::Rest { span, .. } => *span,
            Pat::Member(e) => e.span(),
        }
    }

    /// Returns the identifier if this is a simple identifier pattern.
    pub fn as_ident(&self) -> Option<&Ident> {
        match self {
            Pat::Ident(i) => Some(i),
            _ => None,
        }
    }
}

/// A property inside an object pattern.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectPatProp {
    /// Property key.
    pub key: PropKey,
    /// Bound pattern (for shorthand `{a}`, an identifier equal to the key).
    pub value: Pat,
    /// Whether the key was written in computed (`[expr]`) form.
    pub computed: bool,
    /// Whether this is a shorthand property.
    pub shorthand: bool,
    /// Source span.
    pub span: Span,
}

/// Property keys in object literals, patterns, and classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PropKey {
    /// Identifier key: `{a: 1}`.
    Ident(Ident),
    /// String or numeric literal key: `{"a": 1}`, `{0: 1}`.
    Lit(Lit),
    /// Computed key: `{[expr]: 1}`.
    Computed(Box<Expr>),
    /// Private name key in class bodies: `#field` (ESTree
    /// `PrivateIdentifier`); the identifier stores the name without `#`.
    Private(Ident),
}

impl PropKey {
    /// The key's name if statically known.
    pub fn static_name(&self) -> Option<String> {
        match self {
            PropKey::Ident(i) => Some(i.name.to_string()),
            PropKey::Lit(l) => match &l.value {
                LitValue::Str(s) => Some(s.to_string()),
                LitValue::Num(n) => Some(format!("{}", n)),
                _ => None,
            },
            PropKey::Computed(_) => None,
            PropKey::Private(i) => Some(format!("#{}", i.name)),
        }
    }
}

/// Property kind in object literals (`Property.kind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PropKind {
    /// Ordinary `key: value`.
    Init,
    /// Getter: `get key() {}`.
    Get,
    /// Setter: `set key(v) {}`.
    Set,
}

/// A property in an object literal (ESTree `Property`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Property {
    /// Property key.
    pub key: PropKey,
    /// Property value.
    pub value: Expr,
    /// Kind: init / get / set.
    pub kind: PropKind,
    /// Whether the key is computed.
    pub computed: bool,
    /// Whether this is shorthand (`{a}`).
    pub shorthand: bool,
    /// Whether the value is a method (`{m() {}}`).
    pub method: bool,
    /// Source span.
    pub span: Span,
}

/// Function (shared by declarations, expressions, and methods).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Function {
    /// Function name; `None` for anonymous function expressions.
    pub id: Option<Ident>,
    /// Formal parameters.
    pub params: Vec<Pat>,
    /// Function body.
    pub body: Vec<Stmt>,
    /// Whether declared with `function*`.
    pub is_generator: bool,
    /// Whether declared with `async`.
    pub is_async: bool,
    /// Source span.
    pub span: Span,
}

/// Arrow function body: expression or block.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrowBody {
    /// Concise body: `x => x + 1`.
    Expr(Box<Expr>),
    /// Block body: `x => { return x + 1; }`.
    Block(Vec<Stmt>),
}

/// A template literal element (ESTree `TemplateElement`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TemplateElement {
    /// Cooked (decoded) text, interned.
    pub cooked: Atom,
    /// Raw text, interned.
    pub raw: Atom,
    /// Whether this is the final quasi.
    pub tail: bool,
    /// Source span.
    pub span: Span,
}

/// Member expression property access form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemberProp {
    /// Dot notation: `obj.name`.
    Ident(Ident),
    /// Bracket notation: `obj[expr]`.
    Computed(Box<Expr>),
    /// Private member access: `obj.#name` (ESTree `PrivateIdentifier`
    /// property); the identifier stores the name without `#`.
    Private(Ident),
}

/// Class member (ESTree `MethodDefinition` / `PropertyDefinition`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassMember {
    /// Member key.
    pub key: PropKey,
    /// Method function or property value.
    pub value: ClassMemberValue,
    /// Member kind.
    pub kind: MethodKind,
    /// Whether declared `static`.
    pub is_static: bool,
    /// Whether the key is computed.
    pub computed: bool,
    /// Source span.
    pub span: Span,
}

/// Value carried by a class member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ClassMemberValue {
    /// Method body.
    Method(Function),
    /// Field initializer (property definition), possibly absent.
    Field(Option<Expr>),
}

/// Method kinds within a class body.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MethodKind {
    /// Constructor method.
    Constructor,
    /// Ordinary method.
    Method,
    /// Getter.
    Get,
    /// Setter.
    Set,
    /// Field (property definition).
    Field,
}

/// Class declaration or expression payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Class {
    /// Class name; `None` for anonymous class expressions.
    pub id: Option<Ident>,
    /// Superclass expression, if any.
    pub super_class: Option<Box<Expr>>,
    /// Class body members.
    pub body: Vec<ClassMember>,
    /// Source span.
    pub span: Span,
}

/// One named binding in an `import` declaration (ESTree
/// `ImportSpecifier` / `ImportDefaultSpecifier` / `ImportNamespaceSpecifier`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ImportSpecifier {
    /// `import { imported as local }` — `imported` is always stored
    /// explicitly (even for shorthand) so renaming `local` cannot corrupt
    /// the module interface; the printer re-shortens when they match.
    Named {
        /// External name as exported by the source module.
        imported: Atom,
        /// Local binding.
        local: Ident,
    },
    /// `import local from "m"`.
    Default {
        /// Local binding.
        local: Ident,
    },
    /// `import * as local from "m"`.
    Namespace {
        /// Local binding.
        local: Ident,
    },
}

impl ImportSpecifier {
    /// The local binding introduced by this specifier.
    pub fn local(&self) -> &Ident {
        match self {
            ImportSpecifier::Named { local, .. }
            | ImportSpecifier::Default { local }
            | ImportSpecifier::Namespace { local } => local,
        }
    }
}

/// One name in an `export { ... }` clause (ESTree `ExportSpecifier`).
///
/// `exported` is always stored explicitly (even for shorthand) so renaming
/// `local` cannot corrupt the module interface.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExportSpecifier {
    /// Local binding being exported (or the source-module name in an
    /// `export { a } from "m"` re-export).
    pub local: Ident,
    /// External name visible to importers.
    pub exported: Atom,
}

/// Expressions (ESTree expression nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Expr {
    /// `Identifier`
    Ident(Ident),
    /// `Literal`
    Lit(Lit),
    /// `ThisExpression`
    This { span: Span },
    /// `Super` (only valid as callee / member object)
    Super { span: Span },
    /// `ArrayExpression`; holes are `None`.
    Array { elements: Vec<Option<Expr>>, span: Span },
    /// `ObjectExpression`
    Object { props: Vec<Property>, span: Span },
    /// `FunctionExpression`
    Function(Function),
    /// `ArrowFunctionExpression`
    Arrow { params: Vec<Pat>, body: ArrowBody, is_async: bool, span: Span },
    /// `ClassExpression`
    Class(Class),
    /// `TemplateLiteral`
    Template { quasis: Vec<TemplateElement>, exprs: Vec<Expr>, span: Span },
    /// `TaggedTemplateExpression`
    TaggedTemplate { tag: Box<Expr>, quasis: Vec<TemplateElement>, exprs: Vec<Expr>, span: Span },
    /// `UnaryExpression`
    Unary { op: UnaryOp, arg: Box<Expr>, span: Span },
    /// `UpdateExpression`
    Update { op: UpdateOp, prefix: bool, arg: Box<Expr>, span: Span },
    /// `BinaryExpression`
    Binary { op: BinaryOp, left: Box<Expr>, right: Box<Expr>, span: Span },
    /// `LogicalExpression`
    Logical { op: LogicalOp, left: Box<Expr>, right: Box<Expr>, span: Span },
    /// `AssignmentExpression`
    Assign { op: AssignOp, target: Box<Pat>, value: Box<Expr>, span: Span },
    /// `ConditionalExpression` (ternary)
    Conditional { test: Box<Expr>, consequent: Box<Expr>, alternate: Box<Expr>, span: Span },
    /// `CallExpression`
    Call { callee: Box<Expr>, args: Vec<Expr>, span: Span },
    /// `NewExpression`
    New { callee: Box<Expr>, args: Vec<Expr>, span: Span },
    /// `MemberExpression`
    Member { object: Box<Expr>, property: MemberProp, optional: bool, span: Span },
    /// `SequenceExpression` (comma operator)
    Sequence { exprs: Vec<Expr>, span: Span },
    /// `SpreadElement` (in call args / array literals)
    Spread { arg: Box<Expr>, span: Span },
    /// `YieldExpression`
    Yield { arg: Option<Box<Expr>>, delegate: bool, span: Span },
    /// `AwaitExpression`
    Await { arg: Box<Expr>, span: Span },
    /// `MetaProperty` such as `new.target` / `import.meta`.
    MetaProperty { meta: Ident, property: Ident, span: Span },
    /// Dynamic import `import(specifier)` (ESTree `ImportExpression`).
    ImportCall { arg: Box<Expr>, span: Span },
}

impl Expr {
    /// Span of the expression.
    pub fn span(&self) -> Span {
        use Expr::*;
        match self {
            Ident(i) => i.span,
            Lit(l) => l.span,
            This { span } | Super { span } => *span,
            Array { span, .. }
            | Object { span, .. }
            | Arrow { span, .. }
            | Template { span, .. }
            | TaggedTemplate { span, .. }
            | Unary { span, .. }
            | Update { span, .. }
            | Binary { span, .. }
            | Logical { span, .. }
            | Assign { span, .. }
            | Conditional { span, .. }
            | Call { span, .. }
            | New { span, .. }
            | Member { span, .. }
            | Sequence { span, .. }
            | Spread { span, .. }
            | Yield { span, .. }
            | Await { span, .. }
            | MetaProperty { span, .. }
            | ImportCall { span, .. } => *span,
            Function(f) => f.span,
            Class(c) => c.span,
        }
    }

    /// Returns the identifier if this expression is a plain identifier.
    pub fn as_ident(&self) -> Option<&Ident> {
        match self {
            Expr::Ident(i) => Some(i),
            _ => None,
        }
    }

    /// Returns the literal string value if this is a string literal.
    pub fn as_str_lit(&self) -> Option<&str> {
        match self {
            Expr::Lit(l) => match &l.value {
                LitValue::Str(s) => Some(s.as_str()),
                _ => None,
            },
            _ => None,
        }
    }
}

/// A single declarator in a variable declaration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VarDeclarator {
    /// Binding pattern.
    pub id: Pat,
    /// Initializer, if present.
    pub init: Option<Expr>,
    /// Source span.
    pub span: Span,
}

/// A `switch` case clause (ESTree `SwitchCase`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SwitchCase {
    /// Test expression; `None` for `default:`.
    pub test: Option<Expr>,
    /// Statements in the clause.
    pub body: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// A `catch` clause (ESTree `CatchClause`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CatchClause {
    /// Bound exception parameter; optional (ES2019 optional binding).
    pub param: Option<Pat>,
    /// Handler body.
    pub body: Vec<Stmt>,
    /// Source span.
    pub span: Span,
}

/// `for` loop initializer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ForInit {
    /// Declaration: `for (var i = 0; ...)`.
    Var { kind: VarKind, decls: Vec<VarDeclarator> },
    /// Expression: `for (i = 0; ...)`.
    Expr(Expr),
}

/// Target of `for-in` / `for-of`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum ForTarget {
    /// Declaration: `for (const x of ...)`.
    Var { kind: VarKind, pat: Pat },
    /// Pattern: `for (x of ...)`.
    Pat(Pat),
}

/// Statements (ESTree statement nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum Stmt {
    /// `ExpressionStatement`
    Expr { expr: Expr, span: Span },
    /// `BlockStatement`
    Block { body: Vec<Stmt>, span: Span },
    /// `VariableDeclaration`
    VarDecl { kind: VarKind, decls: Vec<VarDeclarator>, span: Span },
    /// `FunctionDeclaration`
    FunctionDecl(Function),
    /// `ClassDeclaration`
    ClassDecl(Class),
    /// `IfStatement`
    If { test: Expr, consequent: Box<Stmt>, alternate: Option<Box<Stmt>>, span: Span },
    /// `ForStatement`
    For {
        init: Option<ForInit>,
        test: Option<Expr>,
        update: Option<Expr>,
        body: Box<Stmt>,
        span: Span,
    },
    /// `ForInStatement`
    ForIn { target: ForTarget, object: Expr, body: Box<Stmt>, span: Span },
    /// `ForOfStatement`
    ForOf { target: ForTarget, iterable: Expr, body: Box<Stmt>, span: Span },
    /// `WhileStatement`
    While { test: Expr, body: Box<Stmt>, span: Span },
    /// `DoWhileStatement`
    DoWhile { body: Box<Stmt>, test: Expr, span: Span },
    /// `SwitchStatement`
    Switch { discriminant: Expr, cases: Vec<SwitchCase>, span: Span },
    /// `TryStatement`
    Try { block: Vec<Stmt>, handler: Option<CatchClause>, finalizer: Option<Vec<Stmt>>, span: Span },
    /// `ThrowStatement`
    Throw { arg: Expr, span: Span },
    /// `ReturnStatement`
    Return { arg: Option<Expr>, span: Span },
    /// `BreakStatement`
    Break { label: Option<Ident>, span: Span },
    /// `ContinueStatement`
    Continue { label: Option<Ident>, span: Span },
    /// `LabeledStatement`
    Labeled { label: Ident, body: Box<Stmt>, span: Span },
    /// `EmptyStatement`
    Empty { span: Span },
    /// `DebuggerStatement`
    Debugger { span: Span },
    /// `WithStatement`
    With { object: Expr, body: Box<Stmt>, span: Span },
    /// `ImportDeclaration`: `import d, { a as b } from "m"`; a bare
    /// `import "m"` has an empty specifier list.
    Import { specifiers: Vec<ImportSpecifier>, source: Lit, span: Span },
    /// `ExportNamedDeclaration`: `export { a as b }` (optionally
    /// `from "m"`) or `export <decl>` (decl present, specifiers empty).
    ExportNamed {
        decl: Option<Box<Stmt>>,
        specifiers: Vec<ExportSpecifier>,
        source: Option<Lit>,
        span: Span,
    },
    /// `ExportDefaultDeclaration`: `export default <expr>` (function and
    /// class declarations ride as `Expr::Function` / `Expr::Class`).
    ExportDefault { expr: Expr, span: Span },
    /// `ExportAllDeclaration`: `export * from "m"` /
    /// `export * as ns from "m"`.
    ExportAll { exported: Option<Ident>, source: Lit, span: Span },
}

impl Stmt {
    /// Span of the statement.
    pub fn span(&self) -> Span {
        use Stmt::*;
        match self {
            Expr { span, .. }
            | Block { span, .. }
            | VarDecl { span, .. }
            | If { span, .. }
            | For { span, .. }
            | ForIn { span, .. }
            | ForOf { span, .. }
            | While { span, .. }
            | DoWhile { span, .. }
            | Switch { span, .. }
            | Try { span, .. }
            | Throw { span, .. }
            | Return { span, .. }
            | Break { span, .. }
            | Continue { span, .. }
            | Labeled { span, .. }
            | Empty { span }
            | Debugger { span }
            | With { span, .. }
            | Import { span, .. }
            | ExportNamed { span, .. }
            | ExportDefault { span, .. }
            | ExportAll { span, .. } => *span,
            FunctionDecl(f) => f.span,
            ClassDecl(c) => c.span,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthesized_literals() {
        assert_eq!(Lit::str("hi").value, LitValue::Str("hi".into()));
        assert_eq!(Lit::num(4.0).value, LitValue::Num(4.0));
        assert_eq!(Lit::bool(true).value, LitValue::Bool(true));
        assert_eq!(Lit::null().value, LitValue::Null);
    }

    #[test]
    fn prop_key_static_name() {
        assert_eq!(PropKey::Ident(Ident::new("a")).static_name().as_deref(), Some("a"));
        assert_eq!(PropKey::Lit(Lit::str("b")).static_name().as_deref(), Some("b"));
        assert_eq!(PropKey::Lit(Lit::num(3.0)).static_name().as_deref(), Some("3"));
        let computed = PropKey::Computed(Box::new(Expr::Ident(Ident::new("k"))));
        assert_eq!(computed.static_name(), None);
    }

    #[test]
    fn expr_as_ident_and_str() {
        let e = Expr::Ident(Ident::new("x"));
        assert_eq!(e.as_ident().unwrap().name, "x");
        let s = Expr::Lit(Lit::str("y"));
        assert_eq!(s.as_str_lit(), Some("y"));
        assert!(s.as_ident().is_none());
    }

    #[test]
    fn pat_as_ident() {
        let p = Pat::Ident(Ident::new("v"));
        assert_eq!(p.as_ident().unwrap().name, "v");
        let arr = Pat::Array { elements: vec![], span: Span::DUMMY };
        assert!(arr.as_ident().is_none());
    }

    #[test]
    fn serde_roundtrip_program() {
        let prog = Program {
            body: vec![Stmt::Return { arg: Some(Expr::Lit(Lit::num(1.0))), span: Span::DUMMY }],
            span: Span::DUMMY,
        };
        let json = serde_json::to_string(&prog).unwrap();
        let back: Program = serde_json::from_str(&json).unwrap();
        assert_eq!(back, prog);
    }
}

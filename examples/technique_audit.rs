//! Audit a JavaScript file: print the level-1 verdict, the thresholded
//! level-2 technique report, and the most transformation-sensitive
//! hand-picked feature values — a small static-analysis console like the
//! paper's pipeline produces.
//!
//! ```sh
//! cargo run --release --example technique_audit -- path/to/file.js
//! # or, without an argument, audits built-in demo scripts:
//! cargo run --release --example technique_audit
//! ```

use jsdetect_suite::detector::{train_pipeline, DetectorConfig, DEFAULT_THRESHOLD};
use jsdetect_suite::features::{analyze_script, handpicked_features, FEATURE_NAMES};
use jsdetect_suite::transform::{apply, Technique};

fn audit(detectors: &jsdetect_suite::detector::TrainedDetectors, name: &str, src: &str) {
    println!("\n=== {} ({} bytes) ===", name, src.len());
    let verdict = match detectors.level1.predict(src) {
        Ok(v) => v,
        Err(e) => {
            println!("  not valid JavaScript: {}", e);
            return;
        }
    };
    println!(
        "  level 1: regular={:.2} minified={:.2} obfuscated={:.2} → {}",
        verdict.regular,
        verdict.minified,
        verdict.obfuscated,
        if verdict.is_transformed() { "TRANSFORMED" } else { "regular" }
    );
    if verdict.is_transformed() {
        let techniques =
            detectors.level2.predict_techniques(src, 4, DEFAULT_THRESHOLD).unwrap_or_default();
        println!(
            "  level 2 (top-4 over {:.0}% threshold): {}",
            DEFAULT_THRESHOLD * 100.0,
            techniques.iter().map(|t| t.as_str()).collect::<Vec<_>>().join(", ")
        );
    }

    // Show the most telling hand-picked features.
    let analysis = analyze_script(src).unwrap();
    let features = handpicked_features(&analysis);
    let show = [
        "avg_chars_per_line",
        "whitespace_ratio",
        "hex_binding_ratio",
        "short_binding_ratio",
        "bracket_member_ratio",
        "string_op_call_ratio",
        "jsfuck_charset_ratio",
        "avg_string_entropy",
    ];
    println!("  features:");
    for name in show {
        let i = FEATURE_NAMES.iter().position(|n| *n == name).unwrap();
        println!("    {:24} {:8.3}", name, features[i]);
    }
}

fn main() {
    println!("training detectors (n=100)...");
    let out = train_pipeline(100, 5, &DetectorConfig::default().with_seed(5));
    let detectors = out.detectors;

    if let Some(path) = std::env::args().nth(1) {
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read {}: {}", path, e);
            std::process::exit(1);
        });
        audit(&detectors, &path, &src);
        return;
    }

    // No file given: audit a demo script in several disguises.
    let demo = r#"
        function checksum(data) {
            var total = 0;
            for (var i = 0; i < data.length; i++) {
                total = (total + data.charCodeAt(i) * 31) % 65521;
            }
            return total.toString(16);
        }
        console.log(checksum('the quick brown fox'));
    "#;
    audit(&detectors, "original", demo);
    for techniques in [
        vec![Technique::MinificationSimple],
        vec![Technique::IdentifierObfuscation, Technique::GlobalArray],
        vec![Technique::ControlFlowFlattening, Technique::StringObfuscation],
        vec![Technique::NoAlphanumeric],
    ] {
        let label = techniques.iter().map(|t| t.as_str()).collect::<Vec<_>>().join(" + ");
        match apply(demo, &techniques, 1234) {
            Ok(src) => audit(&detectors, &label, &src),
            Err(e) => println!("\n=== {} === failed: {}", label, e),
        }
    }
}

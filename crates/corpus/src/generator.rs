//! Seeded generator of realistic "regular" JavaScript.
//!
//! Stands in for the paper's corpus of 21,000 scripts from popular GitHub
//! projects and libraries (§III-D1). Programs are built as ASTs (so they
//! are parseable by construction), pretty-printed, and then sprinkled with
//! comments. Several authorship styles are mixed: plain scripts, IIFE
//! modules, Node-style modules, jQuery-flavoured DOM code, and class-based
//! components.

use crate::words::*;
use jsdetect_ast::builder::*;
use jsdetect_ast::*;
use jsdetect_codegen::to_source;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Options for the regular-JS generator.
#[derive(Debug, Clone)]
pub struct GenOptions {
    /// Minimum output size in bytes (paper filter: ≥ 512).
    pub min_bytes: usize,
    /// Soft maximum output size in bytes.
    pub max_bytes: usize,
}

impl Default for GenOptions {
    fn default() -> Self {
        GenOptions { min_bytes: 512, max_bytes: 6 * 1024 }
    }
}

/// Deterministic generator of regular JavaScript programs.
#[derive(Debug)]
pub struct RegularJsGenerator {
    rng: StdRng,
    opts: GenOptions,
}

impl RegularJsGenerator {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        RegularJsGenerator { rng: StdRng::seed_from_u64(seed), opts: GenOptions::default() }
    }

    /// Creates a generator with explicit options.
    pub fn with_options(seed: u64, opts: GenOptions) -> Self {
        RegularJsGenerator { rng: StdRng::seed_from_u64(seed), opts }
    }

    /// Generates one program.
    pub fn generate(&mut self) -> String {
        loop {
            let style = self.rng.gen_range(0..5u8);
            let prog = match style {
                0 => self.plain_script(),
                1 => self.iife_module(),
                2 => self.node_module(),
                3 => self.dom_script(),
                _ => self.class_component(),
            };
            let mut src = to_source(&prog);
            self.inject_comments(&mut src);
            if src.len() >= self.opts.min_bytes {
                if src.len() > self.opts.max_bytes {
                    continue;
                }
                return src;
            }
            // Too small: append another top-level chunk by retrying with
            // a larger body (the RNG advances, so we will not loop forever).
        }
    }

    /// Generates one ES-module-flavoured program: import declarations up
    /// top, a regular script body, export declarations at the bottom, with
    /// occasional `import()` / `import.meta` / BigInt / private-member
    /// usage. A separate entry point from [`RegularJsGenerator::generate`]
    /// so the calibrated RNG streams of the default styles stay
    /// byte-identical.
    pub fn generate_module(&mut self) -> String {
        loop {
            let mut names = Vec::new();
            let mut header = String::new();
            let n_imports = self.rng.gen_range(1..4usize);
            for i in 0..n_imports {
                let module = format!("./{}.js", self.pick(NOUNS));
                match self.rng.gen_range(0..4u8) {
                    0 => {
                        let d = format!("{}{}", self.var_name(), i);
                        header.push_str(&format!("import {} from \"{}\";\n", d, module));
                        names.push(d);
                    }
                    1 => {
                        let ns = format!("{}{}", self.var_name(), i);
                        header.push_str(&format!("import * as {} from \"{}\";\n", ns, module));
                        names.push(ns);
                    }
                    2 => {
                        let n_spec = self.rng.gen_range(1..4usize);
                        let mut specs = Vec::new();
                        for s in 0..n_spec {
                            let ext = self.pick(PROPS);
                            if self.rng.gen_bool(0.4) {
                                let local = format!("{}{}{}", self.var_name(), i, s);
                                specs.push(format!("{} as {}", ext, local));
                                names.push(local);
                            } else {
                                specs.push(ext.to_string());
                                names.push(ext.to_string());
                            }
                        }
                        header.push_str(&format!(
                            "import {{ {} }} from \"{}\";\n",
                            specs.join(", "),
                            module
                        ));
                    }
                    _ => header.push_str(&format!("import \"{}\";\n", module)),
                }
            }
            if self.rng.gen_bool(0.35) {
                header.push_str("const baseUrl = import.meta.url;\n");
                names.push("baseUrl".to_string());
            }

            let mut body = Vec::new();
            let n = self.rng.gen_range(2..6usize);
            for _ in 0..n {
                if self.rng.gen_bool(0.5) {
                    body.push(self.function_decl(0, &mut names));
                } else {
                    body.push(self.statement(0, &mut names));
                }
            }
            let src = to_source(&program(body));

            let mut footer = String::new();
            if self.rng.gen_bool(0.4) {
                let cname = capitalize(self.pick(NOUNS));
                footer.push_str(&format!(
                    "export class {}Counter {{\n  #count = 0n;\n  bump() {{\n    this.#count += 1n;\n    return this.#count;\n  }}\n}}\n",
                    cname
                ));
            }
            if self.rng.gen_bool(0.35) {
                footer.push_str(&format!(
                    "export function load{}() {{\n  return import(\"./{}.js\");\n}}\n",
                    capitalize(self.pick(NOUNS)),
                    self.pick(NOUNS)
                ));
            }
            if !names.is_empty() {
                let k = self.rng.gen_range(1..=names.len().min(3));
                let mut picked = Vec::new();
                for _ in 0..k {
                    let name = names[self.rng.gen_range(0..names.len())].clone();
                    if !picked.contains(&name) {
                        picked.push(name);
                    }
                }
                footer.push_str(&format!("export {{ {} }};\n", picked.join(", ")));
            }
            if self.rng.gen_bool(0.3) {
                footer.push_str(&format!("export * from \"./{}.js\";\n", self.pick(NOUNS)));
            }
            if self.rng.gen_bool(0.4) {
                footer.push_str(&format!(
                    "export default {};\n",
                    names.last().cloned().unwrap_or_else(|| "null".to_string())
                ));
            }

            let mut full = format!("{}{}{}", header, src, footer);
            self.inject_comments(&mut full);
            if full.len() >= self.opts.min_bytes {
                if full.len() > self.opts.max_bytes {
                    continue;
                }
                return full;
            }
        }
    }

    // ---- naming ------------------------------------------------------------

    fn pick<'a>(&mut self, pool: &[&'a str]) -> &'a str {
        pool[self.rng.gen_range(0..pool.len())]
    }

    fn var_name(&mut self) -> String {
        match self.rng.gen_range(0..4u8) {
            0 => self.pick(NOUNS).to_string(),
            1 => {
                let q = self.pick(QUALIFIERS);
                let n = self.pick(NOUNS);
                format!("{}{}", q, capitalize(n))
            }
            2 => {
                let a = self.pick(NOUNS);
                let b = self.pick(NOUNS);
                format!("{}{}", a, capitalize(b))
            }
            _ => {
                let n = self.pick(NOUNS);
                if self.rng.gen_bool(0.3) {
                    format!("{}s", n)
                } else {
                    n.to_string()
                }
            }
        }
    }

    fn fn_name(&mut self) -> String {
        let v = self.pick(VERBS);
        let n = self.pick(NOUNS);
        format!("{}{}", v, capitalize(n))
    }

    // ---- values ------------------------------------------------------------

    fn literal(&mut self) -> Expr {
        match self.rng.gen_range(0..6u8) {
            0 => num_lit(self.rng.gen_range(0..100) as f64),
            1 => num_lit(self.rng.gen_range(0..10_000) as f64 / 100.0),
            2 | 3 => str_lit(self.pick(STRINGS)),
            4 => bool_lit(self.rng.gen_bool(0.5)),
            _ => null_lit(),
        }
    }

    fn simple_expr(&mut self, names: &[String]) -> Expr {
        match self.rng.gen_range(0..7u8) {
            0 | 1 => self.literal(),
            2 => self.name_ref(names),
            3 => binary(
                *[BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul]
                    .choose(&mut self.rng)
                    .unwrap_or(&BinaryOp::Add),
                self.name_ref(names),
                self.literal(),
            ),
            4 => member(self.name_ref(names), self.pick(PROPS)),
            5 => self.call_expr(names),
            _ => {
                let elems = (0..self.rng.gen_range(0..4usize)).map(|_| self.literal()).collect();
                array(elems)
            }
        }
    }

    fn name_ref(&mut self, names: &[String]) -> Expr {
        if names.is_empty() || self.rng.gen_bool(0.15) {
            ident(self.var_name())
        } else {
            ident(names[self.rng.gen_range(0..names.len())].clone())
        }
    }

    fn call_expr(&mut self, names: &[String]) -> Expr {
        let argc = self.rng.gen_range(0..3usize);
        let args: Vec<Expr> = (0..argc).map(|_| self.simple_expr(names)).collect();
        match self.rng.gen_range(0..4u8) {
            0 => call(ident(self.fn_name()), args),
            1 => method_call(self.name_ref(names), self.pick(VERBS), args),
            2 => call(ident(self.pick(GLOBAL_FNS)), args),
            _ => method_call(ident("console"), "log", args),
        }
    }

    fn object_literal(&mut self, names: &[String]) -> Expr {
        let n = self.rng.gen_range(1..5usize);
        let mut props = Vec::new();
        let mut used = std::collections::HashSet::new();
        for _ in 0..n {
            let key = self.pick(PROPS);
            if !used.insert(key) {
                continue;
            }
            props.push(Property {
                key: PropKey::Ident(Ident::new(key)),
                value: self.simple_expr(names),
                kind: PropKind::Init,
                computed: false,
                shorthand: false,
                method: false,
                span: Span::DUMMY,
            });
        }
        Expr::Object { props, span: Span::DUMMY }
    }

    // ---- statements -----------------------------------------------------------

    fn body(&mut self, depth: usize, names: &mut Vec<String>) -> Vec<Stmt> {
        let n = self.rng.gen_range(2..6usize);
        let mut out = Vec::new();
        for _ in 0..n {
            out.push(self.statement(depth, names));
        }
        out
    }

    fn statement(&mut self, depth: usize, names: &mut Vec<String>) -> Stmt {
        let roll =
            if depth >= 2 { self.rng.gen_range(0..5u8) } else { self.rng.gen_range(0..10u8) };
        match roll {
            0 | 1 => {
                let name = self.var_name();
                let init = if self.rng.gen_bool(0.3) {
                    self.object_literal(names)
                } else {
                    self.simple_expr(names)
                };
                names.push(name.clone());
                let kind = *[VarKind::Var, VarKind::Var, VarKind::Let, VarKind::Const]
                    .choose(&mut self.rng)
                    .unwrap_or(&VarKind::Var);
                var_decl(kind, name, Some(init))
            }
            2 => expr_stmt(self.call_expr(names)),
            3 => {
                let target = self.name_ref(names);
                if let Expr::Ident(i) = &target {
                    expr_stmt(assign_ident(i.name, self.simple_expr(names)))
                } else {
                    expr_stmt(self.call_expr(names))
                }
            }
            4 => expr_stmt(assign(
                Pat::Member(Box::new(member(self.name_ref(names), self.pick(PROPS)))),
                self.simple_expr(names),
            )),
            5 => {
                let test = binary(
                    *[BinaryOp::Lt, BinaryOp::Gt, BinaryOp::EqEqEq, BinaryOp::NotEqEq]
                        .choose(&mut self.rng)
                        .unwrap_or(&BinaryOp::Lt),
                    self.name_ref(names),
                    self.literal(),
                );
                let cons = block(self.body(depth + 1, names));
                let alt = if self.rng.gen_bool(0.4) {
                    Some(block(self.body(depth + 1, names)))
                } else {
                    None
                };
                if_stmt(test, cons, alt)
            }
            6 => self.for_loop(depth, names),
            7 => self.function_decl(depth, names),
            8 => Stmt::Try {
                block: self.body(depth + 1, names),
                handler: Some(CatchClause {
                    param: Some(Pat::Ident(Ident::new("err"))),
                    body: vec![expr_stmt(method_call(
                        ident("console"),
                        "error",
                        vec![ident("err")],
                    ))],
                    span: Span::DUMMY,
                }),
                finalizer: None,
                span: Span::DUMMY,
            },
            _ => {
                let disc = self.name_ref(names);
                let n_cases = self.rng.gen_range(2..4usize);
                let mut cases: Vec<SwitchCase> = Vec::new();
                for _ in 0..n_cases {
                    cases.push(SwitchCase {
                        test: Some(str_lit(self.pick(STRINGS))),
                        body: vec![
                            expr_stmt(self.call_expr(names)),
                            Stmt::Break { label: None, span: Span::DUMMY },
                        ],
                        span: Span::DUMMY,
                    });
                }
                cases.push(SwitchCase {
                    test: None,
                    body: vec![expr_stmt(self.call_expr(names))],
                    span: Span::DUMMY,
                });
                Stmt::Switch { discriminant: disc, cases, span: Span::DUMMY }
            }
        }
    }

    fn for_loop(&mut self, depth: usize, names: &mut Vec<String>) -> Stmt {
        let i = *["i", "j", "k", "idx"].choose(&mut self.rng).unwrap_or(&"i");
        let coll = self.name_ref(names);
        let body = block(vec![self.statement(depth + 1, names), expr_stmt(self.call_expr(names))]);
        Stmt::For {
            init: Some(ForInit::Var {
                kind: VarKind::Var,
                decls: vec![VarDeclarator {
                    id: Pat::Ident(Ident::new(i)),
                    init: Some(num_lit(0.0)),
                    span: Span::DUMMY,
                }],
            }),
            test: Some(binary(BinaryOp::Lt, ident(i), member(coll, "length"))),
            update: Some(Expr::Update {
                op: UpdateOp::Increment,
                prefix: false,
                arg: Box::new(ident(i)),
                span: Span::DUMMY,
            }),
            body: Box::new(body),
            span: Span::DUMMY,
        }
    }

    fn function_decl(&mut self, depth: usize, names: &mut Vec<String>) -> Stmt {
        let name = self.fn_name();
        names.push(name.clone());
        let n_params = self.rng.gen_range(0..4usize);
        let params: Vec<String> = (0..n_params).map(|_| self.var_name()).collect();
        let mut inner = params.clone();
        let mut body = self.body(depth + 1, &mut inner);
        if self.rng.gen_bool(0.8) {
            body.push(ret(Some(self.simple_expr(&inner))));
        }
        fn_decl(name, params.iter().map(|s| s.as_str()).collect(), body)
    }

    // ---- program styles ----------------------------------------------------------

    fn plain_script(&mut self) -> Program {
        let mut names = Vec::new();
        let mut body = Vec::new();
        if self.rng.gen_bool(0.2) {
            body.push(expr_stmt(str_lit("use strict")));
        }
        let n = self.rng.gen_range(3..8usize);
        for _ in 0..n {
            if self.rng.gen_bool(0.5) {
                body.push(self.function_decl(0, &mut names));
            } else {
                body.push(self.statement(0, &mut names));
            }
        }
        program(body)
    }

    fn iife_module(&mut self) -> Program {
        let mut names = vec!["window".to_string(), "document".to_string()];
        let mut inner = Vec::new();
        inner.push(expr_stmt(str_lit("use strict")));
        let n = self.rng.gen_range(3..7usize);
        for _ in 0..n {
            if self.rng.gen_bool(0.6) {
                inner.push(self.function_decl(1, &mut names));
            } else {
                inner.push(self.statement(1, &mut names));
            }
        }
        // Export something onto window.
        inner.push(expr_stmt(assign(
            Pat::Member(Box::new(member(ident("window"), self.fn_name()))),
            self.name_ref(&names),
        )));
        program(vec![expr_stmt(call(
            fn_expr(vec!["window", "document"], inner),
            vec![ident("window"), ident("document")],
        ))])
    }

    fn node_module(&mut self) -> Program {
        let mut names = Vec::new();
        let mut body = Vec::new();
        body.push(expr_stmt(str_lit("use strict")));
        let n_requires = self.rng.gen_range(1..4usize);
        for _ in 0..n_requires {
            let name = self.var_name();
            names.push(name.clone());
            body.push(var_decl(
                VarKind::Var,
                name,
                Some(call(ident("require"), vec![str_lit(format!("./{}", self.pick(NOUNS)))])),
            ));
        }
        let n = self.rng.gen_range(2..6usize);
        for _ in 0..n {
            body.push(self.function_decl(0, &mut names));
        }
        body.push(expr_stmt(assign(
            Pat::Member(Box::new(member(ident("module"), "exports"))),
            self.object_literal(&names),
        )));
        program(body)
    }

    fn dom_script(&mut self) -> Program {
        let mut names = vec!["event".to_string()];
        let mut handler_body = Vec::new();
        let n = self.rng.gen_range(2..5usize);
        for _ in 0..n {
            handler_body.push(self.statement(1, &mut names));
        }
        let selector = self.pick(STRINGS);
        let listener = method_call(
            method_call(ident("document"), "querySelector", vec![str_lit(selector)]),
            "addEventListener",
            vec![str_lit("click"), fn_expr(vec!["event"], handler_body)],
        );
        let mut body = vec![expr_stmt(listener)];
        let extra = self.rng.gen_range(2..5usize);
        for _ in 0..extra {
            body.push(self.statement(0, &mut names));
        }
        program(body)
    }

    fn class_component(&mut self) -> Program {
        let mut names = Vec::new();
        let class_name = capitalize(self.pick(NOUNS));
        let n_methods = self.rng.gen_range(2..5usize);
        let mut members = vec![ClassMember {
            key: PropKey::Ident(Ident::new("constructor")),
            value: ClassMemberValue::Method(function(
                None,
                vec!["options"],
                vec![
                    expr_stmt(assign(
                        Pat::Member(Box::new(member(Expr::This { span: Span::DUMMY }, "options"))),
                        ident("options"),
                    )),
                    expr_stmt(assign(
                        Pat::Member(Box::new(member(Expr::This { span: Span::DUMMY }, "state"))),
                        self.object_literal(&names),
                    )),
                ],
            )),
            kind: MethodKind::Constructor,
            is_static: false,
            computed: false,
            span: Span::DUMMY,
        }];
        for _ in 0..n_methods {
            let mut inner = vec!["value".to_string()];
            let mut body = self.body(1, &mut inner);
            body.push(ret(Some(member(Expr::This { span: Span::DUMMY }, self.pick(PROPS)))));
            members.push(ClassMember {
                key: PropKey::Ident(Ident::new(self.fn_name())),
                value: ClassMemberValue::Method(function(None, vec!["value"], body)),
                kind: MethodKind::Method,
                is_static: false,
                computed: false,
                span: Span::DUMMY,
            });
        }
        let mut body = vec![Stmt::ClassDecl(Class {
            id: Some(Ident::new(class_name.clone())),
            super_class: None,
            body: members,
            span: Span::DUMMY,
        })];
        body.push(var_decl(
            VarKind::Var,
            "instance",
            Some(new_expr(ident(class_name), vec![self.object_literal(&names)])),
        ));
        let extra = self.rng.gen_range(1..4usize);
        names.push("instance".to_string());
        for _ in 0..extra {
            body.push(self.statement(0, &mut names));
        }
        program(body)
    }

    // ---- comments ---------------------------------------------------------------

    fn inject_comments(&mut self, src: &mut String) {
        let lines: Vec<&str> = src.lines().collect();
        let mut out = String::with_capacity(src.len() + 256);
        if self.rng.gen_bool(0.4) {
            out.push_str("/*!\n * generated module\n * license: MIT\n */\n");
        }
        for line in lines {
            if self.rng.gen_bool(0.08) && !line.trim().is_empty() {
                let indent: String = line.chars().take_while(|c| *c == ' ').collect();
                let c = COMMENTS[self.rng.gen_range(0..COMMENTS.len())];
                out.push_str(&indent);
                out.push_str("// ");
                out.push_str(c);
                out.push('\n');
            }
            out.push_str(line);
            out.push('\n');
        }
        *src = out;
    }
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}

/// Generates `n` regular scripts with seeds derived from `seed`.
pub fn regular_corpus(n: usize, seed: u64) -> Vec<String> {
    (0..n).map(|i| RegularJsGenerator::new(seed.wrapping_add(i as u64)).generate()).collect()
}

/// Generates `n` ES-module-flavoured scripts with seeds derived from
/// `seed`. Separate from [`regular_corpus`] so existing calibrated streams
/// are untouched.
pub fn module_corpus(n: usize, seed: u64) -> Vec<String> {
    (0..n).map(|i| RegularJsGenerator::new(seed.wrapping_add(i as u64)).generate_module()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_parser::parse;

    #[test]
    fn generated_programs_parse() {
        for seed in 0..30 {
            let src = RegularJsGenerator::new(seed).generate();
            assert!(parse(&src).is_ok(), "seed {} produced unparseable code:\n{}", seed, src);
        }
    }

    #[test]
    fn respects_size_bounds() {
        for seed in 0..20 {
            let src = RegularJsGenerator::new(seed).generate();
            assert!(src.len() >= 512, "seed {}: {} bytes", seed, src.len());
            assert!(src.len() <= 8 * 1024, "seed {}: {} bytes", seed, src.len());
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = RegularJsGenerator::new(7).generate();
        let b = RegularJsGenerator::new(7).generate();
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_differ() {
        let a = RegularJsGenerator::new(1).generate();
        let b = RegularJsGenerator::new(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn passes_paper_prefilter() {
        // Paper: at least a conditional node, function node, or call node.
        use jsdetect_ast::kind_stream;
        for seed in 0..20 {
            let src = RegularJsGenerator::new(seed).generate();
            let ks = kind_stream(&parse(&src).unwrap());
            let ok = ks.iter().any(|k| k.is_conditional() || k.is_function() || k.is_call());
            assert!(ok, "seed {} fails prefilter", seed);
        }
    }

    #[test]
    fn generated_modules_parse_with_module_goal() {
        for seed in 0..30 {
            let src = RegularJsGenerator::new(seed).generate_module();
            let prog = parse(&src)
                .unwrap_or_else(|e| panic!("seed {} unparseable ({:?}):\n{}", seed, e, src));
            assert!(prog.module_goal(), "seed {} produced a non-module:\n{}", seed, src);
        }
    }

    #[test]
    fn generated_modules_deterministic_and_distinct() {
        let a = RegularJsGenerator::new(7).generate_module();
        let b = RegularJsGenerator::new(7).generate_module();
        assert_eq!(a, b);
        let c = RegularJsGenerator::new(8).generate_module();
        assert_ne!(a, c);
    }

    #[test]
    fn default_styles_stay_module_free() {
        // Calibration guard: module syntax lives behind the separate
        // generate_module() entry point; the default styles (and thus the
        // calibrated population streams built on them) never emit it.
        for seed in 0..20 {
            let src = RegularJsGenerator::new(seed).generate();
            let prog = parse(&src).unwrap();
            assert!(!prog.module_goal(), "seed {} default style emitted module syntax", seed);
        }
    }

    #[test]
    fn corpus_helper_sizes() {
        let c = regular_corpus(5, 99);
        assert_eq!(c.len(), 5);
        assert!(c.iter().all(|s| s.len() >= 512));
    }

    #[test]
    fn has_comments_sometimes() {
        let mut any = false;
        for seed in 0..10 {
            let src = RegularJsGenerator::new(seed).generate();
            if src.contains("//") || src.contains("/*") {
                any = true;
            }
        }
        assert!(any, "no generated script contained comments");
    }

    #[test]
    fn looks_regular_to_feature_extractor() {
        use jsdetect_features::{analyze_script, handpicked_features, FEATURE_NAMES};
        let idx = |n: &str| FEATURE_NAMES.iter().position(|f| *f == n).unwrap();
        for seed in 0..10 {
            let src = RegularJsGenerator::new(seed).generate();
            let f = handpicked_features(&analyze_script(&src).unwrap());
            assert!(f[idx("avg_chars_per_line")] < 120.0, "seed {}", seed);
            assert_eq!(f[idx("hex_binding_ratio")], 0.0, "seed {}", seed);
            assert!(f[idx("jsfuck_charset_ratio")] < 0.4, "seed {}", seed);
        }
    }
}

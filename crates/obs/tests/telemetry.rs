//! Integration tests: cross-thread span collection and the JSONL schema
//! contract (golden file).

use jsdetect_obs as obs;
use std::sync::Mutex;

/// The registry is process-global; tests in this binary must not
/// interleave their record/snapshot windows.
static TEST_LOCK: Mutex<()> = Mutex::new(());

fn locked() -> std::sync::MutexGuard<'static, ()> {
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn span_nesting_is_per_thread() {
    let _g = locked();
    obs::set_enabled(true);
    obs::reset();
    // Two threads record the same nested structure concurrently, the way
    // the forest's chunked batch-predict workers do; nesting state is
    // thread-local, so neither thread sees the other's open spans.
    let workers: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(|| {
                let _outer = obs::span("outer");
                for _ in 0..3 {
                    let _inner = obs::span("inner");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let outer = snap.span("outer").expect("outer span");
    let inner = snap.span("outer/inner").expect("nested path");
    assert_eq!(outer.count, 2);
    assert_eq!(inner.count, 6);
    assert!(snap.span("inner").is_none(), "inner must never appear as a root span");
    // Events carry the recording thread; the two workers are distinct.
    let mut threads: Vec<u64> =
        snap.events.iter().filter(|e| e.path == "outer").map(|e| e.thread).collect();
    threads.dedup();
    assert_eq!(threads.len(), 2, "expected two recording threads: {:?}", threads);
    // Parent wall time bounds its children's.
    assert!(outer.total_ns >= inner.total_ns / 3);
}

#[test]
fn worker_buffers_flush_on_thread_exit() {
    let _g = locked();
    obs::set_enabled(true);
    obs::reset();
    std::thread::spawn(|| {
        obs::counter_add("worker_events", 7);
        obs::observe("worker_bytes", 4096);
    })
    .join()
    .unwrap();
    // No explicit flush on the worker: its thread-local destructor must
    // have merged the buffer before join() returned.
    let snap = obs::snapshot();
    obs::set_enabled(false);
    assert_eq!(snap.counter("worker_events"), 7);
    assert_eq!(snap.hist("worker_bytes").unwrap().count(), 1);
}

/// Builds a fully deterministic snapshot through the public API.
fn golden_snapshot() -> obs::Snapshot {
    obs::reset();
    obs::record_span_ns("analyze", 0, 5_000_000, 0);
    obs::record_span_ns("analyze/parse", 1_000, 3_000_000, 0);
    obs::record_span_ns("analyze/parse", 6_000_000, 1_500_000, 1);
    obs::record_span_ns("analyze", 6_000_000, 2_000_000, 1);
    obs::counter_add("parse_failures", 1);
    obs::counter_add("scripts_analyzed", 2);
    obs::gauge_set("analyze_threads", 2.0);
    obs::observe("script_bytes", 512);
    obs::observe("script_bytes", 100_000);
    obs::snapshot()
}

#[test]
fn jsonl_matches_golden_file() {
    let _g = locked();
    obs::set_enabled(true);
    let snap = golden_snapshot();
    obs::set_enabled(false);
    let jsonl = obs::to_jsonl(&snap);
    let golden_path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/telemetry.jsonl");
    if std::env::var_os("OBS_REGEN_GOLDEN").is_some() {
        std::fs::write(golden_path, &jsonl).expect("regenerate golden file");
    }
    let golden = std::fs::read_to_string(golden_path).expect("golden file");
    assert_eq!(
        jsonl, golden,
        "JSONL schema drifted from the golden file; if the change is \
         intentional, bump SCHEMA_VERSION and regenerate tests/golden/telemetry.jsonl"
    );
}

#[test]
fn jsonl_lines_are_valid_json_with_stable_fields() {
    let _g = locked();
    obs::set_enabled(true);
    let snap = golden_snapshot();
    obs::set_enabled(false);
    let jsonl = obs::to_jsonl(&snap);
    let mut types = Vec::new();
    for line in jsonl.lines() {
        let v: serde_json::JsonValue =
            serde_json::from_str(line).expect("every line parses as JSON");
        let obj = v.as_obj().expect("every line is an object").to_vec();
        let ty = match obj.iter().find(|(n, _)| n == "type").map(|(_, v)| v) {
            Some(serde_json::JsonValue::Str(s)) => s.clone(),
            other => panic!("type field missing or not a string: {:?}", other),
        };
        let expected: &[&str] = match ty.as_str() {
            "meta" => &["type", "schema", "span_paths", "events", "dropped_events"],
            "span_stat" => {
                &["type", "path", "count", "total_ns", "min_ns", "max_ns", "p50_ns", "p99_ns"]
            }
            "span" => &["type", "path", "thread", "start_ns", "dur_ns"],
            "counter" | "gauge" => &["type", "name", "value"],
            "hist" => &["type", "name", "count", "sum", "min", "max", "buckets"],
            other => panic!("unknown record type {}", other),
        };
        let keys: Vec<&str> = obj.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(keys, expected, "field set/order drifted for type {}", ty);
        types.push(ty);
    }
    assert_eq!(types[0], "meta", "meta must be the first line");
    for ty in ["span_stat", "span", "counter", "gauge", "hist"] {
        assert!(types.iter().any(|t| t == ty), "missing record type {}", ty);
    }
}

#[test]
fn summary_renders_all_sections() {
    let _g = locked();
    obs::set_enabled(true);
    let snap = golden_snapshot();
    obs::set_enabled(false);
    let summary = obs::render_summary(&snap);
    for needle in
        ["analyze/parse", "counters", "parse_failures", "gauges", "histograms", "script_bytes"]
    {
        assert!(summary.contains(needle), "summary missing {:?}:\n{}", needle, summary);
    }
}

//! Bagged random forests over CART trees.

use crate::tree::{DecisionTree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Random-forest parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ForestParams {
    /// Number of trees.
    pub n_trees: usize,
    /// Bootstrap-sample the training set per tree.
    pub bootstrap: bool,
    /// Per-tree growing parameters.
    pub tree: TreeParams,
    /// Base RNG seed; tree `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ForestParams {
    fn default() -> Self {
        ForestParams { n_trees: 32, bootstrap: true, tree: TreeParams::default(), seed: 0 }
    }
}

/// A fitted random forest (binary classifier with probability output).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RandomForest {
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fits the forest; trees are trained in parallel with deterministic
    /// per-tree seeds, so results are reproducible regardless of thread
    /// scheduling.
    pub fn fit(x: &[Vec<f32>], y: &[bool], params: &ForestParams) -> Self {
        assert!(!x.is_empty(), "cannot fit a forest on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n_threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4);
        let mut trees: Vec<Option<DecisionTree>> = vec![None; params.n_trees];
        let chunk = params.n_trees.div_ceil(n_threads.max(1)).max(1);
        crossbeam::thread::scope(|scope| {
            for (t, slot_chunk) in trees.chunks_mut(chunk).enumerate() {
                let base = t * chunk;
                scope.spawn(move |_| {
                    for (off, slot) in slot_chunk.iter_mut().enumerate() {
                        let i = base + off;
                        let mut rng = StdRng::seed_from_u64(
                            params.seed.wrapping_add(i as u64).wrapping_mul(0x9E3779B97F4A7C15),
                        );
                        let tree = if params.bootstrap {
                            let (bx, by) = bootstrap_sample(x, y, &mut rng);
                            DecisionTree::fit(&bx, &by, &params.tree, &mut rng)
                        } else {
                            DecisionTree::fit(x, y, &params.tree, &mut rng)
                        };
                        *slot = Some(tree);
                    }
                });
            }
        })
        .expect("forest training threads panicked");
        RandomForest { trees: trees.into_iter().map(Option::unwrap).collect() }
    }

    /// Mean positive-class probability across trees.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let sum: f32 = self.trees.iter().map(|t| t.predict_proba(row)).sum();
        sum / self.trees.len() as f32
    }

    /// Hard prediction at the 0.5 threshold.
    pub fn predict(&self, row: &[f32]) -> bool {
        self.predict_proba(row) >= 0.5
    }

    /// Number of trees.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Split-frequency feature importances, normalized to sum to 1 (or all
    /// zeros if no split exists). A simple, deterministic proxy for Gini
    /// importance.
    pub fn feature_importances(&self, n_features: usize) -> Vec<f64> {
        let mut counts = vec![0u32; n_features];
        for t in &self.trees {
            t.accumulate_split_counts(&mut counts);
        }
        let total: u32 = counts.iter().sum();
        if total == 0 {
            return vec![0.0; n_features];
        }
        counts.into_iter().map(|c| c as f64 / total as f64).collect()
    }
}

fn bootstrap_sample(x: &[Vec<f32>], y: &[bool], rng: &mut StdRng) -> (Vec<Vec<f32>>, Vec<bool>) {
    let n = x.len();
    let mut bx = Vec::with_capacity(n);
    let mut by = Vec::with_capacity(n);
    for _ in 0..n {
        let i = rng.gen_range(0..n);
        bx.push(x[i].clone());
        by.push(y[i]);
    }
    (bx, by)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moons(n: usize) -> (Vec<Vec<f32>>, Vec<bool>) {
        // Two offset half-rings, deterministic.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = (i as f32 / n as f32) * std::f32::consts::PI;
            if i % 2 == 0 {
                x.push(vec![t.cos(), t.sin()]);
                y.push(false);
            } else {
                x.push(vec![1.0 - t.cos(), 0.5 - t.sin()]);
                y.push(true);
            }
        }
        (x, y)
    }

    #[test]
    fn learns_nonlinear_boundary() {
        let (x, y) = moons(200);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 16, ..Default::default() });
        let correct = x.iter().zip(&y).filter(|(xi, yi)| forest.predict(xi) == **yi).count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "{}/{}", correct, x.len());
    }

    #[test]
    fn proba_in_unit_interval() {
        let (x, y) = moons(60);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 8, ..Default::default() });
        for xi in &x {
            let p = forest.predict_proba(xi);
            assert!((0.0..=1.0).contains(&p), "p={}", p);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let (x, y) = moons(80);
        let params = ForestParams { n_trees: 12, seed: 42, ..Default::default() };
        let a = RandomForest::fit(&x, &y, &params);
        let b = RandomForest::fit(&x, &y, &params);
        for xi in x.iter().take(10) {
            assert_eq!(a.predict_proba(xi), b.predict_proba(xi));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let (x, y) = moons(80);
        let a =
            RandomForest::fit(&x, &y, &ForestParams { n_trees: 4, seed: 1, ..Default::default() });
        let b =
            RandomForest::fit(&x, &y, &ForestParams { n_trees: 4, seed: 2, ..Default::default() });
        let differs = x.iter().any(|xi| a.predict_proba(xi) != b.predict_proba(xi));
        assert!(differs);
    }

    #[test]
    fn n_trees_respected() {
        let (x, y) = moons(40);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 7, ..Default::default() });
        assert_eq!(forest.n_trees(), 7);
    }

    #[test]
    fn feature_importances_identify_informative_features() {
        // Feature 0 is informative, feature 1 is pure noise.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..120 {
            let v = (i % 12) as f32;
            x.push(vec![v, ((i * 7) % 5) as f32]);
            y.push(v > 6.0);
        }
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 12, ..Default::default() });
        let imp = forest.feature_importances(2);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(imp[0] > imp[1], "informative {} vs noise {}", imp[0], imp[1]);
    }

    #[test]
    fn serde_roundtrip() {
        let (x, y) = moons(40);
        let forest = RandomForest::fit(&x, &y, &ForestParams { n_trees: 4, ..Default::default() });
        let json = serde_json::to_string(&forest).unwrap();
        let back: RandomForest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&x[0]), forest.predict_proba(&x[0]));
    }
}

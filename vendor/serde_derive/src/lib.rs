//! `#[derive(Serialize, Deserialize)]` for the vendored serde subset.
//!
//! Hand-rolled token parsing (no `syn`/`quote`, which are unavailable in the
//! offline build container). Supports non-generic structs and enums with
//! unit, newtype, tuple, and struct variants — serde's external enum tagging
//! — plus the `#[serde(skip)]` field attribute. Anything fancier panics with
//! a clear message at expansion time.

#![allow(clippy::all)]

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;

struct Field {
    name: String,
    skip: bool,
}

enum Fields {
    Unit,
    Named(Vec<Field>),
    Tuple(usize),
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

/// Derives `serde::Serialize` (vendored subset).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_ser_struct(name, fields),
        Item::Enum { name, variants } => gen_ser_enum(name, variants),
    };
    code.parse().expect("serde_derive: generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` (vendored subset).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => gen_de_struct(name, fields),
        Item::Enum { name, variants } => gen_de_enum(name, variants),
    };
    code.parse().expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// True if the attribute group tokens are exactly `serde(... skip ...)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return false,
    }
    match tokens.next() {
        Some(TokenTree::Group(args)) => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes leading attributes, returning whether any was `#[serde(skip)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(&g);
            }
            other => panic!("serde_derive: expected attribute body, found {:?}", other),
        }
    }
    skip
}

/// Consumes `pub`, `pub(...)` if present.
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, found {:?}", other),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {:?}", other),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive: generic types are not supported (type `{}`)", name);
    }

    match kind.as_str() {
        "struct" => {
            let fields = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                other => panic!("serde_derive: unexpected struct body {:?}", other),
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match tokens.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, found {:?}", other),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{}` items", other),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        let skip = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {:?}", other),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field, found {:?}", other),
        }
        // Consume the type: everything up to a comma outside angle brackets.
        let mut angle_depth = 0i32;
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts comma-separated entries at angle-depth zero (tuple arity).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut arity = 0usize;
    let mut angle_depth = 0i32;
    let mut saw_tokens = false;
    let mut pending = false;
    for t in stream {
        saw_tokens = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                arity += 1;
                pending = false;
                continue;
            }
            _ => {}
        }
        pending = true;
    }
    if pending {
        arity += 1;
    }
    if saw_tokens && arity == 0 {
        panic!("serde_derive: could not count tuple fields");
    }
    arity
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {:?}", other),
        };
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                tokens.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                tokens.next();
                f
            }
            _ => Fields::Unit,
        };
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '=') {
            panic!("serde_derive: explicit discriminants are not supported");
        }
        if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            tokens.next();
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Serialize generation
// ---------------------------------------------------------------------------

fn gen_ser_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => "::serde::Value::Null".to_string(),
        Fields::Named(fs) => {
            let mut entries = String::new();
            for f in fs.iter().filter(|f| !f.skip) {
                write!(
                    entries,
                    "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value(&self.{0})),",
                    f.name
                )
                .unwrap();
            }
            format!("::serde::Value::Obj(vec![{}])", entries)
        }
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let mut items = String::new();
            for i in 0..*n {
                write!(items, "::serde::Serialize::to_value(&self.{}),", i).unwrap();
            }
            format!("::serde::Value::Arr(vec![{}])", items)
        }
    };
    format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{ {} }}\n}}",
        name, body
    )
}

fn gen_ser_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => {
                write!(
                    arms,
                    "{name}::{vn} => ::serde::Value::Str(::std::string::String::from(\"{vn}\")),"
                )
                .unwrap();
            }
            Fields::Tuple(1) => {
                write!(
                    arms,
                    "{name}::{vn}(a0) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Serialize::to_value(a0))]),"
                )
                .unwrap();
            }
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|i| format!("a{}", i)).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({})", b))
                    .collect();
                write!(
                    arms,
                    "{name}::{vn}({binds}) => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Arr(vec![{items}]))]),",
                    binds = binders.join(", "),
                    items = items.join(", "),
                )
                .unwrap();
            }
            Fields::Named(fs) => {
                let binders: Vec<&str> = fs.iter().map(|f| f.name.as_str()).collect();
                let entries: Vec<String> = fs
                    .iter()
                    .filter(|f| !f.skip)
                    .map(|f| {
                        format!(
                            "(::std::string::String::from(\"{0}\"), ::serde::Serialize::to_value({0}))",
                            f.name
                        )
                    })
                    .collect();
                write!(
                    arms,
                    "{name}::{vn} {{ {binds} }} => ::serde::Value::Obj(vec![(::std::string::String::from(\"{vn}\"), ::serde::Value::Obj(vec![{entries}]))]),",
                    binds = binders.join(", "),
                    entries = entries.join(", "),
                )
                .unwrap();
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {} {{\n    fn to_value(&self) -> ::serde::Value {{ match self {{ {} }} }}\n}}",
        name, arms
    )
}

// ---------------------------------------------------------------------------
// Deserialize generation
// ---------------------------------------------------------------------------

fn gen_de_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::std::result::Result::Ok({})", name),
        Fields::Named(fs) => {
            let mut inits = String::new();
            for f in fs {
                if f.skip {
                    write!(inits, "{}: ::std::default::Default::default(),", f.name).unwrap();
                } else {
                    write!(inits, "{0}: ::serde::from_field(entries, \"{0}\")?,", f.name).unwrap();
                }
            }
            format!(
                "let entries = v.as_obj().ok_or_else(|| ::serde::DeError::expected(\"struct {name}\", v))?;\n        ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Fields::Tuple(1) => {
            format!("::std::result::Result::Ok({}(::serde::Deserialize::from_value(v)?))", name)
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&items[{}])?", i))
                .collect();
            format!(
                "let items = v.as_arr().ok_or_else(|| ::serde::DeError::expected(\"tuple struct {name}\", v))?;\n        if items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong tuple arity for {name}\")); }}\n        ::std::result::Result::Ok({name}({items}))",
                items = items.join(", "),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n        {body}\n    }}\n}}"
    )
}

fn gen_de_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    for v in variants.iter().filter(|v| matches!(v.fields, Fields::Unit)) {
        write!(unit_arms, "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),", vn = v.name)
            .unwrap();
    }
    let mut tagged_arms = String::new();
    for v in variants {
        let vn = &v.name;
        match &v.fields {
            Fields::Unit => continue,
            Fields::Tuple(1) => {
                write!(
                    tagged_arms,
                    "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),"
                )
                .unwrap();
            }
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&items[{}])?", i))
                    .collect();
                write!(
                    tagged_arms,
                    "\"{vn}\" => {{\n            let items = inner.as_arr().ok_or_else(|| ::serde::DeError::expected(\"tuple variant {name}::{vn}\", inner))?;\n            if items.len() != {n} {{ return ::std::result::Result::Err(::serde::DeError::new(\"wrong arity for {name}::{vn}\")); }}\n            ::std::result::Result::Ok({name}::{vn}({items}))\n        }}",
                    items = items.join(", "),
                )
                .unwrap();
            }
            Fields::Named(fs) => {
                let mut inits = String::new();
                for f in fs {
                    if f.skip {
                        write!(inits, "{}: ::std::default::Default::default(),", f.name).unwrap();
                    } else {
                        write!(inits, "{0}: ::serde::from_field(entries, \"{0}\")?,", f.name)
                            .unwrap();
                    }
                }
                write!(
                    tagged_arms,
                    "\"{vn}\" => {{\n            let entries = inner.as_obj().ok_or_else(|| ::serde::DeError::expected(\"struct variant {name}::{vn}\", inner))?;\n            ::std::result::Result::Ok({name}::{vn} {{ {inits} }})\n        }}"
                )
                .unwrap();
            }
        }
    }
    format!(
        r#"impl ::serde::Deserialize for {name} {{
    fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{
        match v {{
            ::serde::Value::Str(s) => match s.as_str() {{
                {unit_arms}
                other => ::std::result::Result::Err(::serde::DeError::new(format!("unknown variant `{{}}` of {name}", other))),
            }},
            ::serde::Value::Obj(obj) if obj.len() == 1 => {{
                let (tag, inner) = &obj[0];
                let _ = inner;
                match tag.as_str() {{
                    {tagged_arms}
                    other => ::std::result::Result::Err(::serde::DeError::new(format!("unknown variant `{{}}` of {name}", other))),
                }}
            }}
            _ => ::std::result::Result::Err(::serde::DeError::expected("enum {name}", v)),
        }}
    }}
}}"#
    )
}

//! Figure 2 + §IV-B1 — Alexa Top-10k study.
//!
//! Reports: fraction of scripts transformed (paper: 68.60%; 68.20%
//! minified, 0.40% obfuscated), fraction of sites with at least one
//! transformed script (paper: 89.4%), per-rank-bucket transformed rates
//! (paper: ~80% top-1k declining to ~72.35% in the 9-10k bucket), and the
//! Figure-2 technique-usage probabilities (min simple 45.96%, min adv
//! 40.24%, identifier obf 5.72%, the rest under 1.94%).

use jsdetect::Technique;
use jsdetect_corpus::alexa_population;
use jsdetect_experiments::{
    or_exit, print_technique_table, technique_usage_probability, train_cached, write_json, Args,
};
use serde::Serialize;
use std::collections::HashMap;

#[derive(Serialize)]
struct AlexaResult {
    scripts_transformed_pct: f64,
    scripts_minified_pct: f64,
    scripts_obfuscated_pct: f64,
    sites_with_transformed_pct: f64,
    bucket_transformed_pct: Vec<f64>,
    technique_usage: Vec<(String, f64)>,
    generating_transformed_pct: f64,
    n_scripts: usize,
    paper: HashMap<&'static str, f64>,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    // 10 rank buckets of sites sampled across the top 10k.
    let sites_per_bucket = args.scaled(14);
    let month = 64; // 2020-09
    let mut all_scripts = Vec::new();
    let mut bucket_of_script = Vec::new();
    for bucket in 0..10usize {
        let pop = alexa_population(
            month,
            sites_per_bucket,
            bucket * 1000,
            args.seed ^ (bucket as u64) << 8,
        );
        for s in pop {
            bucket_of_script.push(bucket);
            all_scripts.push(s);
        }
    }
    eprintln!("[alexa] classifying {} scripts...", all_scripts.len());
    let srcs: Vec<&str> = all_scripts.iter().map(|s| s.src.as_str()).collect();
    let l1 = detectors.level1.predict_many(&srcs);

    let mut transformed = 0usize;
    let mut minified = 0usize;
    let mut obfuscated = 0usize;
    let mut total = 0usize;
    let mut bucket_counts = [(0usize, 0usize); 10];
    let mut site_any: HashMap<usize, bool> = HashMap::new();
    for ((p, script), bucket) in l1.iter().zip(&all_scripts).zip(&bucket_of_script) {
        if let Some(p) = p {
            total += 1;
            let entry = site_any.entry(script.container).or_insert(false);
            if p.is_transformed() {
                transformed += 1;
                bucket_counts[*bucket].0 += 1;
                *entry = true;
            }
            if p.minified >= 0.5 {
                minified += 1;
            }
            if p.obfuscated >= 0.5 {
                obfuscated += 1;
            }
            bucket_counts[*bucket].1 += 1;
        }
    }
    let pct = |a: usize, b: usize| 100.0 * a as f64 / b.max(1) as f64;
    let sites_with = site_any.values().filter(|v| **v).count();
    let bucket_pct: Vec<f64> = bucket_counts.iter().map(|(t, n)| pct(*t, *n)).collect();
    let gen_rate =
        pct(all_scripts.iter().filter(|s| s.is_transformed()).count(), all_scripts.len());

    // Figure 2: technique usage probability over transformed scripts.
    let (usage, n_transformed) = technique_usage_probability(&detectors, &srcs);
    let usage_rows: Vec<(String, f64)> =
        Technique::ALL.iter().map(|t| (t.as_str().to_string(), 100.0 * usage[t.index()])).collect();

    println!("Alexa Top 10k (simulated), month 2020-09, {} scripts", total);
    println!("{:-<70}", "");
    println!(
        "scripts transformed: {:.2}% (generating truth {:.2}%, paper 68.60%)",
        pct(transformed, total),
        gen_rate
    );
    println!("scripts minified:    {:.2}% (paper 68.20%)", pct(minified, total));
    println!("scripts obfuscated:  {:.2}% (paper 0.40%)", pct(obfuscated, total));
    println!(
        "sites with ≥1 transformed script: {:.2}% (paper 89.4%)",
        pct(sites_with, site_any.len())
    );
    println!("\ntransformed rate per rank bucket (paper: ~80% → 72.35%):");
    for (b, p) in bucket_pct.iter().enumerate() {
        println!("  rank {:>5}-{:<5} {:6.2}%", b * 1000, (b + 1) * 1000, p);
    }
    print_technique_table(
        &format!(
            "Figure 2 — technique usage probability over {} transformed scripts",
            n_transformed
        ),
        &usage,
    );
    println!("(paper: min simple 45.96%, min adv 40.24%, ident obf 5.72%, rest <1.94%)");

    let mut paper = HashMap::new();
    paper.insert("scripts_transformed_pct", 68.60);
    paper.insert("scripts_minified_pct", 68.20);
    paper.insert("scripts_obfuscated_pct", 0.40);
    paper.insert("sites_with_transformed_pct", 89.4);
    let result = AlexaResult {
        scripts_transformed_pct: pct(transformed, total),
        scripts_minified_pct: pct(minified, total),
        scripts_obfuscated_pct: pct(obfuscated, total),
        sites_with_transformed_pct: pct(sites_with, site_any.len()),
        bucket_transformed_pct: bucket_pct,
        technique_usage: usage_rows,
        generating_transformed_pct: gen_rate,
        n_scripts: total,
        paper,
    };
    or_exit(write_json(&args, "fig2_alexa", &result));
}

//! Property-based tests over the front-end pipeline: the generator, the
//! transformation passes, the parser/printer pair, and feature extraction.

use jsdetect_suite::codegen::{to_minified, to_source};
use jsdetect_suite::corpus::RegularJsGenerator;
use jsdetect_suite::parser::parse;
use jsdetect_suite::transform::{apply, Technique};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every generated "regular" program parses and pretty-printing it is
    /// a fixpoint.
    #[test]
    fn generated_programs_parse_and_print_stably(seed in 0u64..10_000) {
        let src = RegularJsGenerator::new(seed).generate();
        let prog = parse(&src).expect("generated program must parse");
        let printed = to_source(&prog);
        let reparsed = parse(&printed).expect("printed program must reparse");
        prop_assert_eq!(printed, to_source(&reparsed));
    }

    /// Compact printing never changes the syntactic structure.
    #[test]
    fn minified_print_preserves_kind_stream(seed in 0u64..10_000) {
        let src = RegularJsGenerator::new(seed).generate();
        let prog = parse(&src).unwrap();
        let min = to_minified(&prog);
        let reparsed = parse(&min).expect("minified output must reparse");
        prop_assert_eq!(
            jsdetect_suite::ast::kind_stream(&prog),
            jsdetect_suite::ast::kind_stream(&reparsed)
        );
    }

    /// Every technique yields parseable output on arbitrary generated
    /// programs (or reports a structured error).
    #[test]
    fn techniques_preserve_parseability(seed in 0u64..5_000, t_idx in 0usize..10) {
        let src = RegularJsGenerator::new(seed).generate();
        let technique = Technique::ALL[t_idx];
        if let Ok(out) = apply(&src, &[technique], seed) {
            prop_assert!(
                parse(&out).is_ok(),
                "{} produced unparseable output for seed {}",
                technique,
                seed
            );
        }
    }

    /// The no-alphanumeric pass emits only its six-character alphabet.
    #[test]
    fn jsfuck_alphabet_invariant(seed in 0u64..2_000) {
        let src = RegularJsGenerator::new(seed).generate();
        if let Ok(out) = apply(&src, &[Technique::NoAlphanumeric], seed) {
            prop_assert!(out.chars().all(|c| "[]()!+".contains(c)));
        }
    }

    /// Identifier obfuscation leaves no original binding name behind and
    /// is deterministic per seed.
    #[test]
    fn identifier_obfuscation_properties(seed in 0u64..5_000) {
        let src = RegularJsGenerator::new(seed).generate();
        let a = apply(&src, &[Technique::IdentifierObfuscation], seed).unwrap();
        let b = apply(&src, &[Technique::IdentifierObfuscation], seed).unwrap();
        prop_assert_eq!(&a, &b);
        prop_assert!(a.contains("_0x"));
    }

    /// Feature extraction never produces NaN/∞ and has a stable width.
    #[test]
    fn features_always_finite(seed in 0u64..5_000, t_idx in 0usize..10) {
        let src = RegularJsGenerator::new(seed).generate();
        let out = apply(&src, &[Technique::ALL[t_idx]], seed).unwrap_or(src);
        let analysis = jsdetect_suite::features::analyze_script(&out).unwrap();
        let f = jsdetect_suite::features::handpicked_features(&analysis);
        prop_assert_eq!(f.len(), jsdetect_suite::features::N_HANDPICKED);
        for (i, v) in f.iter().enumerate() {
            prop_assert!(v.is_finite(), "feature {} not finite", i);
        }
    }

    /// The parser never panics on arbitrary byte soup (errors are fine).
    #[test]
    fn parser_total_on_arbitrary_input(src in "\\PC*") {
        let _ = parse(&src);
    }

    /// The parser never panics on JS-flavoured token soup either.
    #[test]
    fn parser_total_on_js_like_input(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just("var ".to_string()),
                Just("function ".to_string()),
                Just("if".to_string()),
                Just("(".to_string()),
                Just(")".to_string()),
                Just("{".to_string()),
                Just("}".to_string()),
                Just("[".to_string()),
                Just("]".to_string()),
                Just(";".to_string()),
                Just("=".to_string()),
                Just("=>".to_string()),
                Just("+".to_string()),
                Just("'str'".to_string()),
                Just("`tpl${".to_string()),
                Just("/".to_string()),
                Just("x".to_string()),
                Just("1".to_string()),
                Just(",".to_string()),
                Just(".".to_string()),
            ],
            0..60,
        )
    ) {
        let src: String = tokens.concat();
        let _ = parse(&src);
    }

    /// The lexer is total as well.
    #[test]
    fn lexer_total_on_arbitrary_input(src in "\\PC*") {
        let _ = jsdetect_suite::lexer::tokenize(&src);
    }
}

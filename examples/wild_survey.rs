//! A miniature version of the paper's §IV study: train the detectors,
//! simulate small Alexa / npm / malware populations, and report how each
//! population's transformation landscape differs.
//!
//! ```sh
//! cargo run --release --example wild_survey
//! ```

use jsdetect_suite::corpus::{
    alexa_population, malware_population, npm_population, MalwareSource, WildScript,
};
use jsdetect_suite::detector::{train_pipeline, DetectorConfig, Technique, TrainedDetectors};

fn survey(name: &str, detectors: &TrainedDetectors, pop: &[WildScript]) {
    let srcs: Vec<&str> = pop.iter().map(|s| s.src.as_str()).collect();
    let preds = detectors.level1.predict_many(&srcs);

    let mut transformed_srcs = Vec::new();
    let mut transformed = 0usize;
    let mut total = 0usize;
    for (p, src) in preds.iter().zip(&srcs) {
        if let Some(p) = p {
            total += 1;
            if p.is_transformed() {
                transformed += 1;
                transformed_srcs.push(*src);
            }
        }
    }
    println!(
        "\n{:10} {:4} scripts, {:5.1}% transformed",
        name,
        total,
        100.0 * transformed as f64 / total.max(1) as f64
    );

    // Average technique confidence over transformed scripts (the paper's
    // Figure 2/3/5 quantity).
    let probs = detectors.level2.predict_proba_many(&transformed_srcs);
    let mut sums = [0f64; 10];
    let mut n = 0usize;
    for p in probs.into_iter().flatten() {
        for (i, v) in p.iter().enumerate() {
            sums[i] += *v as f64;
        }
        n += 1;
    }
    let mut rows: Vec<(usize, f64)> =
        sums.iter().map(|s| s / n.max(1) as f64).enumerate().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (i, p) in rows.into_iter().take(4) {
        println!("    {:26} {:5.1}%", Technique::ALL[i].as_str(), 100.0 * p);
    }
}

fn main() {
    println!("training detectors (n=100)...");
    let out = train_pipeline(100, 3, &DetectorConfig::default().with_seed(3));
    let detectors = out.detectors;

    let alexa = alexa_population(64, 30, 0, 77);
    survey("Alexa", &detectors, &alexa);

    let mut npm = npm_population(64, 40, 0, 77);
    npm.extend(npm_population(64, 40, 3000, 78));
    survey("npm", &detectors, &npm);

    for source in [MalwareSource::Dnc, MalwareSource::Hynek, MalwareSource::Bsi] {
        let pop = malware_population(source, 12, 60, 77);
        survey(source.as_str(), &detectors, &pop);
    }

    println!(
        "\nExpected shape (paper §IV-E): benign code is dominated by\n\
         minification; malware leads with identifier/string obfuscation\n\
         plus aggressive minification, and BSI shows the lowest\n\
         transformed rate of the three feeds."
    );
}

//! Minimal offline stand-in for the `criterion` benchmark harness.
//!
//! The build container cannot fetch crates.io, so this crate implements the
//! subset of criterion's API the workspace benches use — `criterion_group!`/
//! `criterion_main!`, `Criterion::benchmark_group`, `Bencher::iter`/
//! `iter_batched`, `Throughput`, `BatchSize` — over `std::time::Instant`.
//! It reports mean/min wall time per iteration (and throughput when
//! declared). Statistical analysis, plotting, and baselines are out of
//! scope; the numbers are good enough to track order-of-magnitude regressions.

#![allow(clippy::all)]

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget: stop sampling once exceeded.
const SAMPLE_BUDGET: Duration = Duration::from_secs(5);
/// Target duration of one measured sample when batching fast routines.
const SAMPLE_TARGET: Duration = Duration::from_millis(20);

/// Declared workload size, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// How `iter_batched` amortizes setup; all variants behave identically here
/// (setup runs per sample and is excluded from timing).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small input: criterion would batch many per allocation.
    SmallInput,
    /// Large input: criterion would batch few.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Top-level harness state.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 30 }
    }
}

impl Criterion {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a single benchmark outside a group.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, None, f);
        self
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for subsequent benchmarks in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Measures one benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F) -> &mut Self
    where
        F: FnOnce(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

fn run_benchmark<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, f: F)
where
    F: FnOnce(&mut Bencher),
{
    let mut b = Bencher { sample_size, samples: Vec::new() };
    f(&mut b);
    report(id, &b.samples, throughput);
}

/// Passed to the benchmark closure; runs and times the routine.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, batching fast routines so each sample is long enough
    /// to measure reliably.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + calibration.
        let t0 = Instant::now();
        black_box(routine());
        let single = t0.elapsed();
        let iters: u32 = if single >= SAMPLE_TARGET {
            1
        } else {
            (SAMPLE_TARGET.as_nanos() / single.as_nanos().max(1)).clamp(1, 100_000) as u32
        };
        let started = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(t.elapsed() / iters);
            if started.elapsed() > SAMPLE_BUDGET && self.samples.len() >= 2 {
                break;
            }
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let started = Instant::now();
        for _ in 0..self.sample_size.max(8) {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            self.samples.push(t.elapsed());
            if started.elapsed() > SAMPLE_BUDGET && self.samples.len() >= 2 {
                break;
            }
        }
    }
}

fn report(id: &str, samples: &[Duration], throughput: Option<Throughput>) {
    if samples.is_empty() {
        println!("{id:<44} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = *samples.iter().min().unwrap();
    let mut line = format!(
        "{id:<44} mean {:>12}  min {:>12}  ({} samples)",
        fmt_duration(mean),
        fmt_duration(min),
        samples.len()
    );
    if let Some(t) = throughput {
        let per_sec = |work: u64| work as f64 / mean.as_secs_f64().max(1e-12);
        match t {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{} ns", ns)
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

//! Quickstart: train the two detectors at a small scale and classify a
//! few scripts.
//!
//! Classification goes through [`classify_one_cached`] — the same
//! guarded, cache-aware entry the `jsdetect-serve` daemon and the CLI
//! use — so what you see here is byte-identical to what the service
//! answers.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use jsdetect_suite::detector::{
    classify_one_cached, train_pipeline, AnalysisConfig, DetectorConfig, ScriptVerdict, Technique,
    TrainedDetectors, DEFAULT_THRESHOLD,
};
use jsdetect_suite::transform::apply;

fn classify(detectors: &TrainedDetectors, src: &str) -> ScriptVerdict {
    classify_one_cached(src, &AnalysisConfig::default(), None, detectors, 4, DEFAULT_THRESHOLD)
}

fn main() {
    // 1. Train. The paper trains on 21,000 scripts; 80 keeps this example
    //    fast while still reaching usable accuracy.
    println!("training detectors on a synthetic corpus (n=80)...");
    let t0 = std::time::Instant::now();
    let out = train_pipeline(80, 7, &DetectorConfig::fast().with_seed(7));
    let detectors = out.detectors;
    println!("trained in {:.1?}\n", t0.elapsed());

    // 2. Classify a hand-written (regular) script.
    let regular = r#"
        function formatPrice(value, currency) {
            var amount = Math.round(value * 100) / 100;
            return currency + ' ' + amount.toFixed(2);
        }
        console.log(formatPrice(12.5, 'EUR'));
    "#;
    let verdict = classify(&detectors, regular);
    let p = verdict.level1.expect("regular script analyzes cleanly");
    println!(
        "regular script    → transformed={} (regular={:.2} minified={:.2} obfuscated={:.2})",
        verdict.is_transformed(),
        p.regular,
        p.minified,
        p.obfuscated
    );

    // 3. Obfuscate the same script and classify again.
    let obfuscated =
        apply(regular, &[Technique::IdentifierObfuscation, Technique::StringObfuscation], 99)
            .unwrap();
    let verdict = classify(&detectors, &obfuscated);
    let p = verdict.level1.expect("obfuscated script analyzes cleanly");
    println!(
        "obfuscated script → transformed={} (regular={:.2} minified={:.2} obfuscated={:.2})",
        verdict.is_transformed(),
        p.regular,
        p.minified,
        p.obfuscated
    );

    // 4. The same verdict already carries the level-2 technique report
    //    (thresholded Top-k rule, applied because level 1 said
    //    "transformed").
    println!("\nlevel-2 report for the obfuscated script:");
    for t in &verdict.techniques {
        println!("  - {}", t.as_str());
    }

    // 5. Minify instead — the verdict changes class.
    let minified = apply(regular, &[Technique::MinificationAdvanced], 99).unwrap();
    let verdict = classify(&detectors, &minified);
    let p = verdict.level1.expect("minified script analyzes cleanly");
    println!("\nminified script   → minified={:.2} obfuscated={:.2}", p.minified, p.obfuscated);
    println!("minified source: {}", minified);
}

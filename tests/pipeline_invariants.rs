//! Randomized-but-deterministic invariant tests over the front-end
//! pipeline: the generator, the transformation passes, the parser/printer
//! pair, and feature extraction. These replace the earlier proptest suite
//! with fixed seed sweeps (proptest is unavailable in the offline build
//! environment); coverage is equivalent because every case was already
//! driven by a seeded generator.

use jsdetect_suite::codegen::{to_minified, to_source};
use jsdetect_suite::corpus::RegularJsGenerator;
use jsdetect_suite::parser::parse;
use jsdetect_suite::transform::{apply, Technique};

const SEEDS: std::ops::Range<u64> = 0..24;

/// Every generated "regular" program parses and pretty-printing it is a
/// fixpoint.
#[test]
fn generated_programs_parse_and_print_stably() {
    for seed in SEEDS {
        let src = RegularJsGenerator::new(seed * 419 + 1).generate();
        let prog = parse(&src).expect("generated program must parse");
        let printed = to_source(&prog);
        let reparsed = parse(&printed).expect("printed program must reparse");
        assert_eq!(printed, to_source(&reparsed), "seed {}", seed);
    }
}

/// Compact printing never changes the syntactic structure.
#[test]
fn minified_print_preserves_kind_stream() {
    for seed in SEEDS {
        let src = RegularJsGenerator::new(seed * 733 + 5).generate();
        let prog = parse(&src).unwrap();
        let min = to_minified(&prog);
        let reparsed = parse(&min).expect("minified output must reparse");
        assert_eq!(
            jsdetect_suite::ast::kind_stream(&prog),
            jsdetect_suite::ast::kind_stream(&reparsed),
            "seed {}",
            seed
        );
    }
}

/// Every technique yields parseable output on arbitrary generated programs
/// (or reports a structured error).
#[test]
fn techniques_preserve_parseability() {
    for seed in SEEDS {
        let src = RegularJsGenerator::new(seed * 97 + 3).generate();
        for technique in Technique::ALL {
            if let Ok(out) = apply(&src, &[technique], seed) {
                assert!(
                    parse(&out).is_ok(),
                    "{} produced unparseable output for seed {}",
                    technique,
                    seed
                );
            }
        }
    }
}

/// The no-alphanumeric pass emits only its six-character alphabet.
#[test]
fn jsfuck_alphabet_invariant() {
    for seed in 0..12u64 {
        let src = RegularJsGenerator::new(seed * 53 + 7).generate();
        if let Ok(out) = apply(&src, &[Technique::NoAlphanumeric], seed) {
            assert!(out.chars().all(|c| "[]()!+".contains(c)), "seed {}", seed);
        }
    }
}

/// Identifier obfuscation leaves no original binding name behind and is
/// deterministic per seed.
#[test]
fn identifier_obfuscation_properties() {
    for seed in SEEDS {
        let src = RegularJsGenerator::new(seed * 211 + 9).generate();
        let a = apply(&src, &[Technique::IdentifierObfuscation], seed).unwrap();
        let b = apply(&src, &[Technique::IdentifierObfuscation], seed).unwrap();
        assert_eq!(a, b, "seed {}", seed);
        assert!(a.contains("_0x"), "seed {}", seed);
    }
}

/// Feature extraction never produces NaN/∞ and has a stable width.
#[test]
fn features_always_finite() {
    for seed in 0..12u64 {
        let src = RegularJsGenerator::new(seed * 17 + 11).generate();
        for technique in Technique::ALL {
            let out = apply(&src, &[technique], seed).unwrap_or_else(|_| src.clone());
            let analysis = jsdetect_suite::features::analyze_script(&out).unwrap();
            let f = jsdetect_suite::features::handpicked_features(&analysis);
            assert_eq!(f.len(), jsdetect_suite::features::N_HANDPICKED);
            for (i, v) in f.iter().enumerate() {
                assert!(v.is_finite(), "feature {} not finite (seed {})", i, seed);
            }
        }
    }
}

/// Deterministic "byte soup" for totality tests.
fn byte_soup(seed: u64, len: usize) -> String {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut out = String::with_capacity(len);
    while out.len() < len {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        // Mix printable ASCII, whitespace, and the odd multi-byte char.
        let c = match state % 11 {
            0 => char::from_u32(0x1000 + (state >> 8) as u32 % 0xB000).unwrap_or('𚿵'),
            1 => '\n',
            _ => char::from_u32(0x20 + (state >> 16) as u32 % 0x5F).unwrap(),
        };
        out.push(c);
    }
    out
}

/// The parser never panics on arbitrary byte soup (errors are fine).
#[test]
fn parser_total_on_arbitrary_input() {
    // Historical proptest shrink case: a regex start followed by an escaped
    // astral-plane char used to reach a panic path.
    let _ = parse("/\\𚿵");
    for seed in 0..64u64 {
        let _ = parse(&byte_soup(seed, 80));
    }
}

/// The parser never panics on JS-flavoured token soup either.
#[test]
fn parser_total_on_js_like_input() {
    const TOKENS: [&str; 20] = [
        "var ",
        "function ",
        "if",
        "(",
        ")",
        "{",
        "}",
        "[",
        "]",
        ";",
        "=",
        "=>",
        "+",
        "'str'",
        "`tpl${",
        "/",
        "x",
        "1",
        ",",
        ".",
    ];
    for seed in 0..64u64 {
        let mut state = seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(3);
        let mut src = String::new();
        let n = (seed % 60) as usize;
        for _ in 0..n {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            src.push_str(TOKENS[(state % TOKENS.len() as u64) as usize]);
        }
        let _ = parse(&src);
    }
}

/// The lexer is total as well.
#[test]
fn lexer_total_on_arbitrary_input() {
    for seed in 0..64u64 {
        let _ = jsdetect_suite::lexer::tokenize(&byte_soup(seed.wrapping_add(1000), 80));
    }
}

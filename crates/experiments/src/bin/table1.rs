//! Table I — dataset summary: sources, creation window, script counts.
//!
//! Prints the simulated counterpart of the paper's Table I at the chosen
//! scale (paper counts in parentheses).

use jsdetect_corpus::{alexa_population, malware_population, npm_population, MalwareSource};
use jsdetect_experiments::{or_exit, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct Row {
    source: String,
    creation: String,
    n_js: usize,
    class: &'static str,
    paper_n_js: usize,
}

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();

    let alexa = alexa_population(64, args.scaled(120), 0, args.seed);
    rows.push(Row {
        source: "Alexa Top 10k (sim)".into(),
        creation: "2020".into(),
        n_js: alexa.len(),
        class: "Benign",
        paper_n_js: 46_238,
    });

    let npm = npm_population(64, args.scaled(150), 0, args.seed);
    rows.push(Row {
        source: "npm Top 10k (sim)".into(),
        creation: "2020".into(),
        n_js: npm.len(),
        class: "Benign",
        paper_n_js: 51_053,
    });

    for (source, months, per_month, paper) in [
        (MalwareSource::Dnc, 6, 12, 4_514),
        (MalwareSource::Hynek, 6, 60, 29_484),
        (MalwareSource::Bsi, 3, 140, 36_475),
    ] {
        let n: usize = (0..months)
            .map(|m| malware_population(source, m, args.scaled(per_month), args.seed).len())
            .sum();
        rows.push(Row {
            source: format!("{} (sim)", source.as_str()),
            creation: if source == MalwareSource::Bsi { "2017".into() } else { "2015-2017".into() },
            n_js: n,
            class: "Malicious",
            paper_n_js: paper,
        });
    }

    // Longitudinal windows (counted at a coarse stride to bound runtime).
    let alexa_monthly: usize = (0..65)
        .step_by(8)
        .map(|m| alexa_population(m, args.scaled(20), 0, args.seed ^ m as u64).len())
        .sum::<usize>()
        * 8;
    rows.push(Row {
        source: "Alexa Top 2k x 65 months (sim, extrapolated)".into(),
        creation: "2015-2020".into(),
        n_js: alexa_monthly,
        class: "Benign",
        paper_n_js: 327_164,
    });
    let npm_monthly: usize = (0..65)
        .step_by(8)
        .map(|m| npm_population(m, args.scaled(25), 0, args.seed ^ m as u64).len())
        .sum::<usize>()
        * 8;
    rows.push(Row {
        source: "npm Top 2k x 65 months (sim, extrapolated)".into(),
        creation: "2015-2020".into(),
        n_js: npm_monthly,
        class: "Benign",
        paper_n_js: 482_834,
    });

    println!("Table I — dataset summary (simulated at scale {})", args.scale);
    println!("{:-<96}", "");
    println!("{:46} {:10} {:>8} {:>10} {:>12}", "Source", "Creation", "#JS", "Class", "paper #JS");
    for r in &rows {
        println!(
            "{:46} {:10} {:>8} {:>10} {:>12}",
            r.source, r.creation, r.n_js, r.class, r.paper_n_js
        );
    }
    or_exit(write_json(&args, "table1", &rows));
}

//! §III-E3 (Test Set 3) — generalization to the held-out Dean Edwards
//! packer (the Daft Logic obfuscator's engine).
//!
//! Paper targets: 99.52% of packed samples flagged transformed; the
//! thresholded Top-4 reports minification (advanced and simple),
//! identifier obfuscation, and string obfuscation.

use jsdetect::Technique;
use jsdetect_corpus::packer_set;
use jsdetect_experiments::{or_exit, train_cached, write_json, Args};
use serde::Serialize;

#[derive(Serialize)]
struct PackerResult {
    transformed_acc: f64,
    top4_technique_rates: Vec<(String, f64)>,
    n: usize,
    paper_transformed_acc: f64,
}

fn main() {
    let args = Args::parse();
    let (detectors, _pools) = or_exit(train_cached(&args));

    let n = args.scaled(150);
    eprintln!("[packer] generating {} packed samples...", n);
    let samples = packer_set(n, args.seed ^ 0x9acc);
    let srcs: Vec<&str> = samples.iter().map(|s| s.src.as_str()).collect();

    let l1 = detectors.level1.predict_many(&srcs);
    let mut transformed = 0usize;
    let mut total = 0usize;
    for p in l1.iter().flatten() {
        total += 1;
        if p.is_transformed() {
            transformed += 1;
        }
    }
    let acc = 100.0 * transformed as f64 / total.max(1) as f64;

    // Thresholded Top-4 technique reports across the set.
    let probs = detectors.level2.predict_proba_many(&srcs);
    let mut counts = [0usize; 10];
    let mut n_pred = 0usize;
    for p in probs.into_iter().flatten() {
        n_pred += 1;
        for i in jsdetect_ml::metrics::thresholded_top_k(&p, 4, 0.10) {
            counts[i] += 1;
        }
    }
    let mut rates: Vec<(String, f64)> = counts
        .iter()
        .enumerate()
        .map(|(i, c)| {
            (Technique::ALL[i].as_str().to_string(), 100.0 * *c as f64 / n_pred.max(1) as f64)
        })
        .collect();
    rates.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());

    println!("Held-out packer generalization (Test Set 3, §III-E3), n={}", total);
    println!("{:-<64}", "");
    println!("flagged transformed: {:.2}% (paper: 99.52%)", acc);
    println!("\ntop-4 thresholded technique reports (fraction of samples):");
    for (name, r) in &rates {
        println!("  {:26} {:6.2}%", name, r);
    }
    println!(
        "\npaper reports: minification advanced + simple, identifier\n\
         obfuscation, and string obfuscation — in line with the packer."
    );

    let result = PackerResult {
        transformed_acc: acc,
        top4_technique_rates: rates,
        n: total,
        paper_transformed_acc: 99.52,
    };
    or_exit(write_json(&args, "eval_packer", &result));
}

//! CART decision trees with Gini impurity (binary classification).

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// How many features to consider per split.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaxFeatures {
    /// All features.
    All,
    /// `sqrt(n_features)` (the random-forest default).
    Sqrt,
    /// A fixed number.
    Fixed(usize),
}

impl MaxFeatures {
    fn resolve(self, n_features: usize) -> usize {
        match self {
            MaxFeatures::All => n_features,
            MaxFeatures::Sqrt => (n_features as f64).sqrt().ceil() as usize,
            MaxFeatures::Fixed(k) => k.min(n_features),
        }
        .max(1)
    }
}

/// Tree-growing parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum tree depth.
    pub max_depth: usize,
    /// Minimum samples required to attempt a split.
    pub min_samples_split: usize,
    /// Minimum samples in each leaf.
    pub min_samples_leaf: usize,
    /// Features considered per split.
    pub max_features: MaxFeatures,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 16,
            min_samples_split: 4,
            min_samples_leaf: 1,
            max_features: MaxFeatures::Sqrt,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
enum Node {
    Leaf { prob: f32 },
    Split { feature: usize, threshold: f32, left: usize, right: usize },
}

/// A fitted binary decision tree; [`DecisionTree::predict_proba`] returns
/// the positive-class probability.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DecisionTree {
    nodes: Vec<Node>,
}

impl DecisionTree {
    /// Fits a tree on rows `x` (each of equal length) with binary labels
    /// `y`. `rng` drives the per-split feature subsampling.
    ///
    /// # Panics
    ///
    /// Panics if `x` is empty or `x.len() != y.len()`.
    pub fn fit(x: &[Vec<f32>], y: &[bool], params: &TreeParams, rng: &mut StdRng) -> Self {
        assert!(!x.is_empty(), "cannot fit a tree on an empty dataset");
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        let n_features = x[0].len();
        let mut tree = DecisionTree { nodes: Vec::new() };
        let idx: Vec<u32> = (0..x.len() as u32).collect();
        let mut builder = Builder { x, y, params, rng, n_features };
        builder.grow(&mut tree.nodes, idx, 0);
        tree
    }

    /// Probability that `row` belongs to the positive class.
    pub fn predict_proba(&self, row: &[f32]) -> f32 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { prob } => return *prob,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes in the tree.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Accumulates the number of split nodes per feature into `counts`
    /// (features beyond `counts.len()` are ignored).
    pub fn accumulate_split_counts(&self, counts: &mut [u32]) {
        for n in &self.nodes {
            if let Node::Split { feature, .. } = n {
                if let Some(c) = counts.get_mut(*feature) {
                    *c += 1;
                }
            }
        }
    }

    /// Maximum depth of the fitted tree.
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => {
                    1 + depth_of(nodes, *left).max(depth_of(nodes, *right))
                }
            }
        }
        if self.nodes.is_empty() {
            0
        } else {
            depth_of(&self.nodes, 0)
        }
    }
}

struct Builder<'a> {
    x: &'a [Vec<f32>],
    y: &'a [bool],
    params: &'a TreeParams,
    rng: &'a mut StdRng,
    n_features: usize,
}

impl Builder<'_> {
    /// Grows a subtree over `idx`; returns the node index.
    fn grow(&mut self, nodes: &mut Vec<Node>, idx: Vec<u32>, depth: usize) -> usize {
        let positives = idx.iter().filter(|&&i| self.y[i as usize]).count();
        let prob = positives as f32 / idx.len() as f32;

        let perfect = positives == 0 || positives == idx.len();
        if perfect || depth >= self.params.max_depth || idx.len() < self.params.min_samples_split {
            nodes.push(Node::Leaf { prob });
            return nodes.len() - 1;
        }

        match self.best_split(&idx) {
            Some((feature, threshold)) => {
                let (left_idx, right_idx): (Vec<u32>, Vec<u32>) =
                    idx.iter().partition(|&&i| self.x[i as usize][feature] <= threshold);
                if left_idx.len() < self.params.min_samples_leaf
                    || right_idx.len() < self.params.min_samples_leaf
                {
                    nodes.push(Node::Leaf { prob });
                    return nodes.len() - 1;
                }
                let me = nodes.len();
                nodes.push(Node::Leaf { prob }); // placeholder
                let left = self.grow(nodes, left_idx, depth + 1);
                let right = self.grow(nodes, right_idx, depth + 1);
                nodes[me] = Node::Split { feature, threshold, left, right };
                me
            }
            None => {
                nodes.push(Node::Leaf { prob });
                nodes.len() - 1
            }
        }
    }

    /// Finds the Gini-optimal split over a random feature subset.
    fn best_split(&mut self, idx: &[u32]) -> Option<(usize, f32)> {
        let k = self.params.max_features.resolve(self.n_features);
        let mut features: Vec<usize> = (0..self.n_features).collect();
        features.shuffle(self.rng);
        features.truncate(k);

        let total_pos = idx.iter().filter(|&&i| self.y[i as usize]).count() as f64;
        let n = idx.len() as f64;

        let mut best: Option<(usize, f32, f64)> = None;
        let mut vals: Vec<(f32, bool)> = Vec::with_capacity(idx.len());
        for f in features {
            vals.clear();
            vals.extend(idx.iter().map(|&i| (self.x[i as usize][f], self.y[i as usize])));
            vals.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            // Sweep split points between distinct adjacent values.
            let mut left_n = 0f64;
            let mut left_pos = 0f64;
            for w in 0..vals.len() - 1 {
                left_n += 1.0;
                if vals[w].1 {
                    left_pos += 1.0;
                }
                if vals[w].0 == vals[w + 1].0 {
                    continue;
                }
                let right_n = n - left_n;
                let right_pos = total_pos - left_pos;
                let gini_left = gini(left_pos, left_n);
                let gini_right = gini(right_pos, right_n);
                let weighted = (left_n * gini_left + right_n * gini_right) / n;
                if best.is_none_or(|(_, _, b)| weighted < b) {
                    let threshold = midpoint(vals[w].0, vals[w + 1].0);
                    best = Some((f, threshold, weighted));
                }
            }
        }
        // Split whenever weighted child impurity does not exceed the
        // parent's (zero-improvement splits are allowed, as in sklearn —
        // they are what lets greedy CART stack splits to solve XOR).
        let parent_gini = gini(total_pos, n);
        match best {
            Some((f, t, g)) if g <= parent_gini + 1e-12 => Some((f, t)),
            _ => None,
        }
    }
}

fn gini(pos: f64, n: f64) -> f64 {
    if n == 0.0 {
        return 0.0;
    }
    let p = pos / n;
    2.0 * p * (1.0 - p)
}

fn midpoint(a: f32, b: f32) -> f32 {
    let m = a + (b - a) / 2.0;
    // Guard against midpoint rounding to b (then `<=` would misroute).
    if m >= b {
        a
    } else {
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0)
    }

    fn fit(x: &[Vec<f32>], y: &[bool]) -> DecisionTree {
        DecisionTree::fit(
            x,
            y,
            &TreeParams { max_features: MaxFeatures::All, ..Default::default() },
            &mut rng(),
        )
    }

    #[test]
    fn separable_1d() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let tree = fit(&x, &y);
        assert!(tree.predict_proba(&[2.0]) < 0.5);
        assert!(tree.predict_proba(&[17.0]) > 0.5);
    }

    #[test]
    fn xor_needs_depth() {
        let x = vec![vec![0.0, 0.0], vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let y = vec![false, true, true, false];
        let tree = DecisionTree::fit(
            &x,
            &y,
            &TreeParams {
                max_features: MaxFeatures::All,
                min_samples_split: 2,
                ..Default::default()
            },
            &mut rng(),
        );
        for (xi, yi) in x.iter().zip(&y) {
            let p = tree.predict_proba(xi);
            assert_eq!(p > 0.5, *yi, "row {:?} p={}", xi, p);
        }
    }

    #[test]
    fn pure_labels_single_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![true, true, true];
        let tree = fit(&x, &y);
        assert_eq!(tree.node_count(), 1);
        assert_eq!(tree.predict_proba(&[9.0]), 1.0);
    }

    #[test]
    fn respects_max_depth() {
        let x: Vec<Vec<f32>> = (0..64).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..64).map(|i| i % 2 == 0).collect();
        let tree = DecisionTree::fit(
            &x,
            &y,
            &TreeParams { max_depth: 3, max_features: MaxFeatures::All, ..Default::default() },
            &mut rng(),
        );
        assert!(tree.depth() <= 3);
    }

    #[test]
    fn constant_features_yield_leaf() {
        let x = vec![vec![5.0], vec![5.0], vec![5.0], vec![5.0]];
        let y = vec![true, false, true, false];
        let tree = fit(&x, &y);
        assert_eq!(tree.node_count(), 1);
        assert!((tree.predict_proba(&[5.0]) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn deterministic_given_seed() {
        let x: Vec<Vec<f32>> = (0..50).map(|i| vec![(i % 7) as f32, (i % 3) as f32]).collect();
        let y: Vec<bool> = (0..50).map(|i| i % 7 > 3).collect();
        let params = TreeParams::default();
        let a = DecisionTree::fit(&x, &y, &params, &mut rng());
        let b = DecisionTree::fit(&x, &y, &params, &mut rng());
        assert_eq!(a.predict_proba(&[4.0, 1.0]), b.predict_proba(&[4.0, 1.0]));
    }

    #[test]
    fn serde_roundtrip() {
        let x: Vec<Vec<f32>> = (0..20).map(|i| vec![i as f32]).collect();
        let y: Vec<bool> = (0..20).map(|i| i >= 10).collect();
        let tree = fit(&x, &y);
        let json = serde_json::to_string(&tree).unwrap();
        let back: DecisionTree = serde_json::from_str(&json).unwrap();
        assert_eq!(back.predict_proba(&[3.0]), tree.predict_proba(&[3.0]));
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_dataset_panics() {
        let _ = fit(&[], &[]);
    }
}

//! The bounded admission queue between transport and worker pool.
//!
//! `try_push` never blocks and never grows the queue past its capacity:
//! overload is an explicit, immediate rejection at admission time, not a
//! latency cliff discovered later. `pop` blocks until work arrives; after
//! [`BoundedQueue::close`] it keeps draining what was already accepted and
//! only then returns `None`, which is exactly the graceful-shutdown
//! contract (every accepted request gets a response).

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Why a `try_push` was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; the item is handed back.
    Full(T),
    /// The queue was closed (daemon draining); the item is handed back.
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A Mutex+Condvar bounded MPMC queue (std-only, no external channels).
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue admitting at most `capacity` items at once.
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admission capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current depth (racy by nature; used for gauges and heuristics).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).items.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission: enqueues `item` or refuses immediately.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`close`](Self::close); both return the item to the caller so it
    /// can be answered with a rejection.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking consume: returns the next item, or `None` once the queue
    /// is closed *and* fully drained.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Stops admissions. Already-queued items keep draining through
    /// [`pop`](Self::pop); blocked consumers are woken.
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|e| e.into_inner()).closed = true;
        self.ready.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn full_queue_refuses_without_blocking() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        q.close();
        assert_eq!(q.try_push(3), Err(PushError::Closed(3)));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn close_wakes_blocked_consumers() {
        let q = Arc::new(BoundedQueue::<u32>::new(1));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert_eq!(h.join().unwrap(), None);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_items() {
        let q = Arc::new(BoundedQueue::new(8));
        let mut producers = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            producers.push(std::thread::spawn(move || {
                let mut sent = 0u64;
                for i in 0..100 {
                    if q.try_push(t * 1000 + i).is_ok() {
                        sent += 1;
                    }
                    std::thread::yield_now();
                }
                sent
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..2 {
            let q = q.clone();
            consumers.push(std::thread::spawn(move || {
                let mut got = 0u64;
                while q.pop().is_some() {
                    got += 1;
                }
                got
            }));
        }
        let sent: u64 = producers.into_iter().map(|h| h.join().unwrap()).sum();
        q.close();
        let got: u64 = consumers.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(sent, got, "every admitted item must be consumed exactly once");
    }
}

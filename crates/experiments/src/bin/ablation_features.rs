//! Feature-family ablation — 4-grams only vs. hand-picked only vs. both
//! (DESIGN.md §5). The paper uses both families; this quantifies each
//! family's contribution.

use jsdetect::{train_pipeline, DetectorConfig};
use jsdetect_experiments::{or_exit, write_json, Args};
use jsdetect_features::FeatureConfig;
use jsdetect_ml::metrics;
use serde::Serialize;

#[derive(Serialize)]
struct FeatureRow {
    features: String,
    level1_overall_acc: f64,
    level2_exact_acc: f64,
    dims_note: String,
}

fn main() {
    let args = Args::parse();
    let n = args.scaled(120);
    let mut rows = Vec::new();

    for (name, features) in [
        ("both", FeatureConfig { handpicked: true, ngrams: true, lint: false, normalize: false }),
        (
            "handpicked only",
            FeatureConfig { handpicked: true, ngrams: false, lint: false, normalize: false },
        ),
        (
            "4-grams only",
            FeatureConfig { handpicked: false, ngrams: true, lint: false, normalize: false },
        ),
    ] {
        let cfg = DetectorConfig { features, ..DetectorConfig::default() }.with_seed(args.seed);
        let out = train_pipeline(n, args.seed, &cfg);

        let mut ok = 0usize;
        let mut total = 0usize;
        for (pool, class) in [
            (&out.test_regular, "regular"),
            (&out.test_minified, "minified"),
            (&out.test_obfuscated, "obfuscated"),
        ] {
            let srcs: Vec<&str> = pool.iter().map(|s| s.src.as_str()).collect();
            for p in out.detectors.level1.predict_many(&srcs).iter().flatten() {
                total += 1;
                let correct = match class {
                    "regular" => !p.is_transformed(),
                    "minified" => p.minified >= 0.5,
                    _ => p.obfuscated >= 0.5,
                };
                if correct {
                    ok += 1;
                }
            }
        }
        let l1 = 100.0 * ok as f64 / total.max(1) as f64;

        let srcs: Vec<&str> = out.test_level2.iter().map(|s| s.src.as_str()).collect();
        let probs = out.detectors.level2.predict_proba_many(&srcs);
        let mut hard = Vec::new();
        let mut truth = Vec::new();
        for (p, s) in probs.into_iter().zip(&out.test_level2) {
            if let Some(p) = p {
                hard.push(p.iter().map(|v| *v >= 0.5).collect::<Vec<bool>>());
                truth.push(s.label_vector());
            }
        }
        let l2 = 100.0 * metrics::exact_match(&hard, &truth);

        println!("{:18} level1 {:6.2}%  level2-exact {:6.2}%", name, l1, l2);
        rows.push(FeatureRow {
            features: name.to_string(),
            level1_overall_acc: l1,
            level2_exact_acc: l2,
            dims_note: format!("l1 space dim = {}", out.detectors.level1.space().dim()),
        });
    }
    or_exit(write_json(&args, "ablation_features", &rows));
}

//! Normalized-vs-original delta features.
//!
//! Obfuscation artifacts are, by construction, things the
//! [`jsdetect_normalize`] pass suite can remove: folded-away constant
//! indirection, collapsed string fragments, inlined string pools,
//! unflattened comma chains. A script that *shrinks a lot* under
//! normalization — or whose lint-rule densities drop — is carrying
//! removable obfuscation structure, and that difference is itself a
//! signal. This module measures it: one AST-size ratio, one
//! string-entropy delta, and one density delta per lint rule.
//!
//! Determinism matters here (cached payloads must replay bit-identically),
//! so normalization runs with the wall-clock deadline disabled and relies
//! on the rewrite-fuel and round caps alone; a degraded normalization
//! yields the neutral vector instead of a partial measurement.

use crate::analysis::ScriptAnalysis;
use crate::handpicked::byte_entropy;
use jsdetect_ast::{walk, Expr, Lit, LitValue, NodeRef, Program};
use jsdetect_guard::{Limits, OutcomeKind};
use jsdetect_lint::{LintRunner, LintSummary, N_RULES, RULE_NAMES};
use jsdetect_normalize::{normalize_program, NormalizeOptions};
use jsdetect_obs::names;

/// Number of delta dimensions: node-count ratio, string-entropy delta,
/// and one lint-density delta per rule.
pub const N_NORMALIZE: usize = 2 + N_RULES;

/// The vector produced when normalization cannot be measured (degraded
/// analyses, degraded normalization): ratio 1.0, all deltas 0.0 —
/// "normalization changed nothing".
pub fn neutral_deltas() -> Vec<f32> {
    let mut v = vec![0.0; N_NORMALIZE];
    v[0] = 1.0;
    v
}

/// Names for the delta block, in order.
pub fn delta_feature_names() -> Vec<String> {
    let mut names =
        vec!["normalize:node_ratio".to_string(), "normalize:str_entropy_delta".to_string()];
    names.extend(RULE_NAMES.iter().map(|r| format!("normalize:lint_delta:{}", r)));
    names
}

/// Computes the delta block for one parsed script.
///
/// `src` is the *original* source text — the normalized AST is linted
/// against it so the charset-based rules see the same bytes both times
/// and only structural rules can move.
pub fn normalize_deltas(
    src: &str,
    program: &Program,
    orig_nodes: usize,
    lint: &LintSummary,
) -> Vec<f32> {
    let _t = jsdetect_obs::span(names::SPAN_NORMALIZE_DELTAS);
    let mut normalized = program.clone();
    // Deadline off for determinism; fuel and round caps still bound work.
    let opts = NormalizeOptions { limits: Limits::unbounded(), ..NormalizeOptions::default() };
    let report = normalize_program(&mut normalized, &opts);
    if report.outcome != OutcomeKind::Ok {
        return neutral_deltas();
    }
    let norm_shape = jsdetect_ast::metrics::tree_shape(&normalized);
    let mut v = Vec::with_capacity(N_NORMALIZE);
    v.push(norm_shape.node_count as f32 / orig_nodes.max(1) as f32);
    v.push(avg_string_entropy(&normalized) - avg_string_entropy(program));
    let graph = jsdetect_flow::analyze(&normalized);
    let norm_lint = LintRunner::default().run_with_summary(src, &normalized, &graph).1;
    let orig_densities = lint.features();
    let norm_densities = norm_lint.features();
    for i in 0..N_RULES {
        v.push(norm_densities[i] - orig_densities[i]);
    }
    v
}

/// Convenience wrapper over a finished analysis (used by tests and
/// callers that did not keep the parts separate).
pub fn normalize_deltas_for(a: &ScriptAnalysis) -> Vec<f32> {
    if a.degraded {
        return neutral_deltas();
    }
    normalize_deltas(&a.src, &a.program, a.shape.node_count, &a.lint)
}

/// Mean per-string byte entropy of the string literals in a program
/// (0.0 when there are none) — the same statistic the hand-picked
/// `avg_string_entropy` feature uses, recomputed on a rewritten AST.
fn avg_string_entropy(p: &Program) -> f32 {
    let mut sum = 0.0f64;
    let mut n = 0usize;
    walk(p, &mut |node, _| {
        if let NodeRef::Expr(Expr::Lit(Lit { value: LitValue::Str(s), .. })) = node {
            sum += byte_entropy(s);
            n += 1;
        }
    });
    if n == 0 {
        0.0
    } else {
        (sum / n as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze_script;
    use jsdetect_transform::{apply, Technique};

    #[test]
    fn neutral_vector_shape() {
        let v = neutral_deltas();
        assert_eq!(v.len(), N_NORMALIZE);
        assert_eq!(v[0], 1.0);
        assert!(v[1..].iter().all(|&x| x == 0.0));
        assert_eq!(delta_feature_names().len(), N_NORMALIZE);
    }

    #[test]
    fn clean_code_is_near_neutral() {
        let a = analyze_script("function f(a) { return a + 1; }\nf(2);").unwrap();
        let v = normalize_deltas_for(&a);
        assert_eq!(v.len(), N_NORMALIZE);
        assert!((v[0] - 1.0).abs() < 1e-6, "nothing to normalize away: {:?}", v);
        assert!(v[2..].iter().all(|&x| x == 0.0), "{:?}", v);
    }

    #[test]
    fn global_array_obfuscation_shrinks_under_normalization() {
        let src = apply(
            "log('alpha beta'); log('gamma delta'); log('epsilon zeta');",
            &[Technique::GlobalArray],
            7,
        )
        .unwrap();
        let a = analyze_script(&src).unwrap();
        let v = normalize_deltas_for(&a);
        assert!(v[0] < 0.9, "pool + decoder must fold away, ratio {}", v[0]);
    }

    #[test]
    fn degraded_analysis_gets_neutral_vector() {
        use jsdetect_guard::Limits;
        let g = crate::analyze_script_guarded("var x = ;;;=", &Limits::wild());
        let a = g.analysis.unwrap();
        assert!(a.degraded);
        assert_eq!(a.normalize, neutral_deltas());
    }

    #[test]
    fn sequence_heavy_code_drops_comma_density() {
        let src = apply(
            "setup();\nwork(1);\nwork(2);\nwork(3);\nteardown();",
            &[Technique::MinificationAdvanced],
            11,
        )
        .unwrap();
        let a = analyze_script(&src).unwrap();
        let v = normalize_deltas_for(&a);
        let comma_dim = 2 + RULE_NAMES.iter().position(|r| *r == "comma-sequence-density").unwrap();
        assert!(v[comma_dim] < 0.0, "unflattening must drop the comma density: {:?}", v);
    }
}

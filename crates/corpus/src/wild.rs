//! Wild-population simulators (paper §IV).
//!
//! The paper's large-scale study measures Alexa Top-10k websites, npm
//! Top-10k packages, three malware feeds (DNC / Hynek / BSI), and monthly
//! longitudinal crawls. Those corpora cannot be redistributed, so the
//! experiments here run the *same measurement instrument* (the trained
//! detectors) over synthetic populations whose generating process is
//! calibrated to the paper's reported ground truth: per-source
//! transformation rates, technique mixtures, rank effects, and temporal
//! trends. Each population is a stream of [`WildScript`]s carrying its
//! generation-time truth, so experiments can report both the detector's
//! measurements and the generating rates.

use crate::generator::RegularJsGenerator;
use jsdetect_transform::{apply, Technique};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Months in the longitudinal window (2015-05 .. 2020-09 inclusive).
pub const N_MONTHS: usize = 65;

/// One script drawn from a simulated population.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WildScript {
    /// Source text.
    pub src: String,
    /// Container id (site rank for Alexa, package rank for npm, wave id
    /// for malware).
    pub container: usize,
    /// Techniques applied when the script was generated (empty = regular).
    pub truth: Vec<Technique>,
}

impl WildScript {
    /// Whether the generating process transformed this script.
    pub fn is_transformed(&self) -> bool {
        !self.truth.is_empty()
    }
}

/// Inclusion weights over the ten techniques plus a transform rate.
#[derive(Debug, Clone)]
pub struct PopulationModel {
    /// Probability that a script is transformed at all.
    pub transform_rate: f64,
    /// Per-technique inclusion weights (normalized for the primary pick).
    pub weights: [f64; 10],
    /// Probability of adding each *additional* technique after the primary.
    pub extra_rate: f64,
}

impl PopulationModel {
    /// Draws a technique set (non-empty) from the mixture.
    pub fn sample_techniques(&self, rng: &mut StdRng) -> Vec<Technique> {
        let total: f64 = self.weights.iter().sum();
        let mut roll = rng.gen_range(0.0..total);
        let mut primary = Technique::MinificationSimple;
        for (i, w) in self.weights.iter().enumerate() {
            if roll < *w {
                primary = Technique::ALL[i];
                break;
            }
            roll -= w;
        }
        let mut set = vec![primary];
        for (i, w) in self.weights.iter().enumerate() {
            let t = Technique::ALL[i];
            if t == primary || t == Technique::NoAlphanumeric {
                continue;
            }
            // Additional techniques join proportionally to their weight.
            if rng.gen_bool((self.extra_rate * w / total).clamp(0.0, 1.0)) {
                set.push(t);
            }
        }
        // Simple and advanced minification never co-occur as generated
        // configurations (a file is minified by one tool).
        if set.contains(&Technique::MinificationSimple)
            && set.contains(&Technique::MinificationAdvanced)
        {
            set.retain(|t| *t != Technique::MinificationAdvanced);
        }
        set.sort();
        set.dedup();
        set
    }
}

/// Weight vector helper indexed by [`Technique::index`].
fn weights(entries: &[(Technique, f64)]) -> [f64; 10] {
    let mut w = [0.0; 10];
    for (t, v) in entries {
        w[t.index()] = *v;
    }
    w
}

// ---- Alexa -------------------------------------------------------------------

/// The Alexa client-side population at a given month (0 = 2015-05,
/// 64 = 2020-09) and rank (0-based site rank).
pub fn alexa_model(month: usize, rank: usize) -> PopulationModel {
    let m = month.min(N_MONTHS - 1) as f64 / (N_MONTHS - 1) as f64;
    // Fig. 6: transformed proportion rises steadily over time.
    let base_rate = 0.55 + 0.14 * m;
    // §IV-B1: popularity correlates with transformation (80% top-1k,
    // ~64.7% around rank 100k). Within 10k, interpolate by rank bucket.
    let rank_factor = 1.0 + 0.16 * (1.0 - (rank as f64 / 10_000.0).min(1.0)) - 0.08;
    let transform_rate = (base_rate * rank_factor).clamp(0.05, 0.95);
    // Fig. 7: minification simple rises 38.74→47.02%, advanced decays
    // 43.77→40%, identifier obfuscation decays 8.23→6.21%.
    let w = weights(&[
        (Technique::MinificationSimple, 0.3874 + (0.4702 - 0.3874) * m),
        (Technique::MinificationAdvanced, 0.4377 + (0.40 - 0.4377) * m),
        (Technique::IdentifierObfuscation, 0.020 + (0.015 - 0.020) * m),
        (Technique::StringObfuscation, 0.004),
        (Technique::GlobalArray, 0.003),
        (Technique::DeadCodeInjection, 0.002),
        (Technique::ControlFlowFlattening, 0.002),
        (Technique::SelfDefending, 0.002),
        (Technique::DebugProtection, 0.001),
    ]);
    PopulationModel { transform_rate, weights: w, extra_rate: 0.10 }
}

/// Generates the scripts of `n_sites` Alexa sites starting at `rank_start`.
pub fn alexa_population(
    month: usize,
    n_sites: usize,
    rank_start: usize,
    seed: u64,
) -> Vec<WildScript> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xa1e8a);
    let mut out = Vec::new();
    for site in 0..n_sites {
        let rank = rank_start + site;
        let mut model = alexa_model(month, rank);
        // Transformation clusters per site (§IV-B1: 89.4% of sites carry a
        // transformed script while 68.6% of scripts are transformed): a
        // minority of sites ship no transformed code at all, the rest are
        // proportionally more transformed.
        if rng.gen_bool(0.11) {
            model.transform_rate = 0.02;
        } else {
            model.transform_rate = (model.transform_rate / 0.89).min(0.97);
        }
        let n_scripts = rng.gen_range(3..7usize);
        for s in 0..n_scripts {
            let sseed = seed
                .wrapping_add((rank as u64) << 20)
                .wrapping_add(s as u64)
                .wrapping_add(month as u64 * 0x1000);
            // §IV-B1: some Alexa files mix regular code with a minified
            // library (11/100 manually-reviewed minified samples also
            // included regular code); such files are both regular and
            // minified.
            if rng.gen_bool(0.07) {
                out.push(make_partial_script(rank, sseed, &mut rng));
            } else {
                out.push(make_script(&model, rank, sseed, &mut rng));
            }
        }
    }
    out
}

/// A partially transformed script: a minified "library" prepended to
/// regular page code (the jQuery-plus-page-code pattern of §IV-B1). The
/// truth records the minification; level 1 may legitimately also flag it
/// regular.
fn make_partial_script(container: usize, sseed: u64, rng: &mut StdRng) -> WildScript {
    // The minified library dominates the file (a minified jQuery dwarfs the
    // page glue appended after it), so level 1 still reads the file as
    // minified — matching the paper's manual review of such samples.
    let lib = RegularJsGenerator::with_options(
        sseed ^ 0x11b,
        crate::generator::GenOptions { min_bytes: 2048, max_bytes: 6 * 1024 },
    )
    .generate();
    let page = RegularJsGenerator::with_options(
        sseed ^ 0x9a6e,
        crate::generator::GenOptions { min_bytes: 512, max_bytes: 900 },
    )
    .generate();
    let technique = if rng.gen_bool(0.5) {
        Technique::MinificationSimple
    } else {
        Technique::MinificationAdvanced
    };
    match apply(&lib, &[technique], sseed) {
        Ok(minified_lib) => WildScript {
            src: format!("{}\n{}", minified_lib, page),
            container,
            truth: vec![technique],
        },
        Err(_) => WildScript { src: page, container, truth: Vec::new() },
    }
}

// ---- npm ---------------------------------------------------------------------

/// The npm package population. Fig. 6 shows three phases: noisy ~7.4%
/// (2015-05..2016-04), stable ~17.95% (2016-05..2019-05), and ~15.17%
/// (2019-06..2020-09). Top-1k packages are 2.4–4.4× less transformed.
pub fn npm_model(month: usize, rank: usize, rng: &mut StdRng) -> PopulationModel {
    let base_rate: f64 = if month < 12 {
        // High relative standard deviation (~24%): ephemeral popularity.
        0.074 * (1.0 + rng.gen_range(-0.35..0.35))
    } else if month < 49 {
        0.1795 * (1.0 + rng.gen_range(-0.06..0.06))
    } else {
        0.1517 * (1.0 + rng.gen_range(-0.08..0.08))
    };
    // Rank profile reconciling the paper's two npm measurements: the
    // monthly Top-2k crawls average the phase rates above, while the
    // Top-10k snapshot sits at 8.7% with the top-1k packages 2.4-4.4x
    // less transformed than the rest (§IV-B2).
    let rank_factor = if rank < 1_000 {
        0.16
    } else if rank < 2_000 {
        1.84
    } else {
        0.47
    };
    let transform_rate = (base_rate * rank_factor).clamp(0.002, 0.9);
    // Fig. 8: simple ≈58.62%, advanced ≈34.28%; for the top-1k packages
    // basic and advanced are nearly even (§IV-B2).
    let (simple_w, adv_w) = if rank < 1_000 { (0.49, 0.47) } else { (0.586, 0.343) };
    let w = weights(&[
        (Technique::MinificationSimple, simple_w),
        (Technique::MinificationAdvanced, adv_w),
        (Technique::IdentifierObfuscation, 0.022),
        (Technique::StringObfuscation, 0.004),
        (Technique::GlobalArray, 0.003),
        (Technique::DeadCodeInjection, 0.002),
        (Technique::ControlFlowFlattening, 0.002),
        (Technique::SelfDefending, 0.002),
        (Technique::DebugProtection, 0.001),
    ]);
    PopulationModel { transform_rate, weights: w, extra_rate: 0.08 }
}

/// Generates the scripts of `n_packages` npm packages.
pub fn npm_population(
    month: usize,
    n_packages: usize,
    rank_start: usize,
    seed: u64,
) -> Vec<WildScript> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x09b19);
    let mut out = Vec::new();
    // Transformed npm scripts cluster in a few packages (§IV-B2: 15.14% of
    // Top-10k packages carry a transformed script while only 8.7% of
    // scripts are transformed; transformed packages tend to be completely
    // transformed).
    const INNER_RATE: f64 = 0.55;
    for pkg in 0..n_packages {
        let rank = rank_start + pkg;
        let mut model = npm_model(month, rank, &mut rng);
        let p_transformer = (model.transform_rate / INNER_RATE).min(1.0);
        model.transform_rate = if rng.gen_bool(p_transformer) { INNER_RATE } else { 0.004 };
        let n_scripts = rng.gen_range(2..6usize);
        for s in 0..n_scripts {
            let sseed = seed
                .wrapping_add((rank as u64) << 18)
                .wrapping_add(s as u64)
                .wrapping_add(month as u64 * 0x2000);
            out.push(make_script(&model, rank, sseed, &mut rng));
        }
    }
    out
}

// ---- malware ------------------------------------------------------------------

/// The three malware feeds of §IV-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MalwareSource {
    /// Kafeine DNC exploit kits (2015–2017).
    Dnc,
    /// Hynek Petrak collection (2015–2017).
    Hynek,
    /// BSI JScript-loaders (2017).
    Bsi,
}

impl MalwareSource {
    /// Display name.
    pub fn as_str(self) -> &'static str {
        match self {
            MalwareSource::Dnc => "DNC",
            MalwareSource::Hynek => "Hynek",
            MalwareSource::Bsi => "BSI",
        }
    }
}

/// Per-source malicious population model (paper §IV-C: identifier
/// obfuscation dominates at 25–37%, string obfuscation and aggressive
/// minification at 17–21%, DCI/CFF/global-array at 5–10%).
pub fn malware_model(source: MalwareSource, month: usize, rng: &mut StdRng) -> PopulationModel {
    // Waves make monthly rates jumpy.
    let jitter = 1.0 + rng.gen_range(-0.18..0.18);
    let (rate, min_simple_w): (f64, f64) = match source {
        MalwareSource::Dnc => (0.6594, 0.30),
        MalwareSource::Hynek => (0.7307, 0.12),
        MalwareSource::Bsi => (0.2893, 0.10),
    };
    let _ = month;
    let w = weights(&[
        (Technique::IdentifierObfuscation, 0.48),
        (Technique::StringObfuscation, 0.28),
        (Technique::MinificationAdvanced, 0.26),
        (Technique::MinificationSimple, min_simple_w),
        (Technique::DeadCodeInjection, 0.10),
        (Technique::ControlFlowFlattening, 0.09),
        (Technique::GlobalArray, 0.11),
        (Technique::DebugProtection, 0.035),
        (Technique::SelfDefending, 0.03),
    ]);
    PopulationModel {
        transform_rate: (rate * jitter).clamp(0.05, 0.95),
        weights: w,
        extra_rate: 0.6,
    }
}

/// Generates `n` malicious samples for one source and month. Samples come
/// in waves: syntactically identical payloads re-randomized per victim via
/// identifier obfuscation (§IV-C2).
pub fn malware_population(
    source: MalwareSource,
    month: usize,
    n: usize,
    seed: u64,
) -> Vec<WildScript> {
    let mut rng =
        StdRng::seed_from_u64(seed ^ 0x3a1 ^ ((source as u64) << 32) ^ ((month as u64) << 16));
    let model = malware_model(source, month, &mut rng);
    let mut out = Vec::new();
    let mut wave = 0usize;
    while out.len() < n {
        wave += 1;
        let wave_size = rng.gen_range(1..6usize).min(n - out.len());
        let base_seed = seed.wrapping_add((wave as u64) << 24).wrapping_add(month as u64);
        let base = RegularJsGenerator::new(base_seed).generate();
        let transformed = rng.gen_bool(model.transform_rate);
        let techniques = if transformed { model.sample_techniques(&mut rng) } else { Vec::new() };
        // §IV-C1: most malware the paper's manual analysis found to be
        // "regular-looking" still randomizes its variable names — but with
        // word-shaped names, so the syntactic structure stays regular.
        let slight_rename = !transformed && rng.gen_bool(0.57);
        // The wave broadcasts variants: same code, fresh identifier seeds.
        for v in 0..wave_size {
            let vseed = base_seed.wrapping_add(v as u64 * 7 + 1);
            if transformed {
                if let Ok(src) = apply(&base, &techniques, vseed) {
                    let mut truth = techniques.clone();
                    truth.sort();
                    out.push(WildScript { src, container: wave, truth });
                    continue;
                }
            } else if slight_rename {
                if let Some(src) = lightly_randomize_names(&base, vseed) {
                    out.push(WildScript { src, container: wave, truth: Vec::new() });
                    continue;
                }
            } else if rng.gen_bool(0.25) {
                // §IV-C1: a small, heavily obfuscated payload hidden inside
                // a much larger regular file — correctly classified regular
                // by the majority of its content.
                let payload_src = "var k = 'cmd'; var h = 'host'; run(h, k);";
                if let Ok(payload) = apply(
                    payload_src,
                    &[Technique::IdentifierObfuscation, Technique::StringObfuscation],
                    vseed,
                ) {
                    out.push(WildScript {
                        src: format!("{}\n{}", base, payload),
                        container: wave,
                        truth: Vec::new(),
                    });
                    continue;
                }
            }
            out.push(WildScript { src: base.clone(), container: wave, truth: Vec::new() });
        }
    }
    out.truncate(n);
    out
}

/// Renames local bindings to random word-shaped identifiers (the "SHA-1
/// unique per victim" wave trick of §IV-C1): unlike `_0x` hex names, these
/// keep the script's syntax looking regular.
fn lightly_randomize_names(src: &str, seed: u64) -> Option<String> {
    const SYLLABLES: &[&str] = &[
        "ba", "co", "da", "fe", "gi", "ho", "ja", "ke", "lu", "ma", "ne", "or", "pa", "qu", "ra",
        "se", "ti", "ul", "va", "we",
    ];
    let mut prog = jsdetect_parser::parse(src).ok()?;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x1164f);
    let mut used = std::collections::HashSet::new();
    jsdetect_transform::rename::rename_bindings(&mut prog, &mut || loop {
        let n = rng.gen_range(2..4usize);
        let name: String = (0..n).map(|_| SYLLABLES[rng.gen_range(0..SYLLABLES.len())]).collect();
        if used.insert(name.clone()) {
            break name;
        }
    });
    Some(jsdetect_codegen::to_source(&prog))
}

// ---- modules ------------------------------------------------------------------

/// A module-flavoured wild population: modern ES-module bundles of the kind
/// CDNs ship as `<script type="module">` / `.mjs`. Kept out of the
/// calibrated populations above so their RNG streams stay byte-identical;
/// this population backs the syntax-conformance gate (the guarded pipeline
/// must analyze module-bearing scripts with a degraded rate of zero).
pub fn module_population(n: usize, seed: u64) -> Vec<WildScript> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xe50d);
    let mut out = Vec::new();
    for i in 0..n {
        let sseed = seed.wrapping_add((i as u64) << 16).wrapping_add(1);
        let base = RegularJsGenerator::new(sseed).generate_module();
        // Module bundles ship minified like any other wild script; the
        // import/export surface survives minification.
        if rng.gen_bool(0.35) {
            let technique = if rng.gen_bool(0.5) {
                Technique::MinificationSimple
            } else {
                Technique::MinificationAdvanced
            };
            if let Ok(src) = apply(&base, &[technique], sseed ^ 0x5eed) {
                out.push(WildScript { src, container: i, truth: vec![technique] });
                continue;
            }
        }
        out.push(WildScript { src: base, container: i, truth: Vec::new() });
    }
    out
}

// ---- shared -------------------------------------------------------------------

fn make_script(
    model: &PopulationModel,
    container: usize,
    sseed: u64,
    rng: &mut StdRng,
) -> WildScript {
    let base = RegularJsGenerator::new(sseed).generate();
    if rng.gen_bool(model.transform_rate) {
        let techniques = model.sample_techniques(rng);
        if let Ok(src) = apply(&base, &techniques, sseed ^ 0x5eed) {
            return WildScript { src, container, truth: techniques };
        }
    }
    WildScript { src: base, container, truth: Vec::new() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexa_population_rates_roughly_match() {
        let pop = alexa_population(64, 60, 0, 1);
        let rate = pop.iter().filter(|s| s.is_transformed()).count() as f64 / pop.len() as f64;
        assert!((0.5..0.95).contains(&rate), "rate={}", rate);
        // Mostly minified.
        let minified =
            pop.iter().filter(|s| s.truth.iter().any(|t| t.is_minification())).count() as f64;
        let transformed = pop.iter().filter(|s| s.is_transformed()).count().max(1) as f64;
        assert!(minified / transformed > 0.75, "{}", minified / transformed);
    }

    #[test]
    fn alexa_rate_rises_over_time() {
        let early: f64 = (0..5)
            .map(|i| {
                let pop = alexa_population(0, 30, 0, i);
                pop.iter().filter(|s| s.is_transformed()).count() as f64 / pop.len() as f64
            })
            .sum::<f64>()
            / 5.0;
        let late: f64 = (0..5)
            .map(|i| {
                let pop = alexa_population(64, 30, 0, i);
                pop.iter().filter(|s| s.is_transformed()).count() as f64 / pop.len() as f64
            })
            .sum::<f64>()
            / 5.0;
        assert!(late > early, "early={} late={}", early, late);
    }

    #[test]
    fn npm_rate_much_lower_than_alexa() {
        let npm = npm_population(64, 80, 1_000, 3);
        let npm_rate = npm.iter().filter(|s| s.is_transformed()).count() as f64 / npm.len() as f64;
        assert!(npm_rate < 0.35, "npm rate={}", npm_rate);
    }

    #[test]
    fn npm_top_ranked_less_transformed() {
        let mut top = 0usize;
        let mut top_n = 0usize;
        let mut rest = 0usize;
        let mut rest_n = 0usize;
        for seed in 0..6 {
            let a = npm_population(40, 60, 0, seed);
            top += a.iter().filter(|s| s.is_transformed()).count();
            top_n += a.len();
            let b = npm_population(40, 60, 5_000, seed);
            rest += b.iter().filter(|s| s.is_transformed()).count();
            rest_n += b.len();
        }
        let top_rate = top as f64 / top_n as f64;
        let rest_rate = rest as f64 / rest_n as f64;
        assert!(rest_rate > top_rate * 1.5, "top={} rest={}", top_rate, rest_rate);
    }

    #[test]
    fn malware_sources_have_expected_ordering() {
        let rate = |src| {
            let mut t = 0usize;
            let mut n = 0usize;
            for month in [0usize, 10, 20] {
                let pop = malware_population(src, month, 40, 5);
                t += pop.iter().filter(|s| s.is_transformed()).count();
                n += pop.len();
            }
            t as f64 / n as f64
        };
        let dnc = rate(MalwareSource::Dnc);
        let hynek = rate(MalwareSource::Hynek);
        let bsi = rate(MalwareSource::Bsi);
        assert!(bsi < dnc, "bsi={} dnc={}", bsi, dnc);
        assert!(bsi < hynek, "bsi={} hynek={}", bsi, hynek);
    }

    #[test]
    fn malware_mix_dominated_by_identifier_obfuscation() {
        // Techniques are drawn per wave, so aggregate several populations
        // to average out wave clustering.
        let mut with_ident = 0usize;
        let mut with_string = 0usize;
        let mut transformed = 0usize;
        for month in 0..8 {
            let pop = malware_population(MalwareSource::Hynek, month, 60, 9 + month as u64);
            for s in pop.iter().filter(|s| s.is_transformed()) {
                transformed += 1;
                if s.truth.contains(&Technique::IdentifierObfuscation) {
                    with_ident += 1;
                }
                if s.truth.contains(&Technique::StringObfuscation) {
                    with_string += 1;
                }
            }
        }
        let ident_rate = with_ident as f64 / transformed.max(1) as f64;
        let string_rate = with_string as f64 / transformed.max(1) as f64;
        assert!(ident_rate > 0.3, "ident rate {} ({}/{})", ident_rate, with_ident, transformed);
        assert!(ident_rate > string_rate, "ident {} vs string {}", ident_rate, string_rate);
    }

    #[test]
    fn populations_parse() {
        for s in alexa_population(64, 10, 0, 2)
            .iter()
            .chain(npm_population(30, 10, 0, 2).iter())
            .chain(malware_population(MalwareSource::Dnc, 3, 10, 2).iter())
        {
            assert!(jsdetect_parser::parse(&s.src).is_ok());
        }
    }

    #[test]
    fn module_population_parses_as_modules() {
        let pop = module_population(20, 11);
        assert_eq!(pop.len(), 20);
        let mut minified = 0usize;
        for s in &pop {
            let prog = jsdetect_parser::parse(&s.src)
                .unwrap_or_else(|e| panic!("unparseable module script ({:?}):\n{}", e, s.src));
            assert!(prog.module_goal(), "script lost its module goal:\n{}", s.src);
            if s.is_transformed() {
                minified += 1;
            }
        }
        assert!(minified >= 2, "expected some minified module bundles, got {}", minified);
    }

    #[test]
    fn module_population_deterministic() {
        let a = module_population(8, 77);
        let b = module_population(8, 77);
        assert!(a.iter().zip(&b).all(|(x, y)| x.src == y.src && x.truth == y.truth));
    }

    #[test]
    fn deterministic() {
        let a = alexa_population(10, 5, 0, 77);
        let b = alexa_population(10, 5, 0, 77);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.src == y.src && x.truth == y.truth));
    }
}

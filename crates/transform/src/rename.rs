//! Scope-aware identifier renaming.
//!
//! The substrate shared by *identifier obfuscation* (hex names) and
//! *minification* (short names). Renaming follows JavaScript scoping: `var`
//! and function declarations hoist to the enclosing function scope,
//! `let`/`const`/`class` are block-scoped, parameters and catch bindings
//! open their own scopes, and unresolved names (globals like `console`)
//! are left untouched. Labels are renamed independently.

use jsdetect_ast::*;
use std::collections::HashMap;

/// Environment: a stack of name→newName layers plus a label stack.
struct Env {
    layers: Vec<HashMap<Atom, Atom>>,
    labels: Vec<HashMap<Atom, Atom>>,
}

impl Env {
    fn lookup(&self, name: Atom) -> Option<Atom> {
        self.layers.iter().rev().find_map(|l| l.get(&name)).copied()
    }

    fn lookup_label(&self, name: Atom) -> Option<Atom> {
        self.labels.iter().rev().find_map(|l| l.get(&name)).copied()
    }
}

/// Renames every locally-bound identifier in `program` using `gen` to
/// produce fresh names. Returns the number of bindings renamed.
pub fn rename_bindings(program: &mut Program, gen: &mut dyn FnMut() -> String) -> usize {
    let mut r = Renamer { gen, renamed: 0 };
    let mut env = Env { layers: vec![HashMap::new()], labels: vec![HashMap::new()] };
    // Top level: treat as function scope so top-level vars/functions are
    // renamed (scripts in the wild are usually wrapped anyway; obfuscators
    // rename top-level names too).
    r.collect_fn_scope(&program.body, &mut env);
    r.collect_lexical(&program.body, &mut env);
    let mut body = std::mem::take(&mut program.body);
    for s in &mut body {
        r.stmt(s, &mut env);
    }
    program.body = body;
    r.renamed
}

struct Renamer<'g> {
    gen: &'g mut dyn FnMut() -> String,
    renamed: usize,
}

impl<'g> Renamer<'g> {
    fn fresh(&mut self) -> Atom {
        self.renamed += 1;
        Atom::from((self.gen)())
    }

    /// Declares a name in the top env layer (if not already mapped there).
    fn declare(&mut self, env: &mut Env, name: Atom) {
        let layer = env.layers.last_mut().unwrap();
        layer.entry(name).or_insert_with(|| self.fresh());
    }

    // ---- declaration collection -------------------------------------------

    /// Collects `var`-hoisted and function-declaration names of a function
    /// body into the current layer (recursing into blocks, not functions).
    fn collect_fn_scope(&mut self, stmts: &[Stmt], env: &mut Env) {
        for s in stmts {
            self.collect_fn_scope_stmt(s, env);
        }
    }

    fn collect_fn_scope_stmt(&mut self, s: &Stmt, env: &mut Env) {
        match s {
            Stmt::VarDecl { kind: VarKind::Var, decls, .. } => {
                for d in decls {
                    self.collect_pat(&d.id, env);
                }
            }
            Stmt::FunctionDecl(f) => {
                if let Some(id) = &f.id {
                    self.declare(env, id.name);
                }
            }
            Stmt::Block { body, .. } => self.collect_fn_scope(body, env),
            Stmt::If { consequent, alternate, .. } => {
                self.collect_fn_scope_stmt(consequent, env);
                if let Some(alt) = alternate {
                    self.collect_fn_scope_stmt(alt, env);
                }
            }
            Stmt::For { init, body, .. } => {
                if let Some(ForInit::Var { kind: VarKind::Var, decls }) = init {
                    for d in decls {
                        self.collect_pat(&d.id, env);
                    }
                }
                self.collect_fn_scope_stmt(body, env);
            }
            Stmt::ForIn { target, body, .. } | Stmt::ForOf { target, body, .. } => {
                if let ForTarget::Var { kind: VarKind::Var, pat } = target {
                    self.collect_pat(pat, env);
                }
                self.collect_fn_scope_stmt(body, env);
            }
            Stmt::While { body, .. }
            | Stmt::DoWhile { body, .. }
            | Stmt::Labeled { body, .. }
            | Stmt::With { body, .. } => self.collect_fn_scope_stmt(body, env),
            Stmt::Switch { cases, .. } => {
                for c in cases {
                    self.collect_fn_scope(&c.body, env);
                }
            }
            Stmt::Try { block, handler, finalizer, .. } => {
                self.collect_fn_scope(block, env);
                if let Some(h) = handler {
                    self.collect_fn_scope(&h.body, env);
                }
                if let Some(fin) = finalizer {
                    self.collect_fn_scope(fin, env);
                }
            }
            _ => {}
        }
    }

    /// Collects lexical (`let`/`const`/`class` and block-level function)
    /// names declared directly in a statement list.
    fn collect_lexical(&mut self, stmts: &[Stmt], env: &mut Env) {
        for s in stmts {
            match s {
                Stmt::VarDecl { kind, decls, .. } if kind.is_lexical() => {
                    for d in decls {
                        self.collect_pat(&d.id, env);
                    }
                }
                Stmt::ClassDecl(c) => {
                    if let Some(id) = &c.id {
                        self.declare(env, id.name);
                    }
                }
                _ => {}
            }
        }
    }

    fn collect_pat(&mut self, p: &Pat, env: &mut Env) {
        match p {
            Pat::Ident(i) => self.declare(env, i.name),
            Pat::Array { elements, .. } => {
                for el in elements.iter().flatten() {
                    self.collect_pat(el, env);
                }
            }
            Pat::Object { props, .. } => {
                for prop in props {
                    self.collect_pat(&prop.value, env);
                }
            }
            Pat::Assign { target, .. } => self.collect_pat(target, env),
            Pat::Rest { arg, .. } => self.collect_pat(arg, env),
            Pat::Member(_) => {}
        }
    }

    // ---- rewriting -----------------------------------------------------------

    fn ident(&mut self, i: &mut Ident, env: &Env) {
        if let Some(new) = env.lookup(i.name) {
            i.name = new;
        }
    }

    fn stmts_block(&mut self, body: &mut [Stmt], env: &mut Env) {
        env.layers.push(HashMap::new());
        self.collect_lexical(body, env);
        for s in body.iter_mut() {
            self.stmt(s, env);
        }
        env.layers.pop();
    }

    fn stmt(&mut self, s: &mut Stmt, env: &mut Env) {
        match s {
            Stmt::Expr { expr, .. } => self.expr(expr, env),
            Stmt::Block { body, .. } => self.stmts_block(body, env),
            Stmt::VarDecl { decls, .. } => {
                for d in decls {
                    self.pat(&mut d.id, env);
                    if let Some(init) = &mut d.init {
                        self.expr(init, env);
                    }
                }
            }
            Stmt::FunctionDecl(f) => self.function(f, env, false),
            Stmt::ClassDecl(c) => self.class(c, env),
            Stmt::If { test, consequent, alternate, .. } => {
                self.expr(test, env);
                self.stmt(consequent, env);
                if let Some(alt) = alternate {
                    self.stmt(alt, env);
                }
            }
            Stmt::For { init, test, update, body, .. } => {
                env.layers.push(HashMap::new());
                match init {
                    Some(ForInit::Var { kind, decls }) => {
                        if kind.is_lexical() {
                            for d in decls.iter() {
                                self.collect_pat(&d.id, env);
                            }
                        }
                        for d in decls {
                            self.pat(&mut d.id, env);
                            if let Some(e) = &mut d.init {
                                self.expr(e, env);
                            }
                        }
                    }
                    Some(ForInit::Expr(e)) => self.expr(e, env),
                    None => {}
                }
                if let Some(t) = test {
                    self.expr(t, env);
                }
                if let Some(u) = update {
                    self.expr(u, env);
                }
                self.stmt(body, env);
                env.layers.pop();
            }
            Stmt::ForIn { target, object, body, .. } => {
                env.layers.push(HashMap::new());
                self.for_target(target, env);
                self.expr(object, env);
                self.stmt(body, env);
                env.layers.pop();
            }
            Stmt::ForOf { target, iterable, body, .. } => {
                env.layers.push(HashMap::new());
                self.for_target(target, env);
                self.expr(iterable, env);
                self.stmt(body, env);
                env.layers.pop();
            }
            Stmt::While { test, body, .. } => {
                self.expr(test, env);
                self.stmt(body, env);
            }
            Stmt::DoWhile { body, test, .. } => {
                self.stmt(body, env);
                self.expr(test, env);
            }
            Stmt::Switch { discriminant, cases, .. } => {
                self.expr(discriminant, env);
                env.layers.push(HashMap::new());
                for c in cases.iter() {
                    self.collect_lexical(&c.body, env);
                }
                for c in cases {
                    if let Some(t) = &mut c.test {
                        self.expr(t, env);
                    }
                    for st in &mut c.body {
                        self.stmt(st, env);
                    }
                }
                env.layers.pop();
            }
            Stmt::Try { block, handler, finalizer, .. } => {
                self.stmts_block(block, env);
                if let Some(h) = handler {
                    env.layers.push(HashMap::new());
                    if let Some(p) = &mut h.param {
                        self.collect_pat(p, env);
                        self.pat(p, env);
                    }
                    self.collect_lexical(&h.body, env);
                    for st in &mut h.body {
                        self.stmt(st, env);
                    }
                    env.layers.pop();
                }
                if let Some(fin) = finalizer {
                    self.stmts_block(fin, env);
                }
            }
            Stmt::Throw { arg, .. } => self.expr(arg, env),
            Stmt::Return { arg, .. } => {
                if let Some(a) = arg {
                    self.expr(a, env);
                }
            }
            Stmt::Break { label, .. } | Stmt::Continue { label, .. } => {
                if let Some(l) = label {
                    if let Some(new) = env.lookup_label(l.name) {
                        l.name = new;
                    }
                }
            }
            Stmt::Labeled { label, body, .. } => {
                let new = self.fresh();
                env.labels.push(HashMap::from([(label.name, new)]));
                label.name = new;
                self.stmt(body, env);
                env.labels.pop();
            }
            Stmt::Empty { .. } | Stmt::Debugger { .. } => {}
            // Import locals and exported declaration names are module
            // interface: they were never collected, so nested visits leave
            // them untouched while still renaming references to outer
            // renamed bindings.
            Stmt::Import { .. } | Stmt::ExportAll { .. } => {}
            Stmt::ExportNamed { decl, specifiers, source, .. } => {
                if let Some(decl) = decl {
                    self.stmt(decl, env);
                }
                // `export { a }` must track a renamed local; the stored
                // `exported` atom keeps the external name stable.
                if source.is_none() {
                    for sp in specifiers {
                        if let Some(new) = env.lookup(sp.local.name) {
                            sp.local.name = new;
                        }
                    }
                }
            }
            Stmt::ExportDefault { expr, .. } => self.expr(expr, env),
            Stmt::With { object, body, .. } => {
                self.expr(object, env);
                // Inside `with`, bare names may resolve to object properties;
                // renaming them would change behaviour, so leave the body's
                // unresolved names alone — resolved ones are still safe only
                // if they shadow; to stay conservative we still rename (the
                // wild corpus rarely uses `with`).
                self.stmt(body, env);
            }
        }
    }

    fn for_target(&mut self, t: &mut ForTarget, env: &mut Env) {
        match t {
            ForTarget::Var { kind, pat } => {
                if kind.is_lexical() {
                    self.collect_pat(pat, env);
                }
                self.pat(pat, env);
            }
            ForTarget::Pat(p) => self.pat(p, env),
        }
    }

    fn function(&mut self, f: &mut Function, env: &mut Env, is_expr: bool) {
        // Declaration names were collected by the enclosing scope pass; for
        // function declarations rewrite the id from the enclosing env.
        if !is_expr {
            if let Some(id) = &mut f.id {
                self.ident(id, env);
            }
        }
        env.layers.push(HashMap::new());
        if is_expr {
            if let Some(id) = &mut f.id {
                // Named function expression: name binds inside only.
                self.declare_and_rewrite(id, env);
            }
        }
        for p in &f.params {
            self.collect_pat(p, env);
        }
        let mut params = std::mem::take(&mut f.params);
        for p in &mut params {
            self.pat(p, env);
        }
        f.params = params;
        self.collect_fn_scope(&f.body, env);
        self.collect_lexical(&f.body, env);
        for s in &mut f.body {
            self.stmt(s, env);
        }
        env.layers.pop();
    }

    fn declare_and_rewrite(&mut self, id: &mut Ident, env: &mut Env) {
        self.declare(env, id.name);
        self.ident(id, env);
    }

    fn class(&mut self, c: &mut Class, env: &mut Env) {
        if let Some(id) = &mut c.id {
            self.ident(id, env);
        }
        if let Some(sup) = &mut c.super_class {
            self.expr(sup, env);
        }
        for m in &mut c.body {
            if let PropKey::Computed(k) = &mut m.key {
                self.expr(k, env);
            }
            match &mut m.value {
                ClassMemberValue::Method(f) => self.function(f, env, true),
                ClassMemberValue::Field(Some(e)) => self.expr(e, env),
                ClassMemberValue::Field(None) => {}
            }
        }
    }

    fn pat(&mut self, p: &mut Pat, env: &mut Env) {
        match p {
            Pat::Ident(i) => self.ident(i, env),
            Pat::Array { elements, .. } => {
                for el in elements.iter_mut().flatten() {
                    self.pat(el, env);
                }
            }
            Pat::Object { props, .. } => {
                for prop in props {
                    if let PropKey::Computed(k) = &mut prop.key {
                        self.expr(k, env);
                    }
                    self.pat(&mut prop.value, env);
                }
            }
            Pat::Assign { target, value, .. } => {
                self.pat(target, env);
                self.expr(value, env);
            }
            Pat::Rest { arg, .. } => self.pat(arg, env),
            Pat::Member(e) => self.expr(e, env),
        }
    }

    fn expr(&mut self, e: &mut Expr, env: &mut Env) {
        match e {
            Expr::Ident(i) => self.ident(i, env),
            Expr::Lit(_) | Expr::This { .. } | Expr::Super { .. } | Expr::MetaProperty { .. } => {}
            Expr::Array { elements, .. } => {
                for el in elements.iter_mut().flatten() {
                    self.expr(el, env);
                }
            }
            Expr::Object { props, .. } => {
                for p in props {
                    if let PropKey::Computed(k) = &mut p.key {
                        self.expr(k, env);
                    }
                    self.expr(&mut p.value, env);
                }
            }
            Expr::Function(f) => self.function(f, env, true),
            Expr::Arrow { params, body, .. } => {
                env.layers.push(HashMap::new());
                for p in params.iter() {
                    self.collect_pat(p, env);
                }
                for p in params.iter_mut() {
                    self.pat(p, env);
                }
                match body {
                    ArrowBody::Expr(e) => self.expr(e, env),
                    ArrowBody::Block(stmts) => {
                        self.collect_fn_scope(stmts, env);
                        self.collect_lexical(stmts, env);
                        for s in stmts {
                            self.stmt(s, env);
                        }
                    }
                }
                env.layers.pop();
            }
            Expr::Class(c) => self.class(c, env),
            Expr::Template { exprs, .. } => {
                for ex in exprs {
                    self.expr(ex, env);
                }
            }
            Expr::TaggedTemplate { tag, exprs, .. } => {
                self.expr(tag, env);
                for ex in exprs {
                    self.expr(ex, env);
                }
            }
            Expr::Unary { arg, .. }
            | Expr::Update { arg, .. }
            | Expr::Spread { arg, .. }
            | Expr::Await { arg, .. } => self.expr(arg, env),
            Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
                self.expr(left, env);
                self.expr(right, env);
            }
            Expr::Assign { target, value, .. } => {
                self.pat(target, env);
                self.expr(value, env);
            }
            Expr::Conditional { test, consequent, alternate, .. } => {
                self.expr(test, env);
                self.expr(consequent, env);
                self.expr(alternate, env);
            }
            Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
                self.expr(callee, env);
                for a in args {
                    self.expr(a, env);
                }
            }
            Expr::Member { object, property, .. } => {
                self.expr(object, env);
                if let MemberProp::Computed(p) = property {
                    self.expr(p, env);
                }
            }
            Expr::Sequence { exprs, .. } => {
                for ex in exprs {
                    self.expr(ex, env);
                }
            }
            Expr::Yield { arg, .. } => {
                if let Some(a) = arg {
                    self.expr(a, env);
                }
            }
            Expr::ImportCall { arg, .. } => self.expr(arg, env),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn rename_with_counter(src: &str) -> String {
        let mut prog = parse(src).unwrap();
        let mut n = 0;
        rename_bindings(&mut prog, &mut || {
            n += 1;
            format!("v{}", n)
        });
        to_minified(&prog)
    }

    #[test]
    fn renames_top_level_var_and_uses() {
        let out = rename_with_counter("var count = 1; use(count);");
        assert_eq!(out, "var v1=1;use(v1);");
    }

    #[test]
    fn globals_untouched() {
        let out = rename_with_counter("console.log(window.top);");
        assert_eq!(out, "console.log(window.top);");
    }

    #[test]
    fn property_names_untouched() {
        let out = rename_with_counter("var obj = {alpha: 1}; obj.alpha = 2;");
        assert!(out.contains("alpha:1") || out.contains("alpha: 1"));
        assert!(out.contains(".alpha"));
    }

    #[test]
    fn params_and_shadowing() {
        let out = rename_with_counter("var x = 1; function f(x) { return x; } f(x);");
        // Outer x and param x get distinct names; inner return uses param.
        assert!(parse(&out).is_ok());
        assert!(!out.contains("x"), "original names must be gone: {}", out);
    }

    #[test]
    fn hoisted_use_before_decl() {
        let out = rename_with_counter("go(); function go() { return 1; }");
        let name: Vec<&str> = out.split("()").collect();
        // Both occurrences use the same new name.
        assert!(name[0].len() <= 3);
        assert!(out.starts_with(&format!("{}()", name[0])));
        assert!(out.contains(&format!("function {}()", name[0])));
    }

    #[test]
    fn named_function_expression_inner_binding() {
        let out = rename_with_counter("var f = function rec(n) { return n ? rec(n - 1) : 0; };");
        assert!(!out.contains("rec"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn let_block_scoping() {
        let out = rename_with_counter("let a = 1; { let a = 2; inner(a); } outer(a);");
        // Two distinct new names: the inner block shadows.
        assert!(parse(&out).is_ok());
        let inner = out.split("inner(").nth(1).unwrap().split(')').next().unwrap();
        let outer = out.split("outer(").nth(1).unwrap().split(')').next().unwrap();
        assert_ne!(inner, outer);
    }

    #[test]
    fn catch_param_renamed() {
        let out = rename_with_counter("try { f(); } catch (err) { g(err); }");
        assert!(!out.contains("err"), "{}", out);
    }

    #[test]
    fn labels_renamed() {
        let out = rename_with_counter("loop: for (;;) { break loop; }");
        assert!(!out.contains("loop:"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn shorthand_property_expands() {
        let out = rename_with_counter("var value = 1; var o = {value};");
        // `{value}` must become `{value: vN}` to stay correct.
        assert!(out.contains("value:"), "{}", out);
    }

    #[test]
    fn destructuring_bindings_renamed() {
        let out = rename_with_counter("const {a, b: c} = src; use(a, c);");
        assert!(!out.contains("use(a"), "{}", out);
        // Key `a` must stay (renamed binding needs `a: newname`), key `b` stays.
        assert!(out.contains("a:"), "{}", out);
        assert!(out.contains("b:"), "{}", out);
    }

    #[test]
    fn arrow_params_renamed() {
        let out = rename_with_counter("items.map(item => item * 2);");
        assert!(!out.contains("(item"), "{}", out);
        assert!(out.starts_with("items.map("), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn class_names_and_methods() {
        let out = rename_with_counter(
            "class Widget { render() { return helper(); } } function helper() {} new Widget();",
        );
        assert!(!out.contains("Widget"), "{}", out);
        assert!(!out.contains("helper"), "{}", out);
        assert!(out.contains("render"), "method names must stay: {}", out);
    }

    #[test]
    fn renamed_output_reparses() {
        let src = r#"
            var total = 0;
            function accumulate(values) {
                for (var i = 0; i < values.length; i++) { total += values[i]; }
                return total;
            }
            accumulate([1, 2, 3]);
        "#;
        let out = rename_with_counter(src);
        assert!(parse(&out).is_ok(), "{}", out);
        assert!(!out.contains("total") && !out.contains("accumulate") && !out.contains("values"));
    }
}

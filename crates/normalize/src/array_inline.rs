//! Global string array inlining: undoes `transform::global_array` (the
//! obfuscator.io shape).
//!
//! The pass looks for the three-statement prelude the technique injects —
//! the pooled string array, an optional rotation IIFE, and the accessor
//! function — then resolves every `ACC('0x1')` call back to the pooled
//! string. The stored array is un-rotated with the same `(k - 1) % n`
//! arithmetic the runtime IIFE performs, so indices resolve against the
//! original order. When no reference to the array or accessor survives the
//! rewrite, the prelude itself is deleted.

use crate::eval::str_expr;
use crate::{Pass, PassCx};
use jsdetect_ast::visit_mut::{walk_expr_mut, walk_pat_mut, MutVisitor};
use jsdetect_ast::*;
use jsdetect_flow::analyze_scopes;

/// See the module docs.
pub(crate) struct ArrayInlinePass;

impl Pass for ArrayInlinePass {
    fn name(&self) -> &'static str {
        "array-inline"
    }

    fn counter(&self) -> &'static str {
        "normalize/array-inline/rewrites"
    }

    fn run(&self, program: &mut Program, cx: &PassCx) -> u64 {
        let mut count = 0;
        let mut scan_from = 0;
        while scan_from < program.body.len() {
            self.cx_tick(cx);
            let Some(pool) = find_pool(program, scan_from) else { break };
            // Never rescan this prelude: whether or not anything below
            // succeeds, the cursor moves past it, bounding the loop by the
            // statement count.
            scan_from = pool.arr_index + 1;
            if !names_bind_once(program, &pool) {
                continue;
            }
            let mut strings = pool.strings.clone();
            if let Some(k) = pool.rotation {
                let left = (k - 1) % strings.len();
                strings.rotate_left(left);
            }
            let mut inliner = Inline { cx, pool: &pool, strings: &strings, count: 0 };
            inliner.visit_program_mut(program);
            count += inliner.count;
            // Delete the prelude once nothing outside it uses the names.
            if remaining_refs(program, &pool) == 0 && cx.spend() {
                let mut doomed = vec![pool.arr_index, pool.acc_index];
                doomed.extend(pool.iife_index);
                doomed.sort_unstable();
                for i in doomed.into_iter().rev() {
                    program.body.remove(i);
                }
                count += 1;
                scan_from = pool.arr_index;
            }
        }
        count
    }
}

impl ArrayInlinePass {
    fn cx_tick(&self, cx: &PassCx) {
        cx.tick(8);
    }
}

struct Pool {
    arr_index: usize,
    iife_index: Option<usize>,
    acc_index: usize,
    arr_name: Atom,
    acc_name: Atom,
    strings: Vec<Atom>,
    /// Rotation IIFE count argument, when the IIFE is present.
    rotation: Option<usize>,
    /// Whether the accessor indexes via `parseInt(i, 16)` (hex string
    /// argument) rather than directly.
    hex_index: bool,
}

/// Finds the next array/accessor prelude at or after `from` in the
/// top-level statement list.
fn find_pool(program: &Program, from: usize) -> Option<Pool> {
    let body = &program.body;
    for i in from..body.len() {
        let Some((arr_name, strings)) = string_array_decl(&body[i]) else { continue };
        let rotation = body.get(i + 1).and_then(|s| rotation_iife(s, &arr_name));
        let acc_index = if rotation.is_some() { i + 2 } else { i + 1 };
        let Some((acc_name, hex_index)) =
            body.get(acc_index).and_then(|s| accessor_decl(s, &arr_name))
        else {
            continue;
        };
        // `k == 0` would underflow the un-rotation; the transform never
        // emits it, and a hand-built one means "no rotation happened".
        let rotation = rotation.filter(|&k| k >= 1);
        if rotation.is_none() && acc_index == i + 2 {
            continue;
        }
        return Some(Pool {
            arr_index: i,
            iife_index: (acc_index == i + 2).then_some(i + 1),
            acc_index,
            arr_name,
            acc_name,
            strings,
            rotation,
            hex_index,
        });
    }
    None
}

/// `var ARR = ['...', '...'];` with at least one all-string element.
fn string_array_decl(s: &Stmt) -> Option<(Atom, Vec<Atom>)> {
    let Stmt::VarDecl { decls, .. } = s else { return None };
    let [d] = decls.as_slice() else { return None };
    let Pat::Ident(id) = &d.id else { return None };
    let Some(Expr::Array { elements, .. }) = &d.init else { return None };
    if elements.is_empty() {
        return None;
    }
    let mut strings = Vec::with_capacity(elements.len());
    for el in elements {
        match el {
            Some(Expr::Lit(Lit { value: LitValue::Str(s), .. })) => strings.push(*s),
            _ => return None,
        }
    }
    Some((id.name, strings))
}

/// `(function (arr, times) { ... })(ARR, K);` — matched loosely: any
/// two-parameter function expression immediately invoked with the array
/// and a numeric literal.
fn rotation_iife(s: &Stmt, arr_name: &str) -> Option<usize> {
    let Stmt::Expr { expr: Expr::Call { callee, args, .. }, .. } = s else { return None };
    let Expr::Function(f) = &**callee else { return None };
    if f.params.len() != 2 {
        return None;
    }
    let [Expr::Ident(first), Expr::Lit(Lit { value: LitValue::Num(k), .. })] = args.as_slice()
    else {
        return None;
    };
    if first.name != arr_name || k.fract() != 0.0 || *k < 0.0 {
        return None;
    }
    Some(*k as usize)
}

/// `var ACC = function (i) { return ARR[parseInt(i, 16)]; };` or the
/// direct-index variant `return ARR[i];`.
fn accessor_decl(s: &Stmt, arr_name: &str) -> Option<(Atom, bool)> {
    let Stmt::VarDecl { decls, .. } = s else { return None };
    let [d] = decls.as_slice() else { return None };
    let Pat::Ident(acc) = &d.id else { return None };
    let Some(Expr::Function(f)) = &d.init else { return None };
    let [Pat::Ident(param)] = f.params.as_slice() else { return None };
    let [Stmt::Return { arg: Some(Expr::Member { object, property, .. }), .. }] = f.body.as_slice()
    else {
        return None;
    };
    let Expr::Ident(obj) = &**object else { return None };
    if obj.name != arr_name {
        return None;
    }
    let MemberProp::Computed(index) = property else { return None };
    let hex = match &**index {
        Expr::Ident(i) if i.name == param.name => false,
        Expr::Call { callee, args, .. } => {
            let Expr::Ident(pi) = &**callee else { return None };
            let [Expr::Ident(a), Expr::Lit(Lit { value: LitValue::Num(radix), .. })] =
                args.as_slice()
            else {
                return None;
            };
            if pi.name != "parseInt" || a.name != param.name || *radix != 16.0 {
                return None;
            }
            true
        }
        _ => return None,
    };
    Some((acc.name, hex))
}

/// The rewrite is only safe when each prelude name binds exactly once in
/// the whole program (no shadowing, no redeclaration).
fn names_bind_once(program: &mut Program, pool: &Pool) -> bool {
    let tree = analyze_scopes(program);
    for name in [&pool.arr_name, &pool.acc_name] {
        if tree.bindings().iter().filter(|b| &b.name == name).count() != 1 {
            return false;
        }
    }
    true
}

struct Inline<'a, 'b> {
    cx: &'a PassCx<'b>,
    pool: &'a Pool,
    strings: &'a [Atom],
    count: u64,
}

impl MutVisitor for Inline<'_, '_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
        self.cx.tick(1);
        let Expr::Call { callee, args, span } = e else { return };
        let Expr::Ident(id) = &**callee else { return };
        if id.name != self.pool.acc_name {
            return;
        }
        let [arg] = args.as_slice() else { return };
        let Some(idx) = decode_index(arg, self.pool.hex_index) else { return };
        let Some(s) = self.strings.get(idx) else { return };
        if self.cx.spend() {
            *e = str_expr(*s, *span);
            self.count += 1;
        }
    }
}

fn decode_index(arg: &Expr, hex: bool) -> Option<usize> {
    match (arg, hex) {
        (Expr::Lit(Lit { value: LitValue::Str(s), .. }), true) => {
            usize::from_str_radix(s.strip_prefix("0x")?, 16).ok()
        }
        (Expr::Lit(Lit { value: LitValue::Num(n), .. }), false) => {
            (n.fract() == 0.0 && *n >= 0.0).then_some(*n as usize)
        }
        _ => None,
    }
}

/// Counts surviving uses of the prelude names outside the prelude itself.
fn remaining_refs(program: &mut Program, pool: &Pool) -> u64 {
    struct Counter<'a> {
        names: [&'a str; 2],
        count: u64,
    }
    impl MutVisitor for Counter<'_> {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if let Expr::Ident(id) = e {
                if self.names.contains(&id.name.as_str()) {
                    self.count += 1;
                }
            }
            walk_expr_mut(self, e);
        }
        fn visit_pat_mut(&mut self, p: &mut Pat) {
            if let Pat::Ident(id) = p {
                if self.names.contains(&id.name.as_str()) {
                    self.count += 1;
                }
            }
            walk_pat_mut(self, p);
        }
    }
    let prelude = [Some(pool.arr_index), pool.iife_index, Some(pool.acc_index)];
    let mut c = Counter { names: [&pool.arr_name, &pool.acc_name], count: 0 };
    for (i, s) in program.body.iter_mut().enumerate() {
        if prelude.contains(&Some(i)) {
            continue;
        }
        c.visit_stmt_mut(s);
    }
    c.count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize_program, NormalizeOptions, PassKind};
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn run(src: &str) -> String {
        let mut p = parse(src).unwrap();
        let opts =
            NormalizeOptions { passes: vec![PassKind::ArrayInline], ..NormalizeOptions::default() };
        normalize_program(&mut p, &opts);
        to_minified(&p)
    }

    #[test]
    fn inlines_unrotated_pool_and_removes_prelude() {
        let src = "var _0xa = ['alpha', 'beta'];\
                   var _0xb = function (i) { return _0xa[parseInt(i, 16)]; };\
                   f(_0xb('0x0')); g(_0xb('0x1'));";
        assert_eq!(run(src), "f('alpha');g('beta');");
    }

    #[test]
    fn inlines_direct_index_accessor() {
        let src = "var _0xa = ['alpha', 'beta'];\
                   var _0xb = function (i) { return _0xa[i]; };\
                   f(_0xb(1));";
        assert_eq!(run(src), "f('beta');");
    }

    #[test]
    fn unrotates_with_the_iife_arithmetic() {
        // Stored rotated right by (k-1)%n with k=4, n=3 → right by 0...
        // use k=5, n=3 → right by 1: original [a,b,c] stored as [c,a,b].
        let src = "var _0xa = ['c', 'a', 'b'];\
                   (function (arr, times) { var s = function (t) { while (--t) { arr.push(arr.shift()); } }; s(++times); })(_0xa, 5);\
                   var _0xb = function (i) { return _0xa[parseInt(i, 16)]; };\
                   f(_0xb('0x0'), _0xb('0x2'));";
        assert_eq!(run(src), "f('a','c');");
    }

    #[test]
    fn out_of_range_index_keeps_call_and_prelude() {
        let src = "var _0xa = ['alpha'];\
                   var _0xb = function (i) { return _0xa[parseInt(i, 16)]; };\
                   f(_0xb('0x7'));";
        let out = run(src);
        assert!(out.contains("_0xb('0x7')"), "{}", out);
        assert!(out.contains("var _0xa"), "prelude must survive a live ref: {}", out);
    }

    #[test]
    fn shadowed_accessor_name_disables_the_rewrite() {
        let src = "var _0xa = ['alpha'];\
                   var _0xb = function (i) { return _0xa[parseInt(i, 16)]; };\
                   function h(_0xb) { return _0xb('0x0'); }\
                   f(_0xb('0x0'));";
        let out = run(src);
        assert!(out.contains("f(_0xb('0x0'))"), "{}", out);
    }

    #[test]
    fn non_pool_arrays_are_untouched() {
        assert_eq!(run("var a = ['x', 'y']; f(a[0]);"), "var a=['x','y'];f(a[0]);");
    }

    #[test]
    fn reverses_the_global_array_transform_exactly() {
        use jsdetect_transform::{apply, Technique};
        let src = "function run() { log('alpha message'); log('beta message'); }\
                   run(); notify('gamma payload', 'alpha message');";
        let canonical = to_minified(&parse(src).unwrap());
        for seed in [1u64, 9, 42] {
            let obf = apply(src, &[Technique::GlobalArray], seed).unwrap();
            assert!(obf.contains("parseInt"), "transform applied: {}", obf);
            let mut p = parse(&obf).unwrap();
            let opts = NormalizeOptions {
                passes: vec![PassKind::ArrayInline],
                ..NormalizeOptions::default()
            };
            let report = normalize_program(&mut p, &opts);
            assert!(report.total_rewrites() > 0, "seed {}", seed);
            assert_eq!(to_minified(&p), canonical, "seed {}", seed);
        }
    }
}

//! Global array obfuscation (paper §II-A, *data obfuscation*).
//!
//! Moves string literals into a global array, optionally rotated at load
//! time by an IIFE (the obfuscator.io shape), and replaces each literal
//! occurrence with a call to an accessor function taking a hex-string
//! index: `_0x4f2a('0x1')`.

use jsdetect_ast::builder::*;
use jsdetect_ast::visit_mut::{walk_expr_mut, MutVisitor};
use jsdetect_ast::*;
use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Options for the global-array pass.
#[derive(Debug, Clone)]
pub struct GlobalArrayOptions {
    /// Minimum string length to pool.
    pub min_len: usize,
    /// Inject the rotation IIFE.
    pub rotate: bool,
}

impl Default for GlobalArrayOptions {
    fn default() -> Self {
        GlobalArrayOptions { min_len: 2, rotate: true }
    }
}

/// Applies the transformation in place. Returns the number of pooled
/// strings.
pub fn global_array(program: &mut Program, rng: &mut StdRng, opts: &GlobalArrayOptions) -> usize {
    // Collect distinct strings in first-appearance order.
    let mut collector = Collect { min_len: opts.min_len, seen: Vec::new() };
    let skip = crate::string_obf::directive_count(&program.body);
    for s in program.body.iter_mut().skip(skip) {
        collector.visit_stmt_mut(s);
    }
    let strings = collector.seen;
    if strings.is_empty() {
        return 0;
    }
    let index_of: HashMap<Atom, usize> = strings.iter().enumerate().map(|(i, s)| (*s, i)).collect();

    let arr_name = format!("_0x{:x}", rng.gen_range(0x1000u32..0xFFFFF));
    let acc_name = format!("_0x{:x}", rng.gen_range(0x1000u32..0xFFFFF));

    // Replace literals with accessor calls.
    let mut replacer = Replace { index_of: &index_of, acc_name: &acc_name, replaced: 0 };
    for s in program.body.iter_mut().skip(skip) {
        replacer.visit_stmt_mut(s);
    }

    // Rotation: emit the array pre-rotated so the runtime IIFE restores the
    // original order (`times = k` executes `k - 1` push/shift rotations).
    let k: usize = if opts.rotate { rng.gen_range(0x20..0x200) } else { 0 };
    let mut stored = strings.clone();
    if opts.rotate && !stored.is_empty() {
        let n = stored.len();
        let left = (k - 1) % n;
        // Runtime rotates left by `left`; store rotated right by `left`.
        stored.rotate_right(left);
    }

    let mut prelude = vec![var_decl(
        VarKind::Var,
        arr_name.clone(),
        Some(array(stored.into_iter().map(str_lit).collect())),
    )];
    if opts.rotate {
        prelude.push(rotation_iife(&arr_name, k));
    }
    prelude.push(accessor_decl(&acc_name, &arr_name));

    for (i, stmt) in prelude.into_iter().enumerate() {
        program.body.insert(skip + i, stmt);
    }
    index_of.len()
}

struct Collect {
    min_len: usize,
    seen: Vec<Atom>,
}

impl MutVisitor for Collect {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        if let Expr::Lit(Lit { value: LitValue::Str(s), .. }) = e {
            if s.len() >= self.min_len && !self.seen.contains(s) {
                self.seen.push(*s);
            }
            return;
        }
        walk_expr_mut(self, e);
    }
}

struct Replace<'a> {
    index_of: &'a HashMap<Atom, usize>,
    acc_name: &'a str,
    replaced: usize,
}

impl MutVisitor for Replace<'_> {
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        if let Expr::Lit(Lit { value: LitValue::Str(s), .. }) = e {
            if let Some(&i) = self.index_of.get(s) {
                *e = call(ident(self.acc_name.to_string()), vec![str_lit(format!("0x{:x}", i))]);
                self.replaced += 1;
            }
            return;
        }
        walk_expr_mut(self, e);
    }
}

/// `(function (arr, times) { var shift = function (t) { while (--t)
/// { arr.push(arr.shift()); } }; shift(++times); })(ARR, K);`
fn rotation_iife(arr_name: &str, k: usize) -> Stmt {
    let shift_fn = fn_expr(
        vec!["t"],
        vec![while_stmt(
            Expr::Update {
                op: UpdateOp::Decrement,
                prefix: true,
                arg: Box::new(ident("t")),
                span: Span::DUMMY,
            },
            block(vec![expr_stmt(method_call(
                ident("arr"),
                "push",
                vec![method_call(ident("arr"), "shift", vec![])],
            ))]),
        )],
    );
    let body = vec![
        var_decl(VarKind::Var, "shift", Some(shift_fn)),
        expr_stmt(call(
            ident("shift"),
            vec![Expr::Update {
                op: UpdateOp::Increment,
                prefix: true,
                arg: Box::new(ident("times")),
                span: Span::DUMMY,
            }],
        )),
    ];
    expr_stmt(call(
        fn_expr(vec!["arr", "times"], body),
        vec![ident(arr_name.to_string()), num_lit(k as f64)],
    ))
}

/// `var ACC = function (i) { return ARR[parseInt(i, 16)]; };`
fn accessor_decl(acc_name: &str, arr_name: &str) -> Stmt {
    let body = vec![ret(Some(index(
        ident(arr_name.to_string()),
        call(ident("parseInt"), vec![ident("i"), num_lit(16.0)]),
    )))];
    var_decl(VarKind::Var, acc_name.to_string(), Some(fn_expr(vec!["i"], body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;
    use rand::SeedableRng;

    fn run(src: &str, rotate: bool) -> String {
        let mut prog = parse(src).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        global_array(&mut prog, &mut rng, &GlobalArrayOptions { min_len: 2, rotate });
        to_minified(&prog)
    }

    #[test]
    fn strings_pooled_and_replaced() {
        let out = run("f('alpha'); g('beta'); h('alpha');", false);
        // Array contains both strings once.
        assert_eq!(out.matches("'alpha'").count(), 1, "{}", out);
        assert_eq!(out.matches("'beta'").count(), 1, "{}", out);
        // Accessor calls with hex string indices.
        assert!(out.contains("('0x0')"), "{}", out);
        assert!(out.contains("('0x1')"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn rotation_iife_injected() {
        let out = run("f('alpha'); g('beta'); h('gamma');", true);
        assert!(out.contains("push"), "{}", out);
        assert!(out.contains("shift"), "{}", out);
        assert!(parse(&out).is_ok());
    }

    #[test]
    fn accessor_uses_parse_int() {
        let out = run("f('alpha');", false);
        assert!(out.contains("parseInt("), "{}", out);
    }

    #[test]
    fn rotation_math_restores_order() {
        // Simulate: stored rotated right by (k-1)%n, runtime rotates left
        // by (k-1)%n → original order.
        let original = vec!["a", "b", "c", "d", "e"];
        for k in [1usize, 2, 5, 7, 400] {
            let n = original.len();
            let left = (k - 1) % n;
            let mut stored = original.clone();
            stored.rotate_right(left);
            // Runtime: while(--t) push(shift()) with t = k → k-1 rotations.
            let mut t = k;
            loop {
                t -= 1;
                if t == 0 {
                    break;
                }
                let first = stored.remove(0);
                stored.push(first);
            }
            assert_eq!(stored, original, "k={}", k);
        }
    }

    #[test]
    fn no_strings_is_noop() {
        let out = run("var x = 1 + 2;", true);
        assert_eq!(out, "var x=1+2;");
    }

    #[test]
    fn short_strings_skipped() {
        let out = run("f('a'); g('hello');", false);
        assert!(out.contains("f('a')"), "{}", out);
        assert!(!out.contains("g('hello')"), "{}", out);
    }
}

//! In-place AST rewriting.
//!
//! [`MutVisitor`] is the substrate for the transformation passes (the ten
//! obfuscation/minification techniques). Implementations override the hooks
//! they care about and delegate to the `walk_*_mut` functions to recurse.
//! Hooks run *before* recursion (pre-order); a pass that needs post-order
//! behaviour recurses first via the walk function and then edits the node.

use crate::nodes::*;

/// A mutable AST visitor with default recursive behaviour.
pub trait MutVisitor: Sized {
    /// Visits a whole program.
    fn visit_program_mut(&mut self, p: &mut Program) {
        walk_program_mut(self, p);
    }

    /// Visits a statement.
    fn visit_stmt_mut(&mut self, s: &mut Stmt) {
        walk_stmt_mut(self, s);
    }

    /// Visits an expression.
    fn visit_expr_mut(&mut self, e: &mut Expr) {
        walk_expr_mut(self, e);
    }

    /// Visits a pattern.
    fn visit_pat_mut(&mut self, p: &mut Pat) {
        walk_pat_mut(self, p);
    }

    /// Visits a function (declaration, expression, or method).
    fn visit_function_mut(&mut self, f: &mut Function) {
        walk_function_mut(self, f);
    }

    /// Visits a statement list (program body, block body, function body).
    ///
    /// Override to insert or remove statements.
    fn visit_stmts_mut(&mut self, stmts: &mut Vec<Stmt>) {
        for s in stmts.iter_mut() {
            self.visit_stmt_mut(s);
        }
    }
}

/// Default recursion for programs.
pub fn walk_program_mut<V: MutVisitor>(v: &mut V, p: &mut Program) {
    v.visit_stmts_mut(&mut p.body);
}

/// Default recursion for statements.
pub fn walk_stmt_mut<V: MutVisitor>(v: &mut V, s: &mut Stmt) {
    match s {
        Stmt::Expr { expr, .. } => v.visit_expr_mut(expr),
        Stmt::Block { body, .. } => v.visit_stmts_mut(body),
        Stmt::VarDecl { decls, .. } => {
            for d in decls {
                v.visit_pat_mut(&mut d.id);
                if let Some(init) = &mut d.init {
                    v.visit_expr_mut(init);
                }
            }
        }
        Stmt::FunctionDecl(f) => v.visit_function_mut(f),
        Stmt::ClassDecl(c) => walk_class_mut(v, c),
        Stmt::If { test, consequent, alternate, .. } => {
            v.visit_expr_mut(test);
            v.visit_stmt_mut(consequent);
            if let Some(alt) = alternate {
                v.visit_stmt_mut(alt);
            }
        }
        Stmt::For { init, test, update, body, .. } => {
            match init {
                Some(ForInit::Var { decls, .. }) => {
                    for d in decls {
                        v.visit_pat_mut(&mut d.id);
                        if let Some(e) = &mut d.init {
                            v.visit_expr_mut(e);
                        }
                    }
                }
                Some(ForInit::Expr(e)) => v.visit_expr_mut(e),
                None => {}
            }
            if let Some(t) = test {
                v.visit_expr_mut(t);
            }
            if let Some(u) = update {
                v.visit_expr_mut(u);
            }
            v.visit_stmt_mut(body);
        }
        Stmt::ForIn { target, object, body, .. } => {
            walk_for_target_mut(v, target);
            v.visit_expr_mut(object);
            v.visit_stmt_mut(body);
        }
        Stmt::ForOf { target, iterable, body, .. } => {
            walk_for_target_mut(v, target);
            v.visit_expr_mut(iterable);
            v.visit_stmt_mut(body);
        }
        Stmt::While { test, body, .. } => {
            v.visit_expr_mut(test);
            v.visit_stmt_mut(body);
        }
        Stmt::DoWhile { body, test, .. } => {
            v.visit_stmt_mut(body);
            v.visit_expr_mut(test);
        }
        Stmt::Switch { discriminant, cases, .. } => {
            v.visit_expr_mut(discriminant);
            for c in cases {
                if let Some(t) = &mut c.test {
                    v.visit_expr_mut(t);
                }
                v.visit_stmts_mut(&mut c.body);
            }
        }
        Stmt::Try { block, handler, finalizer, .. } => {
            v.visit_stmts_mut(block);
            if let Some(h) = handler {
                if let Some(p) = &mut h.param {
                    v.visit_pat_mut(p);
                }
                v.visit_stmts_mut(&mut h.body);
            }
            if let Some(fin) = finalizer {
                v.visit_stmts_mut(fin);
            }
        }
        Stmt::Throw { arg, .. } => v.visit_expr_mut(arg),
        Stmt::Return { arg, .. } => {
            if let Some(a) = arg {
                v.visit_expr_mut(a);
            }
        }
        Stmt::Labeled { body, .. } => v.visit_stmt_mut(body),
        Stmt::Break { .. } | Stmt::Continue { .. } | Stmt::Empty { .. } | Stmt::Debugger { .. } => {
        }
        Stmt::With { object, body, .. } => {
            v.visit_expr_mut(object);
            v.visit_stmt_mut(body);
        }
        // Import/export specifiers are module-interface names, not local
        // expressions; only nested declarations and default expressions
        // recurse.
        Stmt::Import { .. } | Stmt::ExportAll { .. } => {}
        Stmt::ExportNamed { decl, .. } => {
            if let Some(decl) = decl {
                v.visit_stmt_mut(decl);
            }
        }
        Stmt::ExportDefault { expr, .. } => v.visit_expr_mut(expr),
    }
}

fn walk_for_target_mut<V: MutVisitor>(v: &mut V, t: &mut ForTarget) {
    match t {
        ForTarget::Var { pat, .. } => v.visit_pat_mut(pat),
        ForTarget::Pat(p) => v.visit_pat_mut(p),
    }
}

/// Default recursion for expressions.
pub fn walk_expr_mut<V: MutVisitor>(v: &mut V, e: &mut Expr) {
    match e {
        Expr::Ident(_)
        | Expr::Lit(_)
        | Expr::This { .. }
        | Expr::Super { .. }
        | Expr::MetaProperty { .. } => {}
        Expr::Array { elements, .. } => {
            for el in elements.iter_mut().flatten() {
                v.visit_expr_mut(el);
            }
        }
        Expr::Object { props, .. } => {
            for p in props {
                if let PropKey::Computed(k) = &mut p.key {
                    v.visit_expr_mut(k);
                }
                v.visit_expr_mut(&mut p.value);
            }
        }
        Expr::Function(f) => v.visit_function_mut(f),
        Expr::Arrow { params, body, .. } => {
            for p in params {
                v.visit_pat_mut(p);
            }
            match body {
                ArrowBody::Expr(e) => v.visit_expr_mut(e),
                ArrowBody::Block(stmts) => v.visit_stmts_mut(stmts),
            }
        }
        Expr::Class(c) => walk_class_mut(v, c),
        Expr::Template { exprs, .. } => {
            for ex in exprs {
                v.visit_expr_mut(ex);
            }
        }
        Expr::TaggedTemplate { tag, exprs, .. } => {
            v.visit_expr_mut(tag);
            for ex in exprs {
                v.visit_expr_mut(ex);
            }
        }
        Expr::Unary { arg, .. }
        | Expr::Update { arg, .. }
        | Expr::Spread { arg, .. }
        | Expr::Await { arg, .. } => v.visit_expr_mut(arg),
        Expr::Binary { left, right, .. } | Expr::Logical { left, right, .. } => {
            v.visit_expr_mut(left);
            v.visit_expr_mut(right);
        }
        Expr::Assign { target, value, .. } => {
            v.visit_pat_mut(target);
            v.visit_expr_mut(value);
        }
        Expr::Conditional { test, consequent, alternate, .. } => {
            v.visit_expr_mut(test);
            v.visit_expr_mut(consequent);
            v.visit_expr_mut(alternate);
        }
        Expr::Call { callee, args, .. } | Expr::New { callee, args, .. } => {
            v.visit_expr_mut(callee);
            for a in args {
                v.visit_expr_mut(a);
            }
        }
        Expr::Member { object, property, .. } => {
            v.visit_expr_mut(object);
            if let MemberProp::Computed(p) = property {
                v.visit_expr_mut(p);
            }
        }
        Expr::Sequence { exprs, .. } => {
            for ex in exprs {
                v.visit_expr_mut(ex);
            }
        }
        Expr::Yield { arg, .. } => {
            if let Some(a) = arg {
                v.visit_expr_mut(a);
            }
        }
        Expr::ImportCall { arg, .. } => v.visit_expr_mut(arg),
    }
}

/// Default recursion for patterns.
pub fn walk_pat_mut<V: MutVisitor>(v: &mut V, p: &mut Pat) {
    match p {
        Pat::Ident(_) => {}
        Pat::Array { elements, .. } => {
            for el in elements.iter_mut().flatten() {
                v.visit_pat_mut(el);
            }
        }
        Pat::Object { props, .. } => {
            for prop in props {
                if let PropKey::Computed(k) = &mut prop.key {
                    v.visit_expr_mut(k);
                }
                v.visit_pat_mut(&mut prop.value);
            }
        }
        Pat::Assign { target, value, .. } => {
            v.visit_pat_mut(target);
            v.visit_expr_mut(value);
        }
        Pat::Rest { arg, .. } => v.visit_pat_mut(arg),
        Pat::Member(e) => v.visit_expr_mut(e),
    }
}

/// Default recursion for functions.
pub fn walk_function_mut<V: MutVisitor>(v: &mut V, f: &mut Function) {
    for p in &mut f.params {
        v.visit_pat_mut(p);
    }
    v.visit_stmts_mut(&mut f.body);
}

fn walk_class_mut<V: MutVisitor>(v: &mut V, c: &mut Class) {
    if let Some(sup) = &mut c.super_class {
        v.visit_expr_mut(sup);
    }
    for m in &mut c.body {
        if let PropKey::Computed(k) = &mut m.key {
            v.visit_expr_mut(k);
        }
        match &mut m.value {
            ClassMemberValue::Method(f) => v.visit_function_mut(f),
            ClassMemberValue::Field(Some(e)) => v.visit_expr_mut(e),
            ClassMemberValue::Field(None) => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Span;

    /// Replaces every numeric literal with `42`.
    struct FortyTwo;

    impl MutVisitor for FortyTwo {
        fn visit_expr_mut(&mut self, e: &mut Expr) {
            if let Expr::Lit(l) = e {
                if matches!(l.value, LitValue::Num(_)) {
                    *e = Expr::Lit(Lit::num(42.0));
                    return;
                }
            }
            walk_expr_mut(self, e);
        }
    }

    #[test]
    fn rewrites_literals_everywhere() {
        let mut prog = Program {
            body: vec![Stmt::If {
                test: Expr::Binary {
                    op: crate::ops::BinaryOp::Lt,
                    left: Box::new(Expr::Lit(Lit::num(1.0))),
                    right: Box::new(Expr::Lit(Lit::num(2.0))),
                    span: Span::DUMMY,
                },
                consequent: Box::new(Stmt::Return {
                    arg: Some(Expr::Lit(Lit::num(3.0))),
                    span: Span::DUMMY,
                }),
                alternate: None,
                span: Span::DUMMY,
            }],
            span: Span::DUMMY,
        };
        FortyTwo.visit_program_mut(&mut prog);
        let mut count = 0;
        crate::visit::walk(&prog, &mut |n, _| {
            if let crate::visit::NodeRef::Expr(Expr::Lit(l)) = n {
                if let LitValue::Num(v) = l.value {
                    assert_eq!(v, 42.0);
                    count += 1;
                }
            }
        });
        assert_eq!(count, 3);
    }

    /// Appends an empty statement to every statement list.
    struct Padder;

    impl MutVisitor for Padder {
        fn visit_stmts_mut(&mut self, stmts: &mut Vec<Stmt>) {
            for s in stmts.iter_mut() {
                self.visit_stmt_mut(s);
            }
            stmts.push(Stmt::Empty { span: Span::DUMMY });
        }
    }

    #[test]
    fn stmt_list_hook_can_insert() {
        let mut prog = Program {
            body: vec![Stmt::Block { body: vec![], span: Span::DUMMY }],
            span: Span::DUMMY,
        };
        Padder.visit_program_mut(&mut prog);
        assert_eq!(prog.body.len(), 2); // block + appended empty
        match &prog.body[0] {
            Stmt::Block { body, .. } => assert_eq!(body.len(), 1),
            other => panic!("unexpected {:?}", other),
        }
    }
}

//! Word pools for realistic identifier, property, and string generation.

/// Common variable-name stems seen in hand-written JavaScript.
pub const NOUNS: &[&str] = &[
    "data", "value", "result", "index", "count", "item", "list", "name", "user", "config",
    "options", "element", "node", "event", "handler", "callback", "temp", "buffer", "state",
    "total", "sum", "key", "map", "cache", "query", "response", "request", "url", "path",
    "token", "session", "error", "message", "text", "html", "width", "height", "offset",
    "size", "length", "start", "end", "next", "prev", "current", "parent", "child", "target",
    "source", "entry", "record", "row", "col", "field", "form", "input", "output", "model",
    "view", "controller", "service", "client", "server", "socket", "stream", "queue", "stack",
    "tree", "graph", "table", "grid", "panel", "button", "menu", "dialog", "modal", "frame",
];

/// Verb stems for function names.
pub const VERBS: &[&str] = &[
    "get", "set", "update", "fetch", "load", "save", "remove", "delete", "create", "build",
    "make", "init", "setup", "render", "draw", "parse", "format", "validate", "check", "find",
    "filter", "sort", "merge", "split", "join", "send", "receive", "handle", "process",
    "compute", "calculate", "convert", "transform", "apply", "bind", "attach", "detach",
    "toggle", "show", "hide", "open", "close", "start", "stop", "reset", "clear", "append",
    "prepend", "insert", "replace", "clone", "copy", "compare", "resolve", "reject", "emit",
];

/// Adjectives / qualifiers for compound names.
pub const QUALIFIERS: &[&str] = &[
    "new", "old", "last", "first", "max", "min", "active", "selected", "visible", "hidden",
    "valid", "invalid", "pending", "loaded", "cached", "default", "custom", "local", "global",
    "inner", "outer", "left", "right", "top", "bottom", "main", "base", "raw", "parsed",
];

/// Realistic object property names.
pub const PROPS: &[&str] = &[
    "id", "name", "type", "value", "label", "title", "status", "code", "kind", "mode",
    "flags", "meta", "props", "attrs", "style", "class", "children", "items", "entries",
    "params", "headers", "body", "method", "action", "enabled", "disabled", "version",
    "timestamp", "created", "updated", "owner", "group", "tags", "score", "rank", "weight",
];

/// Realistic string literal fragments.
pub const STRINGS: &[&str] = &[
    "Loading...",
    "An error occurred",
    "Invalid input",
    "Please try again",
    "Success",
    "OK",
    "Cancel",
    "Submit",
    "click",
    "change",
    "keydown",
    "mouseover",
    "resize",
    "scroll",
    "load",
    "DOMContentLoaded",
    "application/json",
    "text/html",
    "utf-8",
    "GET",
    "POST",
    "PUT",
    "DELETE",
    "/api/v1/users",
    "/api/v1/items",
    "/assets/img/logo.png",
    "https://example.com",
    "https://cdn.example.com/lib.js",
    "#container",
    ".item-list",
    ".btn-primary",
    "div.wrapper",
    "input[type=text]",
    "data-id",
    "aria-hidden",
    "active",
    "disabled",
    "hidden",
    "selected",
    "yyyy-MM-dd",
    "en-US",
    "undefined",
    "object",
    "string",
    "number",
    "function",
];

/// Comment fragments.
pub const COMMENTS: &[&str] = &[
    "TODO: handle edge cases",
    "FIXME: this is a workaround",
    "initialize the component",
    "update the view when the model changes",
    "fall back to the default configuration",
    "cache the result for later lookups",
    "see https://example.com/docs for details",
    "avoid re-rendering when nothing changed",
    "guard against missing arguments",
    "legacy support for older browsers",
    "this mirrors the server-side validation",
    "keep in sync with the CSS breakpoints",
    "micro-optimization: hoist the length lookup",
    "note: the order of these checks matters",
];

/// Global/builtin callables regular code touches.
pub const GLOBAL_FNS: &[&str] = &[
    "parseInt",
    "parseFloat",
    "isNaN",
    "encodeURIComponent",
    "decodeURIComponent",
    "setTimeout",
    "clearTimeout",
    "requireModule",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pools_are_nonempty_and_valid_identifiers() {
        for pool in [NOUNS, VERBS, QUALIFIERS, PROPS] {
            assert!(!pool.is_empty());
            for w in pool {
                assert!(w.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'), "{}", w);
                assert!(w.chars().next().unwrap().is_ascii_alphabetic());
            }
        }
    }

    #[test]
    fn no_reserved_words_in_name_pools() {
        // `new` and `delete` appear in pools but only as *stems*; the
        // generator always combines them into compound names. Verbs used
        // bare must not be reserved.
        let reserved = ["var", "function", "return", "if", "else", "for", "while"];
        for w in NOUNS {
            assert!(!reserved.contains(w), "{}", w);
        }
    }
}

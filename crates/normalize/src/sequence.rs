//! Comma-sequence unflattening in statement position.
//!
//! `transform::minify` merges adjacent expression statements into one
//! `SequenceExpression`; this pass splits them back out: `a(), b(), c();`
//! becomes three statements, and `return (a(), b(), x)` becomes the side
//! effects followed by `return x`. Nested sequences are spliced flat in
//! the same rewrite.
//!
//! Directive prologues are respected both ways: a directive is never in a
//! sequence to begin with, and the pass refuses an expansion whose first
//! emitted statement would become an accidental directive (a leading
//! string literal at a prologue position).

use crate::{Pass, PassCx};
use jsdetect_ast::visit_mut::MutVisitor;
use jsdetect_ast::*;

/// See the module docs.
pub(crate) struct SequencePass;

impl Pass for SequencePass {
    fn name(&self) -> &'static str {
        "sequence"
    }

    fn counter(&self) -> &'static str {
        "normalize/sequence/rewrites"
    }

    fn run(&self, program: &mut Program, cx: &PassCx) -> u64 {
        let mut v = Unflatten { cx, count: 0 };
        v.visit_program_mut(program);
        v.count
    }
}

struct Unflatten<'a, 'b> {
    cx: &'a PassCx<'b>,
    count: u64,
}

fn is_directive(s: &Stmt) -> bool {
    matches!(s, Stmt::Expr { expr: Expr::Lit(Lit { value: LitValue::Str(_), .. }), .. })
}

fn is_str_lit(e: &Expr) -> bool {
    matches!(e, Expr::Lit(Lit { value: LitValue::Str(_), .. }))
}

/// Splices `exprs` into one expression statement per element, flattening
/// nested sequences.
fn flatten_into(out: &mut Vec<Stmt>, exprs: Vec<Expr>) {
    for e in exprs {
        match e {
            Expr::Sequence { exprs: nested, .. } => flatten_into(out, nested),
            e => {
                let span = e.span();
                out.push(Stmt::Expr { expr: e, span });
            }
        }
    }
}

impl Unflatten<'_, '_> {
    fn expandable(&self, s: &Stmt, at_prologue: bool) -> bool {
        match s {
            Stmt::Expr { expr: Expr::Sequence { exprs, .. }, .. } => {
                // Refuse when the first element would land in directive
                // position as a string literal.
                !(at_prologue && exprs.first().is_some_and(is_str_lit))
            }
            Stmt::Return { arg: Some(Expr::Sequence { .. }), .. } => true,
            _ => false,
        }
    }
}

impl MutVisitor for Unflatten<'_, '_> {
    fn visit_stmts_mut(&mut self, stmts: &mut Vec<Stmt>) {
        for s in stmts.iter_mut() {
            self.visit_stmt_mut(s);
        }
        self.cx.tick(stmts.len() as u64);
        let mut at_prologue = true;
        let mut needs_rewrite = false;
        for s in stmts.iter() {
            if self.expandable(s, at_prologue) {
                needs_rewrite = true;
                break;
            }
            at_prologue = at_prologue && is_directive(s);
        }
        if !needs_rewrite {
            return;
        }
        let old = std::mem::take(stmts);
        let mut at_prologue = true;
        for s in old {
            if !(self.expandable(&s, at_prologue) && self.cx.spend()) {
                at_prologue = at_prologue && is_directive(&s);
                stmts.push(s);
                continue;
            }
            self.count += 1;
            at_prologue = false;
            match s {
                Stmt::Expr { expr: Expr::Sequence { exprs, .. }, .. } => {
                    flatten_into(stmts, exprs);
                }
                Stmt::Return { arg: Some(Expr::Sequence { mut exprs, .. }), span } => {
                    let last = exprs.pop();
                    flatten_into(stmts, exprs);
                    stmts.push(Stmt::Return { arg: last, span });
                }
                _ => unreachable!("expandable() admitted an unknown shape"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{normalize_program, NormalizeOptions, PassKind};
    use jsdetect_codegen::to_minified;
    use jsdetect_parser::parse;

    fn run(src: &str) -> String {
        let mut p = parse(src).unwrap();
        let opts =
            NormalizeOptions { passes: vec![PassKind::Sequence], ..NormalizeOptions::default() };
        normalize_program(&mut p, &opts);
        to_minified(&p)
    }

    #[test]
    fn statement_sequences_split() {
        assert_eq!(run("a(), b(), c();"), "a();b();c();");
    }

    #[test]
    fn nested_sequences_splice_flat() {
        assert_eq!(run("a(), (b(), c()), d();"), "a();b();c();d();");
    }

    #[test]
    fn return_sequences_keep_the_final_value() {
        assert_eq!(run("function f() { return a(), b(), x; }"), "function f(){a();b();return x;}");
    }

    #[test]
    fn expression_position_sequences_survive() {
        assert_eq!(run("x = (a(), b());"), "x=(a(),b());");
        assert_eq!(run("f((a(), b()));"), "f((a(),b()));");
    }

    #[test]
    fn directive_prologue_is_never_created() {
        // Expanding would put 'not a directive' in directive position.
        assert_eq!(run("'not a directive', f();"), "'not a directive',f();");
        // After a real statement the expansion is safe.
        assert_eq!(run("g(); 'plain string', f();"), "g();'plain string';f();");
    }

    #[test]
    fn real_directives_are_preserved() {
        assert_eq!(run("'use strict'; a(), b();"), "'use strict';a();b();");
    }

    #[test]
    fn undoes_the_minify_sequence_merge() {
        use jsdetect_transform::{apply, Technique};
        let src = "log('one'); log('two'); log('three');";
        let min = apply(src, &[Technique::MinificationAdvanced], 3).unwrap();
        let mut p = parse(&min).unwrap();
        let report = normalize_program(
            &mut p,
            &NormalizeOptions { passes: vec![PassKind::Sequence], ..NormalizeOptions::default() },
        );
        let out = to_minified(&p);
        assert!(!out.contains(','), "no top-level sequences left: {}", out);
        assert!(report.total_rewrites() > 0 || !min.contains(','), "{}", min);
    }
}

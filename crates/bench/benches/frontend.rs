//! Front-end throughput: tokenize, parse, print, flow analysis, and
//! feature extraction (the per-script cost that dominates the paper's
//! large-scale study).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use jsdetect_bench::fixture_script;
use jsdetect_features::analyze_script;
use jsdetect_flow::analyze;
use jsdetect_parser::parse;

fn bench_frontend(c: &mut Criterion) {
    let src = fixture_script();
    let prog = parse(&src).unwrap();

    let mut group = c.benchmark_group("frontend");
    group.throughput(Throughput::Bytes(src.len() as u64));

    group.bench_function("tokenize", |b| {
        b.iter(|| jsdetect_lexer::tokenize(std::hint::black_box(&src)).unwrap())
    });
    group.bench_function("parse", |b| b.iter(|| parse(std::hint::black_box(&src)).unwrap()));
    group.bench_function("print_pretty", |b| {
        b.iter(|| jsdetect_codegen::to_source(std::hint::black_box(&prog)))
    });
    group.bench_function("print_minified", |b| {
        b.iter(|| jsdetect_codegen::to_minified(std::hint::black_box(&prog)))
    });
    group.bench_function("flow_analysis", |b| b.iter(|| analyze(std::hint::black_box(&prog))));
    group.bench_function("full_analysis", |b| {
        b.iter(|| analyze_script(std::hint::black_box(&src)).unwrap())
    });
    group.bench_function("handpicked_features", |b| {
        b.iter_batched(
            || analyze_script(&src).unwrap(),
            |a| jsdetect_features::handpicked_features(std::hint::black_box(&a)),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("ngram_counts", |b| {
        b.iter(|| jsdetect_features::ngram_counts(std::hint::black_box(&prog)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_frontend
}
criterion_main!(benches);
